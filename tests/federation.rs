//! End-to-end federation tests: the any-to-any transparency matrix of
//! Fig. 1, over the full simulated home.

use metaware::{Middleware, SmartHome};
use soap::Value;

/// Every island can invoke a representative service on every other
/// island — the paper's core claim, exhaustively.
#[test]
fn full_cross_island_matrix() {
    let home = SmartHome::builder().upnp(true).build().unwrap();
    let islands = [
        Middleware::Jini,
        Middleware::Havi,
        Middleware::X10,
        Middleware::Mail,
        Middleware::Upnp,
    ];
    // (service, op, args, expected-non-null-result)
    type Probe<'a> = (&'a str, &'a str, Vec<(String, Value)>);
    let probes: Vec<Probe<'_>> = vec![
        ("laserdisc", "status", vec![]),
        ("dv-camera", "status", vec![]),
        ("hall-lamp", "status", vec![]),
        (
            "mailer",
            "unread",
            vec![("mailbox".into(), Value::Str("nobody@example.org".into()))],
        ),
        ("porch-light", "status", vec![]),
    ];
    for from in islands {
        for (service, op, args) in &probes {
            let got = home
                .invoke_from(from, service, op, args)
                .unwrap_or_else(|e| panic!("{from} -> {service}.{op}: {e}"));
            assert_ne!(got, Value::Record(vec![]), "{from} -> {service}");
        }
    }
}

#[test]
fn state_changes_propagate_physically() {
    let home = SmartHome::builder().build().unwrap();

    // HAVi island tells the X10 lamp to switch on; the *module on the
    // powerline* must actually change.
    home.invoke_from(
        Middleware::Havi,
        "desk-lamp",
        "switch",
        &[("on".into(), Value::Bool(true))],
    )
    .unwrap();
    assert!(home.x10.as_ref().unwrap().desk_lamp.is_on());

    // X10 island sets the Jini fridge target; the fridge state changes.
    home.invoke_from(
        Middleware::X10,
        "fridge",
        "set_target",
        &[("celsius".into(), Value::Float(2.0))],
    )
    .unwrap();
    assert_eq!(*home.jini.as_ref().unwrap().fridge_temp.lock(), 2.0);

    // Mail island (the Internet gateway) starts the HAVi camcorder.
    home.invoke_from(Middleware::Mail, "dv-camera", "record", &[])
        .unwrap();
    assert_eq!(
        home.havi
            .as_ref()
            .unwrap()
            .camcorder
            .fcm(havi::FcmKind::DvCamera)
            .unwrap()
            .state()
            .transport,
        havi::TransportState::Recording
    );
}

#[test]
fn errors_cross_gateways_with_meaning() {
    let home = SmartHome::builder().build().unwrap();

    // Unknown operation: rejected by the serving gateway's type layer.
    let err = home
        .invoke_from(Middleware::Jini, "hall-lamp", "explode", &[])
        .unwrap_err();
    assert!(err.to_string().contains("explode"), "{err}");

    // Type error likewise.
    let err = home
        .invoke_from(
            Middleware::Havi,
            "hall-lamp",
            "switch",
            &[("on".into(), Value::Int(1))],
        )
        .unwrap_err();
    assert!(err.to_string().contains("type mismatch"), "{err}");

    // Unknown service: fails at VSR resolution.
    assert!(home
        .invoke_from(Middleware::Jini, "time-machine", "engage", &[])
        .is_err());
}

#[test]
fn vsr_is_the_single_source_of_truth() {
    let home = SmartHome::builder().build().unwrap();
    let vsr_client = home.any_gateway().vsr();

    // Per-middleware filters partition the services.
    let total = vsr_client.find("%", None).unwrap().len();
    let per_mw: usize = [
        Middleware::Jini,
        Middleware::Havi,
        Middleware::X10,
        Middleware::Mail,
    ]
    .iter()
    .map(|m| vsr_client.find("%", Some(*m)).unwrap().len())
    .sum();
    assert_eq!(total, per_mw);

    // Withdrawing a service makes it invisible and uninvokable.
    let x10_gw = &home.x10.as_ref().unwrap().vsg;
    assert!(x10_gw.withdraw("fan").unwrap());
    assert!(vsr_client.resolve("fan").is_err());
    assert!(home
        .invoke_from(Middleware::Jini, "fan", "status", &[])
        .is_err());
    assert_eq!(home.service_count(), total - 1);
}

#[test]
fn interfaces_survive_the_repository_round_trip() {
    let home = SmartHome::builder().build().unwrap();
    // What a PCM publishes is exactly what another island resolves.
    let record = home
        .havi
        .as_ref()
        .unwrap()
        .vsg
        .resolve("hall-lamp")
        .unwrap();
    assert_eq!(*record.interface, metaware::catalog::lamp());
    assert_eq!(record.middleware, Middleware::X10);
    assert_eq!(record.gateway, "x10-gw");
    assert_eq!(record.endpoint(), "vsg://x10-gw/hall-lamp");
}

#[test]
fn sixteen_services_federate_cleanly() {
    // Scale probe: every island's default services plus UPnP, no clashes.
    let home = SmartHome::builder().upnp(true).build().unwrap();
    assert_eq!(home.service_count(), 13);
    let names: std::collections::BTreeSet<String> = home
        .any_gateway()
        .vsr()
        .find("%", None)
        .unwrap()
        .into_iter()
        .map(|r| r.name)
        .collect();
    assert_eq!(names.len(), 13, "names are unique");
}

#[test]
fn context_aware_discovery() {
    // §3.3: the VSR stores "service locations and service contexts".
    let home = SmartHome::builder().build().unwrap();
    let vsr = home.any_gateway().vsr();

    // Everything in the hall: the X10 lamp and the motion sensor.
    let hall: std::collections::BTreeSet<String> = vsr
        .find_by_context("%", &[("room", "hall")])
        .unwrap()
        .into_iter()
        .map(|r| r.name)
        .collect();
    assert_eq!(
        hall,
        ["hall-lamp", "hall-motion"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect()
    );

    // The Jini fridge's Location entry became a room context.
    let kitchen = vsr.find_by_context("%", &[("room", "kitchen")]).unwrap();
    assert_eq!(kitchen.len(), 1);
    assert_eq!(kitchen[0].name, "fridge");
    assert_eq!(kitchen[0].middleware, Middleware::Jini);

    // Name pattern and context compose; unknown contexts match nothing.
    assert_eq!(
        vsr.find_by_context("hall%", &[("room", "hall")])
            .unwrap()
            .len(),
        2
    );
    assert!(vsr
        .find_by_context("%", &[("room", "attic")])
        .unwrap()
        .is_empty());

    // Contexts come back on resolved records too.
    let rec = vsr.resolve("hall-lamp").unwrap();
    assert!(rec.contexts.contains(&("room".into(), "hall".into())));
}
