//! End-to-end federation tests: the any-to-any transparency matrix of
//! Fig. 1, over the full simulated home.

use metaware::{Middleware, SmartHome};
use soap::Value;

/// Every island can invoke a representative service on every other
/// island — the paper's core claim, exhaustively.
#[test]
fn full_cross_island_matrix() {
    let home = SmartHome::builder().upnp(true).build().unwrap();
    let islands = [
        Middleware::Jini,
        Middleware::Havi,
        Middleware::X10,
        Middleware::Mail,
        Middleware::Upnp,
    ];
    // (service, op, args, expected-non-null-result)
    type Probe<'a> = (&'a str, &'a str, Vec<(String, Value)>);
    let probes: Vec<Probe<'_>> = vec![
        ("laserdisc", "status", vec![]),
        ("dv-camera", "status", vec![]),
        ("hall-lamp", "status", vec![]),
        (
            "mailer",
            "unread",
            vec![("mailbox".into(), Value::Str("nobody@example.org".into()))],
        ),
        ("porch-light", "status", vec![]),
    ];
    for from in islands {
        for (service, op, args) in &probes {
            let got = home
                .invoke_from(from, service, op, args)
                .unwrap_or_else(|e| panic!("{from} -> {service}.{op}: {e}"));
            assert_ne!(got, Value::Record(vec![]), "{from} -> {service}");
        }
    }
}

#[test]
fn state_changes_propagate_physically() {
    let home = SmartHome::builder().build().unwrap();

    // HAVi island tells the X10 lamp to switch on; the *module on the
    // powerline* must actually change.
    home.invoke_from(
        Middleware::Havi,
        "desk-lamp",
        "switch",
        &[("on".into(), Value::Bool(true))],
    )
    .unwrap();
    assert!(home.x10.as_ref().unwrap().desk_lamp.is_on());

    // X10 island sets the Jini fridge target; the fridge state changes.
    home.invoke_from(
        Middleware::X10,
        "fridge",
        "set_target",
        &[("celsius".into(), Value::Float(2.0))],
    )
    .unwrap();
    assert_eq!(*home.jini.as_ref().unwrap().fridge_temp.lock(), 2.0);

    // Mail island (the Internet gateway) starts the HAVi camcorder.
    home.invoke_from(Middleware::Mail, "dv-camera", "record", &[])
        .unwrap();
    assert_eq!(
        home.havi
            .as_ref()
            .unwrap()
            .camcorder
            .fcm(havi::FcmKind::DvCamera)
            .unwrap()
            .state()
            .transport,
        havi::TransportState::Recording
    );
}

#[test]
fn errors_cross_gateways_with_meaning() {
    let home = SmartHome::builder().build().unwrap();

    // Unknown operation: rejected by the serving gateway's type layer.
    let err = home
        .invoke_from(Middleware::Jini, "hall-lamp", "explode", &[])
        .unwrap_err();
    assert!(err.to_string().contains("explode"), "{err}");

    // Type error likewise.
    let err = home
        .invoke_from(
            Middleware::Havi,
            "hall-lamp",
            "switch",
            &[("on".into(), Value::Int(1))],
        )
        .unwrap_err();
    assert!(err.to_string().contains("type mismatch"), "{err}");

    // Unknown service: fails at VSR resolution.
    assert!(home
        .invoke_from(Middleware::Jini, "time-machine", "engage", &[])
        .is_err());
}

#[test]
fn vsr_is_the_single_source_of_truth() {
    let home = SmartHome::builder().build().unwrap();
    let vsr_client = home.any_gateway().vsr();

    // Per-middleware filters partition the services.
    let total = vsr_client.find("%", None).unwrap().len();
    let per_mw: usize = [
        Middleware::Jini,
        Middleware::Havi,
        Middleware::X10,
        Middleware::Mail,
    ]
    .iter()
    .map(|m| vsr_client.find("%", Some(*m)).unwrap().len())
    .sum();
    assert_eq!(total, per_mw);

    // Withdrawing a service makes it invisible and uninvokable.
    let x10_gw = &home.x10.as_ref().unwrap().vsg;
    assert!(x10_gw.withdraw("fan").unwrap());
    assert!(vsr_client.resolve("fan").is_err());
    assert!(home
        .invoke_from(Middleware::Jini, "fan", "status", &[])
        .is_err());
    assert_eq!(home.service_count(), total - 1);
}

#[test]
fn interfaces_survive_the_repository_round_trip() {
    let home = SmartHome::builder().build().unwrap();
    // What a PCM publishes is exactly what another island resolves.
    let record = home
        .havi
        .as_ref()
        .unwrap()
        .vsg
        .resolve("hall-lamp")
        .unwrap();
    assert_eq!(*record.interface, metaware::catalog::lamp());
    assert_eq!(record.middleware, Middleware::X10);
    assert_eq!(record.gateway, "x10-gw");
    assert_eq!(record.endpoint(), "vsg://x10-gw/hall-lamp");
}

#[test]
fn sixteen_services_federate_cleanly() {
    // Scale probe: every island's default services plus UPnP, no clashes.
    let home = SmartHome::builder().upnp(true).build().unwrap();
    assert_eq!(home.service_count(), 13);
    let names: std::collections::BTreeSet<String> = home
        .any_gateway()
        .vsr()
        .find("%", None)
        .unwrap()
        .into_iter()
        .map(|r| String::from(r.name))
        .collect();
    assert_eq!(names.len(), 13, "names are unique");
}

#[test]
fn context_aware_discovery() {
    // §3.3: the VSR stores "service locations and service contexts".
    let home = SmartHome::builder().build().unwrap();
    let vsr = home.any_gateway().vsr();

    // Everything in the hall: the X10 lamp and the motion sensor.
    let hall: std::collections::BTreeSet<String> = vsr
        .find_by_context("%", &[("room", "hall")])
        .unwrap()
        .into_iter()
        .map(|r| String::from(r.name))
        .collect();
    assert_eq!(
        hall,
        ["hall-lamp", "hall-motion"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect()
    );

    // The Jini fridge's Location entry became a room context.
    let kitchen = vsr.find_by_context("%", &[("room", "kitchen")]).unwrap();
    assert_eq!(kitchen.len(), 1);
    assert_eq!(kitchen[0].name, "fridge");
    assert_eq!(kitchen[0].middleware, Middleware::Jini);

    // Name pattern and context compose; unknown contexts match nothing.
    assert_eq!(
        vsr.find_by_context("hall%", &[("room", "hall")])
            .unwrap()
            .len(),
        2
    );
    assert!(vsr
        .find_by_context("%", &[("room", "attic")])
        .unwrap()
        .is_empty());

    // Contexts come back on resolved records too.
    let rec = vsr.resolve("hall-lamp").unwrap();
    assert!(rec.contexts.contains(&("room".into(), "hall".into())));
}

// ---- federated VSR (sharded, replicated) -----------------------------------

mod federated_vsr {
    use metaware::{
        catalog, FederationConfig, Middleware, ResiliencePolicy, Soap11, VirtualService, Vsg,
        VsgProtocol, Vsr, VsrClient,
    };
    use proptest::prelude::*;
    use simnet::{FaultPlan, Network, Sim, SimDuration};
    use soap::Value;
    use std::sync::Arc;

    fn service(name: &str) -> VirtualService {
        VirtualService::new(name, catalog::lamp(), Middleware::X10, "x10-gw")
    }

    fn cluster(sim: &Sim, shards: u32, replicas: usize) -> (Network, Vsr, VsrClient) {
        let net = Network::ethernet(sim);
        let vsr = Vsr::start_federated(
            &net,
            &FederationConfig {
                shards,
                replicas,
                replication: 2,
                ..FederationConfig::default()
            },
        );
        let node = net.attach("pcm");
        let client = VsrClient::new(&net, node, vsr.node());
        (net, vsr, client)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The federation is transparent: any workload of publishes and
        /// unpublishes gives byte-identical resolve/find results on a
        /// single-node repository and on a sharded, replicated cluster.
        #[test]
        fn resolve_results_identical_one_vs_n_replicas(
            names in proptest::collection::btree_set("[a-h]{1,3}", 1..12),
            drop_every in 2usize..5,
        ) {
            let sim_a = Sim::new(11);
            let (_na, _va, single) = cluster(&sim_a, 1, 1);
            let sim_b = Sim::new(11);
            let (_nb, vsr_b, fed) = cluster(&sim_b, 4, 3);

            let names: Vec<String> = names.into_iter().collect();
            for name in &names {
                single.publish(&service(name)).unwrap();
                fed.publish(&service(name)).unwrap();
            }
            for (i, name) in names.iter().enumerate() {
                if i % drop_every == 0 {
                    prop_assert!(single.unpublish(name).unwrap());
                    prop_assert!(fed.unpublish(name).unwrap());
                }
            }

            let on_single: Vec<String> =
                single.find("%", None).unwrap().into_iter().map(|r| String::from(r.name)).collect();
            let on_fed: Vec<String> =
                fed.find("%", None).unwrap().into_iter().map(|r| String::from(r.name)).collect();
            prop_assert_eq!(&on_single, &on_fed, "find('%') diverged");
            prop_assert_eq!(single.count().unwrap(), fed.count().unwrap());
            prop_assert_eq!(fed.count().unwrap(), vsr_b.service_count());

            for name in &names {
                let a = single.resolve(name);
                let b = fed.resolve(name);
                match (a, b) {
                    (Ok(ra), Ok(rb)) => prop_assert_eq!(ra, rb, "record diverged for {}", name),
                    (Err(_), Err(_)) => {}
                    (a, b) => prop_assert!(false, "presence diverged for {name}: {a:?} vs {b:?}"),
                }
            }
            prop_assert_eq!(vsr_b.replication_lag(), 0, "eager replication converged");
        }
    }

    struct AvailabilityWorld {
        sim: Sim,
        net: Network,
        vsr: Vsr,
        caller: Vsg,
    }

    fn availability_world(replicas: usize) -> AvailabilityWorld {
        let sim = Sim::new(42);
        let net = Network::ethernet(&sim);
        let vsr = Vsr::start_federated(
            &net,
            &FederationConfig {
                shards: 4,
                replicas,
                replication: 2,
                ..FederationConfig::default()
            },
        );
        let protocol: Arc<dyn VsgProtocol> = Arc::new(Soap11::new());
        let server = Vsg::start(&net, "gw-server", protocol.clone(), vsr.node()).unwrap();
        let caller = Vsg::start(&net, "gw-caller", protocol, vsr.node()).unwrap();
        server
            .export(
                VirtualService::new("chaos-lamp", catalog::lamp(), Middleware::X10, "gw-server"),
                |_: &Sim, op: &str, _: &[(String, Value)]| match op {
                    "status" => Ok(Value::Bool(true)),
                    _ => Ok(Value::Null),
                },
            )
            .unwrap();
        // Degraded stale-route serving off: every poll must survive on
        // live repository traffic alone, so the measurement isolates
        // what *replication* buys, not what the stale cache hides.
        caller.set_resilience(ResiliencePolicy {
            degraded_reads: false,
            ..ResiliencePolicy::default()
        });
        AvailabilityWorld {
            sim,
            net,
            vsr,
            caller,
        }
    }

    /// Polls an invoke (route cache cleared first, so each poll rides a
    /// live VSR resolve) once per `step` over `total`, with the lamp's
    /// shard primary crashed for two long windows. Returns the success
    /// ratio.
    fn poll_through_crash_windows(world: &AvailabilityWorld) -> f64 {
        let t0 = world.sim.now();
        let primary = world.vsr.primary_for("chaos-lamp");
        let at = |s: u64| t0 + SimDuration::from_secs(s);
        world.net.set_fault_plan(
            FaultPlan::new()
                .node_down(primary, at(10), at(20))
                .node_down(primary, at(30), at(40)),
        );
        let step = SimDuration::from_millis(500);
        let total_steps = 120; // 60 s
        let mut ok = 0u32;
        for _ in 0..total_steps {
            world.sim.advance(step);
            world.caller.clear_route_cache();
            if world
                .caller
                .invoke(&world.sim, "chaos-lamp", "status", &[])
                .is_ok()
            {
                ok += 1;
            }
        }
        world.net.clear_fault_plan();
        f64::from(ok) / f64::from(total_steps)
    }

    /// With replication, crashing a shard primary costs almost nothing:
    /// reads fail over to the backup, writes promote it. Without
    /// replication (one replica) the same schedule craters availability.
    #[test]
    fn primary_crash_availability_needs_replication() {
        let replicated = availability_world(3);
        let ratio_replicated = poll_through_crash_windows(&replicated);
        assert!(
            ratio_replicated >= 0.99,
            "replicated cluster should ride out primary crashes, got {ratio_replicated}"
        );

        let single = availability_world(1);
        let ratio_single = poll_through_crash_windows(&single);
        assert!(
            ratio_single < 0.99,
            "a single replica cannot mask its own crash windows, got {ratio_single}"
        );
        assert!(
            ratio_replicated > ratio_single,
            "replication must strictly improve availability"
        );
    }

    /// A write arriving while the primary is down promotes the backup
    /// (map version bumps); after heal, anti-entropy brings the old
    /// primary back in sync as a backup.
    #[test]
    fn primary_crash_promotes_backup_and_sync_heals() {
        let sim = Sim::new(5);
        let (net, vsr, client) = cluster(&sim, 2, 3);
        client.publish(&service("hall-lamp")).unwrap();
        let map0 = vsr.shard_map();
        let shard = map0.shard_of("hall-lamp");
        let old_primary = map0.primary(shard);

        let t0 = sim.now();
        net.set_fault_plan(FaultPlan::new().node_down(
            old_primary,
            t0,
            t0 + SimDuration::from_secs(30),
        ));
        sim.advance(SimDuration::from_secs(1));

        // A write fails over and promotes.
        let mut relocated = service("hall-lamp");
        relocated.gateway = "x10-gw-2".into();
        client.publish(&relocated).unwrap();
        let map1 = vsr.shard_map();
        assert_ne!(map1.primary(shard), old_primary, "backup promoted");
        assert!(map1.version() > map0.version(), "map version bumped");
        assert_eq!(client.resolve("hall-lamp").unwrap().gateway, "x10-gw-2");

        // Heal, converge, and verify the old primary caught up.
        sim.advance(SimDuration::from_secs(60));
        net.clear_fault_plan();
        assert!(vsr.replication_lag() > 0, "old primary behind before sync");
        vsr.sync_now();
        assert_eq!(vsr.replication_lag(), 0, "anti-entropy healed the lag");
        assert_eq!(client.resolve("hall-lamp").unwrap().gateway, "x10-gw-2");
    }
}
