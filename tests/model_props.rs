//! Model-based property tests over the whole federation: random
//! operation sequences must keep the framework's view and the physical
//! devices' state in agreement.

use metaware::{
    BatchCall, BatchItem, BatchPolicy, Binding, CompositeSpec, HomeFleet, Middleware,
    ResiliencePolicy, SmartHome, StepSpec, VirtualService,
};
use parking_lot::Mutex;
use proptest::prelude::*;
use simnet::{FaultPlan, SimDuration};
use soap::Value;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum LampOp {
    /// Switch a lamp from an island.
    Switch { island: u8, lamp: u8, on: bool },
    /// Query a lamp's status from an island.
    Query { island: u8, lamp: u8 },
}

fn arb_op() -> impl Strategy<Value = LampOp> {
    prop_oneof![
        (0u8..4, 0u8..2, any::<bool>()).prop_map(|(island, lamp, on)| LampOp::Switch {
            island,
            lamp,
            on
        }),
        (0u8..4, 0u8..2).prop_map(|(island, lamp)| LampOp::Query { island, lamp }),
    ]
}

fn island(i: u8) -> Middleware {
    match i {
        0 => Middleware::Jini,
        1 => Middleware::Havi,
        2 => Middleware::X10,
        _ => Middleware::Mail,
    }
}

fn lamp_name(l: u8) -> &'static str {
    if l == 0 {
        "hall-lamp"
    } else {
        "desk-lamp"
    }
}

/// Batch members mixing well-typed calls, application faults (unknown
/// operation), unknown services, and event notifications.
fn arb_batch_item() -> impl Strategy<Value = BatchItem> {
    prop_oneof![
        (0u8..2, any::<bool>()).prop_map(|(l, on)| BatchItem::Call(
            BatchCall::new(lamp_name(l), "switch").arg("on", on)
        )),
        (0u8..2).prop_map(|l| BatchItem::Call(BatchCall::new(lamp_name(l), "status"))),
        (0u8..2, 1i64..5).prop_map(|(l, s)| BatchItem::Call(
            BatchCall::new(lamp_name(l), "dim").arg("steps", s)
        )),
        (0u8..2).prop_map(|l| BatchItem::Call(BatchCall::new(lamp_name(l), "explode"))),
        Just(BatchItem::Call(BatchCall::new("ghost", "status"))),
        (0u8..2, any::<i64>()).prop_map(|(l, v)| BatchItem::Event {
            service: lamp_name(l).to_owned(),
            event: Value::Int(v),
        }),
    ]
}

/// A fleet run's complete observable state at a given worker thread
/// count: per-island chaos availability counts, every island-tagged
/// metrics snapshot, and every rendered trace. Any difference between
/// thread counts is a determinism bug in the parallel scheduler.
fn fleet_fingerprint(seed: u64, threads: usize) -> (Vec<(u32, u32)>, Vec<String>, String) {
    let fleet = HomeFleet::build_with(
        SmartHome::builder()
            .seed(seed)
            .threads(threads)
            .vsr_replicas(2),
        3,
        |island, b| b.vsr_sync_phase(SimDuration::from_millis(u64::from(island) * 17)),
    )
    .unwrap();
    for home in fleet.homes() {
        home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
            .unwrap();
    }
    fleet.set_tracing(true);

    let t0 = fleet.home(0).sim.now();
    let plan = FaultPlan::new().loss_spike(
        t0 + SimDuration::from_millis(100),
        t0 + SimDuration::from_millis(600),
        0.8,
    );
    fleet.set_fault_plan_jittered(&plan, seed, SimDuration::from_millis(250));

    let mut avail = Vec::new();
    for home in fleet.homes() {
        let (mut ok, mut err) = (0u32, 0u32);
        for i in 0..6u64 {
            let target = t0 + SimDuration::from_millis(i * 200);
            if home.sim.now() < target {
                home.sim.advance(target.since(home.sim.now()));
            }
            match home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[]) {
                Ok(_) => ok += 1,
                Err(_) => err += 1,
            }
        }
        avail.push((ok, err));
    }
    // Drain periodic timers (anti-entropy, mux flushes) on the
    // parallel scheduler itself.
    fleet.run_for(SimDuration::from_secs(3));
    (
        avail,
        fleet
            .metrics_snapshots()
            .iter()
            .map(|s| s.to_json())
            .collect(),
        fleet.render_traces(),
    )
}

/// The chaos seed matrix CI replays (`CHAOS_SEED` narrows it to one):
/// 1-thread and 4-thread runs must be bit-for-bit identical.
#[test]
fn parallel_determinism_over_seed_matrix() {
    let seeds: Vec<u64> = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .map(|s| vec![s])
        .unwrap_or_else(|| vec![1, 7, 1234]);
    for seed in seeds {
        let sequential = fleet_fingerprint(seed, 1);
        let parallel = fleet_fingerprint(seed, 4);
        assert_eq!(
            sequential, parallel,
            "seed {seed}: worker thread count changed observable state"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservative parallel execution is invisible: for any seed, a
    /// 4-thread fleet run fingerprints identically to a 1-thread run.
    #[test]
    fn parallel_execution_is_invisible(seed in 0u64..1_000_000) {
        let sequential = fleet_fingerprint(seed, 1);
        let parallel = fleet_fingerprint(seed, 4);
        prop_assert_eq!(sequential, parallel);
    }

    /// Whatever sequence of cross-island switches happens, the physical
    /// module, the PCM's shadow, and every island's queried view agree.
    #[test]
    fn lamp_state_is_globally_consistent(ops in prop::collection::vec(arb_op(), 1..20)) {
        let home = SmartHome::builder().build().unwrap();
        let mut model: HashMap<&str, bool> =
            [("hall-lamp", false), ("desk-lamp", false)].into();

        for op in &ops {
            match op {
                LampOp::Switch { island: i, lamp, on } => {
                    home.invoke_from(island(*i), lamp_name(*lamp), "switch",
                                     &[("on".into(), Value::Bool(*on))])
                        .unwrap();
                    model.insert(lamp_name(*lamp), *on);
                }
                LampOp::Query { island: i, lamp } => {
                    let got = home
                        .invoke_from(island(*i), lamp_name(*lamp), "status", &[])
                        .unwrap();
                    prop_assert_eq!(got, Value::Bool(model[lamp_name(*lamp)]));
                }
            }
        }

        // Physical modules agree with the model.
        let x10 = home.x10.as_ref().unwrap();
        prop_assert_eq!(x10.hall_lamp.is_on(), model["hall-lamp"]);
        prop_assert_eq!(x10.desk_lamp.is_on(), model["desk-lamp"]);
    }

    /// The VSR behaves like a map under arbitrary publish/unpublish
    /// interleavings.
    #[test]
    fn vsr_is_a_map(ops in prop::collection::vec(
        (0u8..6, any::<bool>()), 1..25,
    )) {
        let home = SmartHome::builder().manual_import().jini(false).havi(false)
            .x10(true).mail(false).build().unwrap();
        let gw = home.x10.as_ref().unwrap().vsg.clone();
        let mut model: HashMap<String, ()> = HashMap::new();

        for (slot, publish) in &ops {
            let name = format!("svc-{slot}");
            if *publish {
                gw.export(
                    VirtualService::new(&name, metaware::catalog::lamp(), Middleware::X10, gw.name()),
                    |_: &simnet::Sim, _: &str, _: &[(String, Value)]| Ok(Value::Null),
                ).unwrap();
                model.insert(name, ());
            } else {
                gw.withdraw(&name).unwrap();
                model.remove(&name);
            }
            prop_assert_eq!(home.service_count(), model.len());
        }
        // Every modelled service resolves; no ghost services resolve.
        for slot in 0u8..6 {
            let name = format!("svc-{slot}");
            prop_assert_eq!(gw.vsr().resolve(&name).is_ok(), model.contains_key(&name));
        }
    }

    /// Cached resolution is indistinguishable from a live VSR lookup:
    /// whatever publish/withdraw interleaving precedes them, both paths
    /// return identical `ServiceRecord`s (or both fail) — for every
    /// service and from a cold or warm cache alike.
    #[test]
    fn cached_resolution_agrees_with_uncached(
        ops in prop::collection::vec((0u8..5, any::<bool>()), 1..20),
        warm_first in any::<bool>(),
    ) {
        let home = SmartHome::builder().manual_import().jini(false).havi(false)
            .x10(true).mail(false).build().unwrap();
        let gw = home.x10.as_ref().unwrap().vsg.clone();

        for (slot, publish) in &ops {
            let name = format!("svc-{slot}");
            if *publish {
                gw.export(
                    VirtualService::new(&name, metaware::catalog::lamp(), Middleware::X10, gw.name()),
                    |_: &simnet::Sim, _: &str, _: &[(String, Value)]| Ok(Value::Null),
                ).unwrap();
            } else {
                gw.withdraw(&name).unwrap();
            }
        }

        for slot in 0u8..5 {
            let name = format!("svc-{slot}");
            if warm_first {
                // Populate (or re-miss) the cache before comparing.
                let _ = gw.resolve_cached(&name);
            }
            let cached = gw.resolve_cached(&name);
            let live = gw.resolve(&name);
            match (cached, live) {
                (Ok(c), Ok(l)) => {
                    prop_assert_eq!(&c.name, &l.name);
                    prop_assert_eq!(c.middleware, l.middleware);
                    prop_assert_eq!(&c.gateway, &l.gateway);
                    prop_assert_eq!(&*c.interface, &*l.interface);
                    prop_assert_eq!(&c.contexts, &l.contexts);
                }
                (Err(_), Err(_)) => {}
                (c, l) => prop_assert!(false, "cache/live disagree for {}: {:?} vs {:?}", name, c, l),
            }
        }
    }

    /// The multiplexed wire is semantically invisible: for an arbitrary
    /// interleaving of calls, faults, unknown services, and events, the
    /// batched and unbatched paths return identical per-item results,
    /// surface the same application faults, deliver events in the same
    /// order, and leave the physical devices in the same state.
    #[test]
    fn batched_wire_is_equivalent_to_unbatched(
        items in prop::collection::vec(arb_batch_item(), 1..16),
    ) {
        let run = |batched: bool| {
            let policy = if batched {
                // A small frame bound so multi-chunk flushes happen.
                BatchPolicy { max_batch: 4, ..BatchPolicy::default() }
            } else {
                BatchPolicy::disabled()
            };
            let home = SmartHome::builder().batching(policy).build().unwrap();
            let caller = home.gateway(Middleware::Jini).unwrap().clone();
            let server = home.gateway(Middleware::X10).unwrap().clone();
            let seen: Arc<Mutex<Vec<(String, Value)>>> = Arc::new(Mutex::new(Vec::new()));
            let seen2 = seen.clone();
            server.set_event_sink(move |_, svc, e| seen2.lock().push((svc.to_owned(), e.clone())));
            let results = caller.invoke_batch(&home.sim, &items);
            let x10 = home.x10.as_ref().unwrap();
            let lamps = (x10.hall_lamp.is_on(), x10.desk_lamp.is_on());
            let events = seen.lock().clone();
            (results, events, lamps)
        };
        let (batched, batched_events, batched_lamps) = run(true);
        let (unbatched, unbatched_events, unbatched_lamps) = run(false);
        prop_assert_eq!(batched, unbatched);
        prop_assert_eq!(batched_events, unbatched_events);
        prop_assert_eq!(batched_lamps, unbatched_lamps);
    }

    /// A pipeline run by the composition engine is semantically
    /// equivalent to the client driving the same steps one by one from
    /// its own island: identical final value and identical physical
    /// device state — the engine only changes *where* the steps are
    /// driven from, never what they do.
    #[test]
    fn composite_engine_matches_client_driven_steps(
        steps in prop::collection::vec((0u8..2, 0u8..3, any::<bool>(), 1i64..5), 1..8),
    ) {
        let as_call = |&(lamp, op, on, dim): &(u8, u8, bool, i64)| {
            let (operation, args): (&str, Vec<(String, Value)>) = match op {
                0 => ("switch", vec![("on".into(), Value::Bool(on))]),
                1 => ("dim", vec![("steps".into(), Value::Int(dim))]),
                _ => ("status", vec![]),
            };
            (lamp_name(lamp), operation, args)
        };

        // X10 powerline steps are slow; give both runs one generous,
        // identical deadline so neither path times out first.
        let relaxed = ResiliencePolicy {
            deadline: SimDuration::from_secs(60),
            ..ResiliencePolicy::default()
        };

        // Run A: the steps as a composite, one client call from Jini.
        let engine_home = SmartHome::builder().build().unwrap();
        engine_home.set_resilience(relaxed.clone());
        let mut spec = CompositeSpec::new("pipe").budget(SimDuration::from_secs(60));
        for s in &steps {
            let (service, operation, args) = as_call(s);
            let mut step = StepSpec::new(service, operation);
            for (k, v) in args {
                step = step.arg(k, Binding::Literal(v));
            }
            spec = spec.step(step);
        }
        engine_home
            .gateway(Middleware::Havi)
            .unwrap()
            .register_composite(spec)
            .unwrap();
        let engine_result = engine_home
            .invoke_from(Middleware::Jini, "pipe", "run", &[])
            .map_err(|e| e.to_string());

        // Run B: a fresh, identically seeded home; the client drives
        // each step itself.
        let client_home = SmartHome::builder().build().unwrap();
        client_home.set_resilience(relaxed);
        let mut client_result = Ok(Value::Null);
        for s in &steps {
            let (service, operation, args) = as_call(s);
            client_result = client_home
                .invoke_from(Middleware::Jini, service, operation, &args)
                .map_err(|e| e.to_string());
            if client_result.is_err() {
                break;
            }
        }

        prop_assert_eq!(engine_result, client_result);
        let (ex, cx) = (
            engine_home.x10.as_ref().unwrap(),
            client_home.x10.as_ref().unwrap(),
        );
        prop_assert_eq!(ex.hall_lamp.state().level, cx.hall_lamp.state().level);
        prop_assert_eq!(ex.desk_lamp.state().level, cx.desk_lamp.state().level);
        prop_assert_eq!(ex.hall_lamp.is_on(), cx.hall_lamp.is_on());
        prop_assert_eq!(ex.desk_lamp.is_on(), cx.desk_lamp.is_on());
    }

    /// Dim sequences through the framework keep the physical level and
    /// the PCM's shadow identical (lossless powerline).
    #[test]
    fn dim_shadow_tracks_physics(steps in prop::collection::vec(1i64..8, 1..10)) {
        let home = SmartHome::builder().build().unwrap();
        home.invoke_from(Middleware::Jini, "hall-lamp", "switch",
                         &[("on".into(), Value::Bool(true))]).unwrap();
        for s in &steps {
            home.invoke_from(Middleware::Havi, "hall-lamp", "dim",
                             &[("steps".into(), Value::Int(*s))]).unwrap();
        }
        let x10 = home.x10.as_ref().unwrap();
        let physical = x10.hall_lamp.state().level;
        let shadow = x10.pcm
            .module_shadow(metaware::house('A'), metaware::unit(1))
            .unwrap()
            .level;
        prop_assert_eq!(physical, shadow);
    }
}
