//! The VSG protocol is a pluggable design decision (§3.1): the entire
//! home must behave identically over SOAP, compact binary, and the
//! SIP-like protocol — differing only in cost.

use metaware::{CompactBinary, Middleware, SipLike, SmartHome, Soap11, VsgProtocol};
use simnet::Protocol;
use soap::Value;
use std::sync::Arc;

fn protocols() -> Vec<(&'static str, Arc<dyn VsgProtocol>)> {
    vec![
        ("soap", Arc::new(Soap11::new())),
        ("binary", Arc::new(CompactBinary::new())),
        ("sip", Arc::new(SipLike::new())),
    ]
}

#[test]
fn the_home_works_over_every_protocol() {
    for (name, protocol) in protocols() {
        let home = SmartHome::builder().protocol(protocol).build().unwrap();
        home.invoke_from(
            Middleware::Jini,
            "hall-lamp",
            "switch",
            &[("on".into(), Value::Bool(true))],
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(home.x10.as_ref().unwrap().hall_lamp.is_on(), "{name}");

        let t = home
            .invoke_from(Middleware::X10, "fridge", "temperature", &[])
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(t, Value::Float(4.0), "{name}");
    }
}

#[test]
fn soap_is_heaviest_on_the_backbone() {
    // Same logical work, three protocols: byte ordering must hold.
    let mut bytes = Vec::new();
    for (name, protocol) in protocols() {
        let home = SmartHome::builder().protocol(protocol).build().unwrap();
        // Warm the route cache: the first call's VSR resolution rides
        // SOAP for every protocol and must not pollute the comparison.
        home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
            .unwrap();
        let before = home.backbone.with_stats(|s| s.total().bytes);
        home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
            .unwrap();
        let after = home.backbone.with_stats(|s| s.total().bytes);
        bytes.push((name, after - before));
    }
    let soap = bytes.iter().find(|(n, _)| *n == "soap").unwrap().1;
    let binary = bytes.iter().find(|(n, _)| *n == "binary").unwrap().1;
    let sip = bytes.iter().find(|(n, _)| *n == "sip").unwrap().1;
    assert!(binary < sip, "binary {binary} < sip {sip}");
    assert!(sip < soap, "sip {sip} < soap {soap}");
    assert!(
        soap > binary * 5,
        "soap {soap} should dwarf binary {binary}"
    );
}

#[test]
fn soap_is_slowest_end_to_end() {
    let mut lat = Vec::new();
    for (name, protocol) in protocols() {
        let home = SmartHome::builder().protocol(protocol).build().unwrap();
        let t0 = home.sim.now();
        home.invoke_from(Middleware::Havi, "fridge", "temperature", &[])
            .unwrap();
        lat.push((name, (home.sim.now() - t0).as_micros()));
    }
    let soap = lat.iter().find(|(n, _)| *n == "soap").unwrap().1;
    let binary = lat.iter().find(|(n, _)| *n == "binary").unwrap().1;
    assert!(soap > binary, "soap {soap}us > binary {binary}us");
}

#[test]
fn protocol_traffic_rides_its_own_class() {
    // SOAP traffic is HTTP frames; SIP traffic is SIP frames. The
    // statistics must attribute them correctly (benches depend on this).
    let home = SmartHome::builder()
        .protocol(Arc::new(Soap11::new()))
        .build()
        .unwrap();
    home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
        .unwrap();
    assert!(
        home.backbone
            .with_stats(|s| s.protocol(Protocol::Http).frames)
            > 0
    );
    assert_eq!(
        home.backbone
            .with_stats(|s| s.protocol(Protocol::Sip).frames),
        0
    );

    let home = SmartHome::builder()
        .protocol(Arc::new(SipLike::new()))
        .build()
        .unwrap();
    home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
        .unwrap();
    assert!(
        home.backbone
            .with_stats(|s| s.protocol(Protocol::Sip).frames)
            > 0
    );
}

#[test]
fn only_sip_supports_push() {
    assert!(!Soap11::new().supports_push());
    assert!(!CompactBinary::new().supports_push());
    assert!(SipLike::new().supports_push());
}
