//! The paper's own scenarios, as executable regression tests:
//! Fig. 4 (Jini ↔ X10 conversion), Fig. 5 (Universal Remote Controller),
//! and the §2 automatic-recording integration.

use havi::FcmKind;
use metaware::pcm::x10::Route;
use metaware::{house, unit, Middleware, SmartHome};
use simnet::{Protocol, SimDuration};
use soap::Value;
use x10::{Button, Function};

/// Fig. 4: a Jini client's call crosses CP → SOAP/VSG → SP → X10.
/// Verify the conversion *chain* by checking each wire actually carried
/// the traffic class it should.
#[test]
fn fig4_jini_to_x10_conversion_path() {
    let home = SmartHome::builder().build().unwrap();
    let jini_net = &home.jini.as_ref().unwrap().net;
    let x10 = home.x10.as_ref().unwrap();

    let before_http = home
        .backbone
        .with_stats(|s| s.protocol(Protocol::Http).frames);
    let before_x10 = x10
        .powerline
        .with_stats(|s| s.protocol(Protocol::X10).frames);
    let before_serial = x10.serial.with_stats(|s| s.protocol(Protocol::X10).frames);

    // An unmodified Jini client drives the lamp through a Server-Proxy
    // RMI object (exactly the Fig. 4 transaction).
    let pcm = &home.jini.as_ref().unwrap().pcm;
    pcm.export_remote(
        &home
            .jini
            .as_ref()
            .unwrap()
            .vsg
            .resolve("hall-lamp")
            .unwrap(),
    )
    .unwrap();
    let client_node = jini_net.attach("fig4-client");
    let registrars = jini::discover(jini_net, client_node, "public");
    let reg_client = jini::RegistrarClient::new(jini_net, client_node, registrars[0]);
    let item = reg_client
        .lookup_one(&jini::ServiceTemplate::by_interface("Lamp"))
        .unwrap();
    let proxy = jini::RemoteProxy::new(jini_net, client_node, item.proxy);
    proxy.invoke("switch", &[jini::JValue::Bool(true)]).unwrap();

    // The lamp physically switched...
    assert!(x10.hall_lamp.is_on());
    // ...and every leg of the conversion carried traffic:
    assert!(
        jini_net.with_stats(|s| s.protocol(Protocol::Jini).frames) > 0,
        "RMI on the Jini Ethernet"
    );
    assert!(
        home.backbone
            .with_stats(|s| s.protocol(Protocol::Http).frames)
            > before_http,
        "SOAP/HTTP between gateways"
    );
    assert!(
        x10.serial.with_stats(|s| s.protocol(Protocol::X10).frames) > before_serial,
        "CM11A serial exchanges"
    );
    assert!(
        x10.powerline
            .with_stats(|s| s.protocol(Protocol::X10).frames)
            > before_x10,
        "powerline signalling"
    );
}

/// Fig. 5: the Universal Remote Controller, as a test.
#[test]
fn fig5_universal_remote_controller() {
    let home = SmartHome::builder().build().unwrap();
    let x10 = home.x10.as_ref().unwrap();
    x10.pcm.add_route(Route {
        house: house('A'),
        unit: unit(5),
        function: Function::On,
        service: "laserdisc".into(),
        operation: "play".into(),
        args: vec![("chapter".into(), Value::Int(3))],
    });
    x10.pcm.add_route(Route {
        house: house('A'),
        unit: unit(6),
        function: Function::On,
        service: "dv-camera".into(),
        operation: "record".into(),
        args: vec![],
    });
    let _poll = x10.pcm.start_polling(SimDuration::from_millis(250));

    let mut remote = x10.remote();
    // Lamp button: native.
    remote.press(Button::On(1));
    // Laserdisc button: Jini via the framework.
    remote.press(Button::On(5));
    // Camera button: HAVi via the framework.
    remote.press(Button::On(6));
    home.sim.run_for(SimDuration::from_secs(2));

    assert!(x10.hall_lamp.is_on(), "native X10 still works");
    let ld = *home.jini.as_ref().unwrap().laserdisc.lock();
    assert!(ld.playing);
    assert_eq!(ld.chapter, 3);
    assert_eq!(
        home.havi
            .as_ref()
            .unwrap()
            .camcorder
            .fcm(FcmKind::DvCamera)
            .unwrap()
            .state()
            .transport,
        havi::TransportState::Recording
    );
}

/// §2: automatic recording = VCR control + Internet service + mail.
#[test]
fn section2_service_integration_auto_recording() {
    let home = SmartHome::builder().build().unwrap();

    // The "TV program service" decides what to record...
    let channel = 42;
    // ...the home tunes and records...
    home.invoke_from(
        Middleware::Mail,
        "tv-tuner",
        "set_channel",
        &[("channel".into(), Value::Int(channel))],
    )
    .unwrap();
    home.invoke_from(Middleware::Mail, "living-room-vcr", "record", &[])
        .unwrap();
    // ...and notifies the user by mail.
    home.invoke_from(
        Middleware::Havi,
        "mailer",
        "send",
        &[
            ("to".into(), Value::Str("owner@example.org".into())),
            ("subject".into(), Value::Str("recording".into())),
            ("body".into(), Value::Str("started".into())),
        ],
    )
    .unwrap();

    let havi = home.havi.as_ref().unwrap();
    assert_eq!(
        havi.tv.fcm(FcmKind::Tuner).unwrap().state().channel,
        channel as u16
    );
    assert_eq!(
        havi.vcr.fcm(FcmKind::Vcr).unwrap().state().transport,
        havi::TransportState::Recording
    );
    assert_eq!(
        home.mail
            .as_ref()
            .unwrap()
            .server
            .mailbox_len("owner@example.org"),
        1
    );
}

/// The three design goals of §3, as assertions.
#[test]
fn section3_design_goals() {
    let home = SmartHome::builder().build().unwrap();

    // 1. "We can use legacy service with legacy middleware easily":
    //    native paths still work untouched by the framework.
    let x10 = home.x10.as_ref().unwrap();
    let mut remote = x10.remote();
    remote.press(Button::On(2));
    assert!(x10.desk_lamp.is_on(), "pure-X10 path untouched");

    // 2. "It is not necessary to change legacy clients and services":
    //    the laserdisc service was written against plain RMI; the lamp
    //    against plain X10 — yet both are federated.
    assert!(home.any_gateway().vsr().resolve("laserdisc").is_ok());
    assert!(home.any_gateway().vsr().resolve("desk-lamp").is_ok());

    // 3. "New middleware can be participated effortlessly": covered by
    //    tests/federation.rs with UPnP; here we just confirm the default
    //    home has no UPnP services to mistake for it.
    assert!(home
        .any_gateway()
        .vsr()
        .find("porch%", None)
        .unwrap()
        .is_empty());
}

/// The prototype's four-PCM composition (Fig. 3) reports itself.
#[test]
fn fig3_four_pcms() {
    use metaware::ProtocolConversionManager;
    let home = SmartHome::builder().build().unwrap();
    let jini = home.jini.as_ref().unwrap();
    let havi = home.havi.as_ref().unwrap();
    let x10 = home.x10.as_ref().unwrap();
    let mail = home.mail.as_ref().unwrap();

    assert_eq!(jini.pcm.middleware(), Middleware::Jini);
    assert_eq!(havi.pcm.middleware(), Middleware::Havi);
    assert_eq!(x10.pcm.middleware(), Middleware::X10);
    assert_eq!(mail.pcm.middleware(), Middleware::Mail);

    assert_eq!(jini.pcm.imported().len(), 3);
    assert_eq!(havi.pcm.imported().len(), 4);
    assert_eq!(x10.pcm.imported().len(), 4);
    assert_eq!(mail.pcm.imported().len(), 1);
}
