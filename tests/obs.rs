//! Properties of the observability plane: mergeable sketches, bounded
//! quantile error, and thread-invariant sampling.

use metaware::obs::bucket_of;
use metaware::{HistSketch, HomeFleet, Middleware, SamplePolicy, SmartHome};
use proptest::prelude::*;
use simnet::SimDuration;

fn sketch_of(samples: &[u64]) -> HistSketch {
    let mut s = HistSketch::new();
    for &v in samples {
        s.record(v);
    }
    s
}

/// Exact nearest-rank quantile over raw samples.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

proptest! {
    /// Merging sketches is associative and commutative: any grouping
    /// and order of per-gateway sketches rolls up to the same fleet
    /// sketch, so fleet_snapshot() never depends on fold order.
    #[test]
    fn sketch_merge_is_associative_and_commutative(
        a in prop::collection::vec(0u64..2_000_000, 0..40),
        b in prop::collection::vec(0u64..2_000_000, 0..40),
        c in prop::collection::vec(0u64..2_000_000, 0..40),
    ) {
        let (sa, sb, sc) = (sketch_of(&a), sketch_of(&b), sketch_of(&c));

        // (a ⊔ b) ⊔ c
        let mut left = sa;
        left.merge(&sb);
        left.merge(&sc);
        // a ⊔ (b ⊔ c)
        let mut right_inner = sb;
        right_inner.merge(&sc);
        let mut right = sa;
        right.merge(&right_inner);
        prop_assert_eq!(left, right);

        // c ⊔ b ⊔ a
        let mut rev = sc;
        rev.merge(&sb);
        rev.merge(&sa);
        prop_assert_eq!(left, rev);

        // merging is also lossless for the whole-population sketch
        let mut all = a.clone();
        all.extend(&b);
        all.extend(&c);
        prop_assert_eq!(left, sketch_of(&all));
    }

    /// A sketch quantile is never below the exact nearest-rank value
    /// and never above its bucket's upper bound — within a factor of
    /// two, since buckets double.
    #[test]
    fn quantile_is_within_one_bucket_of_exact(
        samples in prop::collection::vec(0u64..10_000_000, 1..200),
        q in 0.0f64..1.0,
    ) {
        let sketch = sketch_of(&samples);
        let mut sorted = samples;
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let est = sketch.quantile_us(q);
        prop_assert!(est >= exact, "estimate {est} under exact {exact}");
        prop_assert_eq!(
            bucket_of(est), bucket_of(exact),
            "estimate {} left bucket of exact {}", est, exact
        );
        prop_assert!(est <= exact.saturating_mul(2).max(exact));
    }
}

/// One fleet run's observability artefacts at a given thread count:
/// the merged fleet snapshot plus every kept trace's (id, reason).
fn obs_fingerprint(seed: u64, threads: usize) -> (String, Vec<(String, &'static str)>) {
    let fleet = HomeFleet::build(
        SmartHome::builder()
            .seed(seed)
            .threads(threads)
            .vsr_replicas(2),
        3,
    )
    .unwrap();
    fleet.set_tracing(true);
    fleet.set_sampling(SamplePolicy {
        head_per_10k: 2_500,
        top_slow: 2,
        capacity: 64,
    });
    for home in fleet.homes() {
        for _ in 0..6 {
            home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
                .unwrap();
            // deterministic error traffic
            let _ = home.invoke_from(Middleware::Jini, "ghost", "status", &[]);
        }
    }
    fleet.run_for(SimDuration::from_secs(3));
    fleet.harvest_traces();
    let kept = fleet
        .drain_flight()
        .into_iter()
        .map(|k| (k.trace.to_string(), k.reason.label()))
        .collect();
    (fleet.fleet_snapshot().to_json(), kept)
}

/// The merged fleet snapshot and the sampled kept-trace set are pure
/// functions of the seed — bit-identical between 1 and 4 workers.
#[test]
fn fleet_snapshot_and_kept_traces_are_thread_invariant() {
    for seed in [1u64, 7, 1234] {
        let sequential = obs_fingerprint(seed, 1);
        let parallel = obs_fingerprint(seed, 4);
        assert_eq!(sequential, parallel, "seed {seed}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Error traces survive any head-sampling rate: tail rules beat
    /// the head coin for as long as the ring has room for them.
    #[test]
    fn error_traces_are_never_sampled_out(head in 0u32..=10_000) {
        let home = SmartHome::builder().build().unwrap();
        home.set_tracing(true);
        home.set_sampling(SamplePolicy {
            head_per_10k: head,
            top_slow: 0,
            capacity: 256,
        });
        let mut errors = 0u64;
        for i in 0..20 {
            if i % 3 == 0 {
                let _ = home.invoke_from(Middleware::Jini, "ghost", "status", &[]);
                errors += 1;
            } else {
                home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
                    .unwrap();
            }
        }
        home.harvest_traces();
        let kept = home.drain_flight();
        let kept_errors = kept.iter().filter(|k| k.has_error()).count() as u64;
        prop_assert_eq!(kept_errors, errors, "an error trace was dropped");
        if head == 0 {
            // with the head coin always tails, *only* tail rules keep
            prop_assert!(kept.iter().all(|k| k.has_error()));
        }
    }
}

/// The fleet snapshot costs O(gateways × buckets), not O(samples):
/// its merged sketch arrays are fixed-size no matter the call volume.
#[test]
fn fleet_snapshot_memory_is_sample_count_independent() {
    let fleet = HomeFleet::build(SmartHome::builder(), 2).unwrap();
    for home in fleet.homes() {
        for _ in 0..50 {
            home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
                .unwrap();
        }
    }
    let snap = fleet.fleet_snapshot();
    assert_eq!(snap.registry.invocations, 100);
    // the sketch itself is a fixed-size value type: its size can't
    // grow with samples, and counts survived the rollup exactly.
    assert_eq!(snap.registry.latency.count, 100);
    assert!(std::mem::size_of_val(&snap.registry.latency) < 1024);
}
