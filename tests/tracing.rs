//! Cross-middleware distributed tracing: one invocation must yield one
//! causally-connected trace tree spanning both gateways, whichever VSG
//! protocol carries the trace context — and tracing must never change
//! what an invocation returns.

use metaware::{
    CompactBinary, HopKind, Middleware, SipLike, SmartHome, Soap11, TraceId, VsgProtocol,
};
use proptest::prelude::*;
use soap::Value;
use std::collections::HashSet;
use std::sync::Arc;

fn protocols() -> Vec<(&'static str, Arc<dyn VsgProtocol>)> {
    vec![
        ("soap", Arc::new(Soap11::new())),
        ("binary", Arc::new(CompactBinary::new())),
        ("sip", Arc::new(SipLike::new())),
    ]
}

/// One cross-island call with tracing on; returns the merged spans.
fn traced_cross_call(protocol: Arc<dyn VsgProtocol>) -> Vec<metaware::Span> {
    let home = SmartHome::builder().protocol(protocol).build().unwrap();
    home.set_tracing(true);
    home.invoke_from(
        Middleware::Jini,
        "hall-lamp",
        "switch",
        &[("on".into(), Value::Bool(true))],
    )
    .unwrap();
    assert!(home.x10.as_ref().unwrap().hall_lamp.is_on());
    home.take_spans()
}

fn assert_one_connected_trace(name: &str, spans: &[metaware::Span]) {
    // Every span of the invocation joins the caller's trace.
    let traces: HashSet<TraceId> = spans.iter().map(|s| s.trace).collect();
    assert_eq!(
        traces.len(),
        1,
        "{name}: expected one trace, got {traces:?}"
    );

    // The tree spans both gateways...
    let gateways: HashSet<&str> = spans.iter().map(|s| s.gateway.as_str()).collect();
    assert!(gateways.contains("jini-gw"), "{name}: {gateways:?}");
    assert!(gateways.contains("x10-gw"), "{name}: {gateways:?}");

    // ...covers at least five hops, including both proxy ends...
    assert!(spans.len() >= 5, "{name}: only {} spans", spans.len());
    let kinds: HashSet<HopKind> = spans.iter().map(|s| s.kind).collect();
    for kind in [
        HopKind::ClientProxy,
        HopKind::VsgWire,
        HopKind::ServerProxy,
        HopKind::App,
    ] {
        assert!(kinds.contains(&kind), "{name}: no {kind} span in {kinds:?}");
    }

    // ...and is causally connected: exactly one root, every other span's
    // parent is a recorded span.
    let ids: HashSet<_> = spans.iter().map(|s| s.id).collect();
    let roots = spans.iter().filter(|s| s.parent.is_none()).count();
    assert_eq!(roots, 1, "{name}: {roots} roots");
    for s in spans {
        if let Some(parent) = s.parent {
            assert!(ids.contains(&parent), "{name}: orphan span {s:?}");
        }
    }
}

#[test]
fn soap_propagates_the_trace_across_gateways() {
    let (name, protocol) = protocols().remove(0);
    assert_one_connected_trace(name, &traced_cross_call(protocol));
}

#[test]
fn binary_propagates_the_trace_across_gateways() {
    let (name, protocol) = protocols().remove(1);
    assert_one_connected_trace(name, &traced_cross_call(protocol));
}

#[test]
fn siplike_propagates_the_trace_across_gateways() {
    let (name, protocol) = protocols().remove(2);
    assert_one_connected_trace(name, &traced_cross_call(protocol));
}

#[test]
fn the_rendered_tree_attributes_time_and_bytes() {
    let spans = traced_cross_call(Arc::new(Soap11::new()));
    let trace = spans[0].trace;
    let tree = metaware::trace::render_trace(trace, &spans);
    // The renderer names each hop kind and attributes wire bytes.
    assert!(tree.contains("client-proxy"), "{tree}");
    assert!(tree.contains("vsg-wire"), "{tree}");
    assert!(tree.contains("server-proxy"), "{tree}");
    assert!(tree.contains("hall-lamp.switch"), "{tree}");
    assert!(tree.contains('B'), "no byte attribution:\n{tree}");
}

/// The operations the equivalence proptest draws from. Mixed islands,
/// existing and missing services, good and bad arguments — errors must
/// be identical too.
fn arb_call() -> impl Strategy<Value = (u8, &'static str, &'static str, bool)> {
    (
        0u8..4,
        prop_oneof![
            Just("hall-lamp"),
            Just("desk-lamp"),
            Just("fridge"),
            Just("no-such-service"),
        ],
        prop_oneof![Just("switch"), Just("status"), Just("temperature")],
        any::<bool>(),
    )
}

fn island(i: u8) -> Middleware {
    match i {
        0 => Middleware::Jini,
        1 => Middleware::Havi,
        2 => Middleware::X10,
        _ => Middleware::Mail,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tracing is pure observation: the same deterministic world run
    /// with and without it returns bit-identical results for every call.
    #[test]
    fn tracing_never_changes_results(ops in proptest::collection::vec(arb_call(), 1..12)) {
        let traced = SmartHome::builder().build().unwrap();
        traced.set_tracing(true);
        let plain = SmartHome::builder().build().unwrap();

        for (from, service, op, on) in ops {
            let args = if op == "switch" {
                vec![("on".to_owned(), Value::Bool(on))]
            } else {
                Vec::new()
            };
            let a = traced.invoke_from(island(from), service, op, &args);
            let b = plain.invoke_from(island(from), service, op, &args);
            match (a, b) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
                (Err(x), Err(y)) => prop_assert_eq!(x.to_string(), y.to_string()),
                (x, y) => prop_assert!(false, "diverged: {:?} vs {:?}", x, y),
            }
        }
    }
}
