//! Integration tests for the §6 future-work extensions: dynamic service
//! activation and the AV meta-middleware, running inside the full home.

use metaware::pcm::havi::HaviPcm;
use metaware::{catalog, Activator, AvBroker, AvFormat, Middleware, SmartHome, VirtualService};
use simnet::{Sim, SimDuration};
use soap::Value;
use std::sync::Arc;

fn register_projector(home: &SmartHome, activator: &Activator, spin_up: SimDuration) {
    let havi = home.havi.as_ref().unwrap();
    activator
        .register(
            VirtualService::new(
                "projector",
                catalog::display(),
                Middleware::Havi,
                havi.vsg.name(),
            ),
            spin_up,
            |_| {
                Ok(Box::new(|_: &Sim, _: &str, _: &[(String, Value)]| {
                    Ok(Value::Null)
                }))
            },
        )
        .unwrap();
}

#[test]
fn activation_is_transparent_to_remote_islands() {
    let home = SmartHome::builder().build().unwrap();
    let activator = Activator::new(&home.havi.as_ref().unwrap().vsg);
    register_projector(&home, &activator, SimDuration::from_secs(2));

    // A Jini-island caller neither knows nor cares that the projector is
    // dormant: first call activates (and pays spin-up), later calls fly.
    let t0 = home.sim.now();
    home.invoke_from(
        Middleware::Jini,
        "projector",
        "show",
        &[("text".into(), Value::Str("hi".into()))],
    )
    .unwrap();
    let cold = home.sim.now() - t0;
    let t0 = home.sim.now();
    home.invoke_from(
        Middleware::X10,
        "projector",
        "show",
        &[("text".into(), Value::Str("again".into()))],
    )
    .unwrap();
    let warm = home.sim.now() - t0;
    assert!(cold >= SimDuration::from_secs(2));
    assert!(warm < SimDuration::from_secs(1));
    assert_eq!(activator.stats().activations, 1);
}

#[test]
fn reaped_services_reactivate_on_demand() {
    let home = SmartHome::builder().build().unwrap();
    let activator = Activator::new(&home.havi.as_ref().unwrap().vsg);
    register_projector(&home, &activator, SimDuration::from_millis(100));
    let _reaper = activator.start_reaper(SimDuration::from_secs(10), SimDuration::from_secs(30));

    home.invoke_from(
        Middleware::Jini,
        "projector",
        "show",
        &[("text".into(), Value::Str("x".into()))],
    )
    .unwrap();
    home.sim.run_for(SimDuration::from_secs(120));
    assert_eq!(activator.stats().currently_active, 0, "reaped while idle");

    home.invoke_from(
        Middleware::Havi,
        "projector",
        "show",
        &[("text".into(), Value::Str("y".into()))],
    )
    .unwrap();
    assert_eq!(activator.stats().activations, 2);
    assert_eq!(activator.stats().currently_active, 1);
}

fn broker(home: &SmartHome) -> AvBroker {
    let havi = home.havi.as_ref().unwrap();
    let pcm = Arc::new(HaviPcm::start(&havi.vsg, &havi.bus, havi.registry.seid()));
    pcm.import_services().unwrap();
    AvBroker::new(&havi.vsg, pcm, &havi.streams)
}

#[test]
fn av_sessions_and_framework_control_coexist() {
    let home = SmartHome::builder().build().unwrap();
    let broker = broker(&home);
    let session = broker
        .open_session(
            &home.sim,
            "dv-camera",
            AvFormat::Dv,
            "living-room-vcr",
            AvFormat::Dv,
        )
        .unwrap();

    // While the stream flows, control calls from every island still work.
    let report = broker.pump(&home.sim, &session, SimDuration::from_secs(1));
    assert_eq!(report.stream.late_packets, 0);
    home.invoke_from(Middleware::Jini, "living-room-vcr", "record", &[])
        .unwrap();
    home.invoke_from(Middleware::X10, "dv-camera", "status", &[])
        .unwrap();
    home.invoke_from(Middleware::Mail, "hall-lamp", "status", &[])
        .unwrap();
    broker.close_session(session.id).unwrap();
}

#[test]
fn stream_refusal_names_the_foreign_island() {
    let home = SmartHome::builder().build().unwrap();
    let broker = broker(&home);
    for (src, sink, expect) in [
        ("dv-camera", "hall-lamp", "x10"),
        ("laserdisc", "living-room-vcr", "jini"),
        ("mailer", "tv-display", "mail"),
    ] {
        let err = broker
            .open_session(&home.sim, src, AvFormat::Dv, sink, AvFormat::Dv)
            .unwrap_err();
        assert!(err.to_string().contains(expect), "{src}->{sink}: {err}");
    }
}

#[test]
fn transcoded_sessions_save_bus_bandwidth() {
    let home = SmartHome::builder().build().unwrap();
    let broker = broker(&home);
    // Two DV-to-MPEG2 sessions reserve what one DV session would.
    let s1 = broker
        .open_session(
            &home.sim,
            "dv-camera",
            AvFormat::Dv,
            "tv-display",
            AvFormat::Mpeg2,
        )
        .unwrap();
    let s2 = broker
        .open_session(
            &home.sim,
            "dv-camera",
            AvFormat::Dv,
            "living-room-vcr",
            AvFormat::Mpeg2,
        )
        .unwrap();
    assert_eq!(
        AvFormat::Mpeg2.bytes_per_cycle() * 2,
        AvFormat::Dv.bytes_per_cycle()
    );
    let r1 = broker.pump(&home.sim, &s1, SimDuration::from_secs(1));
    assert!(r1.bytes_saved > 0);
    broker.close_session(s1.id).unwrap();
    broker.close_session(s2.id).unwrap();
}
