//! Failure injection: the home keeps its promises when networks blink,
//! leases lapse and the powerline eats frames.

use havi::bus_reset;
use metaware::{BreakerState, MetaError, Middleware, SmartHome};
use simnet::{FaultPlan, SimDuration};
use soap::Value;

#[test]
fn havi_bus_reset_blocks_then_recovers() {
    let home = SmartHome::builder().build().unwrap();
    let havi = home.havi.as_ref().unwrap();

    // During the reset window the bus is down: cross-island HAVi calls
    // fail with the middleware's own typed error, not a generic string.
    havi.bus.set_down(true);
    let err = home
        .invoke_from(Middleware::Jini, "dv-camera", "record", &[])
        .unwrap_err();
    assert!(
        matches!(&err, MetaError::Native { middleware, .. } if middleware == "havi"),
        "expected a HAVi-native error, got {err:?}"
    );
    assert_eq!(err.kind(), "native");

    // The bus recovers; no re-configuration needed for messaging.
    havi.bus.set_down(false);
    home.invoke_from(Middleware::Jini, "dv-camera", "record", &[])
        .unwrap();

    // A full reset helper drops and restores within the outage window.
    bus_reset(&home.sim, &havi.bus);
    home.invoke_from(Middleware::Jini, "dv-camera", "stop", &[])
        .unwrap();
}

#[test]
fn jini_lease_expiry_removes_dead_services_from_the_island() {
    let home = SmartHome::builder().build().unwrap();
    let jini = home.jini.as_ref().unwrap();
    // The built-in devices registered with 300 s leases and nobody
    // renews them: after expiry + sweep they vanish from the registrar.
    assert_eq!(jini.reggie.registered_count(), 3);
    home.sim.run_for(SimDuration::from_secs(400));
    assert_eq!(jini.reggie.registered_count(), 0, "leases lapsed");

    // The VSR still lists the stale import (the PCM has not re-scanned);
    // invoking now surfaces the failure honestly... actually the RMI
    // objects are still exported, so calls still work — Jini's *lookup*
    // died, not the service. This mirrors real Jini semantics.
    home.invoke_from(Middleware::Havi, "laserdisc", "status", &[])
        .unwrap();
}

#[test]
fn noisy_powerline_is_survivable_with_repeats() {
    // With a noisy powerline, individual commands may be lost; the PCM
    // repeats idempotent commands, and shadows stay self-consistent.
    let home = SmartHome::builder()
        .noisy_powerline()
        .seed(77)
        .build()
        .unwrap();
    let mut successes = 0;
    for i in 0..10 {
        let on = i % 2 == 0;
        if home
            .invoke_from(
                Middleware::Jini,
                "hall-lamp",
                "switch",
                &[("on".into(), Value::Bool(on))],
            )
            .is_ok()
        {
            successes += 1;
        }
    }
    // The serial leg is lossless and the PCM repeats over the powerline:
    // the framework call itself should essentially always succeed.
    assert!(successes >= 9, "only {successes}/10 commands accepted");
}

#[test]
fn x10_commands_may_still_miss_on_noise_and_shadow_tracks_belief() {
    let home = SmartHome::builder()
        .noisy_powerline()
        .seed(1234)
        .build()
        .unwrap();
    let x10 = home.x10.as_ref().unwrap();
    // Pound the lamp with ON commands; with 2% loss and 2 repeats the
    // physical lamp should end ON with overwhelming probability.
    for _ in 0..5 {
        let _ = home.invoke_from(
            Middleware::X10,
            "hall-lamp",
            "switch",
            &[("on".into(), Value::Bool(true))],
        );
    }
    assert!(x10.hall_lamp.is_on());
    // The PCM believes the same.
    let shadow = home
        .invoke_from(Middleware::X10, "hall-lamp", "status", &[])
        .unwrap();
    assert_eq!(shadow, Value::Bool(true));
}

#[test]
fn gateway_outage_yields_clean_errors_and_recovery() {
    let home = SmartHome::builder().build().unwrap();
    // Take the backbone down: all cross-island traffic fails with a
    // typed transport error that says the request never got out — the
    // resolution request to the VSR itself could not be delivered.
    home.backbone.set_down(true);
    let err = home
        .invoke_from(Middleware::Jini, "dv-camera", "status", &[])
        .unwrap_err();
    assert!(err.is_transport_failure(), "{err:?}");
    assert!(
        matches!(
            err,
            MetaError::Transport {
                not_executed: true,
                ..
            }
        ),
        "a dead backbone means guaranteed-not-executed: {err:?}"
    );
    home.backbone.set_down(false);
    home.invoke_from(Middleware::Jini, "dv-camera", "status", &[])
        .unwrap();
}

#[test]
fn backbone_partition_trips_the_breaker_then_a_probe_recloses_it() {
    let home = SmartHome::builder().build().unwrap();
    let jini_gw = home.jini.as_ref().unwrap().vsg.clone();
    let havi_gw = home.havi.as_ref().unwrap().vsg.clone();

    // Warm the route so the partitioned call takes the cached fast
    // path straight at havi-gw.
    home.invoke_from(Middleware::Jini, "dv-camera", "status", &[])
        .unwrap();

    // Partition the two gateways mid-run. Every attempt fails before
    // delivery; the resilience layer retries with backoff until the
    // virtual-time deadline binds, and the repeated failures trip the
    // per-gateway breaker.
    let t = home.sim.now();
    home.backbone.set_fault_plan(FaultPlan::new().partition(
        vec![jini_gw.node()],
        vec![havi_gw.node()],
        t,
        t + SimDuration::from_secs(30),
    ));
    let err = home
        .invoke_from(Middleware::Jini, "dv-camera", "status", &[])
        .unwrap_err();
    assert!(
        matches!(err, MetaError::DeadlineExceeded { .. }),
        "expected the deadline to bind: {err:?}"
    );
    assert_eq!(err.kind(), "deadline-exceeded");
    assert_eq!(jini_gw.breaker_state("havi-gw"), BreakerState::Open);
    assert!(
        jini_gw.metrics().snapshot().retries > 0,
        "retries were recorded"
    );

    // While the breaker is open, calls are rejected without touching
    // the wire at all.
    let err = home
        .invoke_from(Middleware::Jini, "dv-camera", "status", &[])
        .unwrap_err();
    assert!(
        matches!(&err, MetaError::CircuitOpen { gateway } if gateway == "havi-gw"),
        "{err:?}"
    );

    // The partition heals and the open window lapses: the next call is
    // admitted as a half-open probe, succeeds, and recloses the breaker.
    home.sim.advance(SimDuration::from_secs(40));
    home.backbone.clear_fault_plan();
    home.invoke_from(Middleware::Jini, "dv-camera", "status", &[])
        .unwrap();
    assert_eq!(jini_gw.breaker_state("havi-gw"), BreakerState::Closed);
}

#[test]
fn service_relocation_defeats_stale_routes() {
    // A service withdraws from one gateway and republishes at another;
    // cached routes must fail over (Vsg::invoke re-resolves).
    let home = SmartHome::builder().build().unwrap();
    let x10_gw = home.x10.as_ref().unwrap().vsg.clone();
    let havi_gw = home.havi.as_ref().unwrap().vsg.clone();

    // Warm the route cache.
    home.invoke_from(Middleware::Havi, "hall-lamp", "status", &[])
        .unwrap();

    // The lamp "moves": x10-gw withdraws, havi-gw exports an impostor.
    x10_gw.withdraw("hall-lamp").unwrap();
    havi_gw
        .export(
            metaware::VirtualService::new(
                "hall-lamp",
                metaware::catalog::lamp(),
                Middleware::Havi,
                havi_gw.name(),
            ),
            |_: &simnet::Sim, op: &str, _: &[(String, Value)]| match op {
                "status" => Ok(Value::Bool(true)),
                _ => Ok(Value::Null),
            },
        )
        .unwrap();

    let got = home
        .invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
        .unwrap();
    assert_eq!(got, Value::Bool(true), "re-resolved to the new host");
}

#[test]
fn motion_sensor_loss_is_an_absence_not_a_crash() {
    // On a noisy powerline a sensor's report can vanish entirely; the
    // polling path must simply see nothing.
    let home = SmartHome::builder()
        .noisy_powerline()
        .seed(9)
        .build()
        .unwrap();
    let x10 = home.x10.as_ref().unwrap();
    for _ in 0..3 {
        x10.motion.trigger();
    }
    // Regardless of what survived, the framework query works and the
    // event list parses.
    let events = home
        .invoke_from(Middleware::Havi, "hall-motion", "drain_events", &[])
        .unwrap();
    match events {
        Value::List(items) => assert!(items.len() <= 3),
        other => panic!("expected a list, got {other}"),
    }
}

/// The federated-VSR lease race: a shard primary crashes, the lease
/// expires, and a renewal races the reaper across replicas. Two laws:
///
/// 1. A renewal that *failed* (the record was already reaped on the
///    replica that took over) must not resurrect the record — not even
///    after the old primary heals and anti-entropy runs.
/// 2. A renewal that *succeeded* on the promoted backup must survive
///    the old primary's stale reaper: when the healed primary later
///    tombstones its (outdated) copy, the tombstone names the old
///    incarnation and bounces off the renewed record.
#[test]
fn vsr_lease_expiry_racing_renew_does_not_resurrect() {
    use metaware::{catalog, FederationConfig, Middleware, VirtualService, Vsr, VsrClient};
    use simnet::{Network, Sim};

    let sim = Sim::new(9);
    let net = Network::ethernet(&sim);
    let vsr = Vsr::start_federated(
        &net,
        &FederationConfig {
            shards: 1,
            replicas: 2,
            replication: 2,
            ..FederationConfig::default()
        },
    );
    vsr.set_lease_duration(Some(SimDuration::from_secs(60)));
    let client = VsrClient::new(&net, net.attach("pcm"), vsr.node());
    let lamp = VirtualService::new("hall-lamp", catalog::lamp(), Middleware::X10, "x10-gw");

    // ---- law 1: expired before the renew arrives -> stays dead ----------
    client.publish(&lamp).unwrap();
    let old_primary = vsr.primary_for("hall-lamp");
    let t0 = sim.now();
    net.set_fault_plan(FaultPlan::new().node_down(
        old_primary,
        t0,
        t0 + SimDuration::from_secs(120),
    ));
    // Past expiry while the primary is down: the renew fails over to
    // the backup, which reaps the lease first — nothing to renew.
    sim.advance(SimDuration::from_secs(90));
    assert!(
        !client.renew("hall-lamp").unwrap(),
        "reaped record must not renew"
    );
    assert_ne!(
        vsr.primary_for("hall-lamp"),
        old_primary,
        "the renew write promoted the backup"
    );
    assert!(client.resolve("hall-lamp").is_err(), "stays dead");

    // Heal and converge: the old primary still holds the record, but
    // the backup's expiry tombstone wins on sync (it reaped exactly
    // that incarnation). No resurrection.
    sim.advance(SimDuration::from_secs(60));
    net.clear_fault_plan();
    vsr.sync_now();
    assert!(
        client.resolve("hall-lamp").is_err(),
        "healed old primary must not resurrect the reaped record"
    );
    assert_eq!(vsr.service_count(), 0);

    // Republishing (the recovered gateway) brings it back everywhere.
    client.publish(&lamp).unwrap();
    assert!(client.resolve("hall-lamp").is_ok());
    vsr.sync_now();
    assert_eq!(vsr.replication_lag(), 0);

    // ---- law 2: renewed in time on the backup -> survives the stale
    // reaper on the healed primary -----------------------------------------
    let primary_now = vsr.primary_for("hall-lamp");
    let t1 = sim.now();
    net.set_fault_plan(FaultPlan::new().node_down(
        primary_now,
        t1,
        t1 + SimDuration::from_secs(65),
    ));
    // Renew mid-lease: fails over, promotes, restamps the lease (now
    // good until t1+90, while the crashed primary's stale copy still
    // says t1+60).
    sim.advance(SimDuration::from_secs(30));
    assert!(client.renew("hall-lamp").unwrap(), "mid-lease renew lands");

    // Heal after the *original* lease deadline has passed but within
    // the renewed one. The old primary's copy looks expired to it;
    // poke it directly (reads are served by any shard member, and
    // serving reaps due leases) so its stale reaper actually fires
    // before anti-entropy runs.
    sim.advance(SimDuration::from_secs(40));
    net.clear_fault_plan();
    let poker = soap::SoapClient::on_node(
        &net,
        net.attach("poker"),
        soap::CpuModel::default(),
        soap::TcpModel::default(),
    );
    let _ = poker.call(
        primary_now,
        &soap::RpcCall::new("urn:vsg:repository", "count").arg("shard", 0i64),
    );

    // Anti-entropy now reconciles a stale tombstone against the renewed
    // record: the tombstone names the pre-renewal incarnation, so the
    // renewal wins on every replica.
    vsr.sync_now();
    assert!(
        client.renew("hall-lamp").unwrap(),
        "renewed record survives the stale reaper"
    );
    assert!(client.resolve("hall-lamp").is_ok());
    assert_eq!(vsr.service_count(), 1);
}
