//! End-to-end event delivery across the full home (the §4.2 problem).

use metaware::{Middleware, PollingBridge, SipPublisher, SipSubscriber, SmartHome};
use parking_lot::Mutex;
use simnet::SimDuration;
use soap::Value;
use std::sync::Arc;

#[test]
fn polling_bridge_moves_sensor_events_between_islands() {
    let home = SmartHome::builder().build().unwrap();
    let havi_gw = home.havi.as_ref().unwrap().vsg.clone();

    let seen: Arc<Mutex<Vec<Value>>> = Arc::new(Mutex::new(Vec::new()));
    let seen2 = seen.clone();
    let bridge = PollingBridge::start(
        &havi_gw,
        "hall-motion",
        SimDuration::from_secs(1),
        move |_, e| seen2.lock().push(e.clone()),
    );

    home.sim.run_for(SimDuration::from_secs(2));
    assert!(seen.lock().is_empty(), "no events yet");

    home.x10.as_ref().unwrap().motion.trigger();
    home.sim.run_for(SimDuration::from_secs(3));

    let seen = seen.lock();
    assert_eq!(seen.len(), 1);
    assert_eq!(seen[0].field("active"), Some(&Value::Bool(true)));
    let stats = bridge.stats();
    assert!(
        stats.carrier_messages >= 4,
        "idle polls happened: {stats:?}"
    );
    assert_eq!(stats.events_delivered, 1);
}

#[test]
fn push_beats_polling_on_latency_and_idle_cost() {
    // Identical scenario, both strategies, measured.
    let poll_latency_us;
    let poll_carriers;
    {
        let home = SmartHome::builder().build().unwrap();
        let havi_gw = home.havi.as_ref().unwrap().vsg.clone();
        let got: Arc<Mutex<Option<u64>>> = Arc::new(Mutex::new(None));
        let got2 = got.clone();
        let bridge = PollingBridge::start(
            &havi_gw,
            "hall-motion",
            SimDuration::from_secs(5),
            move |sim, _| {
                got2.lock().get_or_insert(sim.now().as_micros());
            },
        );
        home.sim.run_for(SimDuration::from_secs(12)); // idle polls
        let fired = home.sim.now();
        home.x10.as_ref().unwrap().motion.trigger();
        home.sim.run_for(SimDuration::from_secs(10));
        poll_latency_us = got.lock().unwrap() - fired.as_micros();
        poll_carriers = bridge.stats().carrier_messages;
        bridge.stop();
    }

    let push_latency_us;
    let push_carriers;
    {
        let home = SmartHome::builder().build().unwrap();
        let x10 = home.x10.as_ref().unwrap();
        let havi_gw = home.havi.as_ref().unwrap().vsg.clone();
        let publisher = SipPublisher::new(&home.backbone, x10.vsg.node());
        publisher.subscribe(havi_gw.node(), "%");
        let p2 = publisher.clone();
        x10.pcm.set_sensor_hook(move |_, svc, e| p2.publish(svc, e));
        let _pump = x10.pcm.start_polling(SimDuration::from_millis(100));

        let got: Arc<Mutex<Option<u64>>> = Arc::new(Mutex::new(None));
        let got2 = got.clone();
        let _sub = SipSubscriber::install(&home.backbone, havi_gw.node(), move |sim, _, _| {
            got2.lock().get_or_insert(sim.now().as_micros());
        });

        home.sim.run_for(SimDuration::from_secs(12)); // same idle stretch
        let fired = home.sim.now();
        x10.motion.trigger();
        home.sim.run_for(SimDuration::from_secs(10));
        push_latency_us = got.lock().unwrap() - fired.as_micros();
        push_carriers = publisher.stats().carrier_messages;
    }

    assert!(
        push_latency_us < poll_latency_us,
        "push {push_latency_us}us should beat polling {poll_latency_us}us"
    );
    assert!(
        push_carriers < poll_carriers,
        "push sent {push_carriers} messages, polling {poll_carriers}"
    );
}

#[test]
fn x10_remote_to_mail_alert_pipeline() {
    // Compose: powerline event -> route -> mailer (three middleware).
    let home = SmartHome::builder().build().unwrap();
    let x10 = home.x10.as_ref().unwrap();
    x10.pcm.add_route(metaware::pcm::x10::Route {
        house: metaware::house('A'),
        unit: metaware::unit(8),
        function: x10::Function::On,
        service: "mailer".into(),
        operation: "send".into(),
        args: vec![
            ("to".into(), Value::Str("owner@example.org".into())),
            ("subject".into(), Value::Str("Panic button".into())),
            ("body".into(), Value::Str("Unit A8 pressed".into())),
        ],
    });
    let _poll = x10.pcm.start_polling(SimDuration::from_millis(500));
    let mut remote = x10.remote();
    remote.press(x10::Button::On(8));
    home.sim.run_for(SimDuration::from_secs(2));
    assert_eq!(
        home.mail
            .as_ref()
            .unwrap()
            .server
            .mailbox_len("owner@example.org"),
        1
    );
}

#[test]
fn native_havi_events_still_flow_beside_the_framework() {
    // The framework must not break native event paths (§3's goal 1).
    let home = SmartHome::builder().build().unwrap();
    let havi = home.havi.as_ref().unwrap();
    let watcher = havi::MessagingSystem::attach(&havi.bus, "watcher");
    let seen = Arc::new(Mutex::new(0u32));
    let seen2 = seen.clone();
    let listener = watcher.register_element(move |_, msg| {
        if havi::decode_forwarded(msg).is_some() {
            *seen2.lock() += 1;
        }
        (havi::HaviStatus::Success, vec![])
    });
    havi::subscribe(
        &watcher,
        listener.handle,
        havi.events.seid(),
        havi::event_type::TRANSPORT_CHANGED,
    )
    .unwrap();

    // Drive the VCR *through the framework*; the native HAVi event still
    // reaches the native subscriber.
    home.invoke_from(Middleware::Jini, "living-room-vcr", "record", &[])
        .unwrap();
    assert_eq!(*seen.lock(), 1);
}
