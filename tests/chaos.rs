//! Chaos schedules: randomized fault plans against the backbone. Two
//! promises must survive any schedule the generator can produce:
//!
//! 1. **No double-invoke.** A non-idempotent operation executes at most
//!    once per invocation, no matter which leg of which attempt the
//!    chaos eats. A reported success always means exactly one execution.
//! 2. **Convergence.** Once every window has lapsed and the breaker's
//!    open period has run out, cross-gateway calls succeed again with
//!    no operator intervention.
//!
//! The schedule seed comes from `CHAOS_SEED` (ci.sh pins three), so a
//! failing schedule can be replayed exactly.

use metaware::{
    catalog, BatchCall, BatchItem, Binding, BreakerState, CloudConfig, CloudIsland, CompositeSpec,
    MetaError, Middleware, OpSig, ServiceInterface, Soap11, StepSpec, TypeTag, VirtualService, Vsg,
    VsgProtocol, Vsr,
};
use parking_lot::Mutex;
use proptest::prelude::*;
use simnet::{FaultPlan, Network, Sim, SimDuration, SimTime};
use soap::Value;
use std::sync::Arc;

/// A fault window before node ids exist: concretized in `build_plan`.
#[derive(Debug, Clone)]
enum WindowSpec {
    Loss { prob_pct: u8 },
    Latency { extra_ms: u16 },
    ServerDown,
    Partition,
}

#[derive(Debug, Clone)]
struct ChaosWindow {
    spec: WindowSpec,
    from_ms: u16,
    len_ms: u16,
}

fn arb_window() -> impl Strategy<Value = ChaosWindow> {
    let spec = prop_oneof![
        (30u8..=100).prop_map(|prob_pct| WindowSpec::Loss { prob_pct }),
        (1u16..50).prop_map(|extra_ms| WindowSpec::Latency { extra_ms }),
        Just(WindowSpec::ServerDown),
        Just(WindowSpec::Partition),
    ];
    (spec, 0u16..500, 10u16..300).prop_map(|(spec, from_ms, len_ms)| ChaosWindow {
        spec,
        from_ms,
        len_ms,
    })
}

/// `true` = non-idempotent `switch`, `false` = idempotent `status`.
fn arb_ops() -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), 4..12)
}

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

struct ChaosWorld {
    sim: Sim,
    net: Network,
    caller: Vsg,
    server: Vsg,
    /// Executions of the non-idempotent `switch` on the server.
    switches: Arc<Mutex<u64>>,
}

fn build_world(seed: u64) -> ChaosWorld {
    let sim = Sim::new(seed);
    let net = Network::ethernet(&sim);
    let vsr = Vsr::start(&net);
    let protocol: Arc<dyn VsgProtocol> = Arc::new(Soap11::new());
    let server = Vsg::start(&net, "gw-server", protocol.clone(), vsr.node()).unwrap();
    let caller = Vsg::start(&net, "gw-caller", protocol, vsr.node()).unwrap();

    let switches = Arc::new(Mutex::new(0u64));
    let count = switches.clone();
    server
        .export(
            VirtualService::new("chaos-lamp", catalog::lamp(), Middleware::X10, "gw-server"),
            move |_: &Sim, op: &str, _: &[(String, Value)]| match op {
                "switch" => {
                    *count.lock() += 1;
                    Ok(Value::Null)
                }
                "status" => Ok(Value::Bool(true)),
                _ => Ok(Value::Null),
            },
        )
        .unwrap();

    ChaosWorld {
        sim,
        net,
        caller,
        server,
        switches,
    }
}

fn build_plan(windows: &[ChaosWindow], t0: SimTime, world: &ChaosWorld) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for w in windows {
        let from = t0 + SimDuration::from_millis(w.from_ms as u64);
        let until = from + SimDuration::from_millis(w.len_ms as u64);
        plan = match &w.spec {
            WindowSpec::Loss { prob_pct } => plan.loss_spike(from, until, *prob_pct as f64 / 100.0),
            WindowSpec::Latency { extra_ms } => {
                plan.latency_spike(from, until, SimDuration::from_millis(*extra_ms as u64))
            }
            WindowSpec::ServerDown => plan.node_down(world.server.node(), from, until),
            WindowSpec::Partition => plan.partition(
                vec![world.caller.node()],
                vec![world.server.node()],
                from,
                until,
            ),
        };
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Invariant 1+2 under arbitrary schedules. Each case builds a
    /// fresh two-gateway world, runs a random op mix through a random
    /// fault plan, then heals and demands convergence.
    #[test]
    fn chaos_never_double_invokes_and_always_converges(
        windows in prop::collection::vec(arb_window(), 1..6),
        ops in arb_ops(),
    ) {
        let world = build_world(chaos_seed());
        // Warm the route so the chaos hits the cached fast path too.
        world.caller.invoke(&world.sim, "chaos-lamp", "status", &[]).unwrap();

        let t0 = world.sim.now();
        let plan = build_plan(&windows, t0, &world);
        let healed_by = plan.healed_by();
        world.net.set_fault_plan(plan);

        for &is_switch in &ops {
            let before = *world.switches.lock();
            let result = if is_switch {
                world.caller.invoke(
                    &world.sim,
                    "chaos-lamp",
                    "switch",
                    &[("on".into(), Value::Bool(true))],
                )
            } else {
                world.caller.invoke(&world.sim, "chaos-lamp", "status", &[])
            };
            let delta = *world.switches.lock() - before;

            if is_switch {
                prop_assert!(
                    delta <= 1,
                    "non-idempotent op executed {delta}x in one invocation"
                );
                if result.is_ok() {
                    prop_assert_eq!(
                        delta, 1,
                        "reported success without exactly one execution"
                    );
                }
            } else {
                prop_assert_eq!(delta, 0, "status must never execute switch");
            }
            if let Err(e) = &result {
                // Chaos may surface only as typed, expected failures.
                prop_assert!(
                    matches!(
                        e,
                        MetaError::Transport { .. }
                            | MetaError::DeadlineExceeded { .. }
                            | MetaError::CircuitOpen { .. }
                            | MetaError::GatewayUnreachable(_)
                            | MetaError::Repository(_)
                    ),
                    "unexpected error class under chaos: {e:?}"
                );
            }
            world.sim.advance(SimDuration::from_millis(20));
        }

        // Heal: run out every window and the breaker's open period,
        // then drop the plan entirely.
        let past = healed_by + SimDuration::from_secs(10);
        if world.sim.now() < past {
            world.sim.advance(past.since(world.sim.now()));
        }
        world.net.clear_fault_plan();

        // Convergence: both op classes succeed, and a switch executes
        // exactly once again.
        world.caller.invoke(&world.sim, "chaos-lamp", "status", &[]).unwrap();
        let before = *world.switches.lock();
        world.caller.invoke(
            &world.sim,
            "chaos-lamp",
            "switch",
            &[("on".into(), Value::Bool(false))],
        ).unwrap();
        prop_assert_eq!(*world.switches.lock(), before + 1);
        prop_assert_eq!(
            world.caller.breaker_state("gw-server"),
            BreakerState::Closed
        );
    }
}

/// A fault window eats an in-flight batch frame's response. With a
/// non-idempotent member aboard, the frame must not be re-sent — the
/// remote may have executed every member — so each member fails with
/// the ambiguous typed transport error and `switch` ran exactly once.
/// The contrast case: an all-idempotent batch lost on the *request*
/// leg is retried and lands.
#[test]
fn lost_batch_with_non_idempotent_member_is_not_resent() {
    let sim = Sim::new(chaos_seed());
    let net = Network::ethernet(&sim);
    let vsr = Vsr::start(&net);
    let protocol: Arc<dyn VsgProtocol> = Arc::new(Soap11::new());
    let server = Vsg::start(&net, "gw-server", protocol.clone(), vsr.node()).unwrap();
    let caller = Vsg::start(&net, "gw-caller", protocol, vsr.node()).unwrap();
    let switches = Arc::new(Mutex::new(0u64));
    let count = switches.clone();
    server
        .export(
            VirtualService::new("chaos-lamp", catalog::lamp(), Middleware::X10, "gw-server"),
            move |sim: &Sim, op: &str, _: &[(String, Value)]| {
                if op == "switch" {
                    *count.lock() += 1;
                }
                // Slow enough that the fault window opens while the
                // batch is being served: the response leg is what dies.
                sim.advance(SimDuration::from_millis(10));
                Ok(Value::Bool(true))
            },
        )
        .unwrap();
    caller.invoke(&sim, "chaos-lamp", "status", &[]).unwrap(); // warm the route

    let t = sim.now();
    net.set_fault_plan(FaultPlan::new().partition(
        vec![server.node()],
        vec![caller.node()],
        t + SimDuration::from_millis(5),
        t + SimDuration::from_millis(500),
    ));
    let executed_before = *switches.lock();
    let items = vec![
        BatchItem::Call(BatchCall::new("chaos-lamp", "status")),
        BatchItem::Call(BatchCall::new("chaos-lamp", "switch").arg("on", true)),
        BatchItem::Call(BatchCall::new("chaos-lamp", "status")),
    ];
    let results = caller.invoke_batch(&sim, &items);
    for r in &results {
        assert!(
            matches!(
                r,
                Err(MetaError::Transport {
                    not_executed: false,
                    ..
                })
            ),
            "ambiguous batch loss must surface per member as ambiguous transport: {r:?}"
        );
    }
    assert_eq!(
        *switches.lock() - executed_before,
        1,
        "the lost frame must not be re-sent: switch executes exactly once"
    );

    // Heal, close the breaker's books, then lose a pure request leg:
    // every member is idempotent, so the frame is retried and lands.
    sim.advance(SimDuration::from_secs(30));
    net.clear_fault_plan();
    caller.invoke(&sim, "chaos-lamp", "status", &[]).unwrap();
    let t2 = sim.now();
    net.set_fault_plan(FaultPlan::new().loss_spike(t2, t2 + SimDuration::from_millis(120), 1.0));
    let results = caller.invoke_batch(
        &sim,
        &[
            BatchItem::Call(BatchCall::new("chaos-lamp", "status")),
            BatchItem::Call(BatchCall::new("chaos-lamp", "status")),
        ],
    );
    assert!(
        results.iter().all(|r| r == &Ok(Value::Bool(true))),
        "all-idempotent batch should retry through the spike: {results:?}"
    );
    assert!(caller.metrics().snapshot().retries >= 1);
}

// ---------------------------------------------------------------------------
// Cloud bridge under WAN chaos (DESIGN.md §14): duplicate + reorder +
// partition windows against the outbox / epoch / dedup machinery.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum CloudWindowSpec {
    Duplicate { prob_pct: u8 },
    Reorder { window_ms: u16 },
    Partition,
}

#[derive(Debug, Clone)]
struct CloudWindow {
    spec: CloudWindowSpec,
    from_ms: u16,
    len_ms: u16,
}

fn arb_cloud_window() -> impl Strategy<Value = CloudWindow> {
    let spec = prop_oneof![
        (20u8..=60).prop_map(|prob_pct| CloudWindowSpec::Duplicate { prob_pct }),
        (10u16..250).prop_map(|window_ms| CloudWindowSpec::Reorder { window_ms }),
        Just(CloudWindowSpec::Partition),
    ];
    (spec, 0u16..3000, 200u16..2000).prop_map(|(spec, from_ms, len_ms)| CloudWindow {
        spec,
        from_ms,
        len_ms,
    })
}

/// 0 = state notification, 1 = device registration (lifecycle),
/// 2 = non-idempotent downward command.
fn arb_cloud_ops() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..3, 4..10)
}

fn build_cloud_plan(windows: &[CloudWindow], t0: SimTime, island: &CloudIsland) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for w in windows {
        let from = t0 + SimDuration::from_millis(w.from_ms as u64);
        let until = from + SimDuration::from_millis(w.len_ms as u64);
        plan = match &w.spec {
            CloudWindowSpec::Duplicate { prob_pct } => {
                plan.duplicate_spike(from, until, *prob_pct as f64 / 100.0)
            }
            CloudWindowSpec::Reorder { window_ms } => {
                plan.reorder_spike(from, until, SimDuration::from_millis(*window_ms as u64))
            }
            CloudWindowSpec::Partition => plan.partition(
                vec![island.bridge.home_node()],
                vec![island.bridge.cloud_node()],
                from,
                until,
            ),
        };
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The WAN trio — duplicate, reorder, partition — against the cloud
    /// bridge. Three promises survive any schedule: a non-idempotent
    /// downward command is applied at most once per command id (and the
    /// all-time `duplicate_effects` counter stays 0), the outbox drains
    /// in order so the cloud edge converges on the *latest* state per
    /// device, and once every window lapses the pair reconnects and
    /// fully drains with no operator intervention.
    #[test]
    fn cloud_chaos_applies_commands_exactly_once_and_drains_in_order(
        windows in prop::collection::vec(arb_cloud_window(), 1..5),
        ops in arb_cloud_ops(),
    ) {
        let sim = Sim::new(chaos_seed());
        let island = CloudIsland::build(&sim, "home-chaos", CloudConfig::default(), 1);
        let applied = Arc::new(Mutex::new(Vec::<u64>::new()));
        let log = applied.clone();
        island.bridge.set_applier(move |_, cmd| {
            log.lock().push(cmd.id);
            Ok(format!("done:{}", cmd.op))
        });

        // Warm: first handshake and a drained seed entry.
        let mut max_seq = island.bridge.register_device("lamp").unwrap();
        sim.run_for(SimDuration::from_secs(1));
        prop_assert!(island.bridge.is_connected());

        let t0 = sim.now();
        let plan = build_cloud_plan(&windows, t0, &island);
        let healed_by = plan.healed_by();
        island.set_wan_fault_plan(plan);

        let mut last_probe = None;
        let mut command_successes = 0u64;
        for (i, op) in ops.iter().enumerate() {
            match op {
                0 => {
                    let payload = format!("p{i}");
                    max_seq = max_seq.max(island.bridge.notify_state("probe", &payload).unwrap());
                    last_probe = Some(payload);
                }
                1 => {
                    max_seq =
                        max_seq.max(island.bridge.register_device(&format!("d{i}")).unwrap());
                }
                _ => {
                    if island.cell.send_command("lamp", "switch", "on").is_ok() {
                        command_successes += 1;
                    }
                }
            }
            sim.run_for(SimDuration::from_millis(400));
        }

        // Heal: outlast every window plus the bridge's worst backoff.
        let past = healed_by + SimDuration::from_secs(90);
        if sim.now() < past {
            sim.run_until(past);
        }

        // Exactly-once: every applied command id is unique, every
        // reported success executed, and the duplicate counter never
        // moved — at-least-once delivery, exactly-once effect.
        let ids = applied.lock().clone();
        let mut unique = ids.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(unique.len(), ids.len(), "a command id was applied twice");
        prop_assert!(ids.len() as u64 >= command_successes);
        prop_assert_eq!(island.bridge.stats().duplicate_effects, 0);

        // Drain order + convergence: connected again, outbox empty, the
        // edge saw every sequence number and holds the latest probe
        // state (an out-of-order apply would leave an older payload).
        prop_assert!(island.bridge.is_connected());
        prop_assert_eq!(island.bridge.outbox_len(), 0);
        prop_assert_eq!(island.cell.applied_through(), max_seq);
        if let Some(p) = &last_probe {
            let state = island.cell.device_state("probe");
            prop_assert_eq!(state.as_deref(), Some(p.as_str()));
        }
        for (i, op) in ops.iter().enumerate() {
            if *op == 1 {
                let dev = format!("d{i}");
                prop_assert!(island.cell.registered_devices().contains(&dev));
            }
        }

        // Post-heal, a fresh non-idempotent command lands exactly once.
        let before = applied.lock().len();
        island.cell.send_command("lamp", "switch", "off").unwrap();
        prop_assert_eq!(applied.lock().len(), before + 1);
    }
}

/// Same seed, same cloud run: reconnect jitter, backoff, command
/// retries, drains and all — a failing schedule replays from its
/// CHAOS_SEED.
#[test]
fn cloud_chaos_runs_are_deterministic_per_seed() {
    let run = |seed: u64| {
        let sim = Sim::new(seed);
        let island = CloudIsland::build(&sim, "home-det", CloudConfig::default(), 1);
        island.bridge.register_device("lamp").unwrap();
        sim.run_for(SimDuration::from_secs(1));
        let t0 = sim.now();
        island.set_wan_fault_plan(
            FaultPlan::new()
                .duplicate_spike(t0, t0 + SimDuration::from_millis(800), 0.5)
                .reorder_spike(
                    t0,
                    t0 + SimDuration::from_millis(800),
                    SimDuration::from_millis(120),
                )
                .partition(
                    vec![island.bridge.home_node()],
                    vec![island.bridge.cloud_node()],
                    t0 + SimDuration::from_secs(1),
                    t0 + SimDuration::from_secs(3),
                ),
        );
        let mut outcomes = Vec::new();
        for i in 0..6 {
            island
                .bridge
                .notify_state("probe", &format!("v{i}"))
                .unwrap();
            outcomes.push(
                island
                    .cell
                    .send_command("lamp", "switch", "on")
                    .map_err(|e| e.to_string()),
            );
            sim.run_for(SimDuration::from_millis(700));
        }
        sim.run_for(SimDuration::from_secs(60));
        (
            outcomes,
            sim.now(),
            format!("{:?}", island.bridge.stats()),
            format!("{:?}", island.cell.stats()),
            island.cell.applied_through(),
        )
    };
    assert_eq!(run(42), run(42), "same seed, same cloud run");
}

// ---------------------------------------------------------------------------
// Composite pipelines under chaos (DESIGN.md §16): the saga invariants.
// The composition engine drives non-idempotent steps over a faulty wire;
// whatever the schedule eats, no step may execute twice in one pipeline
// run and no compensator may run more than once (or for a step that
// never executed).
// ---------------------------------------------------------------------------

const PIPE_STEPS: usize = 4;

struct ComposeWorld {
    sim: Sim,
    net: Network,
    /// Hosts the composite; entry dispatch is local, steps go over the wire.
    host: Vsg,
    /// Hosts the step service the chaos schedule targets.
    server: Vsg,
    /// Forward executions of the non-idempotent `fire`, per step index.
    fired: Arc<Mutex<Vec<u64>>>,
    /// Compensator executions of `unfire`, per step index.
    unfired: Arc<Mutex<Vec<u64>>>,
}

fn stage_interface() -> ServiceInterface {
    ServiceInterface::new("Stage")
        .op(OpSig::new("fire")
            .param("step", TypeTag::Int)
            .returns(TypeTag::Int))
        .op(OpSig::new("unfire").param("step", TypeTag::Int))
        .op(OpSig::new("probe").returns(TypeTag::Bool).idempotent())
}

fn build_compose_world(seed: u64) -> ComposeWorld {
    let sim = Sim::new(seed);
    let net = Network::ethernet(&sim);
    let vsr = Vsr::start(&net);
    let protocol: Arc<dyn VsgProtocol> = Arc::new(Soap11::new());
    let server = Vsg::start(&net, "gw-server", protocol.clone(), vsr.node()).unwrap();
    let host = Vsg::start(&net, "gw-host", protocol, vsr.node()).unwrap();

    let fired = Arc::new(Mutex::new(vec![0u64; PIPE_STEPS]));
    let unfired = Arc::new(Mutex::new(vec![0u64; PIPE_STEPS]));
    let (f, u) = (fired.clone(), unfired.clone());
    server
        .export(
            VirtualService::new("stage", stage_interface(), Middleware::Jini, "gw-server"),
            move |_: &Sim, op: &str, args: &[(String, Value)]| {
                let step = args
                    .iter()
                    .find(|(k, _)| k == "step")
                    .and_then(|(_, v)| v.as_int())
                    .unwrap_or(0) as usize;
                match op {
                    "fire" => {
                        f.lock()[step] += 1;
                        Ok(Value::Int(step as i64))
                    }
                    "unfire" => {
                        u.lock()[step] += 1;
                        Ok(Value::Null)
                    }
                    _ => Ok(Value::Bool(true)),
                }
            },
        )
        .unwrap();

    let mut spec = CompositeSpec::new("chaos-pipe");
    for i in 0..PIPE_STEPS {
        spec = spec.step(
            StepSpec::new("stage", "fire")
                .arg("step", Binding::Literal(Value::Int(i as i64)))
                .compensate(
                    "unfire",
                    vec![("step".into(), Binding::Literal(Value::Int(i as i64)))],
                ),
        );
    }
    host.register_composite(spec).unwrap();

    ComposeWorld {
        sim,
        net,
        host,
        server,
        fired,
        unfired,
    }
}

fn build_compose_plan(windows: &[ChaosWindow], t0: SimTime, world: &ComposeWorld) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for w in windows {
        let from = t0 + SimDuration::from_millis(w.from_ms as u64);
        let until = from + SimDuration::from_millis(w.len_ms as u64);
        plan = match &w.spec {
            WindowSpec::Loss { prob_pct } => plan.loss_spike(from, until, *prob_pct as f64 / 100.0),
            WindowSpec::Latency { extra_ms } => {
                plan.latency_spike(from, until, SimDuration::from_millis(*extra_ms as u64))
            }
            WindowSpec::ServerDown => plan.node_down(world.server.node(), from, until),
            WindowSpec::Partition => plan.partition(
                vec![world.host.node()],
                vec![world.server.node()],
                from,
                until,
            ),
        };
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The saga invariants under arbitrary schedules: per pipeline run,
    /// (a) executed steps form a prefix and none executes twice, (b) a
    /// compensator runs at most once and only for a step that actually
    /// executed, (c) a reported success means every step ran exactly
    /// once and nothing was compensated, and (d) after the schedule
    /// lapses the pipeline converges with no operator intervention.
    #[test]
    fn compose_chaos_never_double_executes_and_compensates_at_most_once(
        windows in prop::collection::vec(arb_window(), 1..6),
        runs in 2usize..6,
    ) {
        let world = build_compose_world(chaos_seed());
        // Warm the host's route to the step service.
        world.host.invoke(&world.sim, "stage", "probe", &[]).unwrap();

        let t0 = world.sim.now();
        let plan = build_compose_plan(&windows, t0, &world);
        let healed_by = plan.healed_by();
        world.net.set_fault_plan(plan);

        for _ in 0..runs {
            let fired_before = world.fired.lock().clone();
            let unfired_before = world.unfired.lock().clone();
            let result = world.host.invoke(&world.sim, "chaos-pipe", "run", &[]);
            let fired_delta: Vec<u64> = world.fired.lock().iter()
                .zip(&fired_before).map(|(a, b)| a - b).collect();
            let unfired_delta: Vec<u64> = world.unfired.lock().iter()
                .zip(&unfired_before).map(|(a, b)| a - b).collect();

            let mut seen_gap = false;
            for i in 0..PIPE_STEPS {
                prop_assert!(
                    fired_delta[i] <= 1,
                    "step {i} executed {}x in one pipeline run", fired_delta[i]
                );
                prop_assert!(
                    !(seen_gap && fired_delta[i] > 0),
                    "step {i} executed after an earlier step did not: {fired_delta:?}"
                );
                seen_gap |= fired_delta[i] == 0;
                prop_assert!(
                    unfired_delta[i] <= 1,
                    "compensator for step {i} ran {}x", unfired_delta[i]
                );
                prop_assert!(
                    unfired_delta[i] <= fired_delta[i],
                    "compensated step {i} that never executed"
                );
            }
            if result.is_ok() {
                prop_assert!(
                    fired_delta.iter().all(|&d| d == 1),
                    "success without every step executing exactly once: {fired_delta:?}"
                );
                prop_assert!(
                    unfired_delta.iter().all(|&d| d == 0),
                    "success must not compensate: {unfired_delta:?}"
                );
            } else if let Err(e) = &result {
                prop_assert!(
                    matches!(
                        e,
                        MetaError::Transport { .. }
                            | MetaError::DeadlineExceeded { .. }
                            | MetaError::CircuitOpen { .. }
                            | MetaError::GatewayUnreachable(_)
                            | MetaError::Repository(_)
                    ),
                    "unexpected error class under chaos: {e:?}"
                );
            }
            world.sim.advance(SimDuration::from_millis(50));
        }

        // Heal and converge.
        let past = healed_by + SimDuration::from_secs(10);
        if world.sim.now() < past {
            world.sim.advance(past.since(world.sim.now()));
        }
        world.net.clear_fault_plan();

        let fired_before = world.fired.lock().clone();
        let out = world.host.invoke(&world.sim, "chaos-pipe", "run", &[]).unwrap();
        prop_assert_eq!(out, Value::Int(PIPE_STEPS as i64 - 1));
        let fired_after = world.fired.lock().clone();
        for i in 0..PIPE_STEPS {
            prop_assert_eq!(fired_after[i] - fired_before[i], 1);
        }
        prop_assert_eq!(
            world.host.breaker_state("gw-server"),
            BreakerState::Closed
        );
    }
}

/// Same seed, same pipeline run — outcomes, virtual clock, per-step
/// execution and compensation counts, and the engine's own counters.
/// A failing composite chaos schedule replays from its CHAOS_SEED.
#[test]
fn compose_chaos_runs_are_deterministic_per_seed() {
    let run = |seed: u64| {
        let world = build_compose_world(seed);
        world
            .host
            .invoke(&world.sim, "stage", "probe", &[])
            .unwrap();
        let t0 = world.sim.now();
        world.net.set_fault_plan(
            FaultPlan::new()
                .loss_spike(t0, t0 + SimDuration::from_millis(300), 0.7)
                .node_down(
                    world.server.node(),
                    t0 + SimDuration::from_millis(350),
                    t0 + SimDuration::from_millis(900),
                ),
        );
        let mut outcomes = Vec::new();
        for _ in 0..5 {
            let r = world.host.invoke(&world.sim, "chaos-pipe", "run", &[]);
            outcomes.push(r.map_err(|e| e.to_string()));
            world.sim.advance(SimDuration::from_millis(120));
        }
        let reg = world.host.metrics_snapshot().registry;
        let fired = world.fired.lock().clone();
        let unfired = world.unfired.lock().clone();
        (
            outcomes,
            world.sim.now(),
            fired,
            unfired,
            (
                reg.compose_executions,
                reg.compose_steps,
                reg.compose_failures,
                reg.compose_compensations,
                reg.compose_compensation_failures,
            ),
        )
    };
    assert_eq!(run(chaos_seed()), run(chaos_seed()), "same seed, same run");
}

/// The same seed and schedule must reproduce the exact same run —
/// retries, backoff jitter, breaker flips and all. This is what makes a
/// chaos failure replayable from its CHAOS_SEED.
#[test]
fn chaos_runs_are_deterministic_per_seed() {
    let run = |seed: u64| {
        let world = build_world(seed);
        world
            .caller
            .invoke(&world.sim, "chaos-lamp", "status", &[])
            .unwrap();
        let t0 = world.sim.now();
        world.net.set_fault_plan(
            FaultPlan::new()
                .loss_spike(t0, t0 + SimDuration::from_millis(200), 0.7)
                .node_down(
                    world.server.node(),
                    t0 + SimDuration::from_millis(250),
                    t0 + SimDuration::from_millis(400),
                ),
        );
        let on_arg = [("on".to_owned(), Value::Bool(true))];
        let mut outcomes = Vec::new();
        for i in 0..6 {
            let (op, args): (&str, &[(String, Value)]) = if i % 2 == 0 {
                ("status", &[])
            } else {
                ("switch", &on_arg)
            };
            let r = world.caller.invoke(&world.sim, "chaos-lamp", op, args);
            outcomes.push(r.map_err(|e| e.to_string()));
            world.sim.advance(SimDuration::from_millis(30));
        }
        let snap = world.caller.metrics().snapshot();
        let executed = *world.switches.lock();
        (
            outcomes,
            world.sim.now(),
            snap.retries,
            snap.breaker_transitions,
            executed,
        )
    };
    assert_eq!(run(42), run(42), "same seed, same run");
}
