//! Quickstart: bridge two middleware islands and make a cross-middleware
//! call in ~30 lines.
//!
//! Run with: `cargo run --example quickstart`

use metaware::{Middleware, SmartHome};
use soap::Value;

fn main() {
    // Build the paper's §1 smart home: a Jini island (Ethernet: laserdisc,
    // fridge, air conditioner), a HAVi island (IEEE1394: TV, camcorder,
    // VCR), an X10 island (powerline: lamps, fan, motion sensor) and the
    // Internet mail service — each fronted by a Virtual Service Gateway,
    // all registered in the Virtual Service Repository, speaking SOAP.
    let home = SmartHome::builder().build().expect("home assembles");

    println!("Services federated in the VSR: {}", home.service_count());
    for record in home.any_gateway().vsr().find("%", None).unwrap() {
        println!(
            "  {:<18} [{:<4} via {}]",
            record.name, record.middleware, record.gateway
        );
    }

    // A client on the Jini island switches an X10 lamp. The framework
    // resolves the service in the VSR, routes the call over SOAP to the
    // X10 gateway, whose PCM converts it into CM11A serial commands and
    // powerline frames. No Jini code knows any of that.
    println!("\n[jini-island] hall-lamp.switch(on=true)");
    home.invoke_from(
        Middleware::Jini,
        "hall-lamp",
        "switch",
        &[("on".into(), Value::Bool(true))],
    )
    .unwrap();
    let lamp = &home.x10.as_ref().unwrap().hall_lamp;
    println!(
        "  -> physical lamp is now: {}",
        if lamp.is_on() { "ON" } else { "off" }
    );

    // And the other direction: from the X10 island, ask the Jini fridge.
    let t = home
        .invoke_from(Middleware::X10, "fridge", "temperature", &[])
        .unwrap();
    println!("\n[x10-island] fridge.temperature() -> {t}");

    println!(
        "\nvirtual time elapsed: {} (deterministic — rerun and compare)",
        home.sim.now()
    );
}
