//! Chaos drill: script a fault schedule against the smart home's
//! backbone and watch the resilience layer ride it out — retries with
//! backoff bridge loss spikes, the per-gateway circuit breaker trips
//! and re-closes around a gateway crash, and degraded mode keeps stale
//! routes serving while the VSR is dark.
//!
//! Run with: `cargo run --example chaos_drill`
//! Everything runs on virtual time from one seed: rerun and compare.

use metaware::{HopKind, Middleware, ResiliencePolicy, SmartHome};
use simnet::{FaultPlan, SimDuration};

fn main() {
    let home = SmartHome::builder()
        .seed(13)
        .build()
        .expect("home assembles");
    home.set_resilience(ResiliencePolicy {
        breaker_open_window: SimDuration::from_millis(500),
        ..ResiliencePolicy::default()
    });
    home.set_tracing(true);

    // Warm the cross-island route: Jini island -> X10 hall lamp.
    home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
        .unwrap();
    let _ = home.take_spans();

    // The drill schedule, anchored at "now" on the virtual clock:
    //   0.2s-0.5s   backbone loss spike (90% of frames eaten)
    //   1.0s-2.2s   the X10 gateway crashes and restarts
    //   3.0s-3.6s   backbone partition between the two gateways
    let t0 = home.sim.now();
    let at = |ms: u64| t0 + SimDuration::from_millis(ms);
    let jini_gw = home.jini.as_ref().unwrap().vsg.clone();
    let x10_gw = home.x10.as_ref().unwrap().vsg.clone();
    home.backbone.set_fault_plan(
        FaultPlan::new()
            .loss_spike(at(200), at(500), 0.9)
            .node_down(x10_gw.node(), at(1_000), at(2_200))
            .partition(
                vec![jini_gw.node()],
                vec![x10_gw.node()],
                at(3_000),
                at(3_600),
            ),
    );

    // Poll the lamp through the whole schedule.
    println!("polling hall-lamp.status through the fault schedule:");
    for i in 0..10u64 {
        let target = at(i * 450);
        if home.sim.now() < target {
            home.sim.advance(target.since(home.sim.now()));
        }
        let t = home.sim.now().since(t0);
        match home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[]) {
            Ok(v) => println!("  [{t}] ok: {v}"),
            Err(e) => println!("  [{t}] ERR: {e}"),
        }
    }

    // What the resilience layer did, from its own telemetry.
    let snap = jini_gw.metrics().snapshot();
    println!("\njini-gw resilience counters:");
    println!("  retries:             {}", snap.retries);
    println!("  breaker transitions: {}", snap.breaker_transitions);
    println!("  degraded serves:     {}", snap.degraded_serves);
    println!("  breaker for x10-gw:  {}", jini_gw.breaker_state("x10-gw"));

    println!("\nresilience spans recorded:");
    for span in home.take_spans() {
        if span.kind == HopKind::Resilience {
            println!("  [{}] {}", span.start.since(t0), span.name);
        }
    }

    println!(
        "\nvirtual time elapsed: {} (deterministic — rerun and compare)",
        home.sim.now()
    );
}
