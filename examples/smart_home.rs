//! The §1 motivating scenario.
//!
//! "We want to control the TV, the VCR, the refrigerator and the air
//! conditioner from a PC without being conscious of heterogeneous forms
//! of network and middleware. Moreover, we want to control these
//! appliances from the GUI of the digital TV too."
//!
//! Run with: `cargo run --example smart_home`

use havi::FcmKind;
use metaware::pcm::havi::HaviBridgeClient;
use metaware::{Middleware, SmartHome};
use soap::Value;

fn main() {
    let home = SmartHome::builder().build().expect("home assembles");

    println!("=== Scene 1: everything from the PC (Jini island) ===\n");
    // The PC is an ordinary client on the Jini Ethernet. Through the
    // framework it drives all four appliances, two of which live on a
    // 1394 bus it cannot even see.
    let pc = Middleware::Jini;

    println!("pc> tv-tuner.set_channel(8)");
    home.invoke_from(
        pc,
        "tv-tuner",
        "set_channel",
        &[("channel".into(), Value::Int(8))],
    )
    .unwrap();

    println!("pc> living-room-vcr.record()");
    home.invoke_from(pc, "living-room-vcr", "record", &[])
        .unwrap();

    println!("pc> fridge.set_target(celsius=3.5)");
    home.invoke_from(
        pc,
        "fridge",
        "set_target",
        &[("celsius".into(), Value::Float(3.5))],
    )
    .unwrap();

    println!("pc> aircon.switch(on=true)");
    home.invoke_from(pc, "aircon", "switch", &[("on".into(), Value::Bool(true))])
        .unwrap();

    let havi = home.havi.as_ref().unwrap();
    let jini = home.jini.as_ref().unwrap();
    println!("\nstate check:");
    println!(
        "  TV channel        = {}",
        havi.tv.fcm(FcmKind::Tuner).unwrap().state().channel
    );
    println!(
        "  VCR transport     = {}",
        havi.vcr
            .fcm(FcmKind::Vcr)
            .unwrap()
            .state()
            .transport
            .label()
    );
    println!("  fridge target     = {} C", jini.fridge_temp.lock());
    println!(
        "  aircon            = {}",
        if *jini.aircon_on.lock() { "on" } else { "off" }
    );

    println!("\n=== Scene 2: the same appliances from the TV GUI (HAVi island) ===\n");
    // The digital TV is a native HAVi controller. The HAVi PCM's Server
    // Proxy materialises the Jini fridge and aircon as bridge software
    // elements, so the TV talks plain HAVi messages to them.
    let pcm = &havi.pcm;
    let fridge_rec = havi.vsg.resolve("fridge").unwrap();
    let aircon_rec = havi.vsg.resolve("aircon").unwrap();
    let fridge_seid = pcm.export_remote(&fridge_rec).unwrap();
    let aircon_seid = pcm.export_remote(&aircon_rec).unwrap();
    println!("HAVi registry now lists bridge elements {fridge_seid} and {aircon_seid}");

    let tv_ms = havi.tv.messaging();
    let gui = tv_ms.register_element(|_, _| (havi::HaviStatus::Success, vec![]));
    let fridge_gui = HaviBridgeClient::new(tv_ms, gui.handle, fridge_seid, fridge_rec.interface);
    let aircon_gui = HaviBridgeClient::new(tv_ms, gui.handle, aircon_seid, aircon_rec.interface);

    let t = fridge_gui.call("temperature", &[]).unwrap();
    println!("tv-gui> fridge.temperature()      -> {t}");
    let s = aircon_gui.call("status", &[]).unwrap();
    println!("tv-gui> aircon.status()           -> {s}");
    aircon_gui.call("switch", &[Value::Bool(false)]).unwrap();
    println!(
        "tv-gui> aircon.switch(false)      -> aircon is now {}",
        if *jini.aircon_on.lock() { "on" } else { "off" }
    );

    println!("\n=== Scene 3: the TV GUI renders auto-generated DDI panels ===\n");
    // The HAVi PCM can also serve a DDI panel for any bridged service:
    // the TV fetches the panel and renders buttons, knowing nothing
    // about X10 or the framework.
    let lamp_rec = havi.vsg.resolve("hall-lamp").unwrap();
    let (_bridge, panel) = havi.pcm.export_remote_with_panel(&lamp_rec).unwrap();
    let controller = havi::DdiController::new(tv_ms, gui.handle);
    let ui = controller.fetch(panel.seid()).unwrap();
    println!("TV renders:\n{ui}");
    let (on_id, _) = ui
        .buttons()
        .into_iter()
        .find(|(_, l)| *l == "switch on")
        .unwrap();
    controller.press(panel.seid(), on_id).unwrap();
    println!(
        "tv-gui> [press 'switch on'] -> powerline lamp is {}",
        if home.x10.as_ref().unwrap().hall_lamp.is_on() {
            "ON"
        } else {
            "off"
        }
    );

    println!(
        "\n\"The service discovery and the protocol conversion between Jini and\n\
         HAVi [are] managed out of user's consciousness.\" (§1) — elapsed {}",
        home.sim.now()
    );
}
