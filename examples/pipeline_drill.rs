//! Pipeline drill: a cross-island composite under fire.
//!
//! A "goodnight" pipeline — read the hall sensor (X10), start the
//! laserdisc (Jini), switch the porch light (UPnP), mail a report
//! (Internet) — is registered in the VSR as a first-class service and
//! executed by the HAVi gateway's composition engine. Act 1 runs it
//! calm; act 2 kills the mail gateway mid-schedule so the final step
//! dies, and the saga unwinds the completed steps in reverse order.
//!
//! Run with: `cargo run --example pipeline_drill`
//! Seed via `CHAOS_SEED=n`; export artifacts via `OBS_EXPORT_DIR=dir`.
//! Everything runs on virtual time from one seed: rerun and compare.

use metaware::{Binding, CompositeSpec, HopKind, Middleware, SmartHome, StepSpec};
use simnet::{FaultPlan, SimDuration};
use soap::Value;

fn goodnight_spec() -> CompositeSpec {
    CompositeSpec::new("goodnight")
        .budget(SimDuration::from_millis(1_500))
        // 1. X10 island: read the sensor (idempotent, retried freely).
        .step(StepSpec::new("hall-motion", "state"))
        // 2. Jini island: roll the laserdisc; compensated by stopping it.
        .step(
            StepSpec::new("laserdisc", "play")
                .arg("chapter", Binding::Literal(Value::Int(3)))
                .compensate("stop", vec![]),
        )
        // 3. UPnP island: porch light on; compensated by switching it off.
        .step(
            StepSpec::new("porch-light", "switch")
                .arg("on", Binding::Literal(Value::Bool(true)))
                .compensate(
                    "switch",
                    vec![("on".into(), Binding::Literal(Value::Bool(false)))],
                ),
        )
        // 4. Internet island: mail the report. No compensation — mail
        //    can't be unsent; if IT fails, everything before unwinds.
        .step(
            StepSpec::new("mailer", "send")
                .arg("to", Binding::Literal(Value::Str("owner@home".into())))
                .arg("subject", Binding::Literal(Value::Str("goodnight".into())))
                .arg(
                    "body",
                    Binding::Literal(Value::Str("house is down for the night".into())),
                ),
        )
}

fn print_compose_spans(home: &SmartHome, t0: simnet::SimTime) {
    for span in home.take_spans() {
        if span.kind == HopKind::Compose {
            println!(
                "  [{}] {}{}",
                span.start.since(t0),
                span.name,
                span.error
                    .as_deref()
                    .map(|e| format!("  ERR: {e}"))
                    .unwrap_or_default()
            );
        }
    }
}

fn main() {
    let seed: u64 = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let home = SmartHome::builder()
        .seed(seed)
        .upnp(true)
        .build()
        .expect("home assembles");
    home.set_tracing(true);
    let havi_gw = home.havi.as_ref().unwrap().vsg.clone();
    havi_gw
        .register_composite(goodnight_spec())
        .expect("composite registers");

    println!("=== Act 1: calm run (seed {seed}) ===\n");
    let t0 = home.sim.now();
    let out = home
        .invoke_from(Middleware::X10, "goodnight", "run", &[])
        .expect("calm pipeline succeeds");
    println!("one X10-island call ran all 4 steps; mailer said: {out}");
    println!(
        "laserdisc: {:?}",
        *home.jini.as_ref().unwrap().laserdisc.lock()
    );
    println!("compose spans (one per step, causally threaded):");
    print_compose_spans(&home, t0);

    // Reset the scene so act 2 starts from the same appliance state.
    home.invoke_from(Middleware::Havi, "laserdisc", "stop", &[])
        .unwrap();
    home.invoke_from(
        Middleware::Havi,
        "porch-light",
        "switch",
        &[("on".into(), Value::Bool(false))],
    )
    .unwrap();
    let _ = home.take_spans();

    println!("\n=== Act 2: mail gateway dies mid-pipeline ===\n");
    let mail_gw = home.mail.as_ref().unwrap().vsg.clone();
    let t1 = home.sim.now();
    home.backbone.set_fault_plan(FaultPlan::new().node_down(
        mail_gw.node(),
        t1,
        t1 + SimDuration::from_secs(30),
    ));

    let err = home
        .invoke_from(Middleware::X10, "goodnight", "run", &[])
        .expect_err("final step cannot reach the mail island");
    println!("pipeline failed as it should: {err}");
    println!("compose spans (steps forward, compensations in reverse):");
    print_compose_spans(&home, t1);

    // The saga left the house as it found it.
    let disc = *home.jini.as_ref().unwrap().laserdisc.lock();
    let porch = home
        .invoke_from(Middleware::Havi, "porch-light", "status", &[])
        .unwrap();
    println!("laserdisc after unwind: {disc:?}");
    println!("porch light after unwind: {porch}");
    assert!(!disc.playing, "compensation stopped the laserdisc");
    assert_eq!(porch, Value::Bool(false), "compensation darkened the porch");

    let reg = havi_gw.metrics_snapshot().registry;
    println!("\ncomposition engine counters (HAVi gateway):");
    println!("  executions:            {}", reg.compose_executions);
    println!("  steps completed:       {}", reg.compose_steps);
    println!("  failures:              {}", reg.compose_failures);
    println!("  compensations run:     {}", reg.compose_compensations);
    println!(
        "  compensations failed:  {}",
        reg.compose_compensation_failures
    );
    assert_eq!(reg.compose_executions, 2);
    assert_eq!(reg.compose_failures, 1);
    assert_eq!(reg.compose_compensations, 2, "steps 3 and 2 unwound");
    assert_eq!(reg.compose_compensation_failures, 0);

    if let Ok(dir) = std::env::var("OBS_EXPORT_DIR") {
        std::fs::create_dir_all(&dir).expect("export dir");
        let snaps = home.metrics_snapshots();
        let om = format!("{dir}/pipeline_metrics.om");
        let ev = format!("{dir}/pipeline_events.jsonl");
        std::fs::write(&om, metaware::obs::openmetrics(&snaps)).expect("write openmetrics");
        std::fs::write(&ev, metaware::obs::events_jsonl(&snaps, &[])).expect("write events");
        eprintln!("exported {om} and {ev}");
    }

    println!(
        "\nvirtual time elapsed: {} (deterministic — rerun and compare)",
        home.sim.now()
    );
}
