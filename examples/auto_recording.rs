//! §2's service-integration pitch, made concrete.
//!
//! "The service integration of a VCR control service with a TV program
//! service on the Internet can provide an automatic video recording
//! service that records TV programs according to user profiles."
//!
//! A SOAP TV-guide web service lives across the WAN; the home's VCR is a
//! HAVi appliance; the notification goes out via the Internet mail
//! service. Three middleware, one small application.
//!
//! Run with: `cargo run --example auto_recording`

use havi::FcmKind;
use metaware::{catalog, Middleware, OpSig, ServiceInterface, SmartHome, TypeTag, VirtualService};
use simnet::{Network, Sim, SimDuration};
use soap::{Fault, RpcCall, SoapClient, SoapServer, Value};

/// The interface of the Internet TV-guide service.
fn guide_interface() -> ServiceInterface {
    ServiceInterface::new("TvGuide").op(OpSig::new("next_by_genre")
        .param("genre", TypeTag::Str)
        .returns(TypeTag::Any))
}

fn main() {
    let home = SmartHome::builder().build().expect("home assembles");
    let sim = home.sim.clone();

    // --- An independent TV-guide web service across the WAN ----------------
    let inet = Network::internet(&sim);
    let guide_server = SoapServer::bind(&inet, "tvguide.example.org");
    guide_server.mount("urn:tvguide", |_, call: &RpcCall| {
        let genre = call.get("genre").and_then(Value::as_str).unwrap_or("");
        // The broadcaster's schedule (start times in virtual seconds).
        let listings = [
            ("news", 42, "Evening News", 30u64),
            ("drama", 7, "Harbour Lights", 90),
            ("sports", 3, "Midnight Football", 120),
        ];
        match listings.iter().find(|(g, ..)| *g == genre) {
            Some((_, channel, title, starts)) => Ok(Value::Record(vec![
                ("channel".into(), Value::Int(*channel)),
                ("title".into(), Value::Str((*title).into())),
                ("starts_in_s".into(), Value::Int(*starts as i64)),
            ])),
            None => Err(Fault::client(format!("no programme for genre '{genre}'"))),
        }
    });

    // --- Bridge the web service into the federation ------------------------
    // A web service needs no special PCM: its invoker is just a SOAP
    // client call — the framework's lingua franca *is* SOAP.
    let inet_gw = &home.mail.as_ref().unwrap().vsg;
    let guide_client = SoapClient::attach(&inet, "home-guide-client");
    let guide_node = guide_server.node();
    inet_gw
        .export(
            VirtualService::new(
                "tv-guide",
                guide_interface(),
                Middleware::Web,
                inet_gw.name(),
            ),
            move |_: &Sim, op: &str, args: &[(String, Value)]| {
                let mut call = RpcCall::new("urn:tvguide", op);
                for (k, v) in args {
                    call = call.arg(k.clone(), v.clone());
                }
                guide_client
                    .call(guide_node, &call)
                    .map_err(|e| metaware::MetaError::native("web", e))
            },
        )
        .unwrap();
    println!(
        "tv-guide web service federated; VSR now holds {} services\n",
        home.service_count()
    );

    // --- The auto-recorder: profile -> guide -> timer -> VCR -> mail -------
    let profile_genre = "news";
    println!("user profile: record genre '{profile_genre}'");

    let programme = home
        .invoke_from(
            Middleware::Havi,
            "tv-guide",
            "next_by_genre",
            &[("genre".into(), Value::Str(profile_genre.into()))],
        )
        .unwrap();
    let channel = programme.field("channel").and_then(Value::as_int).unwrap();
    let title = programme
        .field("title")
        .and_then(Value::as_str)
        .unwrap()
        .to_owned();
    let starts_in = programme
        .field("starts_in_s")
        .and_then(Value::as_int)
        .unwrap() as u64;
    println!("guide says: {title:?} on channel {channel}, starts in {starts_in}s");

    // Schedule: at start time, tune the TV, start the VCR, send mail.
    let home2 = std::sync::Arc::new(home);
    let home3 = home2.clone();
    let title2 = title.clone();
    sim.schedule_in(SimDuration::from_secs(starts_in), move |_| {
        println!("\n[timer fires at start time]");
        home3
            .invoke_from(
                Middleware::Havi,
                "tv-tuner",
                "set_channel",
                &[("channel".into(), Value::Int(channel))],
            )
            .unwrap();
        home3
            .invoke_from(Middleware::Havi, "living-room-vcr", "record", &[])
            .unwrap();
        home3
            .invoke_from(
                Middleware::Havi,
                "mailer",
                "send",
                &[
                    ("to".into(), Value::Str("owner@example.org".into())),
                    (
                        "subject".into(),
                        Value::Str(format!("Recording started: {title2}")),
                    ),
                    (
                        "body".into(),
                        Value::Str(format!("Channel {channel}, as per your profile.")),
                    ),
                ],
            )
            .unwrap();
    });

    sim.run_for(SimDuration::from_secs(starts_in + 5));

    let havi = home2.havi.as_ref().unwrap();
    println!(
        "VCR transport = {}, TV channel = {}",
        havi.vcr
            .fcm(FcmKind::Vcr)
            .unwrap()
            .state()
            .transport
            .label(),
        havi.tv.fcm(FcmKind::Tuner).unwrap().state().channel,
    );
    let mail = home2.mail.as_ref().unwrap();
    println!(
        "owner@example.org has {} notification(s): {:?}",
        mail.server.mailbox_len("owner@example.org"),
        mail.client
            .retr("owner@example.org", 0)
            .map(|m| m.subject)
            .unwrap_or_default(),
    );
    println!(
        "\n(The lamp interface was {:?} ops; this app touched none of the\n\
         middleware APIs directly — only canonical interfaces.)",
        catalog::lamp().operations.len()
    );
}
