//! §4.2's event-based multimedia system — including its failure.
//!
//! "We have tried to develop the event-based multimedia system … with
//! X10 motion sensors and HAVi and Jini AV systems. But, there are some
//! difficulties such as … dynamic service activation because of the
//! limitation of HTTP. HTTP is inherently a client/server protocol,
//! which does not map well to asynchronous notification scenarios."
//!
//! Scenario: motion in the hall should start the HAVi DV camera
//! recording. We run it twice — over the paper's SOAP/HTTP VSG (polling,
//! slow) and over the §5 SIP-like protocol (push, immediate).
//!
//! Run with: `cargo run --example multimedia_events`

use havi::FcmKind;
use metaware::{
    Binding, CompositeSpec, Middleware, PollingBridge, SipPublisher, SipSubscriber, SmartHome,
    StepSpec,
};
use simnet::SimDuration;
use soap::Value;

fn trigger_motion(home: &SmartHome, at: SimDuration) -> simnet::SimTime {
    let fire_at = home.sim.now() + at;
    let sensor = home.x10.as_ref().unwrap().motion.clone();
    home.sim.schedule_at(fire_at, move |_| {
        sensor.trigger();
    });
    fire_at
}

fn main() {
    println!("=== Attempt 1: the prototype's SOAP/HTTP VSG (polling) ===\n");
    {
        let home = SmartHome::builder().build().expect("home assembles");
        let havi_gw = home.havi.as_ref().unwrap().vsg.clone();
        let camera_started = std::sync::Arc::new(parking_lot::Mutex::new(None::<u64>));
        let cs = camera_started.clone();

        // All HTTP offers: the HAVi island polls the sensor service every
        // 2 seconds through the VSG.
        let havi_gw2 = havi_gw.clone();
        let bridge = PollingBridge::start(
            &havi_gw,
            "hall-motion",
            SimDuration::from_secs(2),
            move |sim, event| {
                if event.field("active") == Some(&Value::Bool(true)) && cs.lock().is_none() {
                    havi_gw2.invoke(sim, "dv-camera", "record", &[]).unwrap();
                    *cs.lock() = Some(sim.now().as_micros());
                }
            },
        );

        let fired_at = trigger_motion(&home, SimDuration::from_secs(5));
        home.sim.run_for(SimDuration::from_secs(10));

        let started = camera_started.lock().expect("camera started");
        let latency_ms = (started - fired_at.as_micros()) / 1_000;
        let stats = bridge.stats();
        println!("motion at t+5s; camera started {latency_ms}ms later");
        println!(
            "cost: {} poll round-trips over SOAP/HTTP for {} event(s)",
            stats.carrier_messages, stats.events_delivered
        );
        println!(
            "camera transport = {}",
            home.havi
                .as_ref()
                .unwrap()
                .camcorder
                .fcm(FcmKind::DvCamera)
                .unwrap()
                .state()
                .transport
                .label()
        );
        bridge.stop();
        println!("\n  -> works, but latency is bounded by the poll period and the");
        println!("     gateway burns a SOAP round trip every period, idle or not.");
    }

    println!("\n=== Attempt 2: the §5 SIP-like protocol (push) ===\n");
    {
        let home = SmartHome::builder().build().expect("home assembles");
        let x10 = home.x10.as_ref().unwrap();
        let havi_gw = home.havi.as_ref().unwrap().vsg.clone();

        // The X10 gateway pushes a NOTIFY the instant its PCM hears the
        // sensor; the HAVi gateway reacts immediately.
        let publisher = SipPublisher::new(&home.backbone, x10.vsg.node());
        publisher.subscribe(havi_gw.node(), "hall-motion");
        let pub2 = publisher.clone();
        x10.pcm.set_sensor_hook(move |sim, service, event| {
            let _ = sim;
            pub2.publish(service, event);
        });
        // The PCM still needs to hear the powerline: fine-grained native
        // polling of its own serial interface (local, cheap).
        let _pump = x10.pcm.start_polling(SimDuration::from_millis(100));

        let camera_started = std::sync::Arc::new(parking_lot::Mutex::new(None::<u64>));
        let cs = camera_started.clone();
        let havi_gw2 = havi_gw.clone();
        let _sub =
            SipSubscriber::install(&home.backbone, havi_gw.node(), move |sim, _svc, event| {
                if event.field("active") == Some(&Value::Bool(true)) && cs.lock().is_none() {
                    havi_gw2.invoke(sim, "dv-camera", "record", &[]).unwrap();
                    *cs.lock() = Some(sim.now().as_micros());
                }
            });

        let fired_at = trigger_motion(&home, SimDuration::from_secs(5));
        home.sim.run_for(SimDuration::from_secs(10));

        let started = camera_started.lock().expect("camera started");
        let latency_ms = (started - fired_at.as_micros()) / 1_000;
        println!("motion at t+5s; camera started {latency_ms}ms later");
        println!(
            "cost: {} NOTIFY frame(s) on the backbone, zero idle traffic there",
            publisher.stats().carrier_messages
        );
        println!(
            "camera transport = {}",
            home.havi
                .as_ref()
                .unwrap()
                .camcorder
                .fcm(FcmKind::DvCamera)
                .unwrap()
                .state()
                .transport
                .label()
        );
        println!("\n  -> \"SIP supports asynchronous calls … which is not supported");
        println!("     by HTTP\" (§5). Latency collapses from seconds to the X10");
        println!("     PCM's local sampling rate.");
    }

    // Coda: the whole reaction as ONE composite service. Instead of the
    // client driving sensor → laserdisc → display step by step (three
    // round trips from its island), the pipeline is registered in the
    // VSR as a first-class service and the HAVi gateway executes all
    // three steps itself — the X10 island pays a single call.
    println!("\n=== Coda: the reaction as a first-class composite service ===\n");
    let home = SmartHome::builder().build().expect("home assembles");
    let havi_gw = home.havi.as_ref().unwrap().vsg.clone();
    havi_gw
        .register_composite(
            CompositeSpec::new("motion-scene")
                // 1. X10 island: read the sensor (idempotent, safe to retry).
                .step(StepSpec::new("hall-motion", "state"))
                // 2. Jini island: roll the laserdisc; if a later step
                //    dies, the saga stops it again on the way out.
                .step(
                    StepSpec::new("laserdisc", "play")
                        .arg("chapter", Binding::Literal(Value::Int(2)))
                        .compensate("stop", vec![]),
                )
                // 3. HAVi island: put the scene name on the OSD.
                .step(
                    StepSpec::new("tv-display", "show")
                        .arg("text", Binding::Literal(Value::Str("motion scene".into()))),
                ),
        )
        .expect("composite registers like any service");

    home.x10.as_ref().unwrap().motion.trigger();
    // One invocation from the X10 island drives all three steps.
    home.invoke_from(Middleware::X10, "motion-scene", "run", &[])
        .unwrap();
    println!("one call from the X10 island ran 3 steps across 3 islands:");
    println!(
        "  laserdisc: {:?}",
        *home.jini.as_ref().unwrap().laserdisc.lock()
    );
    let compose = home.havi.as_ref().unwrap().vsg.metrics_snapshot().registry;
    println!(
        "  HAVi gateway composition engine: {} execution(s), {} step(s), {} failure(s)",
        compose.compose_executions, compose.compose_steps, compose.compose_failures
    );
}
