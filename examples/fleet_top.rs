//! Fleet top: the observability plane's dashboard.
//!
//! Builds a fleet of homes, drives cross-middleware traffic on the
//! parallel scheduler, then renders what an operator would watch at
//! fleet scale — all from the merged snapshot and the flight
//! recorder, never from raw samples:
//!
//! * a per-layer latency table (VSR lookups, VSG wire, PCM
//!   conversion, app body) with counts, p50, p99 and bucket
//!   exemplars pointing back at concrete traces,
//! * fleet-wide invocation/error/cache counters,
//! * the slowest and error traces the flight recorder kept,
//! * per-island profiler counts from the conservative scheduler.
//!
//! Run with: `cargo run --example fleet_top`
//! Knobs: `FLEET_HOMES` (default 6), `SIM_THREADS` (default 1).

use metaware::{HomeFleet, Layer, Middleware, SamplePolicy, SmartHome};
use simnet::SimDuration;
use soap::Value;

fn main() {
    let homes: usize = std::env::var("FLEET_HOMES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    // Two VSR replicas arm the anti-entropy timer, so the parallel
    // scheduler has periodic work and the profiler has windows to
    // attribute.
    let fleet = HomeFleet::build(
        SmartHome::builder()
            .seed(0xF1EE7)
            .upnp(true)
            .vsr_replicas(2),
        homes,
    )
    .expect("fleet assembles");
    fleet.set_tracing(true);
    fleet.set_sampling(SamplePolicy {
        head_per_10k: 5_000,
        top_slow: 3,
        capacity: 128,
    });
    eprintln!(
        "fleet_top: {} homes on {} worker thread(s)",
        fleet.len(),
        fleet.threads()
    );

    // A morning's traffic: every home works its appliances across all
    // four middleware islands plus the mail service.
    for home in fleet.homes() {
        for _ in 0..4 {
            home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
                .unwrap();
            home.invoke_from(Middleware::X10, "laserdisc", "status", &[])
                .unwrap();
            home.invoke_from(Middleware::Havi, "fridge", "temperature", &[])
                .unwrap();
            home.invoke_from(
                Middleware::Jini,
                "mailer",
                "send",
                &[
                    ("to".into(), Value::Str("owner@example.org".into())),
                    ("subject".into(), Value::Str("fleet_top".into())),
                    ("body".into(), Value::Str("morning report".into())),
                ],
            )
            .unwrap();
            // An error row: a service nobody exported.
            let _ = home.invoke_from(Middleware::Jini, "toaster", "pop", &[]);
        }
    }
    fleet.run_for(SimDuration::from_secs(5));
    fleet.harvest_traces();

    let snap = fleet.fleet_snapshot();
    let reg = &snap.registry;

    println!("== fleet of {} homes — merged snapshot ==", fleet.len());
    println!(
        "invocations {}   errors {}   retries {}   cache hits {} / misses {}",
        reg.invocations,
        reg.errors.iter().map(|(_, n)| n).sum::<u64>(),
        reg.retries,
        snap.cache.hits,
        snap.cache.misses
    );
    println!();
    println!("layer   calls      p50        p99        mean       exemplar");
    let overall = &reg.latency;
    let mut rows: Vec<(&str, &metaware::HistSketch)> = vec![("e2e", overall)];
    for layer in [Layer::Vsr, Layer::Wire, Layer::Pcm, Layer::App] {
        rows.push((layer.label(), reg.layer(layer)));
    }
    for (label, sketch) in rows {
        // The exemplar of the p99 bucket: a concrete kept trace an
        // operator can pull from the events export.
        let p99 = sketch.quantile_us(0.99);
        let exemplar = sketch
            .exemplar(metaware::obs::bucket_of(p99))
            .map(|t| t.to_string())
            .unwrap_or_else(|| "-".to_owned());
        println!(
            "{label:<7} {:<10} {:<10} {:<10} {:<10.1} {exemplar}",
            sketch.count,
            sketch.quantile_us(0.5),
            p99,
            sketch.mean_us()
        );
    }

    println!();
    println!("== flight recorder ==");
    let stats = fleet
        .homes()
        .iter()
        .map(|h| h.flight_stats())
        .fold((0, 0, 0), |acc, s| {
            (acc.0 + s.seen, acc.1 + s.kept, acc.2 + s.sampled_out)
        });
    println!(
        "seen {}   kept {}   sampled out {}",
        stats.0, stats.1, stats.2
    );
    let mut kept = fleet.drain_flight();
    // Slowest first; ties broken by trace id so the order is total.
    kept.sort_by_key(|k| (std::cmp::Reverse(k.elapsed_us()), k.trace));
    for k in kept.iter().take(8) {
        println!(
            "  [{}] {} {} {}us{}",
            k.reason.label(),
            k.trace,
            k.root_name(),
            k.elapsed_us(),
            if k.has_error() { " (error)" } else { "" }
        );
    }

    println!();
    println!("== scheduler profile ==");
    print!("{}", fleet.profile_lines());
    eprintln!("wall profile: {}", fleet.par().profile_json());
}
