//! Figure 5: the Universal Remote Controller.
//!
//! "It is an X10 remote controller that allows us to control not only
//! X10 devices but also Jini and HAVi services that are connected via
//! our middleware. The person in the picture is controlling a Jini
//! Laserdisc with an X10 remote controller, and he can also control a
//! HAVi DV camera." (§4.2)
//!
//! Run with: `cargo run --example universal_remote`

use havi::FcmKind;
use metaware::pcm::x10::Route;
use metaware::{house, unit, SmartHome};
use simnet::SimDuration;
use soap::Value;
use x10::{Button, Function};

fn main() {
    let home = SmartHome::builder().build().expect("home assembles");
    let x10 = home.x10.as_ref().unwrap();

    // Watch the remote's presses cross the middleware boundary: every
    // gateway records spans, stitched per trace across islands.
    home.set_tracing(true);

    // --- Server Proxy configuration: the PCM routing table ----------------
    // Button 1 stays native X10 (the hall lamp). Buttons 5 and 6 are
    // re-routed to the Jini laserdisc and the HAVi DV camera.
    for (btn, function, service, operation) in [
        (5, Function::On, "laserdisc", "play"),
        (5, Function::Off, "laserdisc", "stop"),
        (6, Function::On, "dv-camera", "record"),
        (6, Function::Off, "dv-camera", "stop"),
    ] {
        let args = if service == "laserdisc" && operation == "play" {
            vec![("chapter".into(), Value::Int(1))]
        } else {
            vec![]
        };
        x10.pcm.add_route(Route {
            house: house('A'),
            unit: unit(btn),
            function,
            service: service.into(),
            operation: operation.into(),
            args,
        });
    }
    // The PCM watches the powerline through the CM11A, twice a second.
    let _poller = x10.pcm.start_polling(SimDuration::from_millis(500));

    let mut remote = x10.remote();
    println!("The person picks up the X10 remote (house code A)...\n");

    // Button 1: a plain X10 lamp — handled natively on the powerline.
    println!("[press 1 ON ] hall lamp");
    remote.press(Button::On(1));
    home.sim.run_for(SimDuration::from_secs(1));
    println!("  hall lamp: {}", on_off(x10.hall_lamp.is_on()));

    // Button 5: the Jini laserdisc, via powerline -> CM11A -> X10 PCM ->
    // SOAP -> Jini gateway -> RMI proxy.
    println!("\n[press 5 ON ] Jini laserdisc");
    remote.press(Button::On(5));
    home.sim.run_for(SimDuration::from_secs(1));
    let ld = *home.jini.as_ref().unwrap().laserdisc.lock();
    println!("  laserdisc: playing={} chapter={}", ld.playing, ld.chapter);

    // Button 6: the HAVi DV camera.
    println!("\n[press 6 ON ] HAVi DV camera");
    remote.press(Button::On(6));
    home.sim.run_for(SimDuration::from_secs(1));
    let cam = home
        .havi
        .as_ref()
        .unwrap()
        .camcorder
        .fcm(FcmKind::DvCamera)
        .unwrap();
    println!("  dv-camera transport: {}", cam.state().transport.label());

    println!("\n[press 5 OFF] [press 6 OFF]");
    remote.press(Button::Off(5));
    remote.press(Button::Off(6));
    home.sim.run_for(SimDuration::from_secs(1));
    println!(
        "  laserdisc playing={}  dv-camera={}",
        home.jini.as_ref().unwrap().laserdisc.lock().playing,
        home.havi
            .as_ref()
            .unwrap()
            .camcorder
            .fcm(FcmKind::DvCamera)
            .unwrap()
            .state()
            .transport
            .label(),
    );

    // Where did each press spend its time? One trace tree per press,
    // hop by hop across both gateways.
    println!("\n--- trace trees (virtual time and backbone bytes per hop) ---");
    print!("{}", home.render_traces());

    println!(
        "\n\"We could develop this application without any difficulties since\n\
         VSGs and PCMs hide the differentiation between these middleware.\" (§4.2)"
    );
}

fn on_off(b: bool) -> &'static str {
    if b {
        "ON"
    } else {
        "off"
    }
}
