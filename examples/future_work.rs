//! §6's future work, implemented: dynamic service activation and the
//! coexisting AV meta-middleware.
//!
//! "We are working on the deployment of novel CORBA-based middleware
//! which applies dynamic service activation, conversion of multimedia
//! streams for multimedia application … And the middleware would be able
//! to coexist with our framework described in this paper, at the same
//! area."
//!
//! Run with: `cargo run --example future_work`

use metaware::pcm::havi::HaviPcm;
use metaware::{Activator, AvBroker, AvFormat, Middleware, SmartHome, VirtualService};
use simnet::{Sim, SimDuration};
use soap::Value;
use std::sync::Arc;

fn main() {
    let home = SmartHome::builder().build().expect("home assembles");
    let havi = home.havi.as_ref().unwrap();

    // ----- Part 1: dynamic service activation --------------------------------
    println!("=== Dynamic service activation ===\n");
    let activator = Activator::new(&havi.vsg);
    activator
        .register(
            VirtualService::new(
                "projector",
                metaware::catalog::display(),
                Middleware::Havi,
                havi.vsg.name(),
            ),
            SimDuration::from_secs(3), // lamp warm-up
            |_| {
                println!("  [projector powers up]");
                Ok(Box::new(|_: &Sim, op: &str, args: &[(String, Value)]| {
                    if op == "show" {
                        let text = args
                            .iter()
                            .find(|(k, _)| k == "text")
                            .and_then(|(_, v)| v.as_str())
                            .unwrap_or("");
                        println!("  [projector displays: {text:?}]");
                    }
                    Ok(Value::Null)
                }))
            },
        )
        .unwrap();
    let _reaper = activator.start_reaper(SimDuration::from_secs(30), SimDuration::from_secs(120));

    println!("projector registered but dormant; it is already discoverable:");
    println!(
        "  VSR resolve(projector) -> {}",
        havi.vsg.resolve("projector").unwrap().endpoint()
    );

    println!("\nfirst use (note the 3s spin-up):");
    let t0 = home.sim.now();
    home.invoke_from(
        Middleware::Jini,
        "projector",
        "show",
        &[("text".into(), Value::Str("Welcome home".into()))],
    )
    .unwrap();
    println!("  first call took {}", home.sim.now() - t0);
    let t0 = home.sim.now();
    home.invoke_from(
        Middleware::Jini,
        "projector",
        "show",
        &[("text".into(), Value::Str("Still on".into()))],
    )
    .unwrap();
    println!("  second call took {}", home.sim.now() - t0);

    println!("\nafter 5 idle minutes the reaper powers it down:");
    home.sim.run_for(SimDuration::from_secs(300));
    println!("  activator stats: {:?}", activator.stats());

    // ----- Part 2: the AV meta-middleware -------------------------------------
    println!("\n=== AV meta-middleware (coexisting) ===\n");
    let broker = AvBroker::new(
        &havi.vsg,
        Arc::new(HaviPcm::start(&havi.vsg, &havi.bus, havi.registry.seid())),
        &havi.streams,
    );
    broker.pcm().import_services().expect("PCM import");

    // Control plane over the framework; data plane on native 1394.
    let session = broker
        .open_session(
            &home.sim,
            "dv-camera",
            AvFormat::Dv,
            "living-room-vcr",
            AvFormat::Dv,
        )
        .unwrap();
    println!(
        "session {} open on isochronous channel {}",
        session.id, session.connection.channel
    );
    let report = broker.pump(&home.sim, &session, SimDuration::from_secs(10));
    println!(
        "10s of DV: {} packets, {:.1} MB, {} late, jitter <= {}us",
        report.stream.packets,
        report.stream.bytes as f64 / 1e6,
        report.stream.late_packets,
        report.stream.max_jitter_us
    );

    // Transcoded session: the broker converts DV -> MPEG-2, halving the
    // reserved bandwidth ("conversion of multimedia streams", §6).
    let session2 = broker
        .open_session(
            &home.sim,
            "dv-camera",
            AvFormat::Dv,
            "tv-display",
            AvFormat::Mpeg2,
        )
        .unwrap();
    let report2 = broker.pump(&home.sim, &session2, SimDuration::from_secs(10));
    println!(
        "10s transcoded to MPEG-2: {:.1} MB delivered, {:.1} MB saved",
        report2.stream.bytes as f64 / 1e6,
        report2.bytes_saved as f64 / 1e6
    );

    // Coexistence: while streams flow, control calls keep crossing the
    // framework...
    home.invoke_from(Middleware::X10, "living-room-vcr", "status", &[])
        .unwrap();
    println!("\ncontrol traffic still flows through the VSG during streaming ✓");

    // ...and streams refuse to cross it.
    let err = broker
        .open_session(
            &home.sim,
            "dv-camera",
            AvFormat::Dv,
            "hall-lamp",
            AvFormat::Dv,
        )
        .unwrap_err();
    println!("asking for a cross-island stream is refused honestly:\n  {err}");

    broker.close_session(session.id).unwrap();
    broker.close_session(session2.id).unwrap();
    println!(
        "\n\"it is impossible to solve all problems by single Meta middleware …\n\
         another Meta middleware should be developed\" (§6) — and here they coexist."
    );
}
