//! §6's headline claim: "new middleware can participate in our framework
//! smoothly, by developing new PCM which converts the middleware
//! protocol to VSG protocol."
//!
//! UPnP (§5) is the demonstration: it joins the federation with exactly
//! one new component — `metaware::pcm::upnp` — and zero changes to the
//! framework, the other PCMs, or any legacy client.
//!
//! Run with: `cargo run --example new_middleware`

use metaware::{Middleware, SmartHome};
use soap::Value;
use upnp::{ControlPoint, SSDP_ALL};

fn main() {
    // The home as shipped: four middleware, no UPnP.
    let before = SmartHome::builder().build().expect("home assembles");
    println!(
        "home without UPnP: {} services, gateways: jini-gw havi-gw x10-gw inet-gw",
        before.service_count()
    );

    // Rebuild with the UPnP island switched on. The only new moving part
    // is the UPnP PCM; everything else is the identical framework.
    let home = SmartHome::builder()
        .upnp(true)
        .build()
        .expect("home assembles");
    println!(
        "home with UPnP:    {} services (+porch-light)\n",
        home.service_count()
    );

    // Direction 1 — UPnP service used by legacy islands:
    println!("[jini-island] porch-light.switch(on=true)");
    home.invoke_from(
        Middleware::Jini,
        "porch-light",
        "switch",
        &[("on".into(), Value::Bool(true))],
    )
    .unwrap();
    println!(
        "  physical porch light: {}\n",
        if *home.upnp.as_ref().unwrap().porch_on.lock() {
            "ON"
        } else {
            "off"
        }
    );

    // Direction 2 — legacy services used by an unmodified UPnP control
    // point: the Server Proxy hosts bridge devices on the UPnP network.
    let upnp_island = home.upnp.as_ref().unwrap();
    for name in ["fridge", "hall-lamp"] {
        let record = upnp_island.vsg.resolve(name).unwrap();
        upnp_island.pcm.export_remote(&record).unwrap();
    }

    let legacy_cp = ControlPoint::new(&upnp_island.net, "legacy-control-point");
    println!("[unmodified UPnP control point] M-SEARCH ssdp:all ...");
    let hits = legacy_cp.discover(SSDP_ALL);
    for hit in &hits {
        let desc = legacy_cp.describe(hit).unwrap();
        println!("  found {} ({})", desc.friendly_name, desc.udn);
    }

    // Call the (actually Jini) fridge through plain UPnP SOAP control.
    let fridge = hits
        .iter()
        .find(|h| h.usn.contains("fridge"))
        .expect("bridge device for the fridge");
    let desc = legacy_cp.describe(fridge).unwrap();
    let svc = &desc.services[0];
    let t = legacy_cp
        .invoke(
            fridge.node,
            &svc.control_url,
            &svc.service_type,
            "temperature",
            &[],
        )
        .unwrap();
    println!("\ncontrol-point> fridge.temperature() -> {t}  (a Jini appliance, via UPnP)");

    // And the X10 hall lamp.
    let lamp = hits.iter().find(|h| h.usn.contains("hall-lamp")).unwrap();
    let desc = legacy_cp.describe(lamp).unwrap();
    let svc = &desc.services[0];
    legacy_cp
        .invoke(
            lamp.node,
            &svc.control_url,
            &svc.service_type,
            "switch",
            &[("on", Value::Bool(true))],
        )
        .unwrap();
    println!(
        "control-point> hall-lamp.switch(true) -> physical lamp: {}",
        if home.x10.as_ref().unwrap().hall_lamp.is_on() {
            "ON"
        } else {
            "off"
        }
    );

    println!("\nLines of framework code changed to admit UPnP: 0");
    println!("New components: 1 (the UPnP PCM) — exactly the paper's promise.");
}
