//! Fleet drill: a fleet of homes advanced on the conservative parallel
//! scheduler, with a chaos schedule jittered per island, then every
//! deterministic artefact printed — availability counts, metrics
//! snapshots, sampled traces from the flight recorder, the merged
//! fleet snapshot, and per-island profiler counts.
//!
//! Run with: `cargo run --example fleet_drill`
//!
//! The printed output is a pure function of `CHAOS_SEED` (default 13)
//! and never of `SIM_THREADS` — CI diffs a 1-thread run against a
//! 4-thread run byte for byte. The worker thread count is reported on
//! stderr so stdout stays comparable. When `OBS_EXPORT_DIR` is set,
//! the OpenMetrics and JSON-lines exports are also written there
//! (CI uploads them as artifacts from the chaos matrix).

use metaware::{CloudConfig, HomeFleet, Middleware, ResiliencePolicy, SamplePolicy, SmartHome};
use simnet::{FaultPlan, SimDuration};

const HOMES: usize = 4;

fn main() {
    let seed: u64 = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(13);

    // Two VSR replicas arm the anti-entropy timer, so the parallel
    // phase below has periodic work to schedule on every island.
    let fleet = HomeFleet::build_with(
        SmartHome::builder()
            .seed(seed)
            .vsr_replicas(2)
            .cloud(CloudConfig::default()),
        HOMES,
        |island, b| {
            // Stagger periodic work so islands don't act in lockstep.
            b.vsr_sync_phase(SimDuration::from_millis(u64::from(island) * 17))
        },
    )
    .expect("fleet assembles");
    eprintln!(
        "fleet_drill: {} homes, {} worker thread(s), seed {}",
        fleet.len(),
        fleet.threads(),
        seed
    );

    for home in fleet.homes() {
        home.set_resilience(ResiliencePolicy {
            breaker_open_window: SimDuration::from_millis(500),
            ..ResiliencePolicy::default()
        });
        // Warm the cross-island route so the drill measures the fault
        // schedule, not cold resolution.
        home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
            .unwrap();
        let _ = home.take_spans();
    }
    fleet.set_tracing(true);

    // One shared schedule — loss spike then partition — jittered per
    // island (deterministically from the seed) so homes aren't struck
    // at the same virtual instant. Island 0 sees it unshifted.
    let t0 = fleet.home(0).sim.now();
    let at = |ms: u64| t0 + SimDuration::from_millis(ms);
    let plan = FaultPlan::new().loss_spike(at(200), at(900), 0.9);
    fleet.set_fault_plan_jittered(&plan, seed, SimDuration::from_millis(400));

    // Poll every home's hall lamp through the schedule and score
    // availability per island.
    println!("availability through the jittered loss spike:");
    for (island, home) in fleet.homes().iter().enumerate() {
        let mut ok = 0u32;
        let mut err = 0u32;
        for i in 0..8u64 {
            let target = t0 + SimDuration::from_millis(i * 250);
            if home.sim.now() < target {
                home.sim.advance(target.since(home.sim.now()));
            }
            match home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[]) {
                Ok(_) => ok += 1,
                Err(_) => err += 1,
            }
        }
        println!("  island {island}: {ok} ok, {err} failed");
    }

    // Let the fleet idle forward together so timers (anti-entropy,
    // mux flushes) drain on the parallel scheduler.
    let stats = fleet.run_for(SimDuration::from_secs(2));
    println!(
        "scheduler: {} windows, {} events, {} cross-island sends",
        stats.windows, stats.events, stats.cross_sends
    );

    // --- Cloud outage drill: sever every home's WAN, buffer state in
    // the outbox, heal, and reconcile via the digest exchange so only
    // the missed suffix is resent.
    println!("\ncloud outage drill (partition -> buffer -> heal -> delta reconciliation):");
    let b0 = &fleet.home(0).cloud.as_ref().expect("cloud attached").bridge;
    let cut_at = fleet.home(0).sim.now();
    let cut = FaultPlan::new().partition(
        vec![b0.home_node()],
        vec![b0.cloud_node()],
        cut_at + SimDuration::from_secs(1),
        cut_at + SimDuration::from_secs(25),
    );
    fleet.set_wan_fault_plan_jittered(&cut, seed, SimDuration::from_secs(2));
    fleet.run_for(SimDuration::from_secs(5)); // the cut bites everywhere
    for home in fleet.homes() {
        let bridge = &home.cloud.as_ref().unwrap().bridge;
        for device in ["hall-lamp", "desk-lamp", "fan"] {
            let _ = bridge.notify_state(device, "outage-update");
        }
    }
    fleet.run_for(SimDuration::from_secs(5)); // drains fail, outbox holds
    for (island, home) in fleet.homes().iter().enumerate() {
        let bridge = &home.cloud.as_ref().unwrap().bridge;
        println!(
            "  island {island}: mid-outage connected={} buffered={}",
            bridge.is_connected(),
            bridge.outbox_len()
        );
    }
    fleet.run_for(SimDuration::from_secs(60)); // heal, backoff, drain
    for (island, home) in fleet.homes().iter().enumerate() {
        let cloud = home.cloud.as_ref().unwrap();
        let stats = cloud.bridge.stats();
        println!(
            "  island {island}: healed connected={} outbox={} reconnects={} \
             digest-dropped={} applied_through={} fan={:?}",
            cloud.bridge.is_connected(),
            cloud.bridge.outbox_len(),
            stats.reconnects,
            stats.reconciled,
            cloud.cell.applied_through(),
            cloud.cell.device_state("fan")
        );
    }
    let cloud_summary = fleet.cloud_backbone().summary();
    println!(
        "  fleet: delivered {}/{} ({:.1}%), duplicates {}, staleness p99 {}us",
        cloud_summary.notifications_delivered,
        cloud_summary.notifications_raised,
        cloud_summary.delivered_ratio * 100.0,
        cloud_summary.duplicate_effects,
        cloud_summary.staleness_p99_us
    );

    println!("\nper-gateway metrics snapshots (island-tagged):");
    for snap in fleet.metrics_snapshots() {
        println!("{}", snap.to_json());
    }

    println!("\nmerged fleet snapshot (bucket-wise, O(buckets) memory):");
    println!("{}", fleet.fleet_snapshot().to_json());

    // Harvest the drill's traces through the flight recorder at a 25%
    // head rate: errors and breaker trips always survive, everything
    // else keeps or drops as a pure function of the trace id.
    fleet.set_sampling(SamplePolicy {
        head_per_10k: 2_500,
        top_slow: 2,
        capacity: 64,
    });
    let rec = fleet.harvest_traces();
    println!(
        "\nflight recorder: seen={} kept={} sampled_out={} evicted={}",
        rec.seen, rec.kept, rec.sampled_out, rec.evicted
    );

    // Exported artifacts, written before the ring is drained so the
    // JSON-lines file carries the kept traces.
    if let Ok(dir) = std::env::var("OBS_EXPORT_DIR") {
        std::fs::create_dir_all(&dir).expect("export dir");
        let om = format!("{dir}/fleet_metrics.om");
        let ev = format!("{dir}/fleet_events.jsonl");
        std::fs::write(&om, fleet.export_openmetrics()).expect("write openmetrics");
        std::fs::write(&ev, fleet.export_events_jsonl()).expect("write events");
        eprintln!("exported {om} and {ev}");
    }

    println!("\nkept traces (island order):");
    for kept in fleet.drain_flight() {
        println!(
            "  [{}] {} {} {}us{}",
            kept.reason.label(),
            kept.trace,
            kept.root_name(),
            kept.elapsed_us(),
            if kept.has_error() { " (error)" } else { "" }
        );
    }

    println!("\nper-island profiler (deterministic counts only):");
    print!("{}", fleet.profile_lines());

    println!(
        "\nvirtual clocks: {} (deterministic — rerun and compare)",
        fleet
            .homes()
            .iter()
            .map(|h| h.sim.now().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
}
