//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace uses: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_filter`/`boxed`,
//! `any::<T>()` for primitives, ranges and regex-literal strings as
//! strategies, `collection::{vec, btree_set, btree_map}`,
//! `option::of`, the `proptest!`/`prop_oneof!`/`prop_assert*!`
//! macros, and a deterministic `test_runner::TestRunner`-style
//! driver. No shrinking: a failing case reports the panic message and
//! the generated inputs' `Debug` form where available.

pub mod test_runner {
    //! Deterministic case driver, RNG, and config.

    /// Configuration for a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required per property.
        pub cases: u32,
        /// Cap on generate-reject loops (filters/assume) before the
        /// harness gives up with an error.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            // Upstream defaults to 256; the simulators behind these
            // properties make that needlessly slow, so default lower.
            ProptestConfig {
                cases: 32,
                max_global_rejects: 4096,
            }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` successful cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was vetoed by `prop_assume!` — try another.
        Reject(String),
        /// A `prop_assert*!` failed — the property is false.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic generator (xoshiro256++ seeded from the test
    /// name) so failures reproduce run-to-run.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Seeds from an arbitrary label (typically the test name).
        pub fn from_label(label: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let mut sm = h;
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform usize from an inclusive range.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            debug_assert!(lo <= hi);
            lo + self.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Drives one property: generates cases until `config.cases` pass,
    /// a case fails, or the reject budget is exhausted.
    pub fn run_property<T, G, F>(name: &str, config: &ProptestConfig, generate: G, mut test: F)
    where
        G: Fn(&mut TestRng) -> T,
        F: FnMut(T) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::from_label(name);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < config.cases {
            let case = generate(&mut rng);
            match test(case) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > config.max_global_rejects {
                        panic!(
                            "proptest '{name}': too many rejected cases \
                             ({rejected}) — prop_assume/prop_filter too strict"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed after {passed} passing cases: {msg}");
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and core combinators.

    use crate::string::Pattern;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying `pred`; gives up loudly if the
        /// predicate rejects too often.
        fn prop_filter<F>(self, reason: impl ToString, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason: reason.to_string(),
                pred,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Rc::new(self),
            }
        }
    }

    /// Object-safe mirror of [`Strategy`] for boxing.
    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        inner: Rc<dyn DynStrategy<T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> BoxedStrategy<T> {
            BoxedStrategy {
                inner: Rc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.dyn_generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..500 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 500 candidates in a row: {}",
                self.reason
            );
        }
    }

    /// Weighted choice among same-typed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u32,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Union<T> {
            Union {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    /// Builds a [`Union`] from weighted arms (used by `prop_oneof!`).
    pub fn union<T>(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof: weights sum to zero");
        Union { arms, total }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total as u64) as u32;
            for (weight, arm) in &self.arms {
                if pick < *weight {
                    return arm.generate(rng);
                }
                pick -= weight;
            }
            unreachable!("prop_oneof: weight walk overran total")
        }
    }

    /// Primitives with a canonical uniform strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draws a uniformly distributed value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-balanced, spanning many magnitudes.
            let mag = rng.unit_f64();
            let exp = rng.below(61) as i32 - 30;
            let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
            sign * mag * 2f64.powi(exp)
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f64::arbitrary(rng) as f32
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Mostly printable ASCII; occasionally wider codepoints.
            if rng.below(8) == 0 {
                char::from_u32(rng.below(0xD800) as u32).unwrap_or('\u{FFFD}')
            } else {
                (b' ' + rng.below(95) as u8) as char
            }
        }
    }

    /// Strategy form of [`Arbitrary`].
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Any<T> {
            Any {
                _marker: PhantomData,
            }
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (`any::<u8>()`, …).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "range strategy: empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "range strategy: empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "range strategy: empty range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            Pattern::parse(self).render(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $v:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A a)
        (A a, B b)
        (A a, B b, C c)
        (A a, B b, C c, D d)
        (A a, B b, C c, D d, E e)
        (A a, B b, C c, D d, E e, F f)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::*`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for a generated collection.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.usize_in(self.lo, self.hi)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "collection size: empty range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "collection size: empty range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` with the given element strategy and length bounds.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet` with the given element strategy and size bounds.
    /// May come up short if the element domain is too small for the
    /// requested size.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 10 + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// `BTreeMap` with the given key/value strategies and size bounds.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeMap::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 10 + 16 {
                out.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod option {
    //! `Option` strategies (`prop::option::of`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`; `None` one time in four.
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wraps `inner`'s values in `Some`, mixing in `None`s.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod string {
    //! Regex-subset string generation backing `"pat"` strategies.
    //!
    //! Supported: literals, `.`, escapes (`\n` `\t` `\r` `\d` `\w`
    //! `\s` and escaped metacharacters), classes `[a-z0-9_.-]`
    //! (ranges + literals, no negation), groups `(...)`, alternation
    //! `|`, and quantifiers `*` `+` `?` `{n}` `{m,n}` `{m,}`.
    //! Unsupported syntax panics at generation time so typos surface
    //! immediately.

    use crate::test_runner::TestRng;

    const UNBOUNDED_EXTRA: u32 = 8;

    #[derive(Debug)]
    enum Ast {
        Alt(Vec<Ast>),
        Seq(Vec<Ast>),
        Rep(Box<Ast>, u32, u32),
        Class(Vec<(char, char)>),
        Lit(char),
        Dot,
    }

    /// A parsed regex-subset pattern.
    #[derive(Debug)]
    pub struct Pattern {
        root: Ast,
    }

    impl Pattern {
        /// Parses `pattern`, panicking on unsupported syntax.
        pub fn parse(pattern: &str) -> Pattern {
            let chars: Vec<char> = pattern.chars().collect();
            let mut pos = 0;
            let root = parse_alt(&chars, &mut pos, pattern);
            if pos != chars.len() {
                panic!("unsupported regex syntax at byte {pos} in {pattern:?}");
            }
            Pattern { root }
        }

        /// Generates one matching string.
        pub fn render(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            render(&self.root, rng, &mut out);
            out
        }
    }

    fn parse_alt(chars: &[char], pos: &mut usize, pat: &str) -> Ast {
        let mut branches = vec![parse_seq(chars, pos, pat)];
        while *pos < chars.len() && chars[*pos] == '|' {
            *pos += 1;
            branches.push(parse_seq(chars, pos, pat));
        }
        if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            Ast::Alt(branches)
        }
    }

    fn parse_seq(chars: &[char], pos: &mut usize, pat: &str) -> Ast {
        let mut items = Vec::new();
        while *pos < chars.len() && chars[*pos] != '|' && chars[*pos] != ')' {
            let atom = parse_atom(chars, pos, pat);
            items.push(parse_quantifier(atom, chars, pos, pat));
        }
        Ast::Seq(items)
    }

    fn parse_atom(chars: &[char], pos: &mut usize, pat: &str) -> Ast {
        match chars[*pos] {
            '(' => {
                *pos += 1;
                // Non-capturing group marker is irrelevant here.
                if chars[*pos..].starts_with(&['?', ':']) {
                    *pos += 2;
                }
                let inner = parse_alt(chars, pos, pat);
                if *pos >= chars.len() || chars[*pos] != ')' {
                    panic!("unclosed group in regex {pat:?}");
                }
                *pos += 1;
                inner
            }
            '[' => {
                *pos += 1;
                parse_class(chars, pos, pat)
            }
            '.' => {
                *pos += 1;
                Ast::Dot
            }
            '\\' => {
                *pos += 1;
                parse_escape(chars, pos, pat)
            }
            '*' | '+' | '?' | '{' => {
                panic!("dangling quantifier in regex {pat:?}")
            }
            c => {
                *pos += 1;
                Ast::Lit(c)
            }
        }
    }

    fn parse_escape(chars: &[char], pos: &mut usize, pat: &str) -> Ast {
        if *pos >= chars.len() {
            panic!("trailing backslash in regex {pat:?}");
        }
        let c = chars[*pos];
        *pos += 1;
        match c {
            'n' => Ast::Lit('\n'),
            't' => Ast::Lit('\t'),
            'r' => Ast::Lit('\r'),
            '0' => Ast::Lit('\0'),
            'd' => Ast::Class(vec![('0', '9')]),
            'w' => Ast::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
            's' => Ast::Class(vec![(' ', ' '), ('\t', '\t'), ('\n', '\n')]),
            c if c.is_ascii_alphanumeric() => {
                panic!("unsupported escape \\{c} in regex {pat:?}")
            }
            c => Ast::Lit(c),
        }
    }

    fn parse_class(chars: &[char], pos: &mut usize, pat: &str) -> Ast {
        if *pos < chars.len() && chars[*pos] == '^' {
            panic!("negated classes unsupported in regex {pat:?}");
        }
        let mut ranges = Vec::new();
        loop {
            if *pos >= chars.len() {
                panic!("unclosed class in regex {pat:?}");
            }
            if chars[*pos] == ']' {
                *pos += 1;
                break;
            }
            let lo = class_char(chars, pos, pat);
            // `-` binds a range unless it is the last char in the class.
            if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']' {
                *pos += 1;
                let hi = class_char(chars, pos, pat);
                assert!(lo <= hi, "inverted range {lo}-{hi} in regex {pat:?}");
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        assert!(!ranges.is_empty(), "empty class in regex {pat:?}");
        Ast::Class(ranges)
    }

    fn class_char(chars: &[char], pos: &mut usize, pat: &str) -> char {
        let c = chars[*pos];
        *pos += 1;
        if c != '\\' {
            return c;
        }
        if *pos >= chars.len() {
            panic!("trailing backslash in regex {pat:?}");
        }
        let esc = chars[*pos];
        *pos += 1;
        match esc {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            '0' => '\0',
            c => c,
        }
    }

    fn parse_quantifier(atom: Ast, chars: &[char], pos: &mut usize, pat: &str) -> Ast {
        if *pos >= chars.len() {
            return atom;
        }
        let (lo, hi) = match chars[*pos] {
            '*' => {
                *pos += 1;
                (0, UNBOUNDED_EXTRA)
            }
            '+' => {
                *pos += 1;
                (1, 1 + UNBOUNDED_EXTRA)
            }
            '?' => {
                *pos += 1;
                (0, 1)
            }
            '{' => {
                *pos += 1;
                let lo = parse_number(chars, pos, pat);
                let hi = if chars.get(*pos) == Some(&',') {
                    *pos += 1;
                    if chars.get(*pos) == Some(&'}') {
                        lo + UNBOUNDED_EXTRA
                    } else {
                        parse_number(chars, pos, pat)
                    }
                } else {
                    lo
                };
                if chars.get(*pos) != Some(&'}') {
                    panic!("malformed {{m,n}} in regex {pat:?}");
                }
                *pos += 1;
                assert!(lo <= hi, "inverted counts {{{lo},{hi}}} in regex {pat:?}");
                (lo, hi)
            }
            _ => return atom,
        };
        Ast::Rep(Box::new(atom), lo, hi)
    }

    fn parse_number(chars: &[char], pos: &mut usize, pat: &str) -> u32 {
        let start = *pos;
        while *pos < chars.len() && chars[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if start == *pos {
            panic!("expected a count in regex {pat:?}");
        }
        chars[start..*pos]
            .iter()
            .collect::<String>()
            .parse()
            .unwrap()
    }

    fn render(ast: &Ast, rng: &mut TestRng, out: &mut String) {
        match ast {
            Ast::Alt(branches) => {
                let pick = rng.below(branches.len() as u64) as usize;
                render(&branches[pick], rng, out);
            }
            Ast::Seq(items) => {
                for item in items {
                    render(item, rng, out);
                }
            }
            Ast::Rep(inner, lo, hi) => {
                let count = *lo as u64 + rng.below((*hi - *lo + 1) as u64);
                for _ in 0..count {
                    render(inner, rng, out);
                }
            }
            Ast::Class(ranges) => {
                // Weight by range width for uniformity over the class.
                let total: u64 = ranges
                    .iter()
                    .map(|(lo, hi)| *hi as u64 - *lo as u64 + 1)
                    .sum();
                let mut pick = rng.below(total);
                for (lo, hi) in ranges {
                    let width = *hi as u64 - *lo as u64 + 1;
                    if pick < width {
                        out.push(char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo));
                        return;
                    }
                    pick -= width;
                }
            }
            Ast::Lit(c) => out.push(*c),
            Ast::Dot => out.push((b' ' + rng.below(95) as u8) as char),
        }
    }
}

pub mod prelude {
    //! `use proptest::prelude::*;` — everything the tests need.

    pub use crate as prop;
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`] — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __strategies = ( $( ($strat), )+ );
                $crate::test_runner::run_property(
                    stringify!($name),
                    &__config,
                    |__rng| $crate::strategy::Strategy::generate(&__strategies, __rng),
                    |__case| {
                        let ( $($arg,)+ ) = __case;
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Weighted (or uniform) choice among strategies of the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $( (($weight) as u32, $crate::strategy::Strategy::boxed($strat)), )+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)), )+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), left, right
            )));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Rejects the current case (drawing a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        fn ranges_and_maps(x in 0u8..16, y in (1i64..=8).prop_map(|v| v * 2)) {
            prop_assert!(x < 16);
            prop_assert!((2..=16).contains(&y) && y % 2 == 0);
        }

        fn strings_match_patterns(s in "[a-zA-Z][a-zA-Z0-9_.-]{0,8}") {
            prop_assert!(!s.is_empty() && s.len() <= 9, "len {}", s.len());
            prop_assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            prop_assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || "_.-".contains(c)));
        }

        fn collections_respect_bounds(
            v in prop::collection::vec(any::<u8>(), 0..10),
            m in prop::collection::btree_map(0u8..50, any::<bool>(), 1..5),
            o in prop::option::of(Just(7u8)),
        ) {
            prop_assert!(v.len() < 10);
            prop_assert!(!m.is_empty() && m.len() < 5);
            prop_assert!(o.is_none() || o == Some(7));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        fn oneof_and_filter(
            tag in prop_oneof![4 => Just("leaf"), 1 => Just("node")],
            n in (0u32..1_000).prop_filter("even", |n| n % 2 == 0),
        ) {
            prop_assert!(tag == "leaf" || tag == "node");
            prop_assert_eq!(n % 2, 0);
            prop_assume!(n < 990);
            prop_assert_ne!(n, 991);
        }
    }

    #[test]
    fn regex_alternation_and_groups() {
        let mut rng = TestRng::from_label("regex");
        for _ in 0..200 {
            let s = crate::string::Pattern::parse("(ab|cd)+x?").render(&mut rng);
            prop_is_ab_cd(&s);
        }
    }

    fn prop_is_ab_cd(s: &str) {
        let body = s.strip_suffix('x').unwrap_or(s);
        assert!(!body.is_empty());
        let mut rest = body;
        while !rest.is_empty() {
            rest = rest
                .strip_prefix("ab")
                .or_else(|| rest.strip_prefix("cd"))
                .unwrap_or_else(|| panic!("bad chunk in {s:?}"));
        }
    }
}
