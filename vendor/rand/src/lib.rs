//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_range}` for the
//! primitive types that appear in the simulators. The generator is a
//! xoshiro256++ seeded via splitmix64 — deterministic and fast, but
//! not bit-compatible with upstream `StdRng` (nothing here relies on
//! upstream's exact stream).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core trait for generators: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Trait for generators that can be built from a seed.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-size byte array for `StdRng`).
    type Seed;

    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64`, expanding it via splitmix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniformly distributed value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws uniformly from `[0, bound)` without modulo bias.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection sampling on the top of the range keeps the draw unbiased.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience methods available on every generator.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4]; // xoshiro must not start all-zero
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..2000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let g = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&g));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
