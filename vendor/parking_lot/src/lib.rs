//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the subset of `parking_lot` the workspace actually
//! uses — a `Mutex` whose `lock()` returns a guard directly (no
//! `Result`, poisoning is swallowed) — implemented over `std::sync`.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex`, panics in other holders do not poison the
    /// lock for subsequent callers.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { guard }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Mutex<T> {
        Mutex::new(value)
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    guard: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: ?Sized + fmt::Display> fmt::Display for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
