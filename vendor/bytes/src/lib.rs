//! Offline stand-in for the `bytes` crate.
//!
//! Provides the [`Bytes`] subset this workspace uses: a cheaply
//! clonable, immutable byte buffer backed by `Arc<[u8]>`.

#![warn(missing_docs)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Copies this buffer into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A `&[u8]` view of the buffer.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.to_vec()
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_views() {
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(c.to_vec(), vec![1, 2, 3]);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"hi").as_slice(), b"hi");
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\n")), "b\"a\\n\"");
    }
}
