//! Offline stand-in for the `criterion` crate.
//!
//! The workspace's benches use criterion only as a harness:
//! `Criterion::bench_function`, `Bencher::{iter, iter_with_setup}`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//! All the real measurement in this repo happens in simulated time and
//! is reported by the benches themselves, so this stand-in just runs
//! each routine a few times, prints a coarse wall-clock number, and
//! stays far away from statistics.

#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported like criterion's.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Per-benchmark driver handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly, timing the batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Calls `setup` before each (untimed) and `routine` on its output
    /// (timed).
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Minimal criterion harness: runs each registered routine a small,
/// fixed number of iterations.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { iters: 3 }
    }
}

impl Criterion {
    /// Number of timed iterations per benchmark (default 3; the
    /// benches in this repo measure simulated time themselves).
    pub fn sample_size(&mut self, iters: usize) -> &mut Criterion {
        self.iters = iters.max(1) as u64;
        self
    }

    /// Runs `f` under the harness and prints a coarse timing line.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.as_secs_f64() / self.iters.max(1) as f64;
        println!("bench {id:<40} {:>10.3} ms/iter (wall)", per_iter * 1e3);
        self
    }

    /// Opens a named group of benchmarks, mirroring criterion's
    /// `BenchmarkGroup` API.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// No-op config hook kept for API compatibility.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// No-op finalizer kept for API compatibility.
    pub fn final_summary(&mut self) {}
}

/// A named collection of benchmarks sharing configuration, opened with
/// [`Criterion::benchmark_group`]. Benchmark ids are printed as
/// `group/id`, like the real crate.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark in this group.
    pub fn sample_size(&mut self, iters: usize) -> &mut Self {
        self.criterion.sample_size(iters);
        self
    }

    /// Runs `f` under the harness, labelled `group/id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{id}", self.name);
        self.criterion.bench_function(&label, f);
        self
    }

    /// No-op finalizer kept for API compatibility.
    pub fn finish(self) {}
}

/// Declares a benchmark group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_routines() {
        let mut count = 0u64;
        Criterion::default()
            .sample_size(5)
            .bench_function("counting", |b| b.iter(|| count += 1));
        assert_eq!(count, 5);

        let mut sum = 0u64;
        Criterion::default().bench_function("setup", |b| b.iter_with_setup(|| 2u64, |x| sum += x));
        assert_eq!(sum, 6);
    }
}
