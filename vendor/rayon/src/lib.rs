//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the small slice of `rayon` the workspace actually
//! uses: `ThreadPoolBuilder` → `ThreadPool` → `scope`/`spawn`. It is a
//! fixed-size worker pool over `std::thread` with a shared injector
//! queue — no work stealing, no parallel iterators. One deliberate
//! deviation from the real crate: `Scope::spawn` takes a plain
//! `FnOnce() + Send + 'static` (no `&Scope` argument and no borrowed
//! captures), which is all the conservative simulation executor needs
//! since it hands each worker cheap `'static` clones of island
//! handles.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

type Job = Box<dyn FnOnce() + Send>;

struct Injector {
    queue: Mutex<VecDeque<Job>>,
    /// Signalled when a job is pushed or the pool shuts down.
    work: Condvar,
    shutdown: AtomicBool,
}

impl Injector {
    fn push(&self, job: Job) {
        self.queue.lock().unwrap().push_back(job);
        self.work.notify_one();
    }

    fn pop_blocking(&self) -> Option<Job> {
        let mut queue = self.queue.lock().unwrap();
        loop {
            if let Some(job) = queue.pop_front() {
                return Some(job);
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            queue = self.work.wait(queue).unwrap();
        }
    }
}

/// Configures and builds a [`ThreadPool`], mirroring rayon's builder.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default configuration.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of worker threads (0 = one per available core).
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    /// Builds the pool, spawning its workers.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            self.num_threads
        };
        let injector = Arc::new(Injector {
            queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..n)
            .map(|i| {
                let injector = injector.clone();
                thread::Builder::new()
                    .name(format!("pool-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = injector.pop_blocking() {
                            job();
                        }
                    })
                    .map_err(|e| ThreadPoolBuildError(e.to_string()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ThreadPool { injector, workers })
    }
}

/// Error building a [`ThreadPool`] (worker thread spawn failed).
#[derive(Debug)]
pub struct ThreadPoolBuildError(String);

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build failed: {}", self.0)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A fixed set of worker threads fed from one shared queue.
pub struct ThreadPool {
    injector: Arc<Injector>,
    workers: Vec<thread::JoinHandle<()>>,
}

struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
}

/// Handle for spawning work inside [`ThreadPool::scope`]; the scope
/// call does not return until every spawned job has finished.
pub struct Scope<'pool> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
}

impl Scope<'_> {
    /// Queues `f` on the pool. Unlike real rayon the closure must be
    /// `'static`: pass owned handles (e.g. `Arc` clones), not borrows.
    pub fn spawn<F: FnOnce() + Send + 'static>(&self, f: F) {
        *self.state.pending.lock().unwrap() += 1;
        let state = self.state.clone();
        self.pool.injector.push(Box::new(move || {
            f();
            let mut pending = state.pending.lock().unwrap();
            *pending -= 1;
            if *pending == 0 {
                state.done.notify_all();
            }
        }));
    }
}

impl ThreadPool {
    /// Number of worker threads in the pool.
    pub fn current_num_threads(&self) -> usize {
        self.workers.len()
    }

    /// Runs `f`, then blocks until every job it spawned has completed.
    pub fn scope<R>(&self, f: impl FnOnce(&Scope<'_>) -> R) -> R {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState {
                pending: Mutex::new(0),
                done: Condvar::new(),
            }),
        };
        let result = f(&scope);
        let mut pending = scope.state.pending.lock().unwrap();
        while *pending > 0 {
            pending = scope.state.done.wait(pending).unwrap();
        }
        result
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.injector.shutdown.store(true, Ordering::SeqCst);
        self.injector.work.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_runs_all_jobs_before_returning() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let count = Arc::new(AtomicU64::new(0));
        pool.scope(|s| {
            for _ in 0..100 {
                let count = count.clone();
                s.spawn(move || {
                    count.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(count.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn sequential_scopes_reuse_workers() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        assert_eq!(pool.current_num_threads(), 2);
        let total = Arc::new(AtomicU64::new(0));
        for round in 1..=3u64 {
            let before = total.load(Ordering::SeqCst);
            pool.scope(|s| {
                for _ in 0..10 {
                    let total = total.clone();
                    s.spawn(move || {
                        total.fetch_add(round, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(total.load(Ordering::SeqCst), before + 10 * round);
        }
    }

    #[test]
    fn empty_scope_returns_immediately() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let out = pool.scope(|_| 42);
        assert_eq!(out, 42);
    }

    #[test]
    fn zero_threads_defaults_to_available_cores() {
        let pool = ThreadPoolBuilder::new().build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let hits = Arc::new(AtomicU64::new(0));
        pool.scope(|s| {
            for _ in 0..5 {
                let hits = hits.clone();
                s.spawn(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        drop(pool);
        assert_eq!(hits.load(Ordering::SeqCst), 5);
    }
}
