//! Mail messages.

use simnet::SimTime;
use std::fmt;

/// An Internet mail message (the subset the prototype's mail PCM moves).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Email {
    /// Envelope sender.
    pub from: String,
    /// Envelope recipient.
    pub to: String,
    /// Subject line.
    pub subject: String,
    /// Body text.
    pub body: String,
    /// Virtual time of acceptance by the server.
    pub date: SimTime,
}

impl Email {
    /// Creates a message (date is set by the server on acceptance).
    pub fn new(
        from: impl Into<String>,
        to: impl Into<String>,
        subject: impl Into<String>,
        body: impl Into<String>,
    ) -> Email {
        Email {
            from: from.into(),
            to: to.into(),
            subject: subject.into(),
            body: body.into(),
            date: SimTime::ZERO,
        }
    }

    /// Serialises for the wire (RFC-822-flavoured, dot-stuffed not needed
    /// because the transport is framed).
    pub fn to_wire(&self) -> String {
        format!(
            "From: {}\r\nTo: {}\r\nSubject: {}\r\nDate: {}\r\n\r\n{}",
            self.from,
            self.to,
            self.subject,
            self.date.as_micros(),
            self.body
        )
    }

    /// Parses the wire form.
    pub fn from_wire(text: &str) -> Option<Email> {
        let (head, body) = text.split_once("\r\n\r\n")?;
        let mut from = None;
        let mut to = None;
        let mut subject = None;
        let mut date = None;
        for line in head.lines() {
            let (k, v) = line.split_once(": ")?;
            match k {
                "From" => from = Some(v.to_owned()),
                "To" => to = Some(v.to_owned()),
                "Subject" => subject = Some(v.to_owned()),
                "Date" => date = v.parse::<u64>().ok().map(SimTime::from_micros),
                _ => {}
            }
        }
        Some(Email {
            from: from?,
            to: to?,
            subject: subject?,
            body: body.to_owned(),
            date: date?,
        })
    }
}

impl fmt::Display for Email {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{} -> {}: {:?}>", self.from, self.to, self.subject)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trip() {
        let mut m = Email::new(
            "vcr@home",
            "owner@example.org",
            "Recording done",
            "Tape at 1234.",
        );
        m.date = SimTime::from_micros(42);
        assert_eq!(Email::from_wire(&m.to_wire()), Some(m));
    }

    #[test]
    fn multiline_bodies_survive() {
        let mut m = Email::new("a@x", "b@y", "s", "line1\r\nline2\r\n\r\nline4");
        m.date = SimTime::from_micros(1);
        assert_eq!(Email::from_wire(&m.to_wire()).unwrap().body, m.body);
    }

    #[test]
    fn malformed_wire_rejected() {
        assert!(Email::from_wire("").is_none());
        assert!(Email::from_wire("no headers here").is_none());
        assert!(Email::from_wire("From: a\r\n\r\nbody").is_none());
        assert!(
            Email::from_wire("From: a\r\nTo: b\r\nSubject: s\r\nDate: notanum\r\n\r\nx").is_none()
        );
    }
}
