//! The mail server.
//!
//! A framed SMTP/POP-flavoured protocol over the Internet uplink:
//! `SEND` submits a message, `STAT` counts a mailbox, `RETR` fetches
//! (and `DELE` deletes) by index. One request/response exchange per
//! command, as a 2002 mail relay would behave across a dial-up-class
//! link.

use crate::message::Email;
use parking_lot::Mutex;
use simnet::{Network, NodeId, Protocol, SimDuration};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A running mail server.
#[derive(Clone)]
pub struct MailServer {
    node: NodeId,
    boxes: Arc<Mutex<HashMap<String, Vec<Email>>>>,
}

impl MailServer {
    /// Starts a server on a fresh node of `net` (normally the Internet
    /// uplink network).
    pub fn start(net: &Network, label: &str) -> MailServer {
        let node = net.attach(label);
        let boxes: Arc<Mutex<HashMap<String, Vec<Email>>>> = Arc::new(Mutex::new(HashMap::new()));
        let boxes2 = boxes.clone();
        net.set_request_handler(node, move |sim, frame| {
            sim.advance(SimDuration::from_micros(500)); // relay processing
            let text = String::from_utf8_lossy(&frame.payload);
            let reply = handle(&boxes2, sim.now(), &text);
            Ok(reply.into_bytes().into())
        })
        .expect("mail node exists");
        MailServer { node, boxes }
    }

    /// The server's node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Messages currently stored for `addr` (test introspection).
    pub fn mailbox_len(&self, addr: &str) -> usize {
        self.boxes.lock().get(addr).map_or(0, Vec::len)
    }
}

impl fmt::Debug for MailServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MailServer")
            .field("node", &self.node)
            .field("mailboxes", &self.boxes.lock().len())
            .finish()
    }
}

fn handle(
    boxes: &Mutex<HashMap<String, Vec<Email>>>,
    now: simnet::SimTime,
    request: &str,
) -> String {
    let (command, rest) = request.split_once("\r\n").unwrap_or((request, ""));
    let mut parts = command.split_whitespace();
    match parts.next() {
        Some("SEND") => match Email::from_wire(rest) {
            Some(mut mail) => {
                mail.date = now;
                let to = mail.to.clone();
                boxes.lock().entry(to).or_default().push(mail);
                "250 OK".to_owned()
            }
            None => "554 malformed message".to_owned(),
        },
        Some("STAT") => match parts.next() {
            Some(addr) => {
                let n = boxes.lock().get(addr).map_or(0, Vec::len);
                format!("+OK {n}")
            }
            None => "501 STAT needs a mailbox".to_owned(),
        },
        Some("RETR") => match (
            parts.next(),
            parts.next().and_then(|s| s.parse::<usize>().ok()),
        ) {
            (Some(addr), Some(idx)) => match boxes.lock().get(addr).and_then(|b| b.get(idx)) {
                Some(mail) => format!("+OK\r\n{}", mail.to_wire()),
                None => "550 no such message".to_owned(),
            },
            _ => "501 RETR needs mailbox and index".to_owned(),
        },
        Some("DELE") => match (
            parts.next(),
            parts.next().and_then(|s| s.parse::<usize>().ok()),
        ) {
            (Some(addr), Some(idx)) => {
                let mut boxes = boxes.lock();
                match boxes.get_mut(addr) {
                    Some(b) if idx < b.len() => {
                        b.remove(idx);
                        "+OK deleted".to_owned()
                    }
                    _ => "550 no such message".to_owned(),
                }
            }
            _ => "501 DELE needs mailbox and index".to_owned(),
        },
        _ => "500 unknown command".to_owned(),
    }
}

/// Errors surfaced by the mail client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MailError {
    /// The uplink failed.
    Network(String),
    /// The server answered with an error status.
    Server(String),
    /// The server's reply did not parse.
    Protocol(String),
}

impl fmt::Display for MailError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MailError::Network(m) => write!(f, "mail network error: {m}"),
            MailError::Server(m) => write!(f, "mail server error: {m}"),
            MailError::Protocol(m) => write!(f, "mail protocol error: {m}"),
        }
    }
}

impl std::error::Error for MailError {}

/// A mail client bound to one node.
#[derive(Debug, Clone)]
pub struct MailClient {
    net: Network,
    node: NodeId,
    server: NodeId,
}

impl MailClient {
    /// Creates a client on a fresh node, talking to `server`.
    pub fn attach(net: &Network, label: &str, server: NodeId) -> MailClient {
        MailClient {
            net: net.clone(),
            node: net.attach(label),
            server,
        }
    }

    fn exchange(&self, request: String) -> Result<String, MailError> {
        let reply = self
            .net
            .request(self.node, self.server, Protocol::Mail, request.into_bytes())
            .map_err(|e| MailError::Network(e.to_string()))?;
        Ok(String::from_utf8_lossy(&reply).into_owned())
    }

    /// Submits a message.
    pub fn send(&self, mail: &Email) -> Result<(), MailError> {
        let reply = self.exchange(format!("SEND\r\n{}", mail.to_wire()))?;
        if reply.starts_with("250") {
            Ok(())
        } else {
            Err(MailError::Server(reply))
        }
    }

    /// Counts messages in `addr`'s mailbox.
    pub fn stat(&self, addr: &str) -> Result<usize, MailError> {
        let reply = self.exchange(format!("STAT {addr}"))?;
        reply
            .strip_prefix("+OK ")
            .and_then(|n| n.trim().parse().ok())
            .ok_or(MailError::Server(reply))
    }

    /// Fetches message `idx` from `addr`'s mailbox.
    pub fn retr(&self, addr: &str, idx: usize) -> Result<Email, MailError> {
        let reply = self.exchange(format!("RETR {addr} {idx}"))?;
        match reply.strip_prefix("+OK\r\n") {
            Some(wire) => {
                Email::from_wire(wire).ok_or(MailError::Protocol("bad message body".into()))
            }
            None => Err(MailError::Server(reply)),
        }
    }

    /// Deletes message `idx` from `addr`'s mailbox.
    pub fn dele(&self, addr: &str, idx: usize) -> Result<(), MailError> {
        let reply = self.exchange(format!("DELE {addr} {idx}"))?;
        if reply.starts_with("+OK") {
            Ok(())
        } else {
            Err(MailError::Server(reply))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::Sim;

    fn world() -> (Sim, Network, MailServer, MailClient) {
        let sim = Sim::new(1);
        let net = Network::internet(&sim);
        let server = MailServer::start(&net, "smtp.example.org");
        let client = MailClient::attach(&net, "home-gw", server.node());
        (sim, net, server, client)
    }

    #[test]
    fn send_stat_retr_dele_cycle() {
        let (_sim, _net, server, client) = world();
        client
            .send(&Email::new(
                "vcr@home",
                "owner@example.org",
                "Done",
                "Recorded ch 42",
            ))
            .unwrap();
        client
            .send(&Email::new(
                "fridge@home",
                "owner@example.org",
                "Milk",
                "Running low",
            ))
            .unwrap();
        assert_eq!(client.stat("owner@example.org").unwrap(), 2);
        assert_eq!(server.mailbox_len("owner@example.org"), 2);

        let first = client.retr("owner@example.org", 0).unwrap();
        assert_eq!(first.subject, "Done");
        assert_eq!(first.from, "vcr@home");

        client.dele("owner@example.org", 0).unwrap();
        assert_eq!(client.stat("owner@example.org").unwrap(), 1);
        let now_first = client.retr("owner@example.org", 0).unwrap();
        assert_eq!(now_first.subject, "Milk");
    }

    #[test]
    fn server_stamps_acceptance_time() {
        let (sim, _net, _server, client) = world();
        sim.advance(simnet::SimDuration::from_secs(10));
        client.send(&Email::new("a@x", "b@y", "s", "b")).unwrap();
        let m = client.retr("b@y", 0).unwrap();
        assert!(m.date.as_micros() >= 10_000_000);
    }

    #[test]
    fn errors_for_missing_things() {
        let (_sim, _net, _server, client) = world();
        assert_eq!(client.stat("ghost@nowhere").unwrap(), 0);
        assert!(matches!(
            client.retr("ghost@nowhere", 0),
            Err(MailError::Server(_))
        ));
        assert!(matches!(
            client.dele("ghost@nowhere", 3),
            Err(MailError::Server(_))
        ));
    }

    #[test]
    fn wan_latency_is_visible() {
        let (sim, _net, _server, client) = world();
        let before = sim.now();
        client.send(&Email::new("a@x", "b@y", "s", "b")).unwrap();
        let elapsed = sim.now() - before;
        // Two 25 ms WAN legs at minimum.
        assert!(elapsed.as_millis() >= 50, "took {elapsed}");
    }

    #[test]
    fn unknown_command_rejected() {
        let (_sim, net, server, _client) = world();
        let rogue = net.attach("rogue");
        let reply = net
            .request(rogue, server.node(), Protocol::Mail, &b"EHLO hi"[..])
            .unwrap();
        assert!(String::from_utf8_lossy(&reply).starts_with("500"));
    }
}
