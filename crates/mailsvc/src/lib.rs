//! # mailsvc — a simulated Internet mail service
//!
//! The fourth PCM target of the paper's prototype (Fig. 3: "Internet
//! Mail service") — proof that the framework bridges not just device
//! middleware but plain Internet services. A [`MailServer`] lives across
//! the WAN uplink; [`MailClient`]s submit and fetch [`Email`]s with an
//! SMTP/POP-flavoured framed protocol.
//!
//! ```
//! use simnet::{Sim, Network};
//! use mailsvc::{MailServer, MailClient, Email};
//!
//! let sim = Sim::new(7);
//! let inet = Network::internet(&sim);
//! let server = MailServer::start(&inet, "smtp.example.org");
//! let client = MailClient::attach(&inet, "home", server.node());
//! client.send(&Email::new("vcr@home", "you@example.org",
//!                         "Recording finished", "Channel 42, 2 hours.")).unwrap();
//! assert_eq!(client.stat("you@example.org").unwrap(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod message;
pub mod server;

pub use message::Email;
pub use server::{MailClient, MailError, MailServer};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn email_wire_round_trip(
            from in "[a-z]{1,8}@[a-z]{1,8}",
            to in "[a-z]{1,8}@[a-z]{1,8}",
            subject in "[ -~]{0,40}",
            body in "[ -~\n]{0,120}",
        ) {
            // Subjects must stay on one line for the header format.
            prop_assume!(!subject.contains('\n'));
            let mut m = Email::new(from, to, subject, body);
            m.date = simnet::SimTime::from_micros(99);
            prop_assert_eq!(Email::from_wire(&m.to_wire()), Some(m));
        }

        #[test]
        fn parser_never_panics(s in ".{0,200}") {
            let _ = Email::from_wire(&s);
        }

        #[test]
        fn mailbox_count_matches_sends(n in 0usize..10) {
            let sim = simnet::Sim::new(1);
            let net = simnet::Network::internet(&sim);
            let server = MailServer::start(&net, "smtp");
            let client = MailClient::attach(&net, "home", server.node());
            for i in 0..n {
                client.send(&Email::new("a@x", "b@y", format!("m{i}"), "body")).unwrap();
            }
            prop_assert_eq!(client.stat("b@y").unwrap(), n);
        }
    }
}
