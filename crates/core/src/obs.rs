//! Fleet-scale observability plane: mergeable latency sketches,
//! deterministic trace sampling with a bounded flight recorder, and
//! text/JSONL exporters.
//!
//! PR-2 built per-gateway observability for *one* home: full
//! histograms, full span trees. At fleet scale (10k+ homes on
//! [`crate::fleet::HomeFleet`]) that is unusable — aggregation must
//! cost O(buckets), not O(samples), and trace volume must be bounded
//! without losing the traces that matter. Three rules govern
//! everything in this module:
//!
//! 1. **Mergeable, not raw.** [`HistSketch`] is a log-bucketed sketch
//!    with *fixed* power-of-two bucket boundaries, so merging two
//!    sketches is exact bucket-wise addition — associative,
//!    commutative, and O(buckets). Quantiles read off the bucket
//!    upper bound, so the reported value is never below the exact
//!    quantile and never more than one bucket (2×) above it.
//! 2. **Deterministic on virtual time.** Head sampling hashes the
//!    [`TraceId`] (itself a pure function of island event order), so
//!    the kept set is identical for `SIM_THREADS=1` and `N`. Exemplar
//!    trace ids merge by *minimum*, which is order-independent.
//! 3. **Never drop the interesting traces.** Tail-keep rules override
//!    head sampling: any trace containing an error span or a
//!    resilience decision (retry/breaker/deadline/degraded) is always
//!    kept, and the top-slow traces of each harvest are kept even
//!    when head-sampled out.

use crate::trace::{HopKind, Span, TraceId};
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Number of log2 buckets in a [`HistSketch`]. Bucket `i` holds
/// samples whose microsecond value fits in `i` bits, i.e. the bucket
/// upper bound is `2^i - 1` µs; the last bucket is an overflow slot.
/// 32 buckets cover 0 µs … ~35 virtual minutes per sample, far beyond
/// any single invocation in the simulation.
pub const SKETCH_BUCKETS: usize = 32;

/// Sentinel meaning "no exemplar recorded for this bucket".
const NO_EXEMPLAR: u64 = u64::MAX;

/// A deterministic log-bucketed mergeable latency sketch.
///
/// Bucket boundaries are fixed powers of two (`bucket i` ⇔ values
/// `< 2^i` µs), so two sketches recorded on different homes merge by
/// bucket-wise addition with no approximation beyond the original
/// bucketing. Each bucket optionally carries an *exemplar*: the
/// smallest raw [`TraceId`] observed in that bucket, linking a slow
/// bucket in a fleet-merged snapshot back to one concrete kept trace.
/// Min-merge keeps exemplars associative and commutative too.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HistSketch {
    counts: [u64; SKETCH_BUCKETS],
    exemplars: [u64; SKETCH_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    total_us: u64,
    min_us: u64,
    max_us: u64,
}

impl Default for HistSketch {
    fn default() -> Self {
        HistSketch {
            counts: [0; SKETCH_BUCKETS],
            exemplars: [NO_EXEMPLAR; SKETCH_BUCKETS],
            count: 0,
            total_us: 0,
            min_us: u64::MAX,
            max_us: 0,
        }
    }
}

/// The bucket index a microsecond value falls into: the number of
/// bits needed to write it, clamped to the overflow bucket.
pub fn bucket_of(us: u64) -> usize {
    ((64 - us.leading_zeros()) as usize).min(SKETCH_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` in microseconds.
pub fn bucket_bound_us(i: usize) -> u64 {
    if i >= SKETCH_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl HistSketch {
    /// An empty sketch.
    pub fn new() -> HistSketch {
        HistSketch::default()
    }

    /// Records one sample without an exemplar.
    pub fn record(&mut self, us: u64) {
        self.record_with_exemplar(us, None);
    }

    /// Records one sample, attaching `trace` as the bucket exemplar
    /// if it is the smallest trace id seen in that bucket so far.
    pub fn record_with_exemplar(&mut self, us: u64, trace: Option<TraceId>) {
        let b = bucket_of(us);
        self.counts[b] += 1;
        self.count += 1;
        self.total_us += us;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
        if let Some(t) = trace {
            if t.0 < self.exemplars[b] {
                self.exemplars[b] = t.0;
            }
        }
    }

    /// Exact merge: bucket-wise addition, min/max folds, min-merge of
    /// exemplars. Associative and commutative (see proptests).
    pub fn merge(&mut self, other: &HistSketch) {
        for i in 0..SKETCH_BUCKETS {
            self.counts[i] += other.counts[i];
            self.exemplars[i] = self.exemplars[i].min(other.exemplars[i]);
        }
        self.count += other.count;
        self.total_us += other.total_us;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Mean in microseconds (0.0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min_us(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_us
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Quantile estimate: the upper bound of the bucket holding the
    /// nearest-rank sample. Never below the exact value, never more
    /// than one bucket (a factor of two) above it. `q` is clamped to
    /// `[0, 1]`; returns 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // nearest-rank: smallest rank ≥ q·count, at least 1
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // the true sample is ≤ the bucket bound and ≤ max
                return bucket_bound_us(i).min(self.max_us);
            }
        }
        self.max_us
    }

    /// Exemplar trace id for bucket `i`, if one was recorded.
    pub fn exemplar(&self, i: usize) -> Option<TraceId> {
        if self.exemplars[i] == NO_EXEMPLAR {
            None
        } else {
            Some(TraceId(self.exemplars[i]))
        }
    }

    /// Non-empty buckets as `(index, count)`, ascending.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Compact JSON object: sparse sorted buckets, exemplars as hex
    /// trace ids, count/mean/min/max. Bit-stable under merge order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"count\":");
        let _ = write!(out, "{}", self.count);
        let _ = write!(out, ",\"mean_us\":{:.1}", self.mean_us());
        let _ = write!(out, ",\"min_us\":{}", self.min_us());
        let _ = write!(out, ",\"max_us\":{}", self.max_us);
        out.push_str(",\"buckets\":{");
        for (n, (i, c)) in self.nonzero().enumerate() {
            if n > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{i}\":{c}");
        }
        out.push_str("},\"exemplars\":{");
        let mut first = true;
        for i in 0..SKETCH_BUCKETS {
            if let Some(t) = self.exemplar(i) {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\"{i}\":\"{t}\"");
            }
        }
        out.push_str("}}");
        out
    }
}

/// Latency attribution layers, matching the paper's §3 architecture:
/// VSR lookup, VSG wire transfer, PCM conversion, and the application
/// body. Layers are *views* — PCM time is spent inside the app body
/// on the serving side, so layer sums may exceed end-to-end latency.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Layer {
    /// Virtual service repository lookups (directory round trips).
    Vsr,
    /// VSG↔VSG wire calls (marshalling + transport + demux).
    Wire,
    /// Protocol conversion inside a pseudo-communication module.
    Pcm,
    /// The application/service body on the serving gateway.
    App,
    /// One pipeline step run by the composition engine (forward or
    /// compensating) on the gateway hosting the composite.
    Compose,
}

/// All layers in canonical (emission) order.
pub const LAYERS: [Layer; 5] = [
    Layer::App,
    Layer::Pcm,
    Layer::Vsr,
    Layer::Wire,
    Layer::Compose,
];

impl Layer {
    /// Stable lowercase label used in JSON and exporter output.
    pub fn label(self) -> &'static str {
        match self {
            Layer::Vsr => "vsr",
            Layer::Wire => "wire",
            Layer::Pcm => "pcm",
            Layer::App => "app",
            Layer::Compose => "compose",
        }
    }

    /// Dense index into per-layer arrays.
    pub fn index(self) -> usize {
        match self {
            Layer::App => 0,
            Layer::Pcm => 1,
            Layer::Vsr => 2,
            Layer::Wire => 3,
            Layer::Compose => 4,
        }
    }
}

/// Sampling and retention policy for the [`FlightRecorder`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SamplePolicy {
    /// Head-sampling rate out of 10 000, decided by a deterministic
    /// hash of the trace id: 10 000 keeps every trace, 100 keeps ~1%.
    pub head_per_10k: u32,
    /// How many of the slowest traces each harvest keeps even when
    /// head sampling would drop them.
    pub top_slow: usize,
    /// Ring capacity: kept traces beyond this evict the oldest
    /// non-error trace first, then the oldest outright.
    pub capacity: usize,
}

impl Default for SamplePolicy {
    fn default() -> Self {
        SamplePolicy {
            head_per_10k: 10_000,
            top_slow: 4,
            capacity: 256,
        }
    }
}

impl SamplePolicy {
    /// Keep every trace (the default).
    pub fn keep_all() -> SamplePolicy {
        SamplePolicy::default()
    }

    /// Head-sample at `per_10k` out of 10 000 with default tail rules.
    pub fn sampled(per_10k: u32) -> SamplePolicy {
        SamplePolicy {
            head_per_10k: per_10k,
            ..SamplePolicy::default()
        }
    }

    /// The deterministic head-sampling decision for a trace id: a
    /// SplitMix64 finalizer over the raw id, reduced mod 10 000. Pure
    /// function of the id, so identical across thread counts.
    pub fn head_keep(&self, trace: TraceId) -> bool {
        if self.head_per_10k >= 10_000 {
            return true;
        }
        let mut z = trace.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % 10_000) < u64::from(self.head_per_10k)
    }
}

/// Why a trace survived sampling, in priority order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum KeepReason {
    /// At least one span carried an error.
    Error,
    /// A resilience decision (retry/breaker/deadline/degraded) fired.
    Resilience,
    /// Among the slowest traces of its harvest.
    Slow,
    /// Head-sampled in by the trace-id hash.
    Head,
}

impl KeepReason {
    /// Stable lowercase label for exports.
    pub fn label(self) -> &'static str {
        match self {
            KeepReason::Error => "error",
            KeepReason::Resilience => "resilience",
            KeepReason::Slow => "slow",
            KeepReason::Head => "head",
        }
    }
}

/// One trace retained by the flight recorder: the full span set plus
/// the reason it was kept.
#[derive(Clone, Debug)]
pub struct KeptTrace {
    /// The trace id.
    pub trace: TraceId,
    /// Why it survived sampling.
    pub reason: KeepReason,
    /// Every span of the trace, in recording order.
    pub spans: Vec<Span>,
}

impl KeptTrace {
    /// End-to-end duration: latest span end minus earliest start.
    pub fn elapsed_us(&self) -> u64 {
        let start = self.spans.iter().map(|s| s.start.as_micros()).min();
        let end = self.spans.iter().map(|s| s.end.as_micros()).max();
        match (start, end) {
            (Some(a), Some(b)) => b.saturating_sub(a),
            _ => 0,
        }
    }

    /// Name of the root span (first span with no parent, else the
    /// first span).
    pub fn root_name(&self) -> &str {
        self.spans
            .iter()
            .find(|s| s.parent.is_none())
            .or_else(|| self.spans.first())
            .map(|s| s.name.as_str())
            .unwrap_or("")
    }

    /// True when any span carries an error.
    pub fn has_error(&self) -> bool {
        self.spans.iter().any(|s| s.error.is_some())
    }
}

/// Counters describing what a [`FlightRecorder`] has done so far.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct RecorderStats {
    /// Traces offered to the recorder across all harvests.
    pub seen: u64,
    /// Traces retained (before any ring eviction).
    pub kept: u64,
    /// Traces dropped by head sampling (no tail rule fired).
    pub sampled_out: u64,
    /// Kept traces later evicted by ring overflow.
    pub evicted: u64,
}

/// A bounded ring buffer of sampled traces.
///
/// Spans are recorded normally by the per-gateway tracers; `harvest`
/// drains them, groups by trace, applies head sampling + tail-keep
/// rules, and retains survivors. Every decision is a pure function of
/// the (deterministic) span data, so the kept set is identical across
/// thread counts.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    policy: SamplePolicy,
    ring: VecDeque<KeptTrace>,
    stats: RecorderStats,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(SamplePolicy::default())
    }
}

impl FlightRecorder {
    /// A recorder with the given policy.
    pub fn new(policy: SamplePolicy) -> FlightRecorder {
        FlightRecorder {
            policy,
            ring: VecDeque::new(),
            stats: RecorderStats::default(),
        }
    }

    /// Replaces the sampling policy (existing kept traces stay).
    pub fn set_policy(&mut self, policy: SamplePolicy) {
        self.policy = policy;
    }

    /// The current policy.
    pub fn policy(&self) -> SamplePolicy {
        self.policy
    }

    /// Counters so far.
    pub fn stats(&self) -> RecorderStats {
        self.stats
    }

    /// Number of traces currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Groups `spans` by trace, applies sampling, retains survivors.
    ///
    /// Tail-keep overrides head sampling: error traces and
    /// resilience-decision traces are always kept, and the
    /// `top_slow` slowest traces of this harvest are kept (slowest
    /// first by duration, ties broken by smaller trace id).
    pub fn harvest(&mut self, spans: Vec<Span>) {
        // group by trace in first-appearance order (deterministic:
        // span order is island event order)
        let mut order: Vec<TraceId> = Vec::new();
        let mut groups: Vec<Vec<Span>> = Vec::new();
        for span in spans {
            match order.iter().position(|&t| t == span.trace) {
                Some(i) => groups[i].push(span),
                None => {
                    order.push(span.trace);
                    groups.push(vec![span]);
                }
            }
        }
        let mut candidates: Vec<KeptTrace> = order
            .into_iter()
            .zip(groups)
            .map(|(trace, spans)| KeptTrace {
                trace,
                reason: KeepReason::Head,
                spans,
            })
            .collect();
        self.stats.seen += candidates.len() as u64;

        // tail rules + head decision per trace
        let mut keep: Vec<bool> = Vec::with_capacity(candidates.len());
        for t in &mut candidates {
            if t.has_error() {
                t.reason = KeepReason::Error;
                keep.push(true);
            } else if t.spans.iter().any(|s| s.kind == HopKind::Resilience) {
                t.reason = KeepReason::Resilience;
                keep.push(true);
            } else if self.policy.head_keep(t.trace) {
                t.reason = KeepReason::Head;
                keep.push(true);
            } else {
                keep.push(false);
            }
        }
        // top-slow rescue among the head-dropped
        if self.policy.top_slow > 0 {
            let mut dropped: Vec<(u64, u64, usize)> = candidates
                .iter()
                .enumerate()
                .filter(|(i, _)| !keep[*i])
                .map(|(i, t)| (t.elapsed_us(), t.trace.0, i))
                .collect();
            dropped.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            for &(_, _, i) in dropped.iter().take(self.policy.top_slow) {
                candidates[i].reason = KeepReason::Slow;
                keep[i] = true;
            }
        }

        for (t, k) in candidates.into_iter().zip(keep) {
            if !k {
                self.stats.sampled_out += 1;
                continue;
            }
            self.stats.kept += 1;
            self.push(t);
        }
    }

    fn push(&mut self, t: KeptTrace) {
        while self.ring.len() >= self.policy.capacity.max(1) {
            // evict the oldest non-error trace first, else the oldest
            let victim = self
                .ring
                .iter()
                .position(|k| k.reason != KeepReason::Error)
                .unwrap_or(0);
            self.ring.remove(victim);
            self.stats.evicted += 1;
        }
        self.ring.push_back(t);
    }

    /// Removes and returns every kept trace, oldest first.
    pub fn drain(&mut self) -> Vec<KeptTrace> {
        self.ring.drain(..).collect()
    }

    /// The kept traces, oldest first, without draining.
    pub fn kept(&self) -> impl Iterator<Item = &KeptTrace> {
        self.ring.iter()
    }
}

fn esc(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders metrics snapshots as OpenMetrics-style text: one `# TYPE`
/// line per family, sorted label sets, terminated by `# EOF`.
/// Deterministic given the snapshot order (use island order).
pub fn openmetrics(snaps: &[crate::metrics::MetricsSnapshot]) -> String {
    let mut out = String::new();
    out.push_str("# TYPE meta_invocations_total counter\n");
    for s in snaps {
        let _ = writeln!(
            out,
            "meta_invocations_total{{gateway=\"{}\",island=\"{}\"}} {}",
            s.gateway, s.island, s.registry.invocations
        );
    }
    out.push_str("# TYPE meta_errors_total counter\n");
    for s in snaps {
        for (kind, n) in &s.registry.errors {
            let _ = writeln!(
                out,
                "meta_errors_total{{gateway=\"{}\",island=\"{}\",kind=\"{}\"}} {}",
                s.gateway, s.island, kind, n
            );
        }
    }
    out.push_str("# TYPE meta_latency_us gauge\n");
    for s in snaps {
        for (q, label) in [(0.5, "0.5"), (0.99, "0.99")] {
            let _ = writeln!(
                out,
                "meta_latency_us{{gateway=\"{}\",island=\"{}\",quantile=\"{}\"}} {}",
                s.gateway,
                s.island,
                label,
                s.registry.latency.quantile_us(q)
            );
        }
    }
    out.push_str("# TYPE meta_layer_latency_us gauge\n");
    for s in snaps {
        for layer in LAYERS {
            let sk = s.registry.layer(layer);
            if sk.count == 0 {
                continue;
            }
            for (q, label) in [(0.5, "0.5"), (0.99, "0.99")] {
                let _ = writeln!(
                    out,
                    "meta_layer_latency_us{{gateway=\"{}\",island=\"{}\",layer=\"{}\",quantile=\"{}\"}} {}",
                    s.gateway,
                    s.island,
                    layer.label(),
                    label,
                    sk.quantile_us(q)
                );
            }
        }
    }
    out.push_str("# TYPE meta_cache_hits_total counter\n");
    for s in snaps {
        let _ = writeln!(
            out,
            "meta_cache_hits_total{{gateway=\"{}\",island=\"{}\"}} {}",
            s.gateway, s.island, s.cache.hits
        );
    }
    out.push_str("# TYPE meta_retries_total counter\n");
    for s in snaps {
        let _ = writeln!(
            out,
            "meta_retries_total{{gateway=\"{}\",island=\"{}\"}} {}",
            s.gateway, s.island, s.registry.retries
        );
    }
    out.push_str("# EOF\n");
    out
}

/// One JSON line per snapshot followed by one per kept trace — the
/// structured event log consumed by external pipelines. Deterministic
/// given snapshot and trace order (use island order).
pub fn events_jsonl(snaps: &[crate::metrics::MetricsSnapshot], kept: &[KeptTrace]) -> String {
    let mut out = String::new();
    for s in snaps {
        let _ = writeln!(out, "{{\"event\":\"snapshot\",\"data\":{}}}", s.to_json());
    }
    for t in kept {
        let _ = write!(
            out,
            "{{\"event\":\"trace\",\"trace\":\"{}\",\"reason\":\"{}\",\"elapsed_us\":{},\"root\":\"",
            t.trace,
            t.reason.label(),
            t.elapsed_us()
        );
        esc(t.root_name(), &mut out);
        out.push_str("\",\"spans\":[");
        for (i, s) in t.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"kind\":\"{:?}\",\"name\":\"", s.kind);
            esc(&s.name, &mut out);
            let _ = write!(
                out,
                "\",\"gateway\":\"{}\",\"start_us\":{},\"end_us\":{},\"bytes\":{}",
                s.gateway,
                s.start.as_micros(),
                s.end.as_micros(),
                s.bytes
            );
            if let Some(e) = &s.error {
                out.push_str(",\"error\":\"");
                esc(e, &mut out);
                out.push('"');
            }
            out.push('}');
        }
        out.push_str("]}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanId;
    use simnet::SimTime;

    fn span(trace: u64, id: u64, start: u64, end: u64, err: Option<&str>, kind: HopKind) -> Span {
        Span {
            trace: TraceId(trace),
            id: SpanId(id),
            parent: None,
            kind,
            name: format!("s{id}"),
            gateway: "gw".into(),
            start: SimTime::from_micros(start),
            end: SimTime::from_micros(end),
            bytes: 0,
            error: err.map(|e| e.to_string()),
        }
    }

    #[test]
    fn bucketing_is_monotone_and_bounded() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), SKETCH_BUCKETS - 1);
        for us in [0u64, 1, 7, 100, 4096, 1_000_000] {
            assert!(us <= bucket_bound_us(bucket_of(us)));
        }
    }

    #[test]
    fn quantile_within_one_bucket_of_exact() {
        let mut sk = HistSketch::new();
        let mut samples: Vec<u64> = (1..=100u64).map(|i| i * 37).collect();
        for &s in &samples {
            sk.record(s);
        }
        samples.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let rank = ((q * samples.len() as f64).ceil() as usize).max(1);
            let exact = samples[rank - 1];
            let est = sk.quantile_us(q);
            assert!(est >= exact, "q{q}: est {est} < exact {exact}");
            assert!(est <= exact * 2, "q{q}: est {est} > 2×exact {exact}");
        }
    }

    #[test]
    fn merge_adds_buckets_and_min_merges_exemplars() {
        let mut a = HistSketch::new();
        let mut b = HistSketch::new();
        a.record_with_exemplar(100, Some(TraceId(9)));
        b.record_with_exemplar(100, Some(TraceId(3)));
        b.record(5000);
        let mut ab = a;
        ab.merge(&b);
        assert_eq!(ab.count, 3);
        assert_eq!(ab.exemplar(bucket_of(100)), Some(TraceId(3)));
        assert_eq!(ab.min_us(), 100);
        assert_eq!(ab.max_us(), 5000);
        // commutes
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn empty_sketch_json_is_stable() {
        let sk = HistSketch::new();
        assert_eq!(
            sk.to_json(),
            "{\"count\":0,\"mean_us\":0.0,\"min_us\":0,\"max_us\":0,\"buckets\":{},\"exemplars\":{}}"
        );
    }

    #[test]
    fn head_sampling_is_a_pure_function_of_the_id() {
        let p = SamplePolicy::sampled(100);
        let kept: Vec<u64> = (0..10_000u64)
            .filter(|&i| p.head_keep(TraceId(i)))
            .collect();
        // ~1% pass rate, exactly reproducible
        assert!(kept.len() > 50 && kept.len() < 200, "kept {}", kept.len());
        let again: Vec<u64> = (0..10_000u64)
            .filter(|&i| p.head_keep(TraceId(i)))
            .collect();
        assert_eq!(kept, again);
        assert!(SamplePolicy::keep_all().head_keep(TraceId(42)));
    }

    #[test]
    fn tail_rules_override_head_sampling() {
        let p = SamplePolicy {
            head_per_10k: 0,
            top_slow: 1,
            capacity: 16,
        };
        let mut fr = FlightRecorder::new(p);
        fr.harvest(vec![
            span(1, 1, 0, 10, Some("boom"), HopKind::App),
            span(2, 2, 0, 99, None, HopKind::App),
            span(3, 3, 0, 5, None, HopKind::App),
            span(4, 4, 0, 7, None, HopKind::Resilience),
        ]);
        let kept = fr.drain();
        let ids: Vec<u64> = kept.iter().map(|k| k.trace.0).collect();
        assert_eq!(ids, vec![1, 2, 4]);
        assert_eq!(kept[0].reason, KeepReason::Error);
        assert_eq!(kept[1].reason, KeepReason::Slow);
        assert_eq!(kept[2].reason, KeepReason::Resilience);
        let st = fr.stats();
        assert_eq!(st.seen, 4);
        assert_eq!(st.kept, 3);
        assert_eq!(st.sampled_out, 1);
    }

    #[test]
    fn ring_overflow_evicts_oldest_non_error_first() {
        let p = SamplePolicy {
            head_per_10k: 10_000,
            top_slow: 0,
            capacity: 2,
        };
        let mut fr = FlightRecorder::new(p);
        fr.harvest(vec![
            span(1, 1, 0, 10, Some("err"), HopKind::App),
            span(2, 2, 0, 10, None, HopKind::App),
            span(3, 3, 0, 10, None, HopKind::App),
        ]);
        let kept = fr.drain();
        let ids: Vec<u64> = kept.iter().map(|k| k.trace.0).collect();
        // trace 2 (oldest non-error) evicted to admit 3
        assert_eq!(ids, vec![1, 3]);
        assert_eq!(fr.stats().evicted, 1);
    }
}
