//! Virtual services: the framework's view of a bridged service.

use crate::error::MetaError;
use crate::iface::ServiceInterface;
use simnet::Sim;
use soap::Value;
use std::fmt;

/// Which middleware family a service natively lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Middleware {
    /// Jini on Ethernet.
    Jini,
    /// HAVi on IEEE1394.
    Havi,
    /// X10 on the powerline.
    X10,
    /// An Internet mail service.
    Mail,
    /// UPnP (the post-hoc fifth middleware).
    Upnp,
    /// A native SOAP web service on the Internet.
    Web,
    /// The cloud bridge over the WAN (store-and-forward PCM).
    Cloud,
    /// A composite pipeline hosted by a VSG's composition engine — the
    /// VSR record kind for services that are themselves pipelines over
    /// other services (no native island; the hosting gateway executes
    /// the steps).
    Composite,
}

impl Middleware {
    /// The stable label used in VSR category bags and traces.
    pub fn label(self) -> &'static str {
        match self {
            Middleware::Jini => "jini",
            Middleware::Havi => "havi",
            Middleware::X10 => "x10",
            Middleware::Mail => "mail",
            Middleware::Upnp => "upnp",
            Middleware::Web => "web",
            Middleware::Cloud => "cloud",
            Middleware::Composite => "composite",
        }
    }

    /// Inverse of [`Middleware::label`].
    pub fn from_label(s: &str) -> Option<Middleware> {
        match s {
            "jini" => Some(Middleware::Jini),
            "havi" => Some(Middleware::Havi),
            "x10" => Some(Middleware::X10),
            "mail" => Some(Middleware::Mail),
            "upnp" => Some(Middleware::Upnp),
            "web" => Some(Middleware::Web),
            "cloud" => Some(Middleware::Cloud),
            "composite" => Some(Middleware::Composite),
            _ => None,
        }
    }
}

impl fmt::Display for Middleware {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The thing a Client Proxy produces: something that can carry a
/// canonical invocation into a native middleware.
pub trait ServiceInvoker: Send {
    /// Invokes `operation` with canonical `args`, converting to and from
    /// the native representation.
    fn invoke(
        &mut self,
        sim: &Sim,
        operation: &str,
        args: &[(String, Value)],
    ) -> Result<Value, MetaError>;
}

impl<F> ServiceInvoker for F
where
    F: FnMut(&Sim, &str, &[(String, Value)]) -> Result<Value, MetaError> + Send,
{
    fn invoke(
        &mut self,
        sim: &Sim,
        operation: &str,
        args: &[(String, Value)],
    ) -> Result<Value, MetaError> {
        self(sim, operation, args)
    }
}

/// A service as recorded in the Virtual Service Repository.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtualService {
    /// Home-unique service name (e.g. `living-room-vcr`).
    pub name: String,
    /// Its canonical interface.
    pub interface: ServiceInterface,
    /// Which middleware it natively lives in.
    pub origin: Middleware,
    /// The gateway that fronts it.
    pub gateway: String,
    /// Service contexts (§3.3): free-form key/value pairs such as
    /// `("room", "hall")` used for context-aware discovery.
    pub contexts: Vec<(String, String)>,
}

impl VirtualService {
    /// Creates a record with no contexts.
    pub fn new(
        name: impl Into<String>,
        interface: ServiceInterface,
        origin: Middleware,
        gateway: impl Into<String>,
    ) -> VirtualService {
        VirtualService {
            name: name.into(),
            interface,
            origin,
            gateway: gateway.into(),
            contexts: Vec::new(),
        }
    }

    /// Attaches a context pair (builder style).
    pub fn context(mut self, key: impl Into<String>, value: impl Into<String>) -> VirtualService {
        self.contexts.push((key.into(), value.into()));
        self
    }

    /// The `vsg://gateway/service` endpoint string.
    pub fn endpoint(&self) -> String {
        format!("vsg://{}/{}", self.gateway, self.name)
    }
}

impl fmt::Display for VirtualService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{} via {}]", self.name, self.origin, self.gateway)
    }
}

/// Parses a `vsg://gateway/service` endpoint.
pub fn parse_endpoint(endpoint: &str) -> Option<(&str, &str)> {
    let rest = endpoint.strip_prefix("vsg://")?;
    let (gateway, service) = rest.split_once('/')?;
    (!gateway.is_empty() && !service.is_empty()).then_some((gateway, service))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::catalog;

    #[test]
    fn middleware_labels_round_trip() {
        for m in [
            Middleware::Jini,
            Middleware::Havi,
            Middleware::X10,
            Middleware::Mail,
            Middleware::Upnp,
            Middleware::Web,
            Middleware::Cloud,
            Middleware::Composite,
        ] {
            assert_eq!(Middleware::from_label(m.label()), Some(m));
        }
        assert_eq!(Middleware::from_label("corba"), None);
    }

    #[test]
    fn endpoints_round_trip() {
        let s = VirtualService::new("lamp", catalog::lamp(), Middleware::X10, "x10-gw");
        assert_eq!(s.endpoint(), "vsg://x10-gw/lamp");
        assert_eq!(parse_endpoint(&s.endpoint()), Some(("x10-gw", "lamp")));
        assert_eq!(parse_endpoint("http://x/y"), None);
        assert_eq!(parse_endpoint("vsg://onlygateway"), None);
        assert_eq!(parse_endpoint("vsg:///svc"), None);
    }

    #[test]
    fn closures_are_invokers() {
        let mut invoker =
            |_: &Sim, op: &str, _: &[(String, Value)]| Ok(Value::Str(format!("did {op}")));
        let sim = Sim::new(1);
        let got = ServiceInvoker::invoke(&mut invoker, &sim, "play", &[]).unwrap();
        assert_eq!(got, Value::Str("did play".into()));
    }
}
