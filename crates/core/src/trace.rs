//! Cross-middleware distributed tracing over virtual time.
//!
//! A meta-middleware invocation crosses many opaque layers — the Client
//! Proxy that exported the service, the local PCM's conversion, VSR
//! lookups, the VSG wire protocol, and the remote gateway's Server
//! Proxy (§3.1–3.3) — yet each layer observes only its own endpoints.
//! This module gives every hop a [`Span`] with virtual-time start/end,
//! links spans parent→child, and propagates a [`TraceContext`] across
//! the gateway-to-gateway wire so one cross-middleware call yields a
//! *single* causally-connected trace tree spanning both gateways.
//!
//! Tracing is off by default and costs nothing while off: a disabled
//! [`Tracer`] performs one atomic load per instrumentation point,
//! allocates nothing (span names are built by closures that are never
//! called), and returns inert [`SpanHandle`]s.

use parking_lot::Mutex;
use simnet::{Sim, SimDuration, SimTime};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

// Trace and span ids are drawn from the *simulation world's* serial
// well ([`Sim::next_serial`]), not process-wide statics: every gateway
// of one home shares one `Sim`, so the two halves of a cross-gateway
// trace still never collide, while the id stream is a pure function of
// that island's own event order — identical under any thread count,
// and namespaced by island id so fleets cannot collide either.

/// Identity of one end-to-end trace (shared by every hop of one call).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    fn next(sim: &Sim) -> TraceId {
        TraceId(sim.next_serial())
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Identity of one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    fn next(sim: &Sim) -> SpanId {
        SpanId(sim.next_serial())
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Which layer of the §3.1–3.3 invocation path a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HopKind {
    /// The calling gateway's invocation entry point (the Client Proxy
    /// boundary: a request enters the meta-middleware here).
    ClientProxy,
    /// A PCM converting between a native middleware and the canonical
    /// representation (either proxy direction).
    PcmConvert,
    /// One SOAP round trip to the Virtual Service Repository.
    VsrLookup,
    /// A resolution answered by the gateway's cache — no VSR traffic.
    CacheHit,
    /// The gateway-to-gateway wire exchange (SOAP / binary / SIP-like).
    VsgWire,
    /// The serving gateway's dispatch of an arriving wire request.
    ServerProxy,
    /// The exported service's own invoker running.
    App,
    /// An event delivery (polling-bridge tick or SIP NOTIFY push).
    Event,
    /// A resilience-layer decision: a retry, a circuit-breaker state
    /// transition, or a degraded (stale-route) serve.
    Resilience,
    /// A federated-repository decision: shard routing, a replica
    /// failover, a shard-map refresh, a backup promotion, or one
    /// anti-entropy sync exchange.
    Federation,
    /// A cloud-bridge action: an outbox drain push, a (re)connect
    /// handshake with epoch bump, a delta reconciliation, a downward
    /// command delivery, or an admission-control pushback.
    Cloud,
    /// One composition-engine step: a forward pipeline step or a
    /// compensating undo, executed on the gateway hosting the
    /// composite service.
    Compose,
}

impl HopKind {
    /// The stable text label (`client-proxy`, `pcm-convert`, …).
    pub fn label(&self) -> &'static str {
        match self {
            HopKind::ClientProxy => "client-proxy",
            HopKind::PcmConvert => "pcm-convert",
            HopKind::VsrLookup => "vsr-lookup",
            HopKind::CacheHit => "cache-hit",
            HopKind::VsgWire => "vsg-wire",
            HopKind::ServerProxy => "server-proxy",
            HopKind::App => "app",
            HopKind::Event => "event",
            HopKind::Resilience => "resilience",
            HopKind::Federation => "federation",
            HopKind::Cloud => "cloud",
            HopKind::Compose => "compose",
        }
    }
}

impl fmt::Display for HopKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The caller's trace identity, carried across the VSG wire so the
/// serving gateway's spans join the caller's tree. Encoded as a SOAP
/// header element, a SIP-style `Trace-Context:` header, or a tagged
/// binary field depending on the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace every downstream span must join.
    pub trace: TraceId,
    /// The span (on the calling gateway) that downstream spans are
    /// children of — the wire span.
    pub parent: SpanId,
}

impl TraceContext {
    /// Wire form: `<trace-hex>-<parent-hex>`.
    pub fn to_wire(&self) -> String {
        format!("{}-{}", self.trace, self.parent)
    }

    /// Parses the wire form; `None` for anything malformed (a gateway
    /// must never fail a call over a bad trace header).
    pub fn from_wire(s: &str) -> Option<TraceContext> {
        let (t, p) = s.split_once('-')?;
        Some(TraceContext {
            trace: TraceId(u64::from_str_radix(t, 16).ok()?),
            parent: SpanId(u64::from_str_radix(p, 16).ok()?),
        })
    }
}

impl fmt::Display for TraceContext {
    /// `Display` is the wire form (what the SIP header line carries).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.trace, self.parent)
    }
}

/// One completed hop of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub id: SpanId,
    /// The enclosing span, if any. For the first span a serving
    /// gateway records, this is the *calling* gateway's wire span —
    /// the cross-gateway link.
    pub parent: Option<SpanId>,
    /// Which layer this hop covers.
    pub kind: HopKind,
    /// Human-readable label, e.g. `laserdisc.play`.
    pub name: String,
    /// The gateway (or component) that recorded the span.
    pub gateway: String,
    /// Virtual time the hop began.
    pub start: SimTime,
    /// Virtual time the hop completed.
    pub end: SimTime,
    /// Backbone bytes attributed to this hop (wire spans only).
    pub bytes: u64,
    /// The error the hop returned, if it failed.
    pub error: Option<String>,
}

impl Span {
    /// Virtual time the hop consumed.
    pub fn elapsed(&self) -> SimDuration {
        self.end - self.start
    }
}

/// An in-flight span returned by [`Tracer::begin`]. Inert (and free)
/// when the tracer is disabled.
#[derive(Debug)]
#[must_use = "pass the handle back to Tracer::end or the span is lost"]
pub struct SpanHandle {
    live: Option<LiveSpan>,
}

impl SpanHandle {
    /// A handle that records nothing (what a disabled tracer returns).
    pub fn inert() -> SpanHandle {
        SpanHandle { live: None }
    }

    /// Whether ending this handle will record a span.
    pub fn is_live(&self) -> bool {
        self.live.is_some()
    }

    /// The trace this span belongs to (`None` for inert handles).
    /// Lets instrumentation attach the trace id as a metrics exemplar
    /// without waiting for the span to complete.
    pub fn trace_id(&self) -> Option<TraceId> {
        self.live.as_ref().map(|l| l.trace)
    }
}

#[derive(Debug)]
struct LiveSpan {
    trace: TraceId,
    id: SpanId,
    parent: Option<SpanId>,
    kind: HopKind,
    name: String,
    start: SimTime,
}

#[derive(Debug)]
struct TracerInner {
    gateway: String,
    enabled: AtomicBool,
    spans: Mutex<Vec<Span>>,
    /// The synchronous call stack of open `(trace, span)` frames; the
    /// top frame parents the next `begin`. Adopted wire contexts are
    /// pushed here so remote spans join the caller's trace.
    stack: Mutex<Vec<(TraceId, SpanId)>>,
}

/// A per-gateway span recorder. Cloning shares the underlying state
/// (all of a gateway's components feed one tracer). Disabled by
/// default; while disabled every operation is a no-op after one atomic
/// load, and no allocation happens.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// Creates a disabled tracer for `gateway`.
    pub fn new(gateway: &str) -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                gateway: gateway.to_owned(),
                enabled: AtomicBool::new(false),
                spans: Mutex::new(Vec::new()),
                stack: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Turns span recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// The gateway this tracer attributes spans to.
    pub fn gateway(&self) -> &str {
        &self.inner.gateway
    }

    /// Opens a span as a child of the innermost open span (or as a new
    /// trace root if none is open). `name` is only invoked when the
    /// tracer is enabled, so callers may format freely.
    pub fn begin(&self, sim: &Sim, kind: HopKind, name: impl FnOnce() -> String) -> SpanHandle {
        if !self.is_enabled() {
            return SpanHandle::inert();
        }
        let mut stack = self.inner.stack.lock();
        let (trace, parent) = match stack.last() {
            Some(&(t, p)) => (t, Some(p)),
            None => (TraceId::next(sim), None),
        };
        self.open(sim, &mut stack, trace, parent, kind, name())
    }

    /// Opens a span that starts a *new* trace even if another span is
    /// open — for work initiated by the outside world (a native-bus
    /// command, an event tick) that must not inherit whatever the
    /// gateway happens to be doing.
    pub fn begin_root(
        &self,
        sim: &Sim,
        kind: HopKind,
        name: impl FnOnce() -> String,
    ) -> SpanHandle {
        if !self.is_enabled() {
            return SpanHandle::inert();
        }
        let mut stack = self.inner.stack.lock();
        self.open(sim, &mut stack, TraceId::next(sim), None, kind, name())
    }

    fn open(
        &self,
        sim: &Sim,
        stack: &mut Vec<(TraceId, SpanId)>,
        trace: TraceId,
        parent: Option<SpanId>,
        kind: HopKind,
        name: String,
    ) -> SpanHandle {
        let id = SpanId::next(sim);
        stack.push((trace, id));
        SpanHandle {
            live: Some(LiveSpan {
                trace,
                id,
                parent,
                kind,
                name,
                start: sim.now(),
            }),
        }
    }

    /// Completes a span with no byte or error annotation.
    pub fn end(&self, sim: &Sim, handle: SpanHandle) {
        self.end_with(sim, handle, 0, None);
    }

    /// Completes a span, attributing wire `bytes` and/or an error.
    pub fn end_with(&self, sim: &Sim, handle: SpanHandle, bytes: u64, error: Option<String>) {
        let Some(live) = handle.live else { return };
        {
            let mut stack = self.inner.stack.lock();
            // Pop our frame (and, defensively, anything a buggy caller
            // left unclosed above it).
            if let Some(pos) = stack.iter().rposition(|&(_, id)| id == live.id) {
                stack.truncate(pos);
            }
        }
        self.inner.spans.lock().push(Span {
            trace: live.trace,
            id: live.id,
            parent: live.parent,
            kind: live.kind,
            name: live.name,
            gateway: self.inner.gateway.clone(),
            start: live.start,
            end: sim.now(),
            bytes,
            error,
        });
    }

    /// Completes a span, recording the `Err` of `result` (if any) as
    /// the span's error. The error is only formatted when the handle
    /// is live.
    pub fn end_result<T, E: fmt::Display>(
        &self,
        sim: &Sim,
        handle: SpanHandle,
        result: &Result<T, E>,
    ) {
        if handle.live.is_none() {
            return;
        }
        let error = result.as_ref().err().map(|e| e.to_string());
        self.end_with(sim, handle, 0, error);
    }

    /// The context a wire request should carry: the innermost open
    /// span. `None` when disabled or when no span is open.
    pub fn current_context(&self) -> Option<TraceContext> {
        if !self.is_enabled() {
            return None;
        }
        self.inner
            .stack
            .lock()
            .last()
            .map(|&(trace, parent)| TraceContext { trace, parent })
    }

    /// Adopts a caller's wire context so subsequent spans join the
    /// caller's trace. Returns whether a frame was pushed; if so the
    /// caller must balance with [`Tracer::unadopt`].
    pub fn adopt(&self, ctx: TraceContext) -> bool {
        if !self.is_enabled() {
            return false;
        }
        self.inner.stack.lock().push((ctx.trace, ctx.parent));
        true
    }

    /// Pops the frame pushed by [`Tracer::adopt`].
    pub fn unadopt(&self) {
        self.inner.stack.lock().pop();
    }

    /// A copy of all completed spans, in completion order.
    pub fn spans(&self) -> Vec<Span> {
        self.inner.spans.lock().clone()
    }

    /// Drains completed spans (keeps long-running traced sessions from
    /// growing without bound).
    pub fn take_spans(&self) -> Vec<Span> {
        std::mem::take(&mut self.inner.spans.lock())
    }

    /// Drops all completed spans.
    pub fn clear(&self) {
        self.inner.spans.lock().clear();
    }
}

// ---- rendering -------------------------------------------------------------

/// Distinct trace ids in first-completion order.
pub fn trace_ids(spans: &[Span]) -> Vec<TraceId> {
    let mut seen = Vec::new();
    for s in spans {
        if !seen.contains(&s.trace) {
            seen.push(s.trace);
        }
    }
    seen
}

/// Truncation limits for rendered trace trees, so flight-recorder
/// dumps of deep retry/batch trees stay readable and bounded. Omitted
/// subtrees are replaced by an explicit `… +N spans` marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenderCaps {
    /// Maximum tree levels rendered (the root is level 1). Children
    /// below the last level collapse into a marker.
    pub max_depth: usize,
    /// Maximum children rendered per span; the rest collapse into a
    /// marker counting every omitted descendant.
    pub max_children: usize,
}

impl Default for RenderCaps {
    fn default() -> Self {
        RenderCaps {
            max_depth: 12,
            max_children: 16,
        }
    }
}

/// Renders one trace as an indented text tree, attributing elapsed
/// virtual time (and wire bytes, where measured) to each hop. Spans
/// from several gateways may be mixed in `spans`; the renderer stitches
/// them into one tree via the propagated parent links. Applies the
/// default [`RenderCaps`]; use [`render_trace_capped`] to choose.
pub fn render_trace(trace: TraceId, spans: &[Span]) -> String {
    render_trace_capped(trace, spans, RenderCaps::default())
}

/// [`render_trace`] with explicit depth/children truncation caps.
pub fn render_trace_capped(trace: TraceId, spans: &[Span], caps: RenderCaps) -> String {
    let mine: Vec<&Span> = spans.iter().filter(|s| s.trace == trace).collect();
    if mine.is_empty() {
        return format!("trace {trace}: no spans\n");
    }
    let ids: std::collections::HashSet<SpanId> = mine.iter().map(|s| s.id).collect();
    // Roots: no parent, or a parent we can't see (e.g. rendering only
    // the serving gateway's half).
    let mut roots: Vec<&Span> = mine
        .iter()
        .filter(|s| s.parent.is_none_or(|p| !ids.contains(&p)))
        .copied()
        .collect();
    roots.sort_by_key(|s| (s.start, s.id));

    let start = mine.iter().map(|s| s.start).min().unwrap_or_default();
    let end = mine.iter().map(|s| s.end).max().unwrap_or_default();
    let mut gateways: Vec<&str> = mine.iter().map(|s| s.gateway.as_str()).collect();
    gateways.sort_unstable();
    gateways.dedup();

    let mut out = format!(
        "trace {trace} — {} span{} across {} gateway{} in {}\n",
        mine.len(),
        if mine.len() == 1 { "" } else { "s" },
        gateways.len(),
        if gateways.len() == 1 { "" } else { "s" },
        end - start,
    );
    for (i, root) in roots.iter().enumerate() {
        render_span(&mut out, root, &mine, "", i + 1 == roots.len(), 1, caps);
    }
    out
}

/// Spans in the subtree rooted at `span` (itself included).
fn subtree_size(span: &Span, all: &[&Span]) -> usize {
    1 + all
        .iter()
        .filter(|s| s.parent == Some(span.id))
        .map(|s| subtree_size(s, all))
        .sum::<usize>()
}

fn render_span(
    out: &mut String,
    span: &Span,
    all: &[&Span],
    prefix: &str,
    last: bool,
    level: usize,
    caps: RenderCaps,
) {
    let branch = if last { "└─ " } else { "├─ " };
    out.push_str(prefix);
    out.push_str(branch);
    out.push_str(&format!(
        "{:12} {}  [{}]  {}",
        span.kind.label(),
        span.name,
        span.gateway,
        span.elapsed(),
    ));
    if span.bytes > 0 {
        out.push_str(&format!("  {}B", span.bytes));
    }
    if let Some(err) = &span.error {
        out.push_str(&format!("  !{err}"));
    }
    out.push('\n');

    let mut children: Vec<&&Span> = all.iter().filter(|s| s.parent == Some(span.id)).collect();
    children.sort_by_key(|s| (s.start, s.id));
    let child_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
    if children.is_empty() {
        return;
    }
    if level >= caps.max_depth {
        let omitted: usize = children.iter().map(|c| subtree_size(c, all)).sum();
        out.push_str(&format!("{child_prefix}└─ … +{omitted} spans\n"));
        return;
    }
    let visible = children.len().min(caps.max_children.max(1));
    let omitted: usize = children[visible..]
        .iter()
        .map(|c| subtree_size(c, all))
        .sum();
    for (i, child) in children.iter().take(visible).enumerate() {
        let last_child = i + 1 == visible && omitted == 0;
        render_span(out, child, all, &child_prefix, last_child, level + 1, caps);
    }
    if omitted > 0 {
        out.push_str(&format!("{child_prefix}└─ … +{omitted} spans\n"));
    }
}

/// Renders every trace present in `spans`, one tree after another.
pub fn render_all(spans: &[Span]) -> String {
    let mut out = String::new();
    for trace in trace_ids(spans) {
        out.push_str(&render_trace(trace, spans));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing_and_never_names() {
        let sim = Sim::new(1);
        let t = Tracer::new("gw");
        assert!(!t.is_enabled());
        let h = t.begin(&sim, HopKind::ClientProxy, || {
            panic!("name closure must not run while disabled")
        });
        assert!(!h.is_live());
        t.end(&sim, h);
        assert!(t.current_context().is_none());
        assert!(!t.adopt(TraceContext {
            trace: TraceId(1),
            parent: SpanId(1)
        }));
        assert!(t.spans().is_empty());
    }

    #[test]
    fn nested_spans_share_a_trace_and_link_parents() {
        let sim = Sim::new(1);
        let t = Tracer::new("gw");
        t.set_enabled(true);
        let outer = t.begin(&sim, HopKind::ClientProxy, || "outer".into());
        let inner = t.begin(&sim, HopKind::VsrLookup, || "inner".into());
        t.end(&sim, inner);
        t.end(&sim, outer);

        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        let inner = &spans[0];
        let outer = &spans[1];
        assert_eq!(inner.trace, outer.trace);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert_eq!(outer.gateway, "gw");
    }

    #[test]
    fn begin_root_starts_a_fresh_trace_even_mid_span() {
        let sim = Sim::new(1);
        let t = Tracer::new("gw");
        t.set_enabled(true);
        let outer = t.begin(&sim, HopKind::ClientProxy, || "outer".into());
        let tick = t.begin_root(&sim, HopKind::Event, || "tick".into());
        t.end(&sim, tick);
        t.end(&sim, outer);
        let spans = t.spans();
        assert_ne!(spans[0].trace, spans[1].trace);
        assert_eq!(spans[0].parent, None);
    }

    #[test]
    fn adopted_context_parents_remote_spans() {
        let sim = Sim::new(1);
        let caller = Tracer::new("gw-a");
        let server = Tracer::new("gw-b");
        caller.set_enabled(true);
        server.set_enabled(true);

        let wire = caller.begin(&sim, HopKind::VsgWire, || "soap".into());
        let ctx = caller.current_context().unwrap();

        // "On the wire": the serving gateway adopts and works.
        assert!(server.adopt(TraceContext::from_wire(&ctx.to_wire()).unwrap()));
        let sp = server.begin(&sim, HopKind::ServerProxy, || "svc.op".into());
        server.end(&sim, sp);
        server.unadopt();

        caller.end(&sim, wire);

        let mut all = caller.spans();
        all.extend(server.spans());
        assert_eq!(trace_ids(&all).len(), 1);
        let wire_span = all.iter().find(|s| s.kind == HopKind::VsgWire).unwrap();
        let remote = all.iter().find(|s| s.kind == HopKind::ServerProxy).unwrap();
        assert_eq!(remote.trace, wire_span.trace);
        assert_eq!(remote.parent, Some(wire_span.id));
        assert_eq!(remote.gateway, "gw-b");

        let tree = render_trace(wire_span.trace, &all);
        assert!(tree.contains("vsg-wire"), "{tree}");
        assert!(tree.contains("server-proxy"), "{tree}");
        assert!(tree.contains("[gw-b]"), "{tree}");
    }

    #[test]
    fn context_wire_form_round_trips() {
        let ctx = TraceContext {
            trace: TraceId(0xdead_beef),
            parent: SpanId(42),
        };
        assert_eq!(TraceContext::from_wire(&ctx.to_wire()), Some(ctx));
        assert_eq!(TraceContext::from_wire("junk"), None);
        assert_eq!(TraceContext::from_wire("zz-1"), None);
        assert_eq!(TraceContext::from_wire(""), None);
    }

    #[test]
    fn render_caps_truncate_depth_and_fanout_with_markers() {
        let sim = Sim::new(1);
        let t = Tracer::new("gw");
        t.set_enabled(true);
        // deep chain: 6 nested spans
        let handles: Vec<_> = (0..6)
            .map(|i| t.begin(&sim, HopKind::App, || format!("deep{i}")))
            .collect();
        for h in handles.into_iter().rev() {
            t.end(&sim, h);
        }
        // wide node: one root with 5 children
        let root = t.begin(&sim, HopKind::ClientProxy, || "wide".into());
        for i in 0..5 {
            let c = t.begin(&sim, HopKind::App, || format!("child{i}"));
            t.end(&sim, c);
        }
        t.end(&sim, root);

        let spans = t.spans();
        let traces = trace_ids(&spans);
        let caps = RenderCaps {
            max_depth: 3,
            max_children: 2,
        };
        let deep = render_trace_capped(traces[0], &spans, caps);
        assert!(deep.contains("… +3 spans"), "{deep}");
        assert!(!deep.contains("deep3"), "{deep}");
        let wide = render_trace_capped(traces[1], &spans, caps);
        assert!(wide.contains("child0") && wide.contains("child1"), "{wide}");
        assert!(wide.contains("… +3 spans"), "{wide}");
        assert!(!wide.contains("child2"), "{wide}");
        // default caps leave small trees untouched
        let full = render_trace(traces[1], &spans);
        assert!(full.contains("child4"), "{full}");
        assert!(!full.contains('…'), "{full}");
    }

    #[test]
    fn render_attributes_bytes_and_errors() {
        let sim = Sim::new(1);
        let t = Tracer::new("gw");
        t.set_enabled(true);
        let wire = t.begin(&sim, HopKind::VsgWire, || "soap→gw-b".into());
        t.end_with(&sim, wire, 1482, Some("gateway 'gw-b' unreachable".into()));
        let spans = t.spans();
        let tree = render_trace(spans[0].trace, &spans);
        assert!(tree.contains("1482B"), "{tree}");
        assert!(tree.contains("unreachable"), "{tree}");
    }
}
