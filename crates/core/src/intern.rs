//! Interned names: an `Arc<str>` well shared by the VSG, the VSR and
//! the resolution cache.
//!
//! A home gateway sees the same few dozen service names and QNames on
//! every hop. [`Name`] stores each distinct spelling once, process-wide:
//! constructing a `Name` for a string the well has already seen costs
//! one hash lookup and an `Arc` clone — no allocation, no copy — and
//! cloning one is a reference-count bump. The well is bounded so a
//! chaos workload spraying random names degrades to plain (unshared)
//! allocation instead of growing without limit.

use parking_lot::Mutex;
use std::borrow::Borrow;
use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

/// Upper bound on distinct spellings the well retains. Beyond it, new
/// names are still valid `Name`s — they just aren't shared.
const WELL_CAPACITY: usize = 1 << 16;

fn well() -> &'static Mutex<HashSet<Arc<str>>> {
    static WELL: OnceLock<Mutex<HashSet<Arc<str>>>> = OnceLock::new();
    WELL.get_or_init(|| Mutex::new(HashSet::new()))
}

/// An interned, cheaply cloneable string: service names, operation
/// names, QNames.
///
/// Behaves like `&str` everywhere it matters — it derefs, borrows,
/// hashes and orders as its string content, so a `HashMap<Name, _>` is
/// queryable with a plain `&str` key and call sites that pass `&str`
/// keep compiling unchanged.
#[derive(Clone)]
pub struct Name(Arc<str>);

impl Name {
    /// Interns `s`, sharing storage with every other `Name` of the
    /// same spelling (until the well's capacity bound).
    pub fn new(s: &str) -> Name {
        let mut well = well().lock();
        if let Some(existing) = well.get(s) {
            return Name(existing.clone());
        }
        let arc: Arc<str> = Arc::from(s);
        if well.len() < WELL_CAPACITY {
            well.insert(arc.clone());
        }
        Name(arc)
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The shared allocation itself, for callers that keep `Arc<str>`.
    pub fn as_arc(&self) -> &Arc<str> {
        &self.0
    }

    /// Number of distinct spellings currently retained by the well.
    pub fn well_size() -> usize {
        well().lock().len()
    }
}

impl std::ops::Deref for Name {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for Name {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Name {
        Name::new(s)
    }
}

impl From<&String> for Name {
    fn from(s: &String) -> Name {
        Name::new(s)
    }
}

impl From<String> for Name {
    fn from(s: String) -> Name {
        Name::new(&s)
    }
}

impl From<&Name> for Name {
    fn from(n: &Name) -> Name {
        n.clone()
    }
}

impl From<Name> for String {
    fn from(n: Name) -> String {
        n.as_str().to_owned()
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Name) -> bool {
        // Interned names of equal content usually share the allocation.
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for Name {}

impl PartialEq<str> for Name {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Name {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Name {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<Name> for str {
    fn eq(&self, other: &Name) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Name> for &str {
    fn eq(&self, other: &Name) -> bool {
        *self == other.as_str()
    }
}

impl Hash for Name {
    // Must match `str`'s hash so `Borrow<str>` map lookups work.
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_str().hash(state)
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Name) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    fn cmp(&self, other: &Name) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.0, f)
    }
}

impl Default for Name {
    fn default() -> Name {
        Name::new("")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn same_spelling_shares_storage() {
        let a = Name::new("living-room-vcr");
        let b = Name::new("living-room-vcr");
        assert!(Arc::ptr_eq(a.as_arc(), b.as_arc()));
        assert_eq!(a, b);
    }

    #[test]
    fn maps_are_queryable_by_str() {
        let mut m: HashMap<Name, u32> = HashMap::new();
        m.insert(Name::new("vcr"), 1);
        assert_eq!(m.get("vcr"), Some(&1));
        assert_eq!(m.get("tv"), None);
    }

    #[test]
    fn compares_and_orders_as_str() {
        let n = Name::new("abc");
        assert_eq!(n, "abc");
        assert_eq!(n, "abc".to_owned());
        assert!("abc" == n);
        assert!(Name::new("a") < Name::new("b"));
        assert_eq!(format!("{n}"), "abc");
        assert_eq!(format!("{n:?}"), "\"abc\"");
    }

    #[test]
    fn deref_gives_str_methods() {
        let n = Name::new("ns1:record");
        assert_eq!(n.split_once(':'), Some(("ns1", "record")));
        assert_eq!(n.len(), 10);
    }
}
