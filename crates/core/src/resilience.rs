//! The resilience layer: deadlines, backoff, and circuit breakers.
//!
//! The paper's backbone (§3.1) rides a real home network — powerline
//! segments drop frames, gateways crash, the access network partitions.
//! This module holds the *policy* half of the gateway's answer: how
//! long an invocation may take end to end ([`ResiliencePolicy::deadline`]),
//! how re-sends are paced ([`ResiliencePolicy::backoff`]), and when a
//! remote gateway is declared unhealthy and calls fail fast instead of
//! burning the deadline ([`CircuitBreaker`]). The *mechanism* half —
//! the retry loop that consults these — lives in `Vsg::invoke`.
//!
//! Everything is computed on virtual time and the simulation's seeded
//! RNG, so a chaos schedule replays identically run after run.

use parking_lot::Mutex;
use simnet::{NodeId, Sim, SimDuration, SimTime};
use std::collections::HashMap;
use std::fmt;

/// Per-gateway knobs for the resilient wire path.
///
/// The defaults suit the simulated home: the deadline is generous
/// enough to ride out a short loss spike (several backed-off retries)
/// but binds well before the retry budget on a hard partition, so a
/// partitioned call surfaces as [`crate::MetaError::DeadlineExceeded`]
/// rather than hanging through eight maximum backoffs.
#[derive(Debug, Clone, PartialEq)]
pub struct ResiliencePolicy {
    /// Master switch. When off, every wire call is a single attempt
    /// and the breaker/degraded paths are bypassed — the pre-resilience
    /// gateway behaviour, kept for ablation benches.
    pub enabled: bool,
    /// End-to-end virtual-time budget for one invocation, spanning all
    /// attempts and backoff waits.
    pub deadline: SimDuration,
    /// Re-send budget per invocation (first attempt not counted).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each retry.
    pub base_backoff: SimDuration,
    /// Cap on any single backoff wait.
    pub max_backoff: SimDuration,
    /// Jitter each wait over `[wait/2, wait]`, drawn from the seeded
    /// simulation RNG (decorrelates replicas without losing replay).
    pub jitter: bool,
    /// Consecutive transport failures that open a remote gateway's
    /// breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker rejects calls before admitting one
    /// half-open probe.
    pub breaker_open_window: SimDuration,
    /// Serve a stale (invalidated) cached route when the VSR itself is
    /// unreachable, instead of failing the invocation.
    pub degraded_reads: bool,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            enabled: true,
            deadline: SimDuration::from_secs(2),
            max_retries: 8,
            base_backoff: SimDuration::from_millis(50),
            max_backoff: SimDuration::from_millis(800),
            jitter: true,
            breaker_threshold: 5,
            breaker_open_window: SimDuration::from_secs(5),
            degraded_reads: true,
        }
    }
}

impl ResiliencePolicy {
    /// The pre-resilience gateway: single attempt, no breaker, no
    /// degraded serving. Used by ablation benches and available to any
    /// deployment that wants raw failures.
    pub fn disabled() -> ResiliencePolicy {
        ResiliencePolicy {
            enabled: false,
            ..ResiliencePolicy::default()
        }
    }

    /// The wait before retry number `attempt` (0-based): exponential
    /// from [`Self::base_backoff`], capped at [`Self::max_backoff`],
    /// jittered over `[wait/2, wait]` when [`Self::jitter`] is on. The
    /// draw comes from the simulation's seeded RNG, so a given seed
    /// yields the same pacing every run.
    pub fn backoff(&self, attempt: u32, sim: &Sim) -> SimDuration {
        let base = self.base_backoff.as_micros();
        let cap = self.max_backoff.as_micros().max(base);
        let wait = base.saturating_mul(1u64 << attempt.min(20)).min(cap);
        if wait == 0 {
            return SimDuration::ZERO;
        }
        let us = if self.jitter {
            sim.with_rng(|r| r.range(wait / 2, wait + 1))
        } else {
            wait
        };
        SimDuration::from_micros(us)
    }
}

/// Where a remote gateway's circuit breaker stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BreakerState {
    /// Healthy: calls flow, consecutive failures are counted.
    Closed,
    /// Tripped: calls fail fast with [`crate::MetaError::CircuitOpen`]
    /// until the open window elapses.
    Open,
    /// Probing: the open window elapsed and one call is admitted to
    /// test the remote; success closes, failure re-opens.
    HalfOpen,
}

impl BreakerState {
    /// Stable text label (`closed` / `open` / `half-open`), used for
    /// the metrics gauge and trace spans.
    pub fn label(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A per-remote-gateway circuit breaker on virtual time.
///
/// Only *transport* failures (see `MetaError::is_transport_failure`)
/// count against it: an application fault or an unknown-service answer
/// proves the remote gateway alive and counts as a success.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: u32,
    open_window: SimDuration,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: SimTime,
}

impl CircuitBreaker {
    /// Creates a closed breaker that opens after `threshold`
    /// consecutive transport failures and admits a probe once
    /// `open_window` has elapsed.
    pub fn new(threshold: u32, open_window: SimDuration) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            open_window,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: SimTime::ZERO,
        }
    }

    /// Whether a call may proceed at `now`. An open breaker whose
    /// window has elapsed moves to half-open and admits the call as
    /// its probe.
    pub fn admit(&mut self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now.since(self.opened_at) >= self.open_window {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful (or liveness-proving) call: the breaker
    /// closes and the failure run resets.
    pub fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// Records a transport failure at `now`. A half-open probe failure
    /// re-opens immediately; a closed breaker opens once the
    /// consecutive-failure run reaches the threshold.
    pub fn on_failure(&mut self, now: SimTime) {
        match self.state {
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.opened_at = now;
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.threshold {
                    self.state = BreakerState::Open;
                    self.opened_at = now;
                }
            }
            // Gated calls shouldn't reach the wire, but a racing
            // failure while open just refreshes the window.
            BreakerState::Open => self.opened_at = now,
        }
    }

    /// The current state (no transition side effects).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// The current consecutive-transport-failure run (closed state).
    pub fn failure_run(&self) -> u32 {
        self.consecutive_failures
    }
}

/// A bank of circuit breakers keyed by backbone node — one per VSR
/// replica. The shard-aware [`crate::VsrClient`] consults it while
/// walking a shard's preference list: a replica whose breaker is open
/// is skipped without touching the wire, so failover to the next
/// replica costs nothing once a crash has been observed a few times.
///
/// Breakers are created closed on first use. The bank is internally
/// locked so one bank can be shared by every clone of a client.
#[derive(Debug)]
pub struct BreakerBank {
    threshold: u32,
    open_window: SimDuration,
    breakers: Mutex<HashMap<NodeId, CircuitBreaker>>,
}

impl BreakerBank {
    /// Creates an empty bank whose breakers open after `threshold`
    /// consecutive transport failures and admit a half-open probe once
    /// `open_window` has elapsed.
    pub fn new(threshold: u32, open_window: SimDuration) -> BreakerBank {
        BreakerBank {
            threshold: threshold.max(1),
            open_window,
            breakers: Mutex::new(HashMap::new()),
        }
    }

    fn with<T>(&self, node: NodeId, f: impl FnOnce(&mut CircuitBreaker) -> T) -> T {
        let mut breakers = self.breakers.lock();
        let br = breakers
            .entry(node)
            .or_insert_with(|| CircuitBreaker::new(self.threshold, self.open_window));
        f(br)
    }

    /// Whether a call to `node` may proceed at `now` (an elapsed open
    /// window admits the call as its half-open probe).
    pub fn admit(&self, node: NodeId, now: SimTime) -> bool {
        self.with(node, |br| br.admit(now))
    }

    /// Records a successful (or liveness-proving) call to `node`.
    pub fn on_success(&self, node: NodeId) {
        self.with(node, CircuitBreaker::on_success);
    }

    /// Records a transport failure against `node` at `now`.
    pub fn on_failure(&self, node: NodeId, now: SimTime) {
        self.with(node, |br| br.on_failure(now));
    }

    /// The breaker state held for `node` (closed if never touched).
    pub fn state(&self, node: NodeId) -> BreakerState {
        self.breakers
            .lock()
            .get(&node)
            .map_or(BreakerState::Closed, CircuitBreaker::state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_let_the_deadline_bind_before_the_retry_budget() {
        let p = ResiliencePolicy::default();
        assert!(p.enabled);
        // Worst-case waits: 50+100+200+400+800*4 ms = 3.95 s > 2 s, so
        // a hard partition ends as DeadlineExceeded, not retries-spent.
        let worst: u64 = (0..p.max_retries)
            .map(|a| (p.base_backoff.as_micros() << a.min(20)).min(p.max_backoff.as_micros()))
            .sum();
        assert!(
            worst > p.deadline.as_micros(),
            "deadline must bind first: {worst} vs {}",
            p.deadline.as_micros()
        );
    }

    #[test]
    fn backoff_doubles_caps_and_jitters_deterministically() {
        let p = ResiliencePolicy {
            jitter: false,
            ..ResiliencePolicy::default()
        };
        let sim = Sim::new(7);
        assert_eq!(p.backoff(0, &sim), SimDuration::from_millis(50));
        assert_eq!(p.backoff(1, &sim), SimDuration::from_millis(100));
        assert_eq!(p.backoff(2, &sim), SimDuration::from_millis(200));
        assert_eq!(p.backoff(10, &sim), SimDuration::from_millis(800), "capped");

        let jittered = ResiliencePolicy::default();
        let a = Sim::new(42);
        let b = Sim::new(42);
        for attempt in 0..4 {
            let wa = jittered.backoff(attempt, &a);
            let wb = jittered.backoff(attempt, &b);
            assert_eq!(wa, wb, "same seed, same pacing");
            let full = p.backoff(attempt, &a).as_micros();
            assert!(wa.as_micros() >= full / 2 && wa.as_micros() <= full);
        }
    }

    #[test]
    fn breaker_opens_probes_and_recloses() {
        let window = SimDuration::from_secs(5);
        let mut br = CircuitBreaker::new(3, window);
        let sim = Sim::new(1);
        assert_eq!(br.state(), BreakerState::Closed);

        for _ in 0..2 {
            assert!(br.admit(sim.now()));
            br.on_failure(sim.now());
        }
        assert_eq!(br.state(), BreakerState::Closed, "below threshold");
        br.on_failure(sim.now());
        assert_eq!(br.state(), BreakerState::Open, "threshold reached");
        assert!(!br.admit(sim.now()), "open rejects immediately");

        sim.advance(SimDuration::from_secs(4));
        assert!(!br.admit(sim.now()), "window not yet elapsed");
        sim.advance(SimDuration::from_secs(1));
        assert!(br.admit(sim.now()), "window elapsed: probe admitted");
        assert_eq!(br.state(), BreakerState::HalfOpen);

        // Probe fails: straight back to open, window restarted.
        br.on_failure(sim.now());
        assert_eq!(br.state(), BreakerState::Open);
        sim.advance(window);
        assert!(br.admit(sim.now()));
        br.on_success();
        assert_eq!(br.state(), BreakerState::Closed);
        assert_eq!(br.failure_run(), 0);

        // A success resets the failure run entirely.
        br.on_failure(sim.now());
        br.on_failure(sim.now());
        br.on_success();
        br.on_failure(sim.now());
        assert_eq!(br.state(), BreakerState::Closed, "run was reset");
    }

    #[test]
    fn breaker_bank_tracks_replicas_independently() {
        let sim = Sim::new(1);
        let bank = BreakerBank::new(2, SimDuration::from_secs(5));
        let (a, b) = (NodeId(10), NodeId(11));
        assert_eq!(bank.state(a), BreakerState::Closed, "untouched is closed");
        bank.on_failure(a, sim.now());
        bank.on_failure(a, sim.now());
        assert_eq!(bank.state(a), BreakerState::Open);
        assert!(!bank.admit(a, sim.now()), "a rejects");
        assert!(bank.admit(b, sim.now()), "b unaffected");
        sim.advance(SimDuration::from_secs(5));
        assert!(bank.admit(a, sim.now()), "probe after window");
        bank.on_success(a);
        assert_eq!(bank.state(a), BreakerState::Closed);
    }
}
