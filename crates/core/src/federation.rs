//! The federated Virtual Service Repository: shards, replicas, failover.
//!
//! §3.3 describes the VSR as "a *virtual* database" — nothing in the
//! paper says it must be one process, and the road-map's multi-backend
//! scale target says it must not be. This module turns the repository
//! into a small federation:
//!
//! * the service **namespace is partitioned** across a fixed number of
//!   shards by consistent hashing (a ring of virtual points, so a
//!   future re-shard moves a minimal slice of names);
//! * each shard has a **preference list** of replicas — the first
//!   entry is the shard's *primary*, the rest are backups — assigned
//!   by hashing replicas onto a second ring (adding a replica steals
//!   shards evenly instead of reshuffling everything);
//! * writes land on the primary and are **eagerly pushed** to the
//!   shard's backups; a periodic **anti-entropy** exchange (digests of
//!   `(name, version)` pairs, then targeted fetch/push) repairs
//!   whatever a crash window dropped;
//! * every entry carries a [`Version`] — `(virtual-time, replica,
//!   seq)` — and conflicts resolve last-writer-wins, with one twist:
//!   a lease-expiry tombstone names the exact incarnation it reaped
//!   (`EntryKind::Expired`), so a record renewed against a new
//!   primary can never be killed by a stale reaper on the old one;
//! * a replica asked about a shard it does not host answers
//!   [`MetaError::MovedShard`], telling the client to refresh its
//!   cached [`ShardMap`] and re-route.
//!
//! The shard map itself is shared state among the replicas of one
//! cluster (they live in one simulated process group); clients learn
//! it over the wire via the `shard_map` operation and cache it.
//! Failover is client-driven: a write that cannot reach the primary is
//! retried against a backup with a `promote` flag, and the backup
//! moves itself to the front of the preference list (bumping the map
//! version) before applying.

use crate::error::MetaError;
use crate::metrics::MetricsRegistry;
use crate::trace::{HopKind, Tracer};
use parking_lot::Mutex;
use simnet::{Network, NodeId, Sim, SimDuration, SimTime};
use soap::{Fault, RpcCall, SoapClient, SoapServer, Value};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use wsdl::{Key, KeyedReference, UddiRegistry};

/// The repository's SOAP namespace (same as the single-node VSR — a
/// one-replica federation is wire-compatible with the original).
pub(crate) const VSR_NS: &str = "urn:vsg:repository";

pub(crate) const TAX_MIDDLEWARE: &str = "uddi:middleware";
pub(crate) const TAX_GATEWAY: &str = "uddi:gateway";
/// Context taxonomies are namespaced per key: `uddi:ctx:<key>`.
pub(crate) const TAX_CONTEXT_PREFIX: &str = "uddi:ctx:";

/// Virtual points per shard (and per replica) on the hash rings.
/// Enough that placement variance stays small — with too few points a
/// shard can end up owning no arc of the name ring at all.
const RING_POINTS: u32 = 64;

/// FNV-1a with a murmur-style avalanche finalizer: stable across runs
/// and platforms, so shard placement is deterministic. Raw FNV-1a
/// clusters badly in the upper bits on short, similar names (exactly
/// what service names are), and ring placement keys on the upper
/// bits — the finalizer spreads them.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

// ---- configuration ---------------------------------------------------------

/// Shape of a federated repository.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FederationConfig {
    /// Number of namespace shards (≥ 1).
    pub shards: u32,
    /// Number of repository replicas (≥ 1).
    pub replicas: usize,
    /// Preference-list length per shard — primary plus backups,
    /// clamped to the replica count.
    pub replication: usize,
    /// Period of the anti-entropy exchange (armed by
    /// `SmartHomeBuilder` when the cluster has more than one replica).
    pub sync_interval: SimDuration,
    /// Extra delay before the first anti-entropy pass. Defaults to
    /// zero; fleets stagger this per island so that thousands of homes
    /// don't all sync at the same virtual instant.
    pub sync_phase: SimDuration,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            shards: 1,
            replicas: 1,
            replication: 2,
            sync_interval: SimDuration::from_secs(2),
            sync_phase: SimDuration::ZERO,
        }
    }
}

// ---- versions --------------------------------------------------------------

/// A replicated entry's version: virtual time first, then replica id
/// and a per-replica sequence number as tie-breakers. Ordering is the
/// derived lexicographic one — last writer wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Version {
    /// Virtual microseconds when the write was stamped.
    pub at_us: u64,
    /// The stamping replica's id.
    pub replica: u32,
    /// The stamping replica's write counter.
    pub seq: u64,
}

impl Version {
    fn to_value(self) -> Value {
        Value::List(vec![
            Value::Int(self.at_us as i64),
            Value::Int(i64::from(self.replica)),
            Value::Int(self.seq as i64),
        ])
    }

    fn from_value(v: &Value) -> Option<Version> {
        match v {
            Value::List(items) if items.len() == 3 => Some(Version {
                at_us: items[0].as_int()? as u64,
                replica: u32::try_from(items[1].as_int()?).ok()?,
                seq: items[2].as_int()? as u64,
            }),
            _ => None,
        }
    }
}

// ---- the shard map ---------------------------------------------------------

/// The cluster's routing table: which replicas host each shard, in
/// preference order (primary first), plus a version that bumps on
/// every promotion so clients can tell a stale map from a fresh one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    version: u64,
    /// Per-shard preference lists (primary first).
    assignments: Vec<Vec<NodeId>>,
    /// Sorted `(point, shard)` ring mapping name hashes to shards.
    ring: Vec<(u64, u32)>,
}

fn shard_ring(shards: u32) -> Vec<(u64, u32)> {
    let mut ring = Vec::with_capacity((shards * RING_POINTS) as usize);
    for s in 0..shards {
        for p in 0..RING_POINTS {
            ring.push((fnv1a(format!("shard-{s}#{p}").as_bytes()), s));
        }
    }
    ring.sort_unstable();
    ring
}

impl ShardMap {
    /// Builds the initial map: names partition onto `shards` via the
    /// shard ring; each shard's preference list is the first
    /// `replication` distinct replicas clockwise from the shard's
    /// anchor point on a ring of the given `nodes`.
    pub fn build(shards: u32, nodes: &[NodeId], replication: usize) -> ShardMap {
        let shards = shards.max(1);
        assert!(!nodes.is_empty(), "a shard map needs at least one node");
        let replication = replication.clamp(1, nodes.len());

        // The replica ring: RING_POINTS virtual points per node.
        let mut replica_ring: Vec<(u64, usize)> =
            Vec::with_capacity(nodes.len() * RING_POINTS as usize);
        for (idx, node) in nodes.iter().enumerate() {
            for p in 0..RING_POINTS {
                replica_ring.push((fnv1a(format!("replica-{}#{p}", node.0).as_bytes()), idx));
            }
        }
        replica_ring.sort_unstable();

        let assignments = (0..shards)
            .map(|s| {
                let anchor = fnv1a(format!("shard-{s}").as_bytes());
                let start = replica_ring.partition_point(|&(point, _)| point < anchor);
                let mut prefs: Vec<NodeId> = Vec::with_capacity(replication);
                for i in 0..replica_ring.len() {
                    let (_, idx) = replica_ring[(start + i) % replica_ring.len()];
                    if !prefs.contains(&nodes[idx]) {
                        prefs.push(nodes[idx]);
                        if prefs.len() == replication {
                            break;
                        }
                    }
                }
                prefs
            })
            .collect();

        ShardMap {
            version: 1,
            assignments,
            ring: shard_ring(shards),
        }
    }

    /// The map's version (bumped by every promotion).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of shards.
    pub fn shard_count(&self) -> u32 {
        self.assignments.len() as u32
    }

    /// The shard `name` hashes to: the shard owning the first ring
    /// point at or after the name's hash (wrapping).
    pub fn shard_of(&self, name: &str) -> u32 {
        let h = fnv1a(name.as_bytes());
        let i = self.ring.partition_point(|&(point, _)| point < h);
        self.ring[i % self.ring.len()].1
    }

    /// The shard's preference list, primary first.
    pub fn replicas_for(&self, shard: u32) -> &[NodeId] {
        &self.assignments[shard as usize % self.assignments.len()]
    }

    /// The shard's current primary.
    pub fn primary(&self, shard: u32) -> NodeId {
        self.replicas_for(shard)[0]
    }

    /// Every node appearing in any preference list, deduplicated in
    /// first-appearance order (deterministic).
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = Vec::new();
        for prefs in &self.assignments {
            for &n in prefs {
                if !out.contains(&n) {
                    out.push(n);
                }
            }
        }
        out
    }

    /// True if `node` is in `shard`'s preference list.
    pub fn hosts(&self, shard: u32, node: NodeId) -> bool {
        self.replicas_for(shard).contains(&node)
    }

    /// Moves `node` to the front of `shard`'s preference list (a
    /// backup promoting itself after the primary failed). Bumps the
    /// map version when anything changed; returns whether it did.
    pub fn promote(&mut self, shard: u32, node: NodeId) -> bool {
        let prefs = &mut self.assignments[shard as usize];
        match prefs.iter().position(|&n| n == node) {
            Some(0) | None => false,
            Some(i) => {
                prefs.remove(i);
                prefs.insert(0, node);
                self.version += 1;
                true
            }
        }
    }

    pub(crate) fn to_value(&self) -> Value {
        Value::Record(vec![
            ("version".into(), Value::Int(self.version as i64)),
            (
                "shards".into(),
                Value::List(
                    self.assignments
                        .iter()
                        .map(|prefs| {
                            Value::List(prefs.iter().map(|n| Value::Int(i64::from(n.0))).collect())
                        })
                        .collect(),
                ),
            ),
        ])
    }

    pub(crate) fn from_value(v: &Value) -> Option<ShardMap> {
        let version = v.field("version")?.as_int()? as u64;
        let shards = match v.field("shards")? {
            Value::List(items) => items
                .iter()
                .map(|prefs| match prefs {
                    Value::List(nodes) => nodes
                        .iter()
                        .map(|n| n.as_int().and_then(|i| u32::try_from(i).ok()).map(NodeId))
                        .collect::<Option<Vec<NodeId>>>(),
                    _ => None,
                })
                .collect::<Option<Vec<Vec<NodeId>>>>()?,
            _ => return None,
        };
        if shards.is_empty() || shards.iter().any(Vec::is_empty) {
            return None;
        }
        let ring = shard_ring(shards.len() as u32);
        Some(ShardMap {
            version,
            assignments: shards,
            ring,
        })
    }
}

// ---- the replicated store --------------------------------------------------

/// The raw publish payload, replicated verbatim so any replica can
/// serve (or re-serve) the record. The lease deadline travels with it:
/// a replica may only reap what the *replicated* state says is due.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct StoredRecord {
    pub middleware: String,
    pub gateway: String,
    pub wsdl: String,
    pub contexts: Vec<(String, String)>,
    pub expires_at: Option<SimTime>,
}

/// What a versioned entry holds.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum EntryKind {
    /// A live record.
    Record(StoredRecord),
    /// A deliberate withdrawal — beats anything older, LWW.
    Unpublished,
    /// A lease-expiry tombstone. `of` names the exact incarnation the
    /// reaper saw: a record re-published or renewed *after* `of`
    /// survives this tombstone even if the tombstone's own version is
    /// later (a stale reaper on a crashed-and-recovered primary must
    /// not kill a record that was renewed elsewhere meanwhile).
    Expired {
        /// Version of the incarnation that was reaped.
        of: Version,
    },
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Entry {
    pub version: Version,
    pub shard: u32,
    pub kind: EntryKind,
}

impl Entry {
    fn to_value(&self, name: &str) -> Value {
        let mut fields = vec![
            ("name".into(), Value::Str(name.to_owned())),
            ("shard".into(), Value::Int(i64::from(self.shard))),
            ("version".into(), self.version.to_value()),
        ];
        match &self.kind {
            EntryKind::Record(rec) => {
                fields.push(("kind".into(), Value::Str("record".into())));
                fields.push(("middleware".into(), Value::Str(rec.middleware.clone())));
                fields.push(("gateway".into(), Value::Str(rec.gateway.clone())));
                fields.push(("wsdl".into(), Value::Str(rec.wsdl.clone())));
                fields.push((
                    "contexts".into(),
                    Value::Record(
                        rec.contexts
                            .iter()
                            .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                            .collect(),
                    ),
                ));
                fields.push((
                    "expires_at".into(),
                    rec.expires_at
                        .map_or(Value::Null, |t| Value::Int(t.as_micros() as i64)),
                ));
            }
            EntryKind::Unpublished => {
                fields.push(("kind".into(), Value::Str("unpublish".into())));
            }
            EntryKind::Expired { of } => {
                fields.push(("kind".into(), Value::Str("expired".into())));
                fields.push(("of".into(), of.to_value()));
            }
        }
        Value::Record(fields)
    }

    fn from_value(v: &Value) -> Option<(String, Entry)> {
        let name = v.field("name")?.as_str()?.to_owned();
        let shard = u32::try_from(v.field("shard")?.as_int()?).ok()?;
        let version = Version::from_value(v.field("version")?)?;
        let kind = match v.field("kind")?.as_str()? {
            "record" => EntryKind::Record(StoredRecord {
                middleware: v.field("middleware")?.as_str()?.to_owned(),
                gateway: v.field("gateway")?.as_str()?.to_owned(),
                wsdl: v.field("wsdl")?.as_str()?.to_owned(),
                contexts: match v.field("contexts") {
                    Some(Value::Record(fields)) => fields
                        .iter()
                        .filter_map(|(k, val)| val.as_str().map(|s| (k.clone(), s.to_owned())))
                        .collect(),
                    _ => Vec::new(),
                },
                expires_at: v
                    .field("expires_at")
                    .and_then(Value::as_int)
                    .map(|us| SimTime::from_micros(us as u64)),
            }),
            "unpublish" => EntryKind::Unpublished,
            "expired" => EntryKind::Expired {
                of: Version::from_value(v.field("of")?)?,
            },
            _ => return None,
        };
        Some((
            name,
            Entry {
                version,
                shard,
                kind,
            },
        ))
    }
}

pub(crate) struct ReplicaState {
    pub id: u32,
    pub registry: UddiRegistry,
    pub business: Key,
    /// The replicated, versioned truth. The UDDI registry below is a
    /// mirror of the live records, kept for §3.3-faithful inquiry
    /// (pattern matching, category filters, inquiry statistics).
    pub entries: HashMap<String, Entry>,
    /// The gateway directory, versioned like entries but not sharded
    /// (every replica carries the full directory).
    pub gateways: HashMap<String, (u32, Version)>,
    pub lease: Option<SimDuration>,
    seq: u64,
}

impl ReplicaState {
    fn new(id: u32) -> ReplicaState {
        let mut registry = UddiRegistry::new();
        let business = registry.save_business("smart-home", "the home's service federation");
        ReplicaState {
            id,
            registry,
            business,
            entries: HashMap::new(),
            gateways: HashMap::new(),
            lease: None,
            seq: 0,
        }
    }

    fn next_version(&mut self, now: SimTime) -> Version {
        self.seq += 1;
        Version {
            at_us: now.as_micros(),
            replica: self.id,
            seq: self.seq,
        }
    }

    /// Merges one incoming entry; returns whether it was applied. The
    /// general rule is last-writer-wins on [`Version`]; expiry
    /// tombstones are scoped to the incarnation they reaped (see
    /// [`EntryKind::Expired`]).
    pub(crate) fn apply_entry(&mut self, name: &str, inc: Entry) -> bool {
        let accept = match self.entries.get(name) {
            None => true,
            Some(cur) => match (&inc.kind, &cur.kind) {
                // An expiry tombstone kills only the incarnation it
                // reaped (or older); a later renew/republish survives.
                (EntryKind::Expired { of }, EntryKind::Record(_)) => *of >= cur.version,
                // A record written after the reaped incarnation
                // supersedes the tombstone even if the tombstone's own
                // stamp is later (the stale-reaper race).
                (EntryKind::Record(_), EntryKind::Expired { of }) => inc.version > *of,
                _ => inc.version > cur.version,
            },
        };
        if !accept {
            return false;
        }
        self.mirror(name, &inc);
        self.entries.insert(name.to_owned(), inc);
        true
    }

    /// Rebuilds the UDDI mirror for `name` from an entry about to be
    /// stored (same save/delete calls the single-node VSR made, so
    /// publish statistics and inquiry behaviour are unchanged).
    fn mirror(&mut self, name: &str, entry: &Entry) {
        delete_by_name(&mut self.registry, name);
        if let EntryKind::Record(rec) = &entry.kind {
            let tmodel = self
                .registry
                .save_tmodel(&format!("{name}-interface"), &rec.wsdl);
            let endpoint = format!("vsg://{}/{}", rec.gateway, name);
            let business = self.business.clone();
            let mut categories = vec![
                KeyedReference::new(TAX_MIDDLEWARE, &rec.middleware),
                KeyedReference::new(TAX_GATEWAY, &rec.gateway),
            ];
            for (k, v) in &rec.contexts {
                categories.push(KeyedReference::new(format!("{TAX_CONTEXT_PREFIX}{k}"), v));
            }
            self.registry
                .save_service(&business, name, categories, &endpoint, Some(tmodel));
        }
    }

    /// Lazily reaps every record whose replicated lease deadline has
    /// passed, tombstoning it with [`EntryKind::Expired`]. Returns the
    /// tombstones so the caller can replicate them to the shard peers.
    fn expire_due(&mut self, now: SimTime) -> Vec<(String, Entry)> {
        let mut due: Vec<String> = self
            .entries
            .iter()
            .filter(|(_, e)| match &e.kind {
                EntryKind::Record(rec) => rec.expires_at.is_some_and(|at| at <= now),
                _ => false,
            })
            .map(|(name, _)| name.clone())
            .collect();
        due.sort_unstable();
        let mut out = Vec::with_capacity(due.len());
        for name in due {
            let (of, shard) = {
                let cur = &self.entries[&name];
                (cur.version, cur.shard)
            };
            let tomb = Entry {
                version: self.next_version(now),
                shard,
                kind: EntryKind::Expired { of },
            };
            self.mirror(&name, &tomb);
            self.entries.insert(name.clone(), tomb.clone());
            out.push((name, tomb));
        }
        out
    }

    /// Merges one gateway-directory entry (LWW on version).
    fn apply_gateway(&mut self, name: &str, node: u32, version: Version) -> bool {
        match self.gateways.get(name) {
            Some(&(_, cur)) if version <= cur => false,
            _ => {
                self.gateways.insert(name.to_owned(), (node, version));
                true
            }
        }
    }
}

/// Deletes every record named `name` (index-backed, no scan) together
/// with the tModels its bindings referenced. Returns whether anything
/// was removed.
pub(crate) fn delete_by_name(registry: &mut UddiRegistry, name: &str) -> bool {
    let removed = registry.delete_services_by_name(name);
    let found = !removed.is_empty();
    for service in removed {
        for binding in &service.bindings {
            if let Some(tm) = &binding.tmodel_key {
                registry.delete_tmodel(tm);
            }
        }
    }
    found
}

/// Serializes one registry inquiry hit the way the single-node VSR
/// did: categories carry middleware/gateway/contexts, the bound tModel
/// carries the WSDL (and the `get_tmodel` inquiry is counted).
pub(crate) fn service_to_value(
    registry: &mut UddiRegistry,
    svc: &wsdl::BusinessService,
) -> Option<Value> {
    let middleware = svc
        .categories
        .iter()
        .find(|c| c.taxonomy == TAX_MIDDLEWARE)?
        .value
        .clone();
    let gateway = svc
        .categories
        .iter()
        .find(|c| c.taxonomy == TAX_GATEWAY)?
        .value
        .clone();
    let tmodel_key = svc.bindings.first()?.tmodel_key.clone()?;
    let tmodel = registry.get_tmodel(&tmodel_key)?;
    let contexts: Vec<(String, Value)> = svc
        .categories
        .iter()
        .filter_map(|c| {
            c.taxonomy
                .strip_prefix(TAX_CONTEXT_PREFIX)
                .map(|k| (k.to_owned(), Value::Str(c.value.clone())))
        })
        .collect();
    Some(Value::Record(vec![
        ("name".into(), Value::Str(svc.name.clone())),
        ("middleware".into(), Value::Str(middleware)),
        ("gateway".into(), Value::Str(gateway)),
        ("wsdl".into(), Value::Str(tmodel.overview_doc)),
        ("contexts".into(), Value::Record(contexts)),
    ]))
}

// ---- the replica server ----------------------------------------------------

/// One running repository replica: its backbone node, its state, and a
/// SOAP client originating from its own node (replication pushes ride
/// the same simulated links as everything else, so a partition that
/// splits primary from backup also splits their sync traffic).
#[derive(Clone)]
pub(crate) struct Replica {
    pub node: NodeId,
    pub state: Arc<Mutex<ReplicaState>>,
    pub client: SoapClient,
}

#[derive(Clone)]
struct ReplicaCtx {
    node: NodeId,
    state: Arc<Mutex<ReplicaState>>,
    map: Arc<Mutex<ShardMap>>,
    client: SoapClient,
    tracer: Tracer,
}

/// Starts `config.replicas` repository replicas on fresh backbone
/// nodes, seeds the shared shard map, and returns the replicas (first
/// one is the bootstrap node clients are pointed at) plus the map.
pub(crate) fn start_replicas(
    net: &Network,
    config: &FederationConfig,
    tracer: &Tracer,
) -> (Vec<Replica>, Arc<Mutex<ShardMap>>) {
    let servers: Vec<SoapServer> = (0..config.replicas.max(1))
        .map(|i| SoapServer::bind(net, &format!("vsr-{i}")))
        .collect();
    let nodes: Vec<NodeId> = servers.iter().map(SoapServer::node).collect();
    let map = Arc::new(Mutex::new(ShardMap::build(
        config.shards,
        &nodes,
        config.replication,
    )));

    let replicas = servers
        .into_iter()
        .enumerate()
        .map(|(i, server)| {
            let node = server.node();
            let client = SoapClient::on_node(
                net,
                node,
                soap::CpuModel::default(),
                soap::TcpModel::default(),
            );
            let state = Arc::new(Mutex::new(ReplicaState::new(i as u32)));
            let ctx = ReplicaCtx {
                node,
                state: state.clone(),
                map: map.clone(),
                client: client.clone(),
                tracer: tracer.clone(),
            };
            server.mount(VSR_NS, move |sim, call: &RpcCall| {
                handle(&ctx, sim, call).map_err(|e| Fault::server(e.to_string()))
            });
            Replica {
                node,
                state,
                client,
            }
        })
        .collect();
    (replicas, map)
}

impl ReplicaCtx {
    fn note(&self, sim: &Sim, name: impl FnOnce() -> String) {
        let span = self.tracer.begin(sim, HopKind::Federation, name);
        self.tracer.end(sim, span);
    }

    /// Best-effort eager push of freshly written entries to the other
    /// members of each entry's shard. Failures are swallowed — the
    /// anti-entropy pass repairs them — but each push gets a
    /// `federation` span so the decision is visible in traces.
    fn replicate_out(&self, sim: &Sim, outgoing: &[(String, Entry)]) {
        let map = self.map.lock().clone();
        let mut per_peer: BTreeMap<u32, Vec<Value>> = BTreeMap::new();
        for (name, entry) in outgoing {
            for &peer in map.replicas_for(entry.shard) {
                if peer != self.node {
                    per_peer
                        .entry(peer.0)
                        .or_default()
                        .push(entry.to_value(name));
                }
            }
        }
        for (peer, entries) in per_peer {
            let n = entries.len();
            let span = self.tracer.begin(sim, HopKind::Federation, || {
                format!(
                    "replicate {n} entr{} -> n{peer}",
                    if n == 1 { "y" } else { "ies" }
                )
            });
            let result = self.client.call(
                NodeId(peer),
                &RpcCall::new(VSR_NS, "replicate").arg("entries", Value::List(entries)),
            );
            self.tracer.end_result(sim, span, &result);
        }
    }
}

/// The replica's request handler. Mutates state under one lock, then
/// releases it *before* pushing replication traffic to peers (a peer's
/// handler may be reached over the same synchronous wire). The
/// replication-facing operations (`replicate`, `sync_digest`,
/// `sync_fetch`) never push in turn, so the call chain is bounded.
fn handle(ctx: &ReplicaCtx, sim: &Sim, call: &RpcCall) -> Result<Value, MetaError> {
    let now = sim.now();
    let str_arg = |name: &str| -> Result<String, MetaError> {
        call.get(name)
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| MetaError::Repository(format!("missing argument '{name}'")))
    };

    // The replication plane: applied under the state lock, no reaping,
    // no pushes (these arrive from peers that are mid-handler).
    match call.method.as_str() {
        "shard_map" => return Ok(ctx.map.lock().to_value()),
        "replicate" => {
            let mut st = ctx.state.lock();
            let mut applied = 0i64;
            if let Some(Value::List(items)) = call.get("entries") {
                for item in items {
                    if let Some((name, entry)) = Entry::from_value(item) {
                        if st.apply_entry(&name, entry) {
                            applied += 1;
                        }
                    }
                }
            }
            if let Some(Value::List(items)) = call.get("gateways") {
                for item in items {
                    if let (Some(name), Some(node), Some(version)) = (
                        item.field("name").and_then(Value::as_str),
                        item.field("node").and_then(Value::as_int),
                        item.field("version").and_then(Version::from_value),
                    ) {
                        if st.apply_gateway(name, node as u32, version) {
                            applied += 1;
                        }
                    }
                }
            }
            return Ok(Value::Int(applied));
        }
        "sync_digest" => {
            let shard = shard_arg(call)?;
            let st = ctx.state.lock();
            let mut records: Vec<(String, Version)> = st
                .entries
                .iter()
                .filter(|(_, e)| e.shard == shard)
                .map(|(name, e)| (name.clone(), e.version))
                .collect();
            records.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            let mut gateways: Vec<(String, Version)> = st
                .gateways
                .iter()
                .map(|(name, &(_, v))| (name.clone(), v))
                .collect();
            gateways.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            let digest = |pairs: Vec<(String, Version)>| {
                Value::List(
                    pairs
                        .into_iter()
                        .map(|(name, v)| {
                            Value::Record(vec![
                                ("name".into(), Value::Str(name)),
                                ("version".into(), v.to_value()),
                            ])
                        })
                        .collect(),
                )
            };
            return Ok(Value::Record(vec![
                ("records".into(), digest(records)),
                ("gateways".into(), digest(gateways)),
            ]));
        }
        "sync_fetch" => {
            let st = ctx.state.lock();
            let mut records = Vec::new();
            if let Some(Value::List(names)) = call.get("names") {
                for n in names {
                    if let Some(name) = n.as_str() {
                        if let Some(entry) = st.entries.get(name) {
                            records.push(entry.to_value(name));
                        }
                    }
                }
            }
            let mut gateways = Vec::new();
            if let Some(Value::List(names)) = call.get("gw_names") {
                for n in names {
                    if let Some(name) = n.as_str() {
                        if let Some(&(node, version)) = st.gateways.get(name) {
                            gateways.push(gateway_to_value(name, node, version));
                        }
                    }
                }
            }
            return Ok(Value::Record(vec![
                ("records".into(), Value::List(records)),
                ("gateways".into(), Value::List(gateways)),
            ]));
        }
        _ => {}
    }

    // The client plane: reap due leases first (lazily, like the
    // single-node VSR), remember what must be pushed to peers, answer,
    // then push with the lock released.
    let mut st = ctx.state.lock();
    let mut outgoing = st.expire_due(now);

    let result = (|| -> Result<Value, MetaError> {
        match call.method.as_str() {
            "register_gateway" => {
                let name = str_arg("name")?;
                let node = call
                    .get("node")
                    .and_then(Value::as_int)
                    .ok_or_else(|| MetaError::Repository("missing node".into()))?;
                let version = st.next_version(now);
                st.apply_gateway(&name, node as u32, version);
                Ok(Value::Null)
            }
            "gateway_node" => {
                let name = str_arg("name")?;
                st.gateways
                    .get(&name)
                    .map(|&(n, _)| Value::Int(i64::from(n)))
                    .ok_or(MetaError::GatewayUnreachable(name))
            }
            "publish" => {
                let name = str_arg("name")?;
                let shard = route_write(ctx, sim, call, &name)?;
                let expires_at = st.lease.map(|l| now + l);
                let version = st.next_version(now);
                let entry = Entry {
                    version,
                    shard,
                    kind: EntryKind::Record(StoredRecord {
                        middleware: str_arg("middleware")?,
                        gateway: str_arg("gateway")?,
                        wsdl: str_arg("wsdl")?,
                        contexts: match call.get("contexts") {
                            Some(Value::Record(fields)) => fields
                                .iter()
                                .filter_map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_owned())))
                                .collect(),
                            _ => Vec::new(),
                        },
                        expires_at,
                    }),
                };
                st.apply_entry(&name, entry.clone());
                outgoing.push((name, entry));
                Ok(Value::Null)
            }
            "unpublish" => {
                let name = str_arg("name")?;
                let shard = route_write(ctx, sim, call, &name)?;
                let found = matches!(
                    st.entries.get(&name).map(|e| &e.kind),
                    Some(EntryKind::Record(_))
                );
                let entry = Entry {
                    version: st.next_version(now),
                    shard,
                    kind: EntryKind::Unpublished,
                };
                st.apply_entry(&name, entry.clone());
                outgoing.push((name, entry));
                Ok(Value::Bool(found))
            }
            "renew" => {
                let name = str_arg("name")?;
                let shard = route_write(ctx, sim, call, &name)?;
                let lease = st.lease;
                match st.entries.get(&name).map(|e| e.kind.clone()) {
                    Some(EntryKind::Record(mut rec)) => {
                        // With leases on, a renewal is a real write: it
                        // bumps the version so a later stale reaper
                        // (EntryKind::Expired of an older incarnation)
                        // cannot kill the renewed record.
                        if let Some(lease) = lease {
                            rec.expires_at = Some(now + lease);
                            let entry = Entry {
                                version: st.next_version(now),
                                shard,
                                kind: EntryKind::Record(rec),
                            };
                            st.apply_entry(&name, entry.clone());
                            outgoing.push((name, entry));
                        }
                        Ok(Value::Bool(true))
                    }
                    _ => Ok(Value::Bool(false)),
                }
            }
            "resolve" => {
                let name = str_arg("name")?;
                route_read(ctx, call, &name)?;
                let services = st.registry.find_service(&name, &[]);
                let svc = services
                    .into_iter()
                    .find(|s| s.name == name)
                    .ok_or(MetaError::UnknownService(name))?;
                service_to_value(&mut st.registry, &svc)
                    .ok_or_else(|| MetaError::Repository("corrupt record".into()))
            }
            "find" => {
                let pattern = str_arg("pattern")?;
                let middleware = str_arg("middleware")?;
                let categories: Vec<KeyedReference> = if middleware.is_empty() {
                    vec![]
                } else {
                    vec![KeyedReference::new(TAX_MIDDLEWARE, &middleware)]
                };
                serve_inquiry(ctx, call, &mut st, &pattern, &categories)
            }
            "find_ctx" => {
                let pattern = str_arg("pattern")?;
                let categories: Vec<KeyedReference> = match call.get("contexts") {
                    Some(Value::Record(fields)) => fields
                        .iter()
                        .filter_map(|(k, v)| {
                            v.as_str()
                                .map(|s| KeyedReference::new(format!("{TAX_CONTEXT_PREFIX}{k}"), s))
                        })
                        .collect(),
                    _ => Vec::new(),
                };
                serve_inquiry(ctx, call, &mut st, &pattern, &categories)
            }
            "count" => match call.get("shard").and_then(Value::as_int) {
                Some(shard) => {
                    let shard = {
                        let map = ctx.map.lock();
                        let shard = shard as u32 % map.shard_count();
                        if !map.hosts(shard, ctx.node) {
                            let primary = map.primary(shard);
                            return Err(MetaError::MovedShard {
                                shard,
                                node: primary.0,
                            });
                        }
                        shard
                    };
                    let n = st
                        .entries
                        .values()
                        .filter(|e| e.shard == shard && matches!(e.kind, EntryKind::Record(_)))
                        .count();
                    Ok(Value::Int(n as i64))
                }
                None => Ok(Value::Int(st.registry.service_count() as i64)),
            },
            other => Err(MetaError::Repository(format!(
                "unknown VSR operation '{other}'"
            ))),
        }
    })();

    drop(st);
    if !outgoing.is_empty() {
        ctx.replicate_out(sim, &outgoing);
    }
    result
}

fn shard_arg(call: &RpcCall) -> Result<u32, MetaError> {
    call.get("shard")
        .and_then(Value::as_int)
        .and_then(|i| u32::try_from(i).ok())
        .ok_or_else(|| MetaError::Repository("missing argument 'shard'".into()))
}

fn gateway_to_value(name: &str, node: u32, version: Version) -> Value {
    Value::Record(vec![
        ("name".into(), Value::Str(name.to_owned())),
        ("node".into(), Value::Int(i64::from(node))),
        ("version".into(), version.to_value()),
    ])
}

/// Validates a write's routing: the shard must be hosted here, and the
/// write must land on the shard's primary — unless the caller set the
/// `promote` flag (it could not reach the primary), in which case this
/// backup promotes itself before accepting.
fn route_write(ctx: &ReplicaCtx, sim: &Sim, call: &RpcCall, name: &str) -> Result<u32, MetaError> {
    let mut map = ctx.map.lock();
    let shard = match call.get("shard").and_then(Value::as_int) {
        Some(s) => s as u32 % map.shard_count(),
        None => map.shard_of(name),
    };
    if !map.hosts(shard, ctx.node) {
        let primary = map.primary(shard);
        return Err(MetaError::MovedShard {
            shard,
            node: primary.0,
        });
    }
    if map.primary(shard) != ctx.node {
        let promote = call
            .get("promote")
            .and_then(Value::as_bool)
            .unwrap_or(false);
        if !promote {
            let primary = map.primary(shard);
            return Err(MetaError::MovedShard {
                shard,
                node: primary.0,
            });
        }
        if map.promote(shard, ctx.node) {
            let version = map.version();
            let node = ctx.node.0;
            drop(map);
            ctx.note(sim, || {
                format!("promoted n{node} to primary of shard {shard} (map v{version})")
            });
            return Ok(shard);
        }
    }
    Ok(shard)
}

/// Validates a read's routing: any member of the shard's preference
/// list may answer (a backup serves reads during a primary outage).
fn route_read(ctx: &ReplicaCtx, call: &RpcCall, name: &str) -> Result<u32, MetaError> {
    let map = ctx.map.lock();
    let shard = match call.get("shard").and_then(Value::as_int) {
        Some(s) => s as u32 % map.shard_count(),
        None => map.shard_of(name),
    };
    if !map.hosts(shard, ctx.node) {
        let primary = map.primary(shard);
        return Err(MetaError::MovedShard {
            shard,
            node: primary.0,
        });
    }
    Ok(shard)
}

/// Serves a `find`/`find_ctx` inquiry from the local registry mirror,
/// filtered to the requested shard when one is given (the shard-aware
/// client fans an inquiry out to every shard and merges).
fn serve_inquiry(
    ctx: &ReplicaCtx,
    call: &RpcCall,
    st: &mut ReplicaState,
    pattern: &str,
    categories: &[KeyedReference],
) -> Result<Value, MetaError> {
    let shard = match call.get("shard").and_then(Value::as_int) {
        Some(s) => {
            let map = ctx.map.lock();
            let shard = s as u32 % map.shard_count();
            if !map.hosts(shard, ctx.node) {
                let primary = map.primary(shard);
                return Err(MetaError::MovedShard {
                    shard,
                    node: primary.0,
                });
            }
            Some(shard)
        }
        None => None,
    };
    let services = st.registry.find_service(pattern, categories);
    let mut out = Vec::with_capacity(services.len());
    for svc in services {
        if let Some(want) = shard {
            match st.entries.get(&svc.name) {
                Some(e) if e.shard == want => {}
                _ => continue,
            }
        }
        if let Some(v) = service_to_value(&mut st.registry, &svc) {
            out.push(v);
        }
    }
    Ok(Value::List(out))
}

// ---- anti-entropy ----------------------------------------------------------

fn replica_by_node(replicas: &[Replica], node: NodeId) -> Option<&Replica> {
    replicas.iter().find(|r| r.node == node)
}

/// One anti-entropy pass over the whole cluster: for every shard, each
/// backup exchanges digests with the shard's primary over the wire
/// (pull what the primary has newer, push what the backup has that the
/// primary lacks), then the per-shard replication-lag gauge is
/// recomputed. Returns the worst per-shard lag after the pass.
pub(crate) fn sync_cluster(
    sim: &Sim,
    replicas: &[Replica],
    map: &Arc<Mutex<ShardMap>>,
    metrics: &MetricsRegistry,
    tracer: &Tracer,
) -> u64 {
    let snapshot = map.lock().clone();
    let mut worst = 0u64;
    for shard in 0..snapshot.shard_count() {
        let prefs = snapshot.replicas_for(shard).to_vec();
        let primary = prefs[0];
        for &backup in &prefs[1..] {
            sync_pair(sim, replicas, shard, primary, backup, tracer);
        }
        let lag = shard_lag(replicas, shard, primary, &prefs[1..]);
        metrics.set_replication_lag(shard, lag);
        worst = worst.max(lag);
    }
    worst
}

/// How far `shard`'s laggiest backup trails its primary, measured
/// in-process (entries whose version differs or are missing). This is
/// the honest divergence, so a partition that blocks sync still shows
/// up on the gauge.
pub(crate) fn shard_lag(
    replicas: &[Replica],
    shard: u32,
    primary: NodeId,
    backups: &[NodeId],
) -> u64 {
    let Some(pri) = replica_by_node(replicas, primary) else {
        return 0;
    };
    let pri_entries: Vec<(String, Version)> = {
        let st = pri.state.lock();
        st.entries
            .iter()
            .filter(|(_, e)| e.shard == shard)
            .map(|(name, e)| (name.clone(), e.version))
            .collect()
    };
    let mut worst = 0u64;
    for &backup in backups {
        let Some(rep) = replica_by_node(replicas, backup) else {
            continue;
        };
        let st = rep.state.lock();
        let behind = pri_entries
            .iter()
            .filter(|(name, version)| st.entries.get(name).map(|e| e.version) != Some(*version))
            .count() as u64;
        worst = worst.max(behind);
    }
    worst
}

/// One digest exchange between a backup and its shard's primary. All
/// wire traffic originates from the backup's node, so partitions and
/// crash windows gate sync exactly like any other backbone traffic.
fn sync_pair(
    sim: &Sim,
    replicas: &[Replica],
    shard: u32,
    primary: NodeId,
    backup: NodeId,
    tracer: &Tracer,
) {
    let Some(rep) = replica_by_node(replicas, backup) else {
        return;
    };
    let span = tracer.begin(sim, HopKind::Federation, || {
        format!("sync shard {shard}: n{} <-> n{}", backup.0, primary.0)
    });
    let digest = rep.client.call(
        primary,
        &RpcCall::new(VSR_NS, "sync_digest").arg("shard", i64::from(shard)),
    );
    let digest = match digest {
        Ok(v) => v,
        Err(e) => {
            tracer.end_with(sim, span, 0, Some(e.to_string()));
            return;
        }
    };
    let parse_digest = |field: &str| -> Vec<(String, Version)> {
        match digest.field(field) {
            Some(Value::List(items)) => items
                .iter()
                .filter_map(|i| {
                    Some((
                        i.field("name")?.as_str()?.to_owned(),
                        Version::from_value(i.field("version")?)?,
                    ))
                })
                .collect(),
            _ => Vec::new(),
        }
    };
    let pri_records = parse_digest("records");
    let pri_gateways = parse_digest("gateways");

    // Diff against local state: anything whose version differs moves,
    // in both directions; the merge rules decide what sticks.
    let (need, need_gw, push, push_gw) = {
        let st = rep.state.lock();
        let need: Vec<Value> = pri_records
            .iter()
            .filter(|(name, version)| st.entries.get(name).map(|e| e.version) != Some(*version))
            .map(|(name, _)| Value::Str(name.clone()))
            .collect();
        let need_gw: Vec<Value> = pri_gateways
            .iter()
            .filter(|(name, version)| st.gateways.get(name).map(|&(_, v)| v) != Some(*version))
            .map(|(name, _)| Value::Str(name.clone()))
            .collect();
        let mut push: Vec<(String, Entry)> = st
            .entries
            .iter()
            .filter(|(name, e)| {
                e.shard == shard
                    && pri_records
                        .iter()
                        .find(|(n, _)| n == *name)
                        .map(|(_, v)| *v)
                        != Some(e.version)
            })
            .map(|(name, e)| (name.clone(), e.clone()))
            .collect();
        push.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut push_gw: Vec<(String, u32, Version)> = st
            .gateways
            .iter()
            .filter(|(name, &(_, v))| {
                pri_gateways
                    .iter()
                    .find(|(n, _)| n == *name)
                    .map(|(_, v)| *v)
                    != Some(v)
            })
            .map(|(name, &(node, v))| (name.clone(), node, v))
            .collect();
        push_gw.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        (need, need_gw, push, push_gw)
    };

    // Pull newer/different entries from the primary and merge locally.
    if !need.is_empty() || !need_gw.is_empty() {
        let fetched = rep.client.call(
            primary,
            &RpcCall::new(VSR_NS, "sync_fetch")
                .arg("shard", i64::from(shard))
                .arg("names", Value::List(need))
                .arg("gw_names", Value::List(need_gw)),
        );
        if let Ok(v) = fetched {
            let mut st = rep.state.lock();
            if let Some(Value::List(items)) = v.field("records") {
                for item in items {
                    if let Some((name, entry)) = Entry::from_value(item) {
                        st.apply_entry(&name, entry);
                    }
                }
            }
            if let Some(Value::List(items)) = v.field("gateways") {
                for item in items {
                    if let (Some(name), Some(node), Some(version)) = (
                        item.field("name").and_then(Value::as_str),
                        item.field("node").and_then(Value::as_int),
                        item.field("version").and_then(Version::from_value),
                    ) {
                        st.apply_gateway(name, node as u32, version);
                    }
                }
            }
        }
    }

    // Push what the primary lacks (e.g. writes this backup took while
    // promoted, or tombstones the primary missed while down).
    if !push.is_empty() || !push_gw.is_empty() {
        let entries: Vec<Value> = push.iter().map(|(name, e)| e.to_value(name)).collect();
        let gateways: Vec<Value> = push_gw
            .iter()
            .map(|(name, node, v)| gateway_to_value(name, *node, *v))
            .collect();
        let _ = rep.client.call(
            primary,
            &RpcCall::new(VSR_NS, "replicate")
                .arg("entries", Value::List(entries))
                .arg("gateways", Value::List(gateways)),
        );
    }
    tracer.end(sim, span);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(|i| NodeId(100 + i)).collect()
    }

    #[test]
    fn shard_map_partitions_deterministically_and_covers_all_shards() {
        let map = ShardMap::build(8, &nodes(3), 2);
        assert_eq!(map.shard_count(), 8);
        let again = ShardMap::build(8, &nodes(3), 2);
        assert_eq!(map, again, "same inputs, same map");
        for s in 0..8 {
            let prefs = map.replicas_for(s);
            assert_eq!(prefs.len(), 2);
            assert_ne!(prefs[0], prefs[1]);
        }
        // Every shard is reachable from names, eventually.
        let mut seen = std::collections::HashSet::new();
        for i in 0..4096 {
            seen.insert(map.shard_of(&format!("svc-{i}")));
        }
        assert_eq!(seen.len(), 8, "all shards get names");
        // Stable name placement.
        assert_eq!(map.shard_of("hall-lamp"), map.shard_of("hall-lamp"));
    }

    #[test]
    fn replication_clamps_to_replica_count() {
        let map = ShardMap::build(4, &nodes(1), 3);
        for s in 0..4 {
            assert_eq!(map.replicas_for(s), &[NodeId(100)]);
        }
    }

    #[test]
    fn adding_a_replica_moves_a_minority_of_shards() {
        let before = ShardMap::build(64, &nodes(4), 1);
        let after = ShardMap::build(64, &nodes(5), 1);
        let moved = (0..64)
            .filter(|&s| before.primary(s) != after.primary(s))
            .count();
        assert!(moved > 0, "the new replica must take some shards");
        assert!(
            moved < 32,
            "consistent hashing must move a minority of shards, moved {moved}"
        );
        // Names never change shard when only replicas change.
        for i in 0..128 {
            let name = format!("svc-{i}");
            assert_eq!(before.shard_of(&name), after.shard_of(&name));
        }
    }

    #[test]
    fn promote_reorders_and_bumps_version() {
        let mut map = ShardMap::build(2, &nodes(3), 3);
        let v0 = map.version();
        let backup = map.replicas_for(0)[1];
        assert!(map.promote(0, backup));
        assert_eq!(map.primary(0), backup);
        assert_eq!(map.version(), v0 + 1);
        assert!(!map.promote(0, backup), "already primary: no-op");
        assert_eq!(map.version(), v0 + 1);
    }

    #[test]
    fn shard_map_round_trips_through_value() {
        let mut map = ShardMap::build(4, &nodes(3), 2);
        map.promote(2, map.replicas_for(2)[1]);
        let decoded = ShardMap::from_value(&map.to_value()).unwrap();
        assert_eq!(decoded, map);
    }

    #[test]
    fn versions_order_by_time_then_replica_then_seq() {
        let a = Version {
            at_us: 10,
            replica: 0,
            seq: 5,
        };
        let b = Version {
            at_us: 10,
            replica: 1,
            seq: 1,
        };
        let c = Version {
            at_us: 11,
            replica: 0,
            seq: 1,
        };
        assert!(a < b && b < c);
        assert_eq!(Version::from_value(&a.to_value()), Some(a));
    }

    fn record_entry(version: Version, expires_at: Option<SimTime>) -> Entry {
        Entry {
            version,
            shard: 0,
            kind: EntryKind::Record(StoredRecord {
                middleware: "x10".into(),
                gateway: "x10-gw".into(),
                wsdl: "<definitions/>".into(),
                contexts: vec![],
                expires_at,
            }),
        }
    }

    #[test]
    fn merge_is_last_writer_wins_with_expiry_scoping() {
        let mut st = ReplicaState::new(0);
        let v = |at_us, replica, seq| Version {
            at_us,
            replica,
            seq,
        };

        // Plain LWW for records.
        assert!(st.apply_entry("lamp", record_entry(v(10, 0, 1), None)));
        assert!(
            !st.apply_entry("lamp", record_entry(v(5, 1, 1), None)),
            "stale"
        );
        assert!(st.apply_entry("lamp", record_entry(v(20, 1, 1), None)));

        // An expiry tombstone for the current incarnation applies...
        let tomb_current = Entry {
            version: v(30, 2, 1),
            shard: 0,
            kind: EntryKind::Expired { of: v(20, 1, 1) },
        };
        assert!(st.apply_entry("lamp", tomb_current.clone()));
        assert_eq!(st.registry.service_count(), 0, "mirror follows");

        // ...and a record renewed after the reaped incarnation beats
        // the tombstone even though the tombstone's stamp is later.
        assert!(
            st.apply_entry("lamp", record_entry(v(25, 1, 2), None)),
            "renewal after the reaped incarnation survives a stale reaper"
        );
        assert_eq!(st.registry.service_count(), 1);

        // A tombstone for an *older* incarnation bounces off.
        let stale_tomb = Entry {
            version: v(40, 2, 2),
            shard: 0,
            kind: EntryKind::Expired { of: v(20, 1, 1) },
        };
        assert!(!st.apply_entry("lamp", stale_tomb));
        assert_eq!(st.registry.service_count(), 1, "renewed record survives");

        // Deliberate unpublish is plain LWW: it wins over the record...
        let unpub = Entry {
            version: v(50, 0, 9),
            shard: 0,
            kind: EntryKind::Unpublished,
        };
        assert!(st.apply_entry("lamp", unpub));
        assert_eq!(st.registry.service_count(), 0);
        // ...and a later republish wins over the unpublish.
        assert!(st.apply_entry("lamp", record_entry(v(60, 1, 3), None)));
        assert_eq!(st.registry.service_count(), 1);
    }

    #[test]
    fn expire_due_tombstones_only_due_records() {
        let mut st = ReplicaState::new(0);
        let v = |at_us| Version {
            at_us,
            replica: 0,
            seq: at_us,
        };
        st.apply_entry("due", record_entry(v(1), Some(SimTime::from_micros(100))));
        st.apply_entry(
            "later",
            record_entry(v(2), Some(SimTime::from_micros(1_000))),
        );
        st.apply_entry("forever", record_entry(v(3), None));
        let tombs = st.expire_due(SimTime::from_micros(500));
        assert_eq!(tombs.len(), 1);
        assert_eq!(tombs[0].0, "due");
        assert!(matches!(
            tombs[0].1.kind,
            EntryKind::Expired { of } if of == v(1)
        ));
        assert_eq!(st.registry.service_count(), 2);
        assert!(
            st.expire_due(SimTime::from_micros(500)).is_empty(),
            "idempotent"
        );
    }
}
