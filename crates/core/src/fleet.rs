//! A fleet of independent smart homes advanced in lockstep on the
//! conservative parallel scheduler.
//!
//! Each home is one *island*: a complete `SmartHome` (backbone, VSR,
//! middleware networks) living on its own [`simnet::Sim`] with its own event
//! queue and RNG stream. Homes never exchange frames, so the islands
//! are uncoupled and [`ParSim`] can run them on worker threads with an
//! unbounded lookahead window. Results — metrics snapshots, traces,
//! chaos outcomes — are a pure function of the builder configuration
//! and the seed, never of the thread count.

use crate::error::MetaError;
use crate::home::{SmartHome, SmartHomeBuilder};
use crate::metrics::MetricsSnapshot;
use crate::obs::{KeptTrace, RecorderStats, SamplePolicy};
use crate::pcm::cloud::CloudBackbone;
use simnet::{FaultPlan, ParRunStats, ParSim, SimDuration, SimTime};

/// Many identically configured [`SmartHome`]s, one per island,
/// stepped together under deterministic virtual time.
pub struct HomeFleet {
    homes: Vec<SmartHome>,
    par: ParSim,
}

impl HomeFleet {
    /// Builds `n` homes from `builder` — home `i` becomes island `i`.
    ///
    /// The worker thread count comes from
    /// [`SmartHomeBuilder::threads`] when set, else the `SIM_THREADS`
    /// environment variable, else 1.
    pub fn build(builder: SmartHomeBuilder, n: usize) -> Result<HomeFleet, MetaError> {
        HomeFleet::build_with(builder, n, |_, b| b)
    }

    /// Like [`HomeFleet::build`], but lets `tweak` adjust the cloned
    /// builder per island — e.g. staggering the anti-entropy phase
    /// with [`SmartHomeBuilder::vsr_sync_phase`] so homes don't all
    /// sync at the same virtual instant.
    pub fn build_with(
        builder: SmartHomeBuilder,
        n: usize,
        mut tweak: impl FnMut(u32, SmartHomeBuilder) -> SmartHomeBuilder,
    ) -> Result<HomeFleet, MetaError> {
        let threads = builder.configured_threads().unwrap_or_else(env_threads);
        let mut par = ParSim::new(threads);
        let mut homes = Vec::with_capacity(n);
        for i in 0..n {
            let island = u32::try_from(i).expect("fleet size fits in u32");
            // The fleet size feeds the cloud's deterministic fair-share
            // admission budget; a per-island tweak can still override.
            let home = tweak(island, builder.clone().island(island).fleet_hint(n)).build()?;
            par.add_island(home.sim.clone());
            homes.push(home);
        }
        Ok(HomeFleet { homes, par })
    }

    /// Like [`HomeFleet::build`], but with lazy homes: each island gets
    /// its world layer (sim, backbone, VSR, cloud bridge if configured)
    /// while the middleware-island builds are deferred until
    /// [`HomeFleet::materialize_home`] — the way `e17_cloud` stands up
    /// 10k homes without 10k eager full builds.
    pub fn build_lazy(builder: SmartHomeBuilder, n: usize) -> Result<HomeFleet, MetaError> {
        HomeFleet::build_with(builder.lazy(true), n, |_, b| b)
    }

    /// The homes, in island order.
    pub fn homes(&self) -> &[SmartHome] {
        &self.homes
    }

    /// One home by island id.
    pub fn home(&self, island: usize) -> &SmartHome {
        &self.homes[island]
    }

    /// Builds the deferred islands of one lazy home (no-op when the
    /// home was built eagerly or already materialized).
    pub fn materialize_home(&mut self, island: usize) -> Result<(), MetaError> {
        self.homes[island].materialize()
    }

    /// Homes whose middleware islands have been built.
    pub fn materialized_count(&self) -> usize {
        self.homes.iter().filter(|h| h.is_materialized()).count()
    }

    /// The simulated cloud backbone over every cloud-attached home, in
    /// island order: fleet-wide delivered-ratio/staleness/duplicate
    /// roll-ups and the downward-command fan-out. Empty if the builder
    /// had no [`crate::pcm::cloud::CloudConfig`].
    pub fn cloud_backbone(&self) -> CloudBackbone {
        CloudBackbone::new(
            self.homes
                .iter()
                .filter_map(|h| h.cloud.as_ref())
                .map(|c| (c.bridge.clone(), c.cell.clone()))
                .collect(),
        )
    }

    /// Installs `plan` on every home's cloud WAN, jittered per island
    /// like [`HomeFleet::set_fault_plan_jittered`] — island 0 again
    /// gets the plan unshifted. Homes without a cloud bridge are
    /// skipped.
    pub fn set_wan_fault_plan_jittered(
        &self,
        plan: &FaultPlan,
        seed: u64,
        max_jitter: SimDuration,
    ) {
        for (i, home) in self.homes.iter().enumerate() {
            let island = u32::try_from(i).expect("fleet size fits in u32");
            if let Some(cloud) = &home.cloud {
                cloud
                    .set_wan_fault_plan(plan.clone().jittered_for_island(seed, island, max_jitter));
            }
        }
    }

    /// Number of homes (islands).
    pub fn len(&self) -> usize {
        self.homes.len()
    }

    /// True when the fleet holds no homes.
    pub fn is_empty(&self) -> bool {
        self.homes.is_empty()
    }

    /// Worker threads the scheduler was built with.
    pub fn threads(&self) -> usize {
        self.par.threads()
    }

    /// The underlying parallel scheduler.
    pub fn par(&self) -> &ParSim {
        &self.par
    }

    /// Advances every home to `deadline` (virtual time).
    pub fn run_until(&self, deadline: SimTime) -> ParRunStats {
        self.par.run_until(deadline)
    }

    /// Advances every home by `d` past the latest island clock.
    pub fn run_for(&self, d: SimDuration) -> ParRunStats {
        self.par.run_for(d)
    }

    /// Enables or disables tracing on every home.
    pub fn set_tracing(&self, on: bool) {
        for home in &self.homes {
            home.set_tracing(on);
        }
    }

    /// Metrics snapshots from every gateway of every home, in island
    /// order (each snapshot records its island id). Identical for any
    /// thread count.
    pub fn metrics_snapshots(&self) -> Vec<MetricsSnapshot> {
        self.homes
            .iter()
            .flat_map(|home| home.metrics_snapshots())
            .collect()
    }

    /// One snapshot for the whole fleet: every gateway of every home
    /// merged bucket-wise into a single `fleet` snapshot. Cost is
    /// O(homes × buckets), not O(samples) — aggregate p50/p99 and
    /// error rates at a thousand homes stay cheap. Identical for any
    /// thread count.
    pub fn fleet_snapshot(&self) -> MetricsSnapshot {
        let mut merged = MetricsSnapshot::empty("fleet", 0);
        for snap in self.metrics_snapshots() {
            merged.merge_from(&snap);
        }
        merged
    }

    /// Installs `policy` on every home's flight recorder.
    pub fn set_sampling(&self, policy: SamplePolicy) {
        for home in &self.homes {
            home.set_sampling(policy);
        }
    }

    /// Harvests every home's completed spans into its flight recorder,
    /// island order. Returns the fleet-wide keep/drop counters summed
    /// across homes. Identical for any thread count.
    pub fn harvest_traces(&self) -> RecorderStats {
        let mut total = RecorderStats::default();
        for home in &self.homes {
            let stats = home.harvest_traces();
            total.seen += stats.seen;
            total.kept += stats.kept;
            total.sampled_out += stats.sampled_out;
            total.evicted += stats.evicted;
        }
        total
    }

    /// Drains every home's flight recorder, island-ordered: all of
    /// island 0's kept traces, then island 1's, and so on.
    pub fn drain_flight(&self) -> Vec<KeptTrace> {
        self.homes
            .iter()
            .flat_map(|home| home.drain_flight())
            .collect()
    }

    /// Exports every gateway's metrics, island-ordered, in OpenMetrics
    /// text format. Identical for any thread count.
    pub fn export_openmetrics(&self) -> String {
        crate::obs::openmetrics(&self.metrics_snapshots())
    }

    /// Exports all snapshots plus every home's currently kept traces
    /// as JSON lines, island-ordered, without draining the recorders.
    pub fn export_events_jsonl(&self) -> String {
        let mut out = String::new();
        for home in &self.homes {
            out.push_str(&home.export_events_jsonl());
        }
        out
    }

    /// Renders every home's traces in island order, separated by a
    /// per-island header. Identical for any thread count.
    pub fn render_traces(&self) -> String {
        let mut out = String::new();
        for (i, home) in self.homes.iter().enumerate() {
            out.push_str(&format!("=== island {i} ===\n"));
            out.push_str(&home.render_traces());
        }
        out
    }

    /// Installs `plan` on every home's backbone, jittered per island
    /// (deterministically, from `seed`) so faults don't strike every
    /// home at the same virtual instant. Island 0 gets the plan
    /// unshifted, preserving single-home baselines.
    pub fn set_fault_plan_jittered(&self, plan: &FaultPlan, seed: u64, max_jitter: SimDuration) {
        for (i, home) in self.homes.iter().enumerate() {
            let island = u32::try_from(i).expect("fleet size fits in u32");
            home.backbone
                .set_fault_plan(plan.clone().jittered_for_island(seed, island, max_jitter));
        }
    }

    /// Deterministic per-island profiler lines (windows, events,
    /// commits — never wall clock), one per home, newline-terminated.
    /// Safe to print in thread-count-diffed output.
    pub fn profile_lines(&self) -> String {
        let mut out = String::new();
        for (i, p) in self.par.profiles().iter().enumerate() {
            out.push_str(&p.deterministic_line(i));
            out.push('\n');
        }
        out
    }

    /// One-line JSON describing the execution configuration, for
    /// bench metadata: thread count, island count, window stats are
    /// reported by [`ParRunStats`] separately.
    pub fn metadata_json(&self) -> String {
        format!(
            "{{\"threads\":{},\"islands\":{}}}",
            self.par.threads(),
            self.homes.len()
        )
    }
}

/// `SIM_THREADS` environment variable, else 1. Invalid or zero values
/// fall back to 1 rather than erroring — the knob only affects speed.
pub fn env_threads() -> usize {
    std::env::var("SIM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::home::SmartHome;
    use crate::service::Middleware;

    fn drive(fleet: &HomeFleet, secs: u64) {
        fleet.run_for(SimDuration::from_secs(secs));
    }

    #[test]
    fn fleet_homes_are_decorrelated_but_island_zero_matches_solo() {
        let fleet = HomeFleet::build(SmartHome::builder().threads(1), 3).expect("fleet builds");
        let solo = SmartHome::builder().build().expect("solo builds");
        drive(&fleet, 1);
        solo.sim.run_for(SimDuration::from_secs(1));
        let fleet_snaps = fleet.metrics_snapshots();
        let solo_snaps = solo.metrics_snapshots();
        // island 0 of the fleet is bit-for-bit the solo home
        let island0: Vec<_> = fleet_snaps.iter().filter(|s| s.island == 0).collect();
        assert_eq!(island0.len(), solo_snaps.len());
        for (a, b) in island0.iter().zip(&solo_snaps) {
            assert_eq!(a.to_json(), b.to_json());
        }
        // other islands carry their own id
        assert!(fleet_snaps.iter().any(|s| s.island == 2));
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let run = |threads: usize| {
            let fleet =
                HomeFleet::build(SmartHome::builder().threads(threads), 4).expect("fleet builds");
            fleet.set_tracing(true);
            drive(&fleet, 2);
            for home in fleet.homes() {
                home.invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
                    .expect("cross-middleware call succeeds");
            }
            drive(&fleet, 1);
            let snaps: Vec<String> = fleet
                .metrics_snapshots()
                .iter()
                .map(|s| s.to_json())
                .collect();
            (snaps, fleet.render_traces())
        };
        let (snaps1, traces1) = run(1);
        let (snaps4, traces4) = run(4);
        assert_eq!(snaps1, snaps4);
        assert_eq!(traces1, traces4);
    }

    #[test]
    fn env_threads_parses_and_falls_back() {
        // don't mutate the process env in tests; just check the parser
        // path through explicit configuration instead.
        let fleet = HomeFleet::build(SmartHome::builder().threads(0), 2).expect("fleet builds");
        assert_eq!(fleet.threads(), 1, "threads(0) clamps to 1");
        assert_eq!(fleet.metadata_json(), "{\"threads\":1,\"islands\":2}");
    }

    #[test]
    fn lazy_fleet_materializes_homes_on_demand() {
        let mut fleet =
            HomeFleet::build_lazy(SmartHome::builder().threads(1), 4).expect("fleet builds");
        assert_eq!(fleet.materialized_count(), 0);
        fleet.materialize_home(2).expect("island 2 materializes");
        assert_eq!(fleet.materialized_count(), 1);
        assert_eq!(fleet.home(0).service_count(), 0);
        assert!(fleet.home(2).service_count() > 0);
        drive(&fleet, 1);
        fleet
            .home(2)
            .invoke_from(Middleware::Jini, "hall-lamp", "status", &[])
            .expect("materialized home serves invocations");
    }

    #[test]
    fn cloud_fleet_rolls_up_a_backbone_summary() {
        use crate::pcm::cloud::CloudConfig;
        let fleet = HomeFleet::build_lazy(
            SmartHome::builder()
                .threads(1)
                .cloud(CloudConfig::default()),
            3,
        )
        .expect("fleet builds");
        drive(&fleet, 5);
        let backbone = fleet.cloud_backbone();
        assert_eq!(backbone.len(), 3);
        let s = backbone.summary();
        assert_eq!(s.duplicate_effects, 0);
        assert!(s.reconnects >= 3, "every home connected");
        // The auto-registered rosters reached every cell.
        for i in 0..3 {
            assert!(!backbone.cell(i).registered_devices().is_empty());
        }
    }

    #[test]
    fn cloud_fleet_results_do_not_depend_on_thread_count() {
        use crate::pcm::cloud::CloudConfig;
        let run = |threads: usize| {
            let fleet = HomeFleet::build_lazy(
                SmartHome::builder()
                    .threads(threads)
                    .cloud(CloudConfig::default()),
                4,
            )
            .expect("fleet builds");
            for (i, home) in fleet.homes().iter().enumerate() {
                let bridge = &home.cloud.as_ref().unwrap().bridge;
                bridge.notify_state("hall-lamp", &format!("v{i}")).unwrap();
            }
            drive(&fleet, 10);
            format!("{:?}", fleet.cloud_backbone().summary())
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn staggered_sync_phase_shifts_anti_entropy_per_island() {
        let fleet = HomeFleet::build_with(
            SmartHome::builder().threads(1).vsr_replicas(2),
            2,
            |island, b| b.vsr_sync_phase(SimDuration::from_millis(u64::from(island) * 17)),
        )
        .expect("fleet builds");
        drive(&fleet, 5);
        // both homes keep replicating; the phase only shifts when the
        // first pass happens, not whether it happens.
        for home in fleet.homes() {
            assert!(home
                .vsr_sync_timer
                .as_ref()
                .expect("timer armed")
                .is_active());
        }
    }
}
