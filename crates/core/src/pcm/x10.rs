//! The X10 PCM.
//!
//! The PCM drives the powerline through a CM11A serial interface, like
//! the prototype (ref. \[15\]).
//!
//! Client Proxy: X10 has no discovery protocol, so modules and sensors
//! are *configured* ([`X10Pcm::import_module`], [`X10Pcm::import_sensor`])
//! — exactly how real X10 controllers work. Because modules are one-way
//! receivers, `status` answers from the PCM's shadow state, refreshed by
//! overhearing powerline traffic.
//!
//! Server Proxy: button presses on the powerline (from the handheld
//! remote of Fig. 5) are routed to remote VSG services via a mapping
//! table ([`X10Pcm::add_route`]) — this is the Universal Remote
//! Controller mechanism: "controlling a Jini Laserdisc with an X10
//! remote controller" (§4.2).

use crate::error::MetaError;
use crate::iface::catalog;
use crate::intern::Name;
use crate::pcm::ProtocolConversionManager;
use crate::service::{Middleware, VirtualService};
use crate::trace::HopKind;
use crate::vsg::Vsg;
use parking_lot::Mutex;
use simnet::{RepeatHandle, Sim, SimDuration};
use soap::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use x10::{Cm11aDriver, Function, HouseCode, UnitCode, X10Frame};

/// Shadow state of one configured module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModuleShadow {
    /// Believed power state.
    pub on: bool,
    /// Believed dim level.
    pub level: u8,
}

#[derive(Debug, Default)]
struct SensorState {
    name: String,
    active: bool,
    events: Vec<Value>,
}

/// Called the instant the PCM learns of a sensor event — the hook that
/// push-capable VSG protocols (SIP) attach to. `(service-name, event)`.
pub type SensorHook = Box<dyn Fn(&Sim, &str, &Value) + Send>;

/// A Server Proxy route: an observed powerline command triggers a VSG
/// invocation.
#[derive(Debug, Clone)]
pub struct Route {
    /// House code to match.
    pub house: HouseCode,
    /// Unit to match.
    pub unit: UnitCode,
    /// Function to match (usually `On` or `Off`).
    pub function: Function,
    /// Target service.
    pub service: String,
    /// Target operation.
    pub operation: String,
    /// Arguments passed along.
    pub args: Vec<(String, Value)>,
}

struct X10Inner {
    vsg: Vsg,
    driver: Cm11aDriver,
    sim: Sim,
    modules: Mutex<HashMap<(HouseCode, UnitCode), ModuleShadow>>,
    sensors: Mutex<HashMap<(HouseCode, UnitCode), SensorState>>,
    routes: Mutex<Vec<Route>>,
    sensor_hook: Mutex<Option<SensorHook>>,
    latch: Mutex<HashMap<HouseCode, Vec<UnitCode>>>,
    imported: Mutex<Vec<String>>,
    exported: Mutex<Vec<Name>>,
    repeats: u32,
}

/// The X10 Protocol Conversion Manager.
#[derive(Clone)]
pub struct X10Pcm {
    inner: Arc<X10Inner>,
}

impl X10Pcm {
    /// Starts the PCM, driving the CM11A through `driver`.
    pub fn start(vsg: &Vsg, sim: &Sim, driver: Cm11aDriver) -> X10Pcm {
        X10Pcm {
            inner: Arc::new(X10Inner {
                vsg: vsg.clone(),
                driver,
                sim: sim.clone(),
                modules: Mutex::new(HashMap::new()),
                sensors: Mutex::new(HashMap::new()),
                routes: Mutex::new(Vec::new()),
                sensor_hook: Mutex::new(None),
                latch: Mutex::new(HashMap::new()),
                imported: Mutex::new(Vec::new()),
                exported: Mutex::new(Vec::new()),
                repeats: 2,
            }),
        }
    }

    // ---- Client Proxy: configured X10 devices -> VSG ------------------------

    /// Exports a configured module as a `Lamp` service.
    pub fn import_module(
        &self,
        name: &str,
        house: HouseCode,
        unit: UnitCode,
    ) -> Result<(), MetaError> {
        self.import_module_with(name, house, unit, &[])
    }

    /// Like [`X10Pcm::import_module`], with service contexts (§3.3),
    /// e.g. `&[("room", "hall")]`.
    pub fn import_module_with(
        &self,
        name: &str,
        house: HouseCode,
        unit: UnitCode,
        contexts: &[(&str, &str)],
    ) -> Result<(), MetaError> {
        self.inner.modules.lock().insert(
            (house, unit),
            ModuleShadow {
                on: false,
                level: x10::MAX_DIM_STEPS,
            },
        );
        let inner = self.inner.clone();
        let mut service = VirtualService::new(
            name,
            catalog::lamp(),
            Middleware::X10,
            self.inner.vsg.name(),
        );
        for (k, v) in contexts {
            service = service.context(*k, *v);
        }
        self.inner.vsg.export(
            service,
            move |sim: &Sim, op: &str, args: &[(String, Value)]| {
                let tracer = inner.vsg.tracer();
                let span = tracer.begin(sim, HopKind::PcmConvert, || format!("x10 {op}"));
                let started = sim.now();
                let result = inner.module_invoke(house, unit, op, args);
                inner.vsg.metrics().record_layer_with_exemplar(
                    crate::obs::Layer::Pcm,
                    (sim.now() - started).as_micros(),
                    span.trace_id(),
                );
                tracer.end_result(sim, span, &result);
                result
            },
        )?;
        self.inner.imported.lock().push(name.to_owned());
        Ok(())
    }

    /// Exports a configured motion sensor as a `MotionSensor` service.
    pub fn import_sensor(
        &self,
        name: &str,
        house: HouseCode,
        unit: UnitCode,
    ) -> Result<(), MetaError> {
        self.import_sensor_with(name, house, unit, &[])
    }

    /// Like [`X10Pcm::import_sensor`], with service contexts (§3.3).
    pub fn import_sensor_with(
        &self,
        name: &str,
        house: HouseCode,
        unit: UnitCode,
        contexts: &[(&str, &str)],
    ) -> Result<(), MetaError> {
        self.inner.sensors.lock().insert(
            (house, unit),
            SensorState {
                name: name.to_owned(),
                ..SensorState::default()
            },
        );
        let inner = self.inner.clone();
        let mut svc = VirtualService::new(
            name,
            catalog::motion_sensor(),
            Middleware::X10,
            self.inner.vsg.name(),
        );
        for (k, v) in contexts {
            svc = svc.context(*k, *v);
        }
        self.inner.vsg.export(
            svc,
            move |sim: &Sim, op: &str, _args: &[(String, Value)]| {
                let tracer = inner.vsg.tracer().clone();
                let span = tracer.begin(sim, HopKind::PcmConvert, || format!("x10 sensor {op}"));
                // Refresh from the interface buffer before answering —
                // this *is* polling; X10 cannot push to us through the
                // CM11A's request/response serial protocol.
                inner.pump();
                let result = (|| {
                    let mut sensors = inner.sensors.lock();
                    let st = sensors
                        .get_mut(&(house, unit))
                        .ok_or_else(|| MetaError::UnknownService("sensor".into()))?;
                    match op {
                        "state" => Ok(Value::Bool(st.active)),
                        "drain_events" => Ok(Value::List(std::mem::take(&mut st.events))),
                        other => Err(MetaError::UnknownOperation {
                            service: "motion-sensor".into(),
                            operation: other.to_owned(),
                        }),
                    }
                })();
                tracer.end_result(sim, span, &result);
                result
            },
        )?;
        self.inner.imported.lock().push(name.to_owned());
        Ok(())
    }

    // ---- Server Proxy: powerline commands -> VSG ----------------------------

    /// Routes an observed `(house, unit, function)` command to a remote
    /// service invocation.
    pub fn add_route(&self, route: Route) {
        self.inner.exported.lock().push(Name::new(&route.service));
        self.inner.routes.lock().push(route);
    }

    /// Polls the CM11A once, updating shadows/sensors and firing routes.
    /// Returns how many frames were processed.
    pub fn pump(&self) -> usize {
        self.inner.pump()
    }

    /// Polls every `period` of virtual time.
    pub fn start_polling(&self, period: SimDuration) -> RepeatHandle {
        let inner = self.inner.clone();
        self.inner.sim.every(period, move |_| {
            inner.pump();
        })
    }

    /// Current shadow state of a module.
    pub fn module_shadow(&self, house: HouseCode, unit: UnitCode) -> Option<ModuleShadow> {
        self.inner.modules.lock().get(&(house, unit)).copied()
    }

    /// Installs the immediate sensor-event hook (used by push-capable
    /// event bridges; see [`crate::events::SipPublisher`]).
    pub fn set_sensor_hook(&self, hook: impl Fn(&Sim, &str, &Value) + Send + 'static) {
        *self.inner.sensor_hook.lock() = Some(Box::new(hook));
    }
}

impl X10Inner {
    fn module_invoke(
        &self,
        house: HouseCode,
        unit: UnitCode,
        op: &str,
        args: &[(String, Value)],
    ) -> Result<Value, MetaError> {
        let arg = |name: &str| args.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        match op {
            "switch" => {
                let on = arg("on").and_then(Value::as_bool).unwrap_or(false);
                let function = if on { Function::On } else { Function::Off };
                self.send_reliably(house, unit, function, 0)?;
                if let Some(shadow) = self.modules.lock().get_mut(&(house, unit)) {
                    shadow.on = on;
                }
                Ok(Value::Null)
            }
            "dim" => {
                let steps = arg("steps")
                    .and_then(Value::as_int)
                    .unwrap_or(1)
                    .clamp(1, 22) as u8;
                self.send_reliably(house, unit, Function::Dim, steps)?;
                if let Some(shadow) = self.modules.lock().get_mut(&(house, unit)) {
                    shadow.level = shadow.level.saturating_sub(steps);
                    shadow.on = true;
                }
                Ok(Value::Null)
            }
            "status" => {
                let shadow =
                    self.modules
                        .lock()
                        .get(&(house, unit))
                        .copied()
                        .unwrap_or(ModuleShadow {
                            on: false,
                            level: 0,
                        });
                Ok(Value::Bool(shadow.on))
            }
            other => Err(MetaError::UnknownOperation {
                service: "lamp".into(),
                operation: other.to_owned(),
            }),
        }
    }

    /// X10 is unacknowledged; the PCM repeats *idempotent* commands
    /// blindly (On/Off), but never incremental ones (Dim/Bright), which
    /// would compound.
    fn send_reliably(
        &self,
        house: HouseCode,
        unit: UnitCode,
        function: Function,
        dims: u8,
    ) -> Result<(), MetaError> {
        let repeats = if matches!(function, Function::Dim | Function::Bright) {
            1
        } else {
            self.repeats.max(1)
        };
        let mut last_err = None;
        for _ in 0..repeats {
            match self.driver.send_command_dims(house, unit, function, dims) {
                Ok(()) => last_err = None,
                Err(e) => last_err = Some(e),
            }
        }
        match last_err {
            None => Ok(()),
            Some(e) => Err(MetaError::native("x10", e)),
        }
    }

    fn pump(&self) -> usize {
        let frames = match self.driver.poll() {
            Ok(f) => f,
            Err(_) => return 0,
        };
        let n = frames.len();
        for frame in frames {
            self.apply_frame(frame);
        }
        n
    }

    fn apply_frame(&self, frame: X10Frame) {
        match frame {
            X10Frame::Address { house, unit } => {
                let mut latch = self.latch.lock();
                let units = latch.entry(house).or_default();
                if !units.contains(&unit) {
                    units.push(unit);
                }
            }
            X10Frame::Function {
                house,
                function,
                dims,
            } => {
                let latched = {
                    let mut latch = self.latch.lock();
                    if matches!(function, Function::Dim | Function::Bright) {
                        latch.get(&house).cloned().unwrap_or_default()
                    } else {
                        latch.remove(&house).unwrap_or_default()
                    }
                };
                for unit in latched {
                    self.apply_command(house, unit, function, dims);
                }
            }
        }
    }

    fn apply_command(&self, house: HouseCode, unit: UnitCode, function: Function, dims: u8) {
        // Shadow maintenance for modules we front.
        if let Some(shadow) = self.modules.lock().get_mut(&(house, unit)) {
            match function {
                Function::On => shadow.on = true,
                Function::Off => shadow.on = false,
                Function::Dim => {
                    shadow.level = shadow.level.saturating_sub(dims.max(1));
                    shadow.on = true;
                }
                Function::Bright => {
                    shadow.level = (shadow.level + dims.max(1)).min(x10::MAX_DIM_STEPS);
                }
                _ => {}
            }
        }
        // Sensor events.
        let hook_event = {
            let mut sensors = self.sensors.lock();
            if let Some(sensor) = sensors.get_mut(&(house, unit)) {
                let active = function == Function::On;
                if matches!(function, Function::On | Function::Off) {
                    sensor.active = active;
                    let event = Value::Record(vec![
                        (
                            "at_us".into(),
                            Value::Int(self.sim.now().as_micros() as i64),
                        ),
                        ("active".into(), Value::Bool(active)),
                    ]);
                    sensor.events.push(event.clone());
                    Some((sensor.name.clone(), event))
                } else {
                    None
                }
            } else {
                None
            }
        };
        if let Some((name, event)) = hook_event {
            if let Some(hook) = self.sensor_hook.lock().as_ref() {
                hook(&self.sim, &name, &event);
            }
        }
        // Server Proxy routes.
        let routes: Vec<Route> = self
            .routes
            .lock()
            .iter()
            .filter(|r| r.house == house && r.unit == unit && r.function == function)
            .cloned()
            .collect();
        for route in routes {
            // Route firings originate on the powerline, not inside any
            // in-flight framework call, so each starts a fresh trace.
            let tracer = self.vsg.tracer();
            let span = tracer.begin_root(&self.sim, HopKind::PcmConvert, || {
                format!("x10-route {}.{}", route.service, route.operation)
            });
            let result = self
                .vsg
                .invoke(&self.sim, &route.service, &route.operation, &route.args);
            tracer.end_result(&self.sim, span, &result);
            match result {
                Ok(_) => self.sim.trace(
                    "x10-pcm",
                    format!(
                        "routed {}{} {} -> {}.{}",
                        house.letter(),
                        unit.number(),
                        function,
                        route.service,
                        route.operation
                    ),
                ),
                Err(e) => self.sim.trace("x10-pcm", format!("route failed: {e}")),
            }
        }
    }
}

impl ProtocolConversionManager for X10Pcm {
    fn middleware(&self) -> Middleware {
        Middleware::X10
    }

    fn imported(&self) -> Vec<String> {
        self.inner.imported.lock().clone()
    }

    fn exported(&self) -> Vec<Name> {
        self.inner.exported.lock().clone()
    }
}

impl fmt::Debug for X10Pcm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("X10Pcm")
            .field("modules", &self.inner.modules.lock().len())
            .field("sensors", &self.inner.sensors.lock().len())
            .field("routes", &self.inner.routes.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Soap11;
    use crate::vsr::Vsr;
    use simnet::Network;
    use x10::{Cm11a, Module, ModuleKind, MotionSensor, Remote};

    fn h(c: char) -> HouseCode {
        HouseCode::new(c).unwrap()
    }
    fn u(n: u8) -> UnitCode {
        UnitCode::new(n).unwrap()
    }

    struct World {
        sim: Sim,
        powerline: Network,
        vsg: Vsg,
        pcm: X10Pcm,
    }

    fn world() -> World {
        let sim = Sim::new(1);
        let backbone = Network::ethernet(&sim);
        let vsr = Vsr::start(&backbone);
        let vsg = Vsg::start(&backbone, "x10-gw", Arc::new(Soap11::new()), vsr.node()).unwrap();
        let serial = Network::serial(&sim);
        let mut link = simnet::netkind::powerline();
        link.loss_prob = 0.0; // deterministic tests; loss covered elsewhere
        let powerline = Network::new(&sim, "powerline", link);
        let cm11a = Cm11a::install(&serial, &powerline);
        let driver = Cm11aDriver::new(&serial, cm11a.serial_node());
        let pcm = X10Pcm::start(&vsg, &sim, driver);
        World {
            sim,
            powerline,
            vsg,
            pcm,
        }
    }

    #[test]
    fn imported_module_switches_real_lamp() {
        let w = world();
        let lamp = Module::plug_in(&w.powerline, "lamp", ModuleKind::Lamp, h('A'), u(1));
        w.pcm.import_module("hall-lamp", h('A'), u(1)).unwrap();

        w.vsg
            .invoke(
                &w.sim,
                "hall-lamp",
                "switch",
                &[("on".into(), Value::Bool(true))],
            )
            .unwrap();
        assert!(lamp.is_on());
        assert_eq!(
            w.vsg.invoke(&w.sim, "hall-lamp", "status", &[]).unwrap(),
            Value::Bool(true)
        );
        w.vsg
            .invoke(
                &w.sim,
                "hall-lamp",
                "dim",
                &[("steps".into(), Value::Int(4))],
            )
            .unwrap();
        assert_eq!(lamp.state().level, x10::MAX_DIM_STEPS - 4);
        assert_eq!(
            w.pcm.module_shadow(h('A'), u(1)).unwrap().level,
            x10::MAX_DIM_STEPS - 4
        );
    }

    #[test]
    fn sensor_events_arrive_by_polling() {
        let w = world();
        let mut sensor = MotionSensor::install(&w.powerline, "hall-sensor", h('C'), u(9));
        sensor.set_auto_clear(None);
        w.pcm.import_sensor("hall-motion", h('C'), u(9)).unwrap();

        assert_eq!(
            w.vsg.invoke(&w.sim, "hall-motion", "state", &[]).unwrap(),
            Value::Bool(false)
        );
        sensor.trigger();
        assert_eq!(
            w.vsg.invoke(&w.sim, "hall-motion", "state", &[]).unwrap(),
            Value::Bool(true)
        );
        let events = w
            .vsg
            .invoke(&w.sim, "hall-motion", "drain_events", &[])
            .unwrap();
        match events {
            Value::List(items) => {
                assert_eq!(items.len(), 1);
                assert_eq!(items[0].field("active"), Some(&Value::Bool(true)));
            }
            other => panic!("expected list, got {other}"),
        }
        // Drained: second read is empty.
        assert_eq!(
            w.vsg
                .invoke(&w.sim, "hall-motion", "drain_events", &[])
                .unwrap(),
            Value::List(vec![])
        );
    }

    #[test]
    fn remote_button_routes_to_vsg_service() {
        let w = world();
        // The "laserdisc" stand-in service records invocations.
        let plays = Arc::new(Mutex::new(0u32));
        let plays2 = plays.clone();
        w.vsg
            .export(
                VirtualService::new(
                    "laserdisc",
                    catalog::laserdisc(),
                    Middleware::Jini,
                    w.vsg.name(),
                ),
                move |_: &Sim, op: &str, _: &[(String, Value)]| {
                    if op == "play" {
                        *plays2.lock() += 1;
                    }
                    Ok(Value::Null)
                },
            )
            .unwrap();
        w.pcm.add_route(Route {
            house: h('A'),
            unit: u(5),
            function: Function::On,
            service: "laserdisc".into(),
            operation: "play".into(),
            args: vec![("chapter".into(), Value::Int(1))],
        });

        let mut remote = Remote::new(&w.powerline, "remote", h('A'));
        remote.press(x10::Button::On(5));
        assert_eq!(*plays.lock(), 0, "not routed until the PCM polls");
        w.pcm.pump();
        assert_eq!(*plays.lock(), 1);
        // A non-matching button does nothing.
        remote.press(x10::Button::On(6));
        w.pcm.pump();
        assert_eq!(*plays.lock(), 1);
    }

    #[test]
    fn periodic_polling_drives_routes() {
        let w = world();
        let count = Arc::new(Mutex::new(0u32));
        let count2 = count.clone();
        w.vsg
            .export(
                VirtualService::new("counter", catalog::display(), Middleware::Web, w.vsg.name()),
                move |_: &Sim, _: &str, _: &[(String, Value)]| {
                    *count2.lock() += 1;
                    Ok(Value::Null)
                },
            )
            .unwrap();
        w.pcm.add_route(Route {
            house: h('A'),
            unit: u(1),
            function: Function::On,
            service: "counter".into(),
            operation: "show".into(),
            args: vec![("text".into(), Value::Str("hi".into()))],
        });
        let handle = w.pcm.start_polling(SimDuration::from_millis(500));

        let mut remote = Remote::new(&w.powerline, "remote", h('A'));
        remote.press(x10::Button::On(1));
        w.sim.run_for(SimDuration::from_secs(2));
        assert_eq!(*count.lock(), 1);
        handle.cancel();
    }

    #[test]
    fn shadow_tracks_foreign_commands() {
        let w = world();
        let _lamp = Module::plug_in(&w.powerline, "lamp", ModuleKind::Lamp, h('A'), u(1));
        w.pcm.import_module("hall-lamp", h('A'), u(1)).unwrap();
        // Somebody uses the wall remote, bypassing the framework.
        let mut remote = Remote::new(&w.powerline, "remote", h('A'));
        remote.press(x10::Button::On(1));
        w.pcm.pump();
        assert_eq!(
            w.vsg.invoke(&w.sim, "hall-lamp", "status", &[]).unwrap(),
            Value::Bool(true),
            "shadow updated from overheard traffic"
        );
    }
}
