//! Protocol Conversion Managers.
//!
//! §3.2: "The PCM converts the protocol of a local middleware component
//! into that of VSG, also VSG into a local middleware component. The PCM
//! has two proxy modules, the Server Proxy module and the Client Proxy
//! module … the SP provides the interfaces of remote services to the
//! local services. Then, CP converts the interfaces of local services
//! into the VSG services."
//!
//! One submodule per middleware — exactly the paper's economy argument:
//! joining the federation costs one PCM, not N bridges (experiment E5).
//!
//! | module | Client Proxy (native → VSG) | Server Proxy (VSG → native) |
//! |---|---|---|
//! | [`jini`] | lookup-service harvest | RMI objects registered in reggie |
//! | [`havi`] | registry harvest of FCMs | bridge software elements |
//! | [`x10`] | configured modules/sensors via CM11A | remote-button routing |
//! | [`mail`] | the mail service as a `Mailer` | (mail cannot call inward) |
//! | [`upnp`] | SSDP-discovered devices | hosted bridge devices |
//! | [`cloud`] | registrations/state pushed up the WAN | downward RPC into the home |

pub mod cloud;
pub mod havi;
pub mod jini;
pub mod mail;
pub mod upnp;
pub mod x10;

use crate::intern::Name;
use crate::service::Middleware;

/// What every PCM can report about itself.
pub trait ProtocolConversionManager {
    /// The middleware this PCM converts for.
    fn middleware(&self) -> Middleware;

    /// Names of services imported into the VSG (Client Proxy side).
    fn imported(&self) -> Vec<String>;

    /// Names of remote services exported into the native middleware
    /// (Server Proxy side).
    fn exported(&self) -> Vec<Name>;
}
