//! The cloud bridge PCM: the mHouse "Home Server + Cloud
//! Communicators" shape over a hostile WAN.
//!
//! The paper's §3 framework treats any new middleware as "just another
//! PCM"; this module is the PCM for the *cloud* — device registrations
//! and state notifications flow upward to a simulated cloud backbone,
//! and downward RPCs flow back into the home. Unlike every LAN island,
//! the WAN hop is the flakiest link in the system, so the bridge is
//! built robustness-first:
//!
//! * **Durable store-and-forward outbox** — registrations and state
//!   notifications are enqueued with monotonic sequence numbers,
//!   coalesced per device (latest-state-wins for notifications, never
//!   for lifecycle events), bounded with typed
//!   [`MetaError::Overloaded`] shedding, and drained in order on each
//!   (re)connect.
//! * **Session epochs with fencing** — every (re)connect attempt bumps
//!   an epoch; the cloud rejects pushes stamped with a stale epoch, and
//!   the home rejects downward commands stamped with a stale epoch, so
//!   a healed ex-session can neither replay nor split-brain.
//! * **Exactly-once downward effect** — downward RPCs carry command
//!   ids; the home keeps a dedup window and replays the cached outcome
//!   for a retransmitted (or chaos-duplicated) command, so at-least-once
//!   WAN delivery yields exactly-once application.
//! * **Reconnect with capped exponential backoff + deterministic
//!   jitter**, and post-heal **delta reconciliation**: the `HELLO`
//!   handshake returns the cloud's applied-through digest and the home
//!   resends only the suffix the cloud missed.
//! * **Flash-crowd admission control** — the cloud edge meters each
//!   home with two token buckets (a per-home rate and a fair share of
//!   the global backbone budget) and answers `RETRY <µs>` pushback that
//!   feeds the home's backoff.
//!
//! ## Determinism note
//!
//! A literal global concurrency counter shared across fleet islands
//! would make admission outcomes depend on worker-thread interleaving,
//! breaking the repo's `SIM_THREADS=1 ≡ SIM_THREADS=N` guarantee. The
//! global budget is therefore realised as a *deterministic fair share*:
//! each home's cloud cell gets `global_rate / fleet_homes`, refilled on
//! virtual time. Admission outcomes are a pure function of the seed and
//! the schedule — never of the thread count. Every per-home WAN (home
//! node + cloud-edge node) lives on that home's own island `Sim`, so
//! fleet islands stay uncoupled and the parallel scheduler keeps its
//! unbounded lookahead.

use crate::error::MetaError;
use crate::intern::Name;
use crate::metrics::{CacheStats, MetricsRegistry, MetricsSnapshot};
use crate::obs::HistSketch;
use crate::trace::{HopKind, Span, Tracer};
use parking_lot::Mutex;
use simnet::{FaultPlan, Network, NodeId, Protocol, RepeatHandle, Sim, SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// configuration
// ---------------------------------------------------------------------------

/// Knobs for one home's cloud bridge and its cloud-edge cell.
#[derive(Debug, Clone)]
pub struct CloudConfig {
    /// Outbox bound; notifications beyond it are shed with
    /// [`MetaError::Overloaded`]. Lifecycle events evict the oldest
    /// queued notification instead of being shed themselves.
    pub outbox_cap: usize,
    /// Max outbox entries per `PUSH` round.
    pub batch_max: usize,
    /// Period of the bridge pump (connect attempts + outbox drain).
    /// Fires when the event loop is pumped (`run_for`), like every
    /// other timer in the simulation.
    pub drain_period: SimDuration,
    /// First reconnect backoff; doubles per failed attempt.
    pub base_backoff: SimDuration,
    /// Cap on any reconnect backoff.
    pub max_backoff: SimDuration,
    /// How many recent downward command outcomes the home remembers
    /// for exactly-once replay.
    pub dedup_window: usize,
    /// Downward command re-sends after a transport failure.
    pub cmd_retries: u32,
    /// Backoff between downward command re-sends.
    pub cmd_backoff: SimDuration,
    /// Per-home admission rate at the cloud edge, requests per minute.
    pub home_rate_per_min: u32,
    /// Per-home admission burst, requests.
    pub home_burst: u32,
    /// Global backbone admission rate, requests per minute, divided
    /// fair-share across the fleet (see the module's determinism note).
    pub global_rate_per_min: u32,
    /// Global admission burst (also divided fair-share).
    pub global_burst: u32,
    /// Master switch for the outbox. When off (ablation), state
    /// notifications raised while disconnected are *dropped* instead
    /// of buffered — the bench's "measurably lower delivered ratio"
    /// baseline.
    pub store_and_forward: bool,
}

impl Default for CloudConfig {
    fn default() -> CloudConfig {
        CloudConfig {
            outbox_cap: 256,
            batch_max: 32,
            drain_period: SimDuration::from_millis(200),
            base_backoff: SimDuration::from_millis(500),
            max_backoff: SimDuration::from_secs(30),
            dedup_window: 64,
            cmd_retries: 4,
            cmd_backoff: SimDuration::from_millis(300),
            home_rate_per_min: 600,
            home_burst: 20,
            global_rate_per_min: 60_000,
            global_burst: 2_000,
            store_and_forward: true,
        }
    }
}

// ---------------------------------------------------------------------------
// admission control
// ---------------------------------------------------------------------------

/// A GCRA-style token bucket on virtual time, in integer microseconds:
/// one admitted request costs `interval_us`; up to `burst` requests may
/// arrive back-to-back. Rejections report how long until the next
/// token accrues — the typed retry-after pushback.
#[derive(Debug, Clone)]
struct Gcra {
    interval_us: u64,
    burst_us: u64,
    tat: SimTime,
}

impl Gcra {
    /// `rate_per_min` requests per minute with `burst` headroom. A zero
    /// rate disables metering (always admits).
    fn per_minute(rate_per_min: u32, burst: u32) -> Gcra {
        let interval_us = if rate_per_min == 0 {
            0
        } else {
            60_000_000 / u64::from(rate_per_min).max(1)
        };
        Gcra {
            interval_us,
            burst_us: interval_us.saturating_mul(u64::from(burst.max(1))),
            tat: SimTime::ZERO,
        }
    }

    /// Admits one request at `now`, or reports the wait until it would
    /// be admitted.
    fn admit(&mut self, now: SimTime) -> Result<(), SimDuration> {
        if self.interval_us == 0 {
            return Ok(());
        }
        let limit = now + SimDuration::from_micros(self.burst_us);
        if self.tat > limit {
            return Err(self.tat - limit);
        }
        self.tat = self.tat.max(now) + SimDuration::from_micros(self.interval_us);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// outbox
// ---------------------------------------------------------------------------

/// What one outbox entry carries upward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// A device joined the home (lifecycle — never coalesced or shed).
    Register,
    /// A device left the home (lifecycle — never coalesced or shed).
    Unregister,
    /// A device state notification (latest-state-wins per device).
    Notify,
}

impl EntryKind {
    fn wire(self) -> &'static str {
        match self {
            EntryKind::Register => "reg",
            EntryKind::Unregister => "unreg",
            EntryKind::Notify => "state",
        }
    }

    fn from_wire(s: &str) -> Option<EntryKind> {
        match s {
            "reg" => Some(EntryKind::Register),
            "unreg" => Some(EntryKind::Unregister),
            "state" => Some(EntryKind::Notify),
            _ => None,
        }
    }
}

#[derive(Debug, Clone)]
struct OutEntry {
    seq: u64,
    kind: EntryKind,
    created: SimTime,
    device: String,
    payload: String,
    /// Included in at least one `PUSH` frame. An attempted entry may
    /// have landed even though no reply came back (at-least-once), so
    /// it is no longer safe to coalesce into: the reconnect digest
    /// would then drop the newer payload under the already-applied
    /// sequence number.
    attempted: bool,
}

/// A downward RPC as the home-side applier sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CloudCommand {
    /// The cloud-assigned command id (the exactly-once key).
    pub id: u64,
    /// Target device.
    pub device: String,
    /// Operation name.
    pub op: String,
    /// Opaque payload.
    pub payload: String,
}

/// Applies a downward command inside the home. Pluggable so tests use
/// a counting applier while integrated homes route into a gateway.
pub type CommandApplier = Box<dyn FnMut(&Sim, &CloudCommand) -> Result<String, String> + Send>;

// ---------------------------------------------------------------------------
// stats
// ---------------------------------------------------------------------------

/// Typed counters on the home side of the bridge.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CloudBridgeStats {
    /// State notifications accepted into the outbox.
    pub notify_enqueued: u64,
    /// Lifecycle events accepted into the outbox.
    pub lifecycle_enqueued: u64,
    /// Notifications replaced in place by a newer one for the same
    /// device (latest-state-wins; the superseded update is *delivered
    /// by proxy* through its successor).
    pub coalesced: u64,
    /// Notifications shed because the outbox was full.
    pub shed: u64,
    /// Notifications dropped while disconnected because
    /// store-and-forward is off (the ablation baseline).
    pub dropped_disconnected: u64,
    /// Entries acknowledged by the cloud.
    pub pushed: u64,
    /// Entries the `HELLO` digest proved the cloud already had (the
    /// delta-reconciliation savings: only the suffix is resent).
    pub reconciled: u64,
    /// Successful (re)connect handshakes.
    pub reconnects: u64,
    /// Failed connect attempts (transport or pushback).
    pub connect_failures: u64,
    /// Push rounds that failed in transit.
    pub push_failures: u64,
    /// `RETRY` pushbacks folded into the backoff.
    pub retry_after_waits: u64,
    /// Pushes the cloud fenced off with a stale epoch.
    pub stale_push_rejects: u64,
    /// Downward commands applied (first delivery of an id).
    pub commands_applied: u64,
    /// Downward deliveries answered from the dedup window.
    pub commands_deduped: u64,
    /// Downward commands fenced off for carrying a stale epoch.
    pub commands_stale_rejected: u64,
    /// Applier invocations for an id that had already been applied —
    /// the exactly-once violation counter. Must stay 0.
    pub duplicate_effects: u64,
}

/// Typed counters on the cloud-edge side.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CloudCellStats {
    /// Accepted `HELLO` handshakes.
    pub hellos: u64,
    /// Accepted push rounds.
    pub pushes_ok: u64,
    /// Push rounds fenced off with a stale epoch.
    pub pushes_stale: u64,
    /// Requests rejected with `RETRY` pushback (flash-crowd control).
    pub throttled: u64,
    /// Entries applied (first delivery of a seq).
    pub entries_applied: u64,
    /// Resent entries already covered by the applied-through digest.
    pub entries_deduped: u64,
    /// State notifications among the applied entries.
    pub notify_applied: u64,
    /// Lifecycle events among the applied entries.
    pub lifecycle_applied: u64,
    /// Downward commands sent.
    pub commands_sent: u64,
    /// Downward command re-sends after transport failures.
    pub command_retries: u64,
    /// Downward commands that ultimately failed.
    pub command_failures: u64,
}

// ---------------------------------------------------------------------------
// home side: CloudBridgePcm
// ---------------------------------------------------------------------------

struct BridgeState {
    connected: bool,
    epoch: u64,
    next_seq: u64,
    outbox: VecDeque<OutEntry>,
    backoff_attempt: u32,
    next_attempt_at: SimTime,
    throttled_until: SimTime,
    registered: BTreeSet<String>,
    dedup: VecDeque<(u64, String)>,
    applied_ids: HashSet<u64>,
    stats: CloudBridgeStats,
}

struct BridgeInner {
    sim: Sim,
    wan: Network,
    home_node: NodeId,
    cloud_node: NodeId,
    home_id: String,
    cfg: CloudConfig,
    state: Mutex<BridgeState>,
    applier: Mutex<CommandApplier>,
    tracer: Tracer,
    metrics: Arc<MetricsRegistry>,
}

/// The home side of the cloud bridge: outbox, epochs, reconnect,
/// downward-command dedup. Cheaply clonable (shared state).
#[derive(Clone)]
pub struct CloudBridgePcm {
    inner: Arc<BridgeInner>,
}

impl CloudBridgePcm {
    /// The home's identity on the cloud.
    pub fn home_id(&self) -> &str {
        &self.inner.home_id
    }

    /// The WAN network between this home and its cloud edge — install
    /// chaos schedules here.
    pub fn wan(&self) -> &Network {
        &self.inner.wan
    }

    /// The home's WAN node id (one side of partitions).
    pub fn home_node(&self) -> NodeId {
        self.inner.home_node
    }

    /// The cloud edge's WAN node id (the other side of partitions).
    pub fn cloud_node(&self) -> NodeId {
        self.inner.cloud_node
    }

    /// Current session epoch (bumps on every connect attempt).
    pub fn epoch(&self) -> u64 {
        self.inner.state.lock().epoch
    }

    /// Whether the last handshake succeeded and no failure was seen
    /// since.
    pub fn is_connected(&self) -> bool {
        self.inner.state.lock().connected
    }

    /// Entries waiting in the outbox.
    pub fn outbox_len(&self) -> usize {
        self.inner.state.lock().outbox.len()
    }

    /// A copy of the home-side counters.
    pub fn stats(&self) -> CloudBridgeStats {
        self.inner.state.lock().stats.clone()
    }

    /// Replaces the downward-command applier (default: acknowledge and
    /// count).
    pub fn set_applier(
        &self,
        f: impl FnMut(&Sim, &CloudCommand) -> Result<String, String> + Send + 'static,
    ) {
        *self.inner.applier.lock() = Box::new(f);
    }

    /// Enqueues a device registration (lifecycle: never coalesced).
    pub fn register_device(&self, device: &str) -> Result<u64, MetaError> {
        self.inner.state.lock().registered.insert(device.to_owned());
        self.enqueue(EntryKind::Register, device, "joined")
    }

    /// Enqueues a device unregistration (lifecycle: never coalesced).
    pub fn unregister_device(&self, device: &str) -> Result<u64, MetaError> {
        self.inner.state.lock().registered.remove(device);
        self.enqueue(EntryKind::Unregister, device, "left")
    }

    /// Enqueues a state notification. Coalesces with a queued
    /// notification for the same device (latest-state-wins, the
    /// original sequence number is kept so drain order is preserved).
    pub fn notify_state(&self, device: &str, payload: &str) -> Result<u64, MetaError> {
        self.enqueue(EntryKind::Notify, device, payload)
    }

    fn enqueue(&self, kind: EntryKind, device: &str, payload: &str) -> Result<u64, MetaError> {
        debug_assert!(
            !device.contains(' ') && !device.contains('\n') && !payload.contains('\n'),
            "device names must be space-free and payloads newline-free"
        );
        let now = self.inner.sim.now();
        let mut st = self.inner.state.lock();
        if kind == EntryKind::Notify {
            if !self.inner.cfg.store_and_forward && !st.connected {
                // Ablation: no outbox while disconnected — the update
                // is lost, which is exactly what the bench measures.
                st.stats.dropped_disconnected += 1;
                return Err(MetaError::GatewayUnreachable("cloud".into()));
            }
            // Latest-state-wins: replace in place, keeping the seq —
            // but never touch an entry that has already been attempted
            // (its delivery is ambiguous; see `OutEntry::attempted`).
            if let Some(e) = st
                .outbox
                .iter_mut()
                .find(|e| e.kind == EntryKind::Notify && e.device == device && !e.attempted)
            {
                e.payload = payload.to_owned();
                e.created = now;
                let seq = e.seq;
                st.stats.coalesced += 1;
                return Ok(seq);
            }
        }
        if st.outbox.len() >= self.inner.cfg.outbox_cap {
            if kind == EntryKind::Notify {
                st.stats.shed += 1;
                let queued = st.outbox.len() as u64;
                return Err(MetaError::Overloaded {
                    gateway: "cloud".into(),
                    queued,
                });
            }
            // Lifecycle events are never shed: evict the oldest queued
            // notification to make room; only if none exists does the
            // hard bound win.
            if let Some(pos) = st.outbox.iter().position(|e| e.kind == EntryKind::Notify) {
                st.outbox.remove(pos);
                st.stats.shed += 1;
            } else {
                let queued = st.outbox.len() as u64;
                return Err(MetaError::Overloaded {
                    gateway: "cloud".into(),
                    queued,
                });
            }
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.outbox.push_back(OutEntry {
            seq,
            kind,
            created: now,
            device: device.to_owned(),
            payload: payload.to_owned(),
            attempted: false,
        });
        match kind {
            EntryKind::Notify => st.stats.notify_enqueued += 1,
            _ => st.stats.lifecycle_enqueued += 1,
        }
        Ok(seq)
    }

    /// One pump tick: attempt a (re)connect when due, then drain the
    /// outbox while connected and not throttled. Driven by the island's
    /// repeat timer; tests may call it directly.
    pub fn pump(&self) {
        let now = self.inner.sim.now();
        let due = {
            let st = self.inner.state.lock();
            if st.connected {
                now >= st.throttled_until
            } else {
                now >= st.next_attempt_at
            }
        };
        if !due {
            return;
        }
        if !self.is_connected() {
            self.try_connect();
        }
        if self.is_connected() {
            self.drain();
        }
    }

    /// The capped exponential backoff with deterministic jitter over
    /// `[wait/2, wait]`, drawn from the island's seeded RNG.
    fn backoff(&self, attempt: u32) -> SimDuration {
        let base = self.inner.cfg.base_backoff.as_micros().max(1);
        let cap = self.inner.cfg.max_backoff.as_micros().max(base);
        let wait = base.saturating_mul(1u64 << attempt.min(16)).min(cap);
        let us = self.inner.sim.with_rng(|r| r.range(wait / 2, wait + 1));
        SimDuration::from_micros(us)
    }

    fn try_connect(&self) {
        let sim = &self.inner.sim;
        let epoch = {
            let mut st = self.inner.state.lock();
            // Fencing: every attempt bumps the epoch, so anything the
            // previous session still has in flight is already stale.
            st.epoch += 1;
            st.epoch
        };
        let span = self
            .inner
            .tracer
            .begin_root(sim, HopKind::Cloud, || format!("cloud.hello e{epoch}"));
        let started = sim.now();
        let reply = self.wan_request(format!("HELLO {epoch}"));
        let elapsed = (sim.now() - started).as_micros();
        let mut st = self.inner.state.lock();
        match reply.as_deref() {
            Ok(ok) if ok.starts_with("OK ") => {
                let applied_through: u64 = ok[3..].trim().parse().unwrap_or(0);
                // Delta reconciliation: the digest says the cloud
                // already holds everything through `applied_through`;
                // resend only the suffix.
                let before = st.outbox.len();
                st.outbox.retain(|e| e.seq > applied_through);
                st.stats.reconciled += (before - st.outbox.len()) as u64;
                st.connected = true;
                st.backoff_attempt = 0;
                st.throttled_until = SimTime::ZERO;
                st.stats.reconnects += 1;
                self.inner.metrics.record("cloud.hello", elapsed, None);
                self.inner
                    .tracer
                    .end_result::<(), MetaError>(sim, span, &Ok(()));
            }
            Ok(retry) if retry.starts_with("RETRY ") => {
                let after = SimDuration::from_micros(retry[6..].trim().parse().unwrap_or(0));
                let attempt = st.backoff_attempt;
                st.backoff_attempt += 1;
                st.stats.connect_failures += 1;
                st.stats.retry_after_waits += 1;
                drop(st);
                // Typed pushback feeds the backoff: wait at least what
                // the cloud asked for.
                let wait = self.backoff(attempt).max(after);
                let mut st = self.inner.state.lock();
                st.next_attempt_at = sim.now() + wait;
                self.inner
                    .metrics
                    .record("cloud.hello", elapsed, Some("overloaded"));
                let err: Result<(), MetaError> = Err(MetaError::Overloaded {
                    gateway: "cloud".into(),
                    queued: 0,
                });
                self.inner.tracer.end_result(sim, span, &err);
            }
            _ => {
                let attempt = st.backoff_attempt;
                st.backoff_attempt += 1;
                st.stats.connect_failures += 1;
                drop(st);
                let wait = self.backoff(attempt);
                let mut st = self.inner.state.lock();
                st.next_attempt_at = sim.now() + wait;
                self.inner
                    .metrics
                    .record("cloud.hello", elapsed, Some("transport"));
                let err: Result<(), MetaError> =
                    Err(MetaError::transport("cloud hello failed", true));
                self.inner.tracer.end_result(sim, span, &err);
            }
        }
    }

    fn drain(&self) {
        let sim = &self.inner.sim;
        loop {
            let (epoch, batch) = {
                let mut st = self.inner.state.lock();
                if !st.connected || st.outbox.is_empty() || sim.now() < st.throttled_until {
                    return;
                }
                let batch_max = self.inner.cfg.batch_max;
                let batch: Vec<OutEntry> = st
                    .outbox
                    .iter_mut()
                    .take(batch_max)
                    .map(|e| {
                        e.attempted = true;
                        e.clone()
                    })
                    .collect();
                (st.epoch, batch)
            };
            let n = batch.len();
            let mut msg = format!("PUSH {epoch} {n}");
            for e in &batch {
                msg.push('\n');
                msg.push_str(&format!(
                    "{} {} {} {} {}",
                    e.seq,
                    e.kind.wire(),
                    e.created.as_micros(),
                    e.device,
                    e.payload
                ));
            }
            let span = self
                .inner
                .tracer
                .begin_root(sim, HopKind::Cloud, || format!("cloud.push x{n}"));
            let started = sim.now();
            let reply = self.wan_request(msg);
            let elapsed = (sim.now() - started).as_micros();
            let mut st = self.inner.state.lock();
            match reply.as_deref() {
                Ok(ok) if ok.starts_with("OK ") => {
                    let applied_through: u64 = ok[3..].trim().parse().unwrap_or(0);
                    let before = st.outbox.len();
                    st.outbox.retain(|e| e.seq > applied_through);
                    st.stats.pushed += (before - st.outbox.len()) as u64;
                    self.inner.metrics.record("cloud.push", elapsed, None);
                    self.inner
                        .tracer
                        .end_result::<(), MetaError>(sim, span, &Ok(()));
                }
                Ok(retry) if retry.starts_with("RETRY ") => {
                    let after = SimDuration::from_micros(retry[6..].trim().parse().unwrap_or(0));
                    st.throttled_until = sim.now() + after;
                    st.stats.retry_after_waits += 1;
                    self.inner
                        .metrics
                        .record("cloud.push", elapsed, Some("overloaded"));
                    let err: Result<(), MetaError> = Err(MetaError::Overloaded {
                        gateway: "cloud".into(),
                        queued: st.outbox.len() as u64,
                    });
                    self.inner.tracer.end_result(sim, span, &err);
                    return;
                }
                Ok(stale) if stale.starts_with("STALE ") => {
                    // Someone (or a duplicated HELLO of our own) moved
                    // the epoch past us: fence trips, reconnect fresh.
                    st.connected = false;
                    st.stats.stale_push_rejects += 1;
                    st.next_attempt_at = sim.now();
                    self.inner
                        .metrics
                        .record("cloud.push", elapsed, Some("protocol"));
                    let err: Result<(), MetaError> = Err(MetaError::Protocol("stale epoch".into()));
                    self.inner.tracer.end_result(sim, span, &err);
                    return;
                }
                _ => {
                    // Transport failure mid-session: the push may or
                    // may not have landed (at-least-once). Entries stay
                    // queued; the cloud's applied-through digest dedups
                    // the resend after reconnect.
                    st.connected = false;
                    st.stats.push_failures += 1;
                    let attempt = st.backoff_attempt;
                    st.backoff_attempt += 1;
                    drop(st);
                    let wait = self.backoff(attempt);
                    let mut st = self.inner.state.lock();
                    st.next_attempt_at = sim.now() + wait;
                    self.inner
                        .metrics
                        .record("cloud.push", elapsed, Some("transport"));
                    self.inner.metrics.record_retry();
                    let err: Result<(), MetaError> =
                        Err(MetaError::transport("cloud push failed", false));
                    self.inner.tracer.end_result(sim, span, &err);
                    return;
                }
            }
        }
    }

    fn wan_request(&self, msg: String) -> Result<String, MetaError> {
        match self.inner.wan.request(
            self.inner.home_node,
            self.inner.cloud_node,
            Protocol::Http,
            msg.into_bytes(),
        ) {
            Ok(bytes) => Ok(String::from_utf8_lossy(&bytes).into_owned()),
            Err(e) => Err(MetaError::from_wire_error(&e, self.inner.home_node)),
        }
    }

    /// Handles one downward `CMD` frame. Returns the wire reply.
    fn handle_command(&self, sim: &Sim, text: &str) -> Result<String, String> {
        let rest = text.strip_prefix("CMD ").ok_or("bad command frame")?;
        let mut parts = rest.splitn(5, ' ');
        let id: u64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or("bad command id")?;
        let epoch: u64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or("bad command epoch")?;
        let device = parts.next().ok_or("missing device")?.to_owned();
        let op = parts.next().ok_or("missing op")?.to_owned();
        let payload = parts.next().unwrap_or("").to_owned();
        {
            let mut st = self.inner.state.lock();
            // Epoch fence: a command stamped by an older session (the
            // cloud hasn't re-learned our epoch yet) must not execute.
            if epoch != st.epoch {
                st.stats.commands_stale_rejected += 1;
                return Ok(format!("STALE {}", st.epoch));
            }
            // Exactly-once: a retransmitted (or chaos-duplicated)
            // delivery replays the cached outcome without re-applying.
            if let Some(cached) = st
                .dedup
                .iter()
                .find(|(i, _)| *i == id)
                .map(|(_, c)| c.clone())
            {
                st.stats.commands_deduped += 1;
                return Ok(cached);
            }
        }
        let cmd = CloudCommand {
            id,
            device,
            op,
            payload,
        };
        let span = self.inner.tracer.begin_root(sim, HopKind::Cloud, || {
            format!("cloud.cmd #{id} {}", cmd.op)
        });
        let started = sim.now();
        let outcome = {
            let mut applier = self.inner.applier.lock();
            (applier)(sim, &cmd)
        };
        let elapsed = (sim.now() - started).as_micros();
        let reply = match &outcome {
            Ok(result) => format!("OK {result}"),
            Err(msg) => format!("ERR {msg}"),
        };
        let mut st = self.inner.state.lock();
        if !st.applied_ids.insert(id) {
            // An id re-applied past the dedup window: the exactly-once
            // contract broke. Counted, never silently ignored.
            st.stats.duplicate_effects += 1;
        }
        st.stats.commands_applied += 1;
        st.dedup.push_back((id, reply.clone()));
        while st.dedup.len() > self.inner.cfg.dedup_window {
            st.dedup.pop_front();
        }
        drop(st);
        self.inner.metrics.record(
            "cloud.cmd",
            elapsed,
            outcome.as_ref().err().map(|_| "native"),
        );
        self.inner.tracer.end_result(
            sim,
            span,
            &outcome.map_err(|e| MetaError::native("cloud", e)),
        );
        Ok(reply)
    }
}

impl crate::pcm::ProtocolConversionManager for CloudBridgePcm {
    fn middleware(&self) -> crate::service::Middleware {
        crate::service::Middleware::Cloud
    }

    /// Devices registered upward — the Client Proxy direction.
    fn imported(&self) -> Vec<String> {
        self.inner.state.lock().registered.iter().cloned().collect()
    }

    /// The cloud exports no services back into the home islands;
    /// downward RPCs address devices directly.
    fn exported(&self) -> Vec<Name> {
        Vec::new()
    }
}

// ---------------------------------------------------------------------------
// cloud side: CloudCell
// ---------------------------------------------------------------------------

struct CellState {
    epoch: u64,
    applied_through: u64,
    devices: BTreeMap<String, String>,
    registered: BTreeSet<String>,
    staleness: HistSketch,
    gcra_home: Gcra,
    gcra_share: Gcra,
    next_cmd_id: u64,
    stats: CloudCellStats,
}

struct CellInner {
    sim: Sim,
    wan: Network,
    home_node: NodeId,
    cloud_node: NodeId,
    home_id: String,
    cfg: CloudConfig,
    state: Mutex<CellState>,
    tracer: Tracer,
    metrics: Arc<MetricsRegistry>,
}

/// One home's lane at the cloud edge: epoch fencing, the
/// applied-through digest, admission metering, and the downward
/// command sender. Lives on the home's own island (see the module's
/// determinism note). Cheaply clonable.
#[derive(Clone)]
pub struct CloudCell {
    inner: Arc<CellInner>,
}

impl CloudCell {
    /// The home this cell serves.
    pub fn home_id(&self) -> &str {
        &self.inner.home_id
    }

    /// Highest session epoch the cloud has accepted.
    pub fn epoch(&self) -> u64 {
        self.inner.state.lock().epoch
    }

    /// Highest contiguous outbox sequence applied (the reconciliation
    /// digest).
    pub fn applied_through(&self) -> u64 {
        self.inner.state.lock().applied_through
    }

    /// A copy of the cloud-side counters.
    pub fn stats(&self) -> CloudCellStats {
        self.inner.state.lock().stats.clone()
    }

    /// The cloud's view of a device's latest state.
    pub fn device_state(&self, device: &str) -> Option<String> {
        self.inner.state.lock().devices.get(device).cloned()
    }

    /// Devices currently registered, sorted.
    pub fn registered_devices(&self) -> Vec<String> {
        self.inner.state.lock().registered.iter().cloned().collect()
    }

    /// Notification staleness (enqueue → cloud apply) quantile in
    /// microseconds.
    pub fn staleness_quantile_us(&self, q: f64) -> u64 {
        self.inner.state.lock().staleness.quantile_us(q)
    }

    /// Merges this cell's staleness sketch into `into` (fleet rollups).
    pub fn merge_staleness_into(&self, into: &mut HistSketch) {
        into.merge(&self.inner.state.lock().staleness);
    }

    /// Sends a downward RPC with at-least-once delivery: transport
    /// failures re-send up to the configured retry budget (paced by
    /// the command backoff), relying on the home-side dedup window for
    /// exactly-once effect.
    pub fn send_command(&self, device: &str, op: &str, payload: &str) -> Result<String, MetaError> {
        let sim = &self.inner.sim;
        let (id, epoch) = {
            let mut st = self.inner.state.lock();
            st.next_cmd_id += 1;
            st.stats.commands_sent += 1;
            (st.next_cmd_id, st.epoch)
        };
        let msg = format!("CMD {id} {epoch} {device} {op} {payload}");
        let span = self
            .inner
            .tracer
            .begin_root(sim, HopKind::Cloud, || format!("cloud.send #{id} {op}"));
        let started = sim.now();
        let mut attempt = 0u32;
        let outcome = loop {
            match self.inner.wan.request(
                self.inner.cloud_node,
                self.inner.home_node,
                Protocol::Http,
                msg.clone().into_bytes(),
            ) {
                Ok(bytes) => {
                    let text = String::from_utf8_lossy(&bytes).into_owned();
                    if let Some(result) = text.strip_prefix("OK ") {
                        break Ok(result.to_owned());
                    } else if let Some(e) = text.strip_prefix("STALE ") {
                        break Err(MetaError::native(
                            "cloud",
                            format!("command fenced by epoch {}", e.trim()),
                        ));
                    } else if let Some(msg) = text.strip_prefix("ERR ") {
                        break Err(MetaError::native("cloud", msg));
                    }
                    break Err(MetaError::Protocol(format!("bad command reply: {text}")));
                }
                Err(e) => {
                    if attempt >= self.inner.cfg.cmd_retries {
                        break Err(MetaError::from_wire_error(&e, self.inner.cloud_node));
                    }
                    attempt += 1;
                    self.inner.state.lock().stats.command_retries += 1;
                    self.inner.metrics.record_retry();
                    let base = self.inner.cfg.cmd_backoff.as_micros().max(1);
                    let wait = base.saturating_mul(1u64 << attempt.min(10));
                    let us = sim.with_rng(|r| r.range(wait / 2, wait + 1));
                    sim.advance(SimDuration::from_micros(us));
                }
            }
        };
        if outcome.is_err() {
            self.inner.state.lock().stats.command_failures += 1;
        }
        let elapsed = (sim.now() - started).as_micros();
        self.inner.metrics.record(
            "cloud.send",
            elapsed,
            outcome.as_ref().err().map(|e| e.kind()),
        );
        self.inner.tracer.end_result(sim, span, &outcome);
        outcome
    }

    /// Handles one upward frame (`HELLO` or `PUSH`). Returns the wire
    /// reply.
    fn handle_upward(&self, text: &str) -> Result<String, String> {
        let now = self.inner.sim.now();
        let mut st = self.inner.state.lock();
        // Flash-crowd admission: the per-home bucket and the fair
        // share of the global budget must both admit. Pushback names
        // the wait until the constraining bucket next accrues.
        let admitted = st
            .gcra_home
            .admit(now)
            .and_then(|()| st.gcra_share.admit(now));
        if let Err(retry_after) = admitted {
            st.stats.throttled += 1;
            return Ok(format!("RETRY {}", retry_after.as_micros().max(1)));
        }
        if let Some(epoch_s) = text.strip_prefix("HELLO ") {
            let epoch: u64 = epoch_s.trim().parse().map_err(|_| "bad hello epoch")?;
            if epoch <= st.epoch && st.epoch != 0 {
                // An older (or replayed) session knocking after a newer
                // epoch was seen: fence it off.
                return Ok(format!("STALE {}", st.epoch));
            }
            st.epoch = epoch;
            st.stats.hellos += 1;
            return Ok(format!("OK {}", st.applied_through));
        }
        if let Some(rest) = text.strip_prefix("PUSH ") {
            let mut lines = rest.lines();
            let header = lines.next().ok_or("empty push")?;
            let (epoch_s, _n) = header.split_once(' ').ok_or("bad push header")?;
            let epoch: u64 = epoch_s.parse().map_err(|_| "bad push epoch")?;
            if epoch != st.epoch {
                st.stats.pushes_stale += 1;
                return Ok(format!("STALE {}", st.epoch));
            }
            for line in lines {
                let mut parts = line.splitn(5, ' ');
                let seq: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("bad entry seq")?;
                let kind = parts
                    .next()
                    .and_then(EntryKind::from_wire)
                    .ok_or("bad entry kind")?;
                let created_us: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("bad entry time")?;
                let device = parts.next().ok_or("missing entry device")?;
                let payload = parts.next().unwrap_or("");
                if seq <= st.applied_through {
                    // At-least-once resend of an already-applied entry
                    // (ambiguous push outcome, or a chaos duplicate):
                    // the digest dedups it.
                    st.stats.entries_deduped += 1;
                    continue;
                }
                match kind {
                    EntryKind::Register => {
                        st.registered.insert(device.to_owned());
                        st.stats.lifecycle_applied += 1;
                    }
                    EntryKind::Unregister => {
                        st.registered.remove(device);
                        st.devices.remove(device);
                        st.stats.lifecycle_applied += 1;
                    }
                    EntryKind::Notify => {
                        st.devices.insert(device.to_owned(), payload.to_owned());
                        st.stats.notify_applied += 1;
                        let staleness = now.as_micros().saturating_sub(created_us);
                        st.staleness.record(staleness);
                    }
                }
                st.applied_through = seq;
                st.stats.entries_applied += 1;
            }
            st.stats.pushes_ok += 1;
            return Ok(format!("OK {}", st.applied_through));
        }
        Err(format!("unknown cloud frame: {text}"))
    }
}

// ---------------------------------------------------------------------------
// the island pair
// ---------------------------------------------------------------------------

/// One home's cloud attachment: the home-side bridge, its cloud-edge
/// cell, the WAN between them, and the pump timer.
pub struct CloudIsland {
    /// The home side (outbox, epochs, dedup).
    pub bridge: CloudBridgePcm,
    /// The cloud-edge side (fencing, digest, admission, downward RPC).
    pub cell: CloudCell,
    /// The pump timer (kept so it stays cancellable).
    pub pump_timer: RepeatHandle,
    tracer: Tracer,
    metrics: Arc<MetricsRegistry>,
}

impl CloudIsland {
    /// Builds the pair on `sim` with a fresh WAN. `fleet_homes` sizes
    /// the fair share of the global admission budget (pass the fleet
    /// size; 1 for a standalone home).
    pub fn build(sim: &Sim, home_id: &str, cfg: CloudConfig, fleet_homes: usize) -> CloudIsland {
        let wan = Network::internet(sim);
        let home_node = wan.attach(format!("{home_id}:bridge"));
        let cloud_node = wan.attach(format!("{home_id}:cloud-edge"));
        let tracer = Tracer::new("cloud-gw");
        let metrics = Arc::new(MetricsRegistry::new());
        let homes = u32::try_from(fleet_homes.max(1)).unwrap_or(u32::MAX);
        let bridge = CloudBridgePcm {
            inner: Arc::new(BridgeInner {
                sim: sim.clone(),
                wan: wan.clone(),
                home_node,
                cloud_node,
                home_id: home_id.to_owned(),
                cfg: cfg.clone(),
                state: Mutex::new(BridgeState {
                    connected: false,
                    epoch: 0,
                    next_seq: 1,
                    outbox: VecDeque::new(),
                    backoff_attempt: 0,
                    next_attempt_at: SimTime::ZERO,
                    throttled_until: SimTime::ZERO,
                    registered: BTreeSet::new(),
                    dedup: VecDeque::new(),
                    applied_ids: HashSet::new(),
                    stats: CloudBridgeStats::default(),
                }),
                applier: Mutex::new(Box::new(|_, cmd| {
                    Ok(format!("ack:{}:{}", cmd.op, cmd.device))
                })),
                tracer: tracer.clone(),
                metrics: metrics.clone(),
            }),
        };
        let cell = CloudCell {
            inner: Arc::new(CellInner {
                sim: sim.clone(),
                wan: wan.clone(),
                home_node,
                cloud_node,
                home_id: home_id.to_owned(),
                cfg: cfg.clone(),
                state: Mutex::new(CellState {
                    epoch: 0,
                    applied_through: 0,
                    devices: BTreeMap::new(),
                    registered: BTreeSet::new(),
                    staleness: HistSketch::new(),
                    gcra_home: Gcra::per_minute(cfg.home_rate_per_min, cfg.home_burst),
                    gcra_share: Gcra::per_minute(
                        cfg.global_rate_per_min / homes.max(1),
                        (cfg.global_burst / homes.max(1)).max(1),
                    ),
                    next_cmd_id: 0,
                    stats: CloudCellStats::default(),
                }),
                tracer: tracer.clone(),
                metrics: metrics.clone(),
            }),
        };
        let cell_for_upward = cell.clone();
        wan.set_request_handler(cloud_node, move |_, frame| {
            let text = String::from_utf8_lossy(&frame.payload).into_owned();
            cell_for_upward
                .handle_upward(&text)
                .map(|s| bytes::Bytes::from(s.into_bytes()))
        })
        .expect("cloud node attached");
        let bridge_for_cmd = bridge.clone();
        wan.set_request_handler(home_node, move |sim, frame| {
            let text = String::from_utf8_lossy(&frame.payload).into_owned();
            bridge_for_cmd
                .handle_command(sim, &text)
                .map(|s| bytes::Bytes::from(s.into_bytes()))
        })
        .expect("home node attached");
        let bridge_for_pump = bridge.clone();
        let pump_timer = sim.every(cfg.drain_period, move |_| bridge_for_pump.pump());
        CloudIsland {
            bridge,
            cell,
            pump_timer,
            tracer,
            metrics,
        }
    }

    /// Installs a chaos plan on the WAN (the bridge's
    /// [`CloudBridgePcm::wan`] network).
    pub fn set_wan_fault_plan(&self, plan: FaultPlan) {
        self.bridge.wan().set_fault_plan(plan);
    }

    /// Turns span recording on or off for both sides.
    pub fn set_tracing(&self, on: bool) {
        self.tracer.set_enabled(on);
    }

    /// Drains the completed cloud spans.
    pub fn take_spans(&self) -> Vec<Span> {
        self.tracer.take_spans()
    }

    /// This island's cloud metrics as a standard snapshot (gateway
    /// `cloud-gw`), mergeable into home and fleet rollups.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            gateway: "cloud-gw".to_owned(),
            island: self.bridge.inner.sim.island(),
            registry: self.metrics.snapshot(),
            cache: CacheStats::default(),
        }
    }
}

// ---------------------------------------------------------------------------
// fleet aggregation: CloudBackbone
// ---------------------------------------------------------------------------

/// Fleet-wide roll-up of the simulated cloud backbone: one
/// [`CloudCell`] per home, summed counters, a merged staleness sketch,
/// and the downward command fan-out. Handles are cheap clones; the
/// state stays on each home's island.
pub struct CloudBackbone {
    homes: Vec<(CloudBridgePcm, CloudCell)>,
}

/// The delivered/duplicate/staleness summary the e17 bench reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CloudFleetSummary {
    /// Notifications raised home-side (enqueued + coalesced + shed +
    /// dropped).
    pub notifications_raised: u64,
    /// Notification effects that reached the cloud: applied entries
    /// plus updates superseded in the outbox (latest-state-wins
    /// delivers them by proxy).
    pub notifications_delivered: u64,
    /// Notifications lost (shed under overload or dropped without
    /// store-and-forward).
    pub notifications_lost: u64,
    /// Delivered / raised (1.0 when nothing was raised).
    pub delivered_ratio: f64,
    /// Staleness p50 across the fleet, microseconds.
    pub staleness_p50_us: u64,
    /// Staleness p99 across the fleet, microseconds.
    pub staleness_p99_us: u64,
    /// Exactly-once violations (must be 0).
    pub duplicate_effects: u64,
    /// Downward commands applied fleet-wide.
    pub commands_applied: u64,
    /// Downward deliveries answered from dedup windows.
    pub commands_deduped: u64,
    /// Admission pushbacks issued by the cloud edge.
    pub throttled: u64,
    /// Successful reconnect handshakes.
    pub reconnects: u64,
}

impl CloudBackbone {
    /// Assembles the backbone from per-home bridge/cell pairs, in
    /// island order.
    pub fn new(homes: Vec<(CloudBridgePcm, CloudCell)>) -> CloudBackbone {
        CloudBackbone { homes }
    }

    /// Number of attached homes.
    pub fn len(&self) -> usize {
        self.homes.len()
    }

    /// True when no home is attached.
    pub fn is_empty(&self) -> bool {
        self.homes.is_empty()
    }

    /// One home's cloud-edge cell.
    pub fn cell(&self, island: usize) -> &CloudCell {
        &self.homes[island].1
    }

    /// One home's bridge.
    pub fn bridge(&self, island: usize) -> &CloudBridgePcm {
        &self.homes[island].0
    }

    /// Sends a downward RPC to one home (at-least-once delivery,
    /// exactly-once effect).
    pub fn send_command(
        &self,
        island: usize,
        device: &str,
        op: &str,
        payload: &str,
    ) -> Result<String, MetaError> {
        self.homes[island].1.send_command(device, op, payload)
    }

    /// The fleet-wide summary: delivered ratio, staleness quantiles,
    /// duplicate-effect count. Deterministic for any thread count.
    pub fn summary(&self) -> CloudFleetSummary {
        let mut s = CloudFleetSummary::default();
        let mut staleness = HistSketch::new();
        for (bridge, cell) in &self.homes {
            let b = bridge.stats();
            let c = cell.stats();
            s.notifications_raised +=
                b.notify_enqueued + b.coalesced + b.shed + b.dropped_disconnected;
            s.notifications_delivered += c.notify_applied + b.coalesced;
            s.notifications_lost += b.shed + b.dropped_disconnected;
            s.duplicate_effects += b.duplicate_effects;
            s.commands_applied += b.commands_applied;
            s.commands_deduped += b.commands_deduped;
            s.throttled += c.throttled;
            s.reconnects += b.reconnects;
            cell.merge_staleness_into(&mut staleness);
        }
        s.delivered_ratio = if s.notifications_raised == 0 {
            1.0
        } else {
            s.notifications_delivered as f64 / s.notifications_raised as f64
        };
        s.staleness_p50_us = staleness.quantile_us(0.50);
        s.staleness_p99_us = staleness.quantile_us(0.99);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> (Sim, CloudIsland) {
        let sim = Sim::new(11);
        let island = CloudIsland::build(&sim, "home-test", CloudConfig::default(), 1);
        (sim, island)
    }

    fn run_secs(sim: &Sim, s: u64) {
        sim.run_for(SimDuration::from_secs(s));
    }

    #[test]
    fn gcra_meters_and_reports_retry_after() {
        let mut g = Gcra::per_minute(60, 2); // 1/s, burst 2
        let t0 = SimTime::ZERO;
        assert!(g.admit(t0).is_ok());
        assert!(g.admit(t0).is_ok());
        assert!(g.admit(t0).is_ok(), "burst headroom");
        let ra = g.admit(t0).unwrap_err();
        assert_eq!(ra.as_micros(), 1_000_000, "wait one interval");
        let later = t0 + SimDuration::from_secs(1);
        assert!(g.admit(later).is_ok(), "token accrued");
        // Zero rate disables metering entirely.
        let mut open = Gcra::per_minute(0, 1);
        for _ in 0..100 {
            assert!(open.admit(t0).is_ok());
        }
    }

    #[test]
    fn outbox_coalesces_notifications_but_never_lifecycle() {
        let (_sim, island) = world();
        let b = &island.bridge;
        let s1 = b.notify_state("lamp", "on").unwrap();
        let s2 = b.notify_state("lamp", "off").unwrap();
        assert_eq!(s1, s2, "latest-state-wins keeps the original seq");
        assert_eq!(b.outbox_len(), 1);
        b.register_device("lamp").unwrap();
        b.register_device("lamp").unwrap();
        assert_eq!(b.outbox_len(), 3, "lifecycle entries never coalesce");
        let st = b.stats();
        assert_eq!(st.coalesced, 1);
        assert_eq!(st.notify_enqueued, 1);
        assert_eq!(st.lifecycle_enqueued, 2);
    }

    #[test]
    fn outbox_sheds_with_typed_overloaded_but_keeps_lifecycle() {
        let sim = Sim::new(11);
        let cfg = CloudConfig {
            outbox_cap: 3,
            ..CloudConfig::default()
        };
        let island = CloudIsland::build(&sim, "h", cfg, 1);
        let b = &island.bridge;
        b.notify_state("a", "1").unwrap();
        b.notify_state("b", "1").unwrap();
        b.notify_state("c", "1").unwrap();
        let err = b.notify_state("d", "1").unwrap_err();
        assert!(matches!(err, MetaError::Overloaded { .. }));
        // Lifecycle evicts the oldest notification instead of shedding.
        b.register_device("vcr").unwrap();
        assert_eq!(b.outbox_len(), 3);
        let st = b.stats();
        assert_eq!(st.shed, 2, "one typed shed + one eviction");
        assert_eq!(st.lifecycle_enqueued, 1);
    }

    #[test]
    fn connect_drains_in_order_and_reports_state() {
        let (sim, island) = world();
        let b = &island.bridge;
        b.register_device("lamp").unwrap();
        b.notify_state("lamp", "on").unwrap();
        b.notify_state("fan", "slow").unwrap();
        assert!(!b.is_connected());
        run_secs(&sim, 2);
        assert!(b.is_connected());
        assert_eq!(b.outbox_len(), 0);
        assert_eq!(b.epoch(), 1);
        let c = island.cell.stats();
        assert_eq!(c.entries_applied, 3);
        assert_eq!(c.lifecycle_applied, 1);
        assert_eq!(c.notify_applied, 2);
        assert_eq!(island.cell.device_state("lamp").as_deref(), Some("on"));
        assert_eq!(island.cell.device_state("fan").as_deref(), Some("slow"));
        assert_eq!(island.cell.registered_devices(), vec!["lamp".to_owned()]);
        assert_eq!(island.cell.applied_through(), 3);
    }

    #[test]
    fn partition_buffers_then_heals_with_delta_reconciliation() {
        use simnet::SimTime;
        let (sim, island) = world();
        let b = &island.bridge;
        // Connect cleanly first.
        b.notify_state("lamp", "s0").unwrap();
        run_secs(&sim, 2);
        assert!(b.is_connected());
        let applied_before = island.cell.applied_through();
        // Partition the WAN for 30s of virtual time.
        let from = sim.now() + SimDuration::from_secs(1);
        let until = from + SimDuration::from_secs(30);
        island.set_wan_fault_plan(FaultPlan::new().partition(
            vec![b.home_node()],
            vec![b.cloud_node()],
            from,
            until,
        ));
        sim.run_until(from + SimDuration::from_secs(2));
        // Updates during the outage buffer in the outbox.
        for i in 0..5 {
            b.notify_state(&format!("dev{i}"), "x").unwrap();
        }
        sim.run_until(from + SimDuration::from_secs(10));
        assert!(!b.is_connected(), "outage detected");
        assert!(b.outbox_len() > 0, "outbox buffers during the outage");
        // Heal and drain.
        sim.run_until(until + SimDuration::from_secs(120));
        assert!(b.is_connected(), "reconnected after heal");
        assert_eq!(b.outbox_len(), 0, "outbox drained after heal");
        let st = b.stats();
        assert!(st.reconnects >= 2, "initial connect + post-heal reconnect");
        assert!(st.connect_failures > 0, "backoff was exercised");
        assert!(island.cell.applied_through() > applied_before);
        assert_eq!(island.cell.device_state("dev4").as_deref(), Some("x"));
        // Epochs moved forward and the cell followed.
        assert!(b.epoch() > 1);
        assert_eq!(island.cell.epoch(), b.epoch());
        assert_eq!(SimTime::ZERO.as_micros(), 0);
    }

    #[test]
    fn stale_epoch_push_is_fenced() {
        let (sim, island) = world();
        island.bridge.notify_state("lamp", "on").unwrap();
        run_secs(&sim, 2);
        assert!(island.bridge.is_connected());
        // Forge a push from a stale session (epoch 0).
        let reply = island
            .bridge
            .wan()
            .request(
                island.bridge.home_node(),
                island.bridge.cloud_node(),
                Protocol::Http,
                b"PUSH 0 1\n99 state 0 ghost boo".to_vec(),
            )
            .unwrap();
        let text = String::from_utf8_lossy(&reply).into_owned();
        assert!(text.starts_with("STALE "), "got: {text}");
        assert_eq!(island.cell.device_state("ghost"), None);
        assert_eq!(island.cell.stats().pushes_stale, 1);
    }

    #[test]
    fn stale_hello_is_fenced() {
        let (sim, island) = world();
        run_secs(&sim, 2);
        let epoch = island.cell.epoch();
        assert!(epoch >= 1);
        let reply = island
            .bridge
            .wan()
            .request(
                island.bridge.home_node(),
                island.bridge.cloud_node(),
                Protocol::Http,
                format!("HELLO {}", epoch.saturating_sub(1)).into_bytes(),
            )
            .unwrap();
        let text = String::from_utf8_lossy(&reply).into_owned();
        assert!(text.starts_with("STALE "), "got: {text}");
    }

    #[test]
    fn duplicate_chaos_yields_exactly_once_command_effect() {
        use simnet::SimTime;
        let (sim, island) = world();
        run_secs(&sim, 2);
        assert!(island.bridge.is_connected());
        // Count real applier invocations per id.
        let hits = Arc::new(Mutex::new(Vec::new()));
        let hits2 = hits.clone();
        island.bridge.set_applier(move |_, cmd| {
            hits2.lock().push(cmd.id);
            Ok(format!("done:{}", cmd.op))
        });
        // Every request leg is duplicated from here on.
        island.set_wan_fault_plan(FaultPlan::new().duplicate_spike(
            SimTime::ZERO,
            SimTime::from_micros(u64::MAX / 2),
            1.0,
        ));
        let r = island.cell.send_command("lamp", "switch", "on").unwrap();
        assert_eq!(r, "done:switch");
        assert_eq!(hits.lock().len(), 1, "the duplicate hit the dedup window");
        let st = island.bridge.stats();
        assert_eq!(st.commands_applied, 1);
        assert!(st.commands_deduped >= 1);
        assert_eq!(st.duplicate_effects, 0);
    }

    #[test]
    fn stale_epoch_command_is_fenced() {
        let (sim, island) = world();
        run_secs(&sim, 2);
        assert!(island.bridge.is_connected());
        // Forge a command stamped with a long-gone epoch.
        let reply = island
            .bridge
            .wan()
            .request(
                island.bridge.cloud_node(),
                island.bridge.home_node(),
                Protocol::Http,
                b"CMD 7 0 lamp switch on".to_vec(),
            )
            .unwrap();
        let text = String::from_utf8_lossy(&reply).into_owned();
        assert!(text.starts_with("STALE "), "got: {text}");
        let st = island.bridge.stats();
        assert_eq!(st.commands_stale_rejected, 1);
        assert_eq!(st.commands_applied, 0);
    }

    #[test]
    fn admission_pushback_throttles_and_recovers() {
        let sim = Sim::new(11);
        let cfg = CloudConfig {
            // 6/min = one admitted request every 10s, tiny burst.
            home_rate_per_min: 6,
            home_burst: 2,
            drain_period: SimDuration::from_millis(100),
            batch_max: 1,
            ..CloudConfig::default()
        };
        let island = CloudIsland::build(&sim, "h", cfg, 1);
        for i in 0..10 {
            island.bridge.notify_state(&format!("d{i}"), "v").unwrap();
        }
        run_secs(&sim, 3);
        let c = island.cell.stats();
        assert!(c.throttled > 0, "tiny bucket must push back");
        let b = island.bridge.stats();
        assert!(b.retry_after_waits > 0, "pushback fed the backoff");
        // Given enough virtual time the bucket admits everything.
        run_secs(&sim, 200);
        assert_eq!(island.bridge.outbox_len(), 0);
        assert_eq!(island.cell.stats().notify_applied, 10);
    }

    #[test]
    fn store_and_forward_ablation_drops_disconnected_updates() {
        let sim = Sim::new(11);
        let cfg = CloudConfig {
            store_and_forward: false,
            ..CloudConfig::default()
        };
        let island = CloudIsland::build(&sim, "h", cfg, 1);
        // Disconnected: updates are dropped, not buffered.
        let err = island.bridge.notify_state("lamp", "on").unwrap_err();
        assert!(matches!(err, MetaError::GatewayUnreachable(_)));
        assert_eq!(island.bridge.outbox_len(), 0);
        assert_eq!(island.bridge.stats().dropped_disconnected, 1);
        run_secs(&sim, 2);
        // Connected: updates flow normally.
        island.bridge.notify_state("lamp", "off").unwrap();
        run_secs(&sim, 1);
        assert_eq!(island.cell.device_state("lamp").as_deref(), Some("off"));
    }

    #[test]
    fn backbone_summary_rolls_up_and_traces_record() {
        let sim = Sim::new(11);
        let island = CloudIsland::build(&sim, "h", CloudConfig::default(), 1);
        island.set_tracing(true);
        island.bridge.notify_state("lamp", "on").unwrap();
        run_secs(&sim, 2);
        island.cell.send_command("lamp", "switch", "off").unwrap();
        let backbone = CloudBackbone::new(vec![(island.bridge.clone(), island.cell.clone())]);
        let s = backbone.summary();
        assert_eq!(s.notifications_raised, 1);
        assert_eq!(s.notifications_delivered, 1);
        assert!((s.delivered_ratio - 1.0).abs() < 1e-12);
        assert_eq!(s.duplicate_effects, 0);
        assert_eq!(s.commands_applied, 1);
        assert_eq!(backbone.len(), 1);
        let spans = island.take_spans();
        assert!(spans.iter().any(|sp| sp.kind == HopKind::Cloud));
        let snap = island.metrics_snapshot();
        assert_eq!(snap.gateway, "cloud-gw");
        assert!(snap.to_json().contains("cloud.push"));
    }

    #[test]
    fn fair_share_divides_the_global_budget() {
        let sim = Sim::new(11);
        let cfg = CloudConfig {
            home_rate_per_min: 6_000, // per-home bucket wide open
            global_rate_per_min: 600, // 600/min across 100 homes = 6/min each
            global_burst: 100,
            drain_period: SimDuration::from_millis(100),
            batch_max: 1,
            ..CloudConfig::default()
        };
        let island = CloudIsland::build(&sim, "h", cfg, 100);
        for i in 0..10 {
            island.bridge.notify_state(&format!("d{i}"), "v").unwrap();
        }
        run_secs(&sim, 3);
        assert!(
            island.cell.stats().throttled > 0,
            "the fair share must bind when the per-home bucket does not"
        );
    }
}
