//! The Internet-mail PCM.
//!
//! Fig. 3 includes an "Internet Mail service" among the prototype's four
//! PCMs — the proof that plain Internet services integrate alongside
//! device middleware. The Client Proxy exposes the mail server as a
//! `Mailer` service; any appliance in the home can then send mail
//! ("record finished", "milk is low") through the framework.
//!
//! There is no Server Proxy: SMTP-era mail cannot invoke into the home
//! (the same asymmetry §4.2 laments for HTTP). Inbound mail is instead
//! observable by *polling* `unread`, which experiment E6 exploits as one
//! of its delivery strategies.

use crate::error::MetaError;
use crate::iface::catalog;
use crate::intern::Name;
use crate::pcm::ProtocolConversionManager;
use crate::service::{Middleware, VirtualService};
use crate::trace::HopKind;
use crate::vsg::Vsg;
use mailsvc::{Email, MailClient};
use parking_lot::Mutex;
use soap::Value;
use std::fmt;
use std::sync::Arc;

/// The mail Protocol Conversion Manager.
pub struct MailPcm {
    vsg: Vsg,
    imported: Arc<Mutex<Vec<String>>>,
    home_address: String,
}

impl MailPcm {
    /// Starts the PCM with a client for the home's mail server, sending
    /// as `home_address`.
    pub fn start(vsg: &Vsg, client: MailClient, home_address: &str) -> Result<MailPcm, MetaError> {
        let pcm = MailPcm {
            vsg: vsg.clone(),
            imported: Arc::new(Mutex::new(Vec::new())),
            home_address: home_address.to_owned(),
        };
        pcm.import_service("mailer", client)?;
        Ok(pcm)
    }

    /// Exports the mail service into the VSG under `name`.
    fn import_service(&self, name: &str, client: MailClient) -> Result<(), MetaError> {
        let from = self.home_address.clone();
        let tracer = self.vsg.tracer().clone();
        let vsg = self.vsg.clone();
        self.vsg.export(
            VirtualService::new(name, catalog::mailer(), Middleware::Mail, self.vsg.name()),
            move |sim: &simnet::Sim, op: &str, args: &[(String, Value)]| {
                let str_arg = |k: &str| -> Result<String, MetaError> {
                    args.iter()
                        .find(|(n, _)| n == k)
                        .and_then(|(_, v)| v.as_str())
                        .map(str::to_owned)
                        .ok_or_else(|| MetaError::native("mail", format!("missing '{k}'")))
                };
                let span = tracer.begin(sim, HopKind::PcmConvert, || format!("mail {op}"));
                let started = sim.now();
                let result = (|| match op {
                    "send" => {
                        let mail = Email::new(
                            &from,
                            str_arg("to")?,
                            str_arg("subject")?,
                            str_arg("body")?,
                        );
                        client
                            .send(&mail)
                            .map_err(|e| MetaError::native("mail", e))?;
                        Ok(Value::Null)
                    }
                    "unread" => {
                        let n = client
                            .stat(&str_arg("mailbox")?)
                            .map_err(|e| MetaError::native("mail", e))?;
                        Ok(Value::Int(n as i64))
                    }
                    other => Err(MetaError::UnknownOperation {
                        service: "mailer".into(),
                        operation: other.to_owned(),
                    }),
                })();
                vsg.metrics().record_layer_with_exemplar(
                    crate::obs::Layer::Pcm,
                    (sim.now() - started).as_micros(),
                    span.trace_id(),
                );
                tracer.end_result(sim, span, &result);
                result
            },
        )?;
        self.imported.lock().push(name.to_owned());
        Ok(())
    }
}

impl ProtocolConversionManager for MailPcm {
    fn middleware(&self) -> Middleware {
        Middleware::Mail
    }

    fn imported(&self) -> Vec<String> {
        self.imported.lock().clone()
    }

    fn exported(&self) -> Vec<Name> {
        Vec::new() // mail cannot call inward; see module docs
    }
}

impl fmt::Debug for MailPcm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MailPcm")
            .field("home_address", &self.home_address)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Soap11;
    use crate::vsr::Vsr;
    use mailsvc::MailServer;
    use simnet::{Network, Sim};

    fn world() -> (Sim, Vsg, MailServer, MailClient) {
        let sim = Sim::new(1);
        let backbone = Network::ethernet(&sim);
        let vsr = Vsr::start(&backbone);
        let vsg = Vsg::start(&backbone, "inet-gw", Arc::new(Soap11::new()), vsr.node()).unwrap();
        let inet = Network::internet(&sim);
        let server = MailServer::start(&inet, "smtp.example.org");
        let client = MailClient::attach(&inet, "home-gw", server.node());
        (sim, vsg, server, client)
    }

    #[test]
    fn send_mail_through_the_framework() {
        let (sim, vsg, server, client) = world();
        let pcm = MailPcm::start(&vsg, client.clone(), "home@example.org").unwrap();
        assert_eq!(pcm.imported(), vec!["mailer".to_owned()]);
        assert_eq!(pcm.middleware(), Middleware::Mail);
        assert!(pcm.exported().is_empty());

        vsg.invoke(
            &sim,
            "mailer",
            "send",
            &[
                ("to".into(), Value::Str("owner@example.org".into())),
                ("subject".into(), Value::Str("Recording done".into())),
                ("body".into(), Value::Str("Channel 42 recorded.".into())),
            ],
        )
        .unwrap();
        assert_eq!(server.mailbox_len("owner@example.org"), 1);
        let got = client.retr("owner@example.org", 0).unwrap();
        assert_eq!(got.from, "home@example.org");
        assert_eq!(got.subject, "Recording done");
    }

    #[test]
    fn unread_polling() {
        let (sim, vsg, _server, client) = world();
        let _pcm = MailPcm::start(&vsg, client.clone(), "home@example.org").unwrap();
        assert_eq!(
            vsg.invoke(
                &sim,
                "mailer",
                "unread",
                &[("mailbox".into(), Value::Str("home@example.org".into()))]
            )
            .unwrap(),
            Value::Int(0)
        );
        client
            .send(&Email::new("friend@x", "home@example.org", "hi", "hello"))
            .unwrap();
        assert_eq!(
            vsg.invoke(
                &sim,
                "mailer",
                "unread",
                &[("mailbox".into(), Value::Str("home@example.org".into()))]
            )
            .unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn bad_arguments_are_native_errors() {
        let (sim, vsg, _server, client) = world();
        let _pcm = MailPcm::start(&vsg, client, "home@example.org").unwrap();
        // Interface-level checking catches missing params before the
        // invoker ever runs.
        let err = vsg.invoke(&sim, "mailer", "send", &[]).unwrap_err();
        assert!(matches!(err, MetaError::TypeMismatch { .. }));
    }
}
