//! The Jini PCM.
//!
//! Client Proxy: harvests every service item from the island's lookup
//! service and exports each to the VSG behind a generated proxy that
//! converts canonical values to marshalled Java arguments and drives the
//! service's mobile proxy over RMI.
//!
//! Server Proxy: for each remote VSG service, exports a real RMI object
//! implementing the service's interface and registers it in the lookup
//! service — so an unmodified Jini client discovers and calls, say, an
//! X10 lamp exactly as it would any Jini service ("it is not necessary
//! to change legacy clients and services", §3).

use crate::error::MetaError;
use crate::iface::{InterfaceCatalog, ServiceInterface};
use crate::intern::Name;
use crate::pcm::ProtocolConversionManager;
use crate::proxygen::{self, ProxyGenCost, ProxyTarget};
use crate::service::{Middleware, VirtualService};
use crate::trace::HopKind;
use crate::vsg::Vsg;
use crate::vsr::ServiceRecord;
use jini::{
    discover, Entry, JValue, JiniError, LeaseId, RegistrarClient, RemoteProxy, RmiExporter,
    ServiceItem, ServiceTemplate,
};
use parking_lot::Mutex;
use simnet::{Network, NodeId, SimDuration};
use soap::Value;
use std::fmt;
use std::sync::Arc;

/// Entry class marking a service item the PCM itself bridged in, so the
/// Client Proxy never re-imports its own Server Proxy exports.
pub const BRIDGED_ENTRY_CLASS: &str = "vsg.Bridged";

/// Converts a canonical value to the Jini representation.
pub fn value_to_jvalue(v: &Value) -> JValue {
    match v {
        Value::Null => JValue::Null,
        Value::Bool(b) => JValue::Bool(*b),
        Value::Int(i) => JValue::Int(*i),
        Value::Float(f) => JValue::Double(*f),
        Value::Str(s) => JValue::Str(s.clone()),
        Value::Bytes(b) => JValue::Bytes(b.clone()),
        Value::List(items) => JValue::List(items.iter().map(value_to_jvalue).collect()),
        Value::Record(fields) => JValue::object(
            "java.util.LinkedHashMap",
            fields
                .iter()
                .map(|(k, v)| (k.clone(), value_to_jvalue(v)))
                .collect(),
        ),
    }
}

/// Converts a Jini value to the canonical representation.
pub fn jvalue_to_value(j: &JValue) -> Value {
    match j {
        JValue::Null => Value::Null,
        JValue::Bool(b) => Value::Bool(*b),
        JValue::Int(i) => Value::Int(*i),
        JValue::Double(d) => Value::Float(*d),
        JValue::Str(s) => Value::Str(s.clone()),
        JValue::Bytes(b) => Value::Bytes(b.clone()),
        JValue::List(items) => Value::List(items.iter().map(jvalue_to_value).collect()),
        JValue::Object { fields, .. } => Value::Record(
            fields
                .iter()
                .map(|(k, v)| (k.clone(), jvalue_to_value(v)))
                .collect(),
        ),
    }
}

/// The Jini Protocol Conversion Manager.
pub struct JiniPcm {
    vsg: Vsg,
    net: Network,
    node: NodeId,
    exporter: RmiExporter,
    registrar: RegistrarClient,
    catalog: InterfaceCatalog,
    imported: Arc<Mutex<Vec<String>>>,
    exported: Arc<Mutex<Vec<Name>>>,
    leases: Arc<Mutex<Vec<LeaseId>>>,
}

impl JiniPcm {
    /// Starts the PCM on the Jini island: attaches a node, discovers a
    /// lookup service for `group`, and stands ready to convert.
    pub fn start(
        vsg: &Vsg,
        jini_net: &Network,
        group: &str,
        catalog: InterfaceCatalog,
    ) -> Result<JiniPcm, MetaError> {
        let exporter = RmiExporter::attach(jini_net, "jini-pcm");
        let node = exporter.node();
        let registrars = discover(jini_net, node, group);
        let registrar_node = registrars.first().copied().ok_or_else(|| {
            MetaError::native("jini", format!("no lookup service in group '{group}'"))
        })?;
        Ok(JiniPcm {
            vsg: vsg.clone(),
            net: jini_net.clone(),
            node,
            exporter,
            registrar: RegistrarClient::new(jini_net, node, registrar_node),
            catalog,
            imported: Arc::new(Mutex::new(Vec::new())),
            exported: Arc::new(Mutex::new(Vec::new())),
            leases: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// The PCM's node on the Jini network.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This island's registrar client (for tests and examples).
    pub fn registrar(&self) -> &RegistrarClient {
        &self.registrar
    }

    // ---- Client Proxy: Jini services -> VSG --------------------------------

    /// Harvests the lookup service and exports every recognised item to
    /// the VSG. Returns the names imported. Items whose interface is not
    /// in the catalog are skipped (and traced); bridged items are skipped
    /// to avoid echo.
    pub fn import_services(&self) -> Result<Vec<String>, MetaError> {
        let sim = self.net.sim().clone();
        let items = self
            .registrar
            .lookup(&ServiceTemplate::any(), 1 << 16)
            .map_err(|e| MetaError::native("jini", e))?;
        let mut names = Vec::new();
        for item in items {
            if item.entries.iter().any(|e| e.class == BRIDGED_ENTRY_CLASS) {
                continue;
            }
            let Some(iface_name) = item.interfaces.first() else {
                continue;
            };
            let Some(iface) = self.catalog.get(iface_name).cloned() else {
                sim.trace("jini-pcm", format!("no catalog interface for {iface_name}"));
                continue;
            };
            let name = item
                .entries
                .iter()
                .find(|e| e.local_name_is_name())
                .and_then(|e| e.get("name"))
                .map(str::to_owned)
                .unwrap_or_else(|| format!("jini-{:08x}", item.service_id.0 as u32));

            let target = self.native_target(&iface, &item);
            let proxy = proxygen::generate(&sim, ProxyGenCost::default(), &iface, target);
            let mut service = VirtualService::new(&name, iface, Middleware::Jini, self.vsg.name());
            // A Jini `Location` entry becomes the service's room context
            // (§3.3: the VSR records "service locations and service
            // contexts").
            if let Some(room) = item
                .entries
                .iter()
                .find(|e| e.class == "net.jini.lookup.entry.Location")
                .and_then(|e| e.get("room"))
            {
                service = service.context("room", room);
            }
            self.vsg.export(service, proxy)?;
            self.imported.lock().push(name.clone());
            names.push(name);
        }
        Ok(names)
    }

    /// Builds the forwarding target for one native item: named canonical
    /// args become positional marshalled Java args, per the interface's
    /// declared parameter order.
    fn native_target(&self, iface: &ServiceInterface, item: &ServiceItem) -> ProxyTarget {
        let proxy = RemoteProxy::new(&self.net, self.node, item.proxy.clone());
        let iface = iface.clone();
        let tracer = self.vsg.tracer().clone();
        let vsg = self.vsg.clone();
        Arc::new(move |sim, op, args| {
            let sig = iface.find(op).ok_or_else(|| MetaError::UnknownOperation {
                service: iface.name.clone(),
                operation: op.to_owned(),
            })?;
            let jargs: Vec<JValue> = sig
                .params
                .iter()
                .map(|(name, _)| {
                    args.iter()
                        .find(|(k, _)| k == name)
                        .map(|(_, v)| value_to_jvalue(v))
                        .unwrap_or(JValue::Null)
                })
                .collect();
            let span = tracer.begin(sim, HopKind::PcmConvert, || format!("jini rmi {op}"));
            let started = sim.now();
            let result = proxy
                .invoke(op, &jargs)
                .map(|j| jvalue_to_value(&j))
                .map_err(|e: JiniError| MetaError::native("jini", e));
            vsg.metrics().record_layer_with_exemplar(
                crate::obs::Layer::Pcm,
                (sim.now() - started).as_micros(),
                span.trace_id(),
            );
            tracer.end_result(sim, span, &result);
            result
        })
    }

    // ---- Server Proxy: VSG services -> Jini --------------------------------

    /// Exports one remote VSG service into the lookup service as a live
    /// RMI object. Unmodified Jini clients can now discover and call it.
    pub fn export_remote(&self, record: &ServiceRecord) -> Result<(), MetaError> {
        let vsg = self.vsg.clone();
        let iface = record.interface.clone();
        let iface_name = iface.name.clone();
        let service_name = record.name.clone();
        let stub = self
            .exporter
            .export(&iface_name, move |sim, method, jargs| {
                let sig = iface
                    .find(method)
                    .ok_or_else(|| format!("no operation {method}"))?;
                let args: Vec<(String, Value)> = sig
                    .params
                    .iter()
                    .zip(jargs)
                    .map(|((name, _), j)| (name.clone(), jvalue_to_value(j)))
                    .collect();
                // An RMI call from a native Jini client starts a fresh
                // trace — it arrives from outside any framework call.
                let tracer = vsg.tracer();
                let span = tracer.begin_root(sim, HopKind::PcmConvert, || {
                    format!("jini-bridge {service_name}.{method}")
                });
                let result = vsg.invoke(sim, &service_name, method, &args);
                tracer.end_result(sim, span, &result);
                result
                    .map(|v| value_to_jvalue(&v))
                    .map_err(|e| e.to_string())
            });
        let item = ServiceItem::new(
            stub,
            vec![record.interface.name.clone()],
            vec![
                Entry::name(&record.name),
                Entry::new(BRIDGED_ENTRY_CLASS).field("origin", record.middleware.label()),
            ],
        );
        let reg = self
            .registrar
            .register(&item, SimDuration::from_secs(120))
            .map_err(|e| MetaError::native("jini", e))?;
        self.leases.lock().push(reg.lease.id);
        self.exported.lock().push(record.name.clone());
        Ok(())
    }

    /// Exports every non-Jini service currently in the VSR.
    pub fn export_all_remote(&self) -> Result<Vec<Name>, MetaError> {
        let mut done = Vec::new();
        for record in self.vsg.vsr().find("%", None)? {
            if record.middleware == Middleware::Jini {
                continue;
            }
            if self.exported.lock().contains(&record.name) {
                continue;
            }
            self.export_remote(&record)?;
            done.push(record.name);
        }
        Ok(done)
    }

    /// Renews all Server Proxy leases once (call periodically, or use
    /// [`JiniPcm::start_lease_renewal`]).
    pub fn renew_leases(&self) {
        let leases = self.leases.lock().clone();
        for lease in leases {
            let _ = self.registrar.renew(lease, SimDuration::from_secs(120));
        }
    }

    /// Renews leases every `period` of virtual time.
    pub fn start_lease_renewal(&self, period: SimDuration) -> simnet::RepeatHandle {
        let leases = self.leases.clone();
        let registrar = self.registrar.clone();
        self.net.sim().every(period, move |_| {
            for lease in leases.lock().iter() {
                let _ = registrar.renew(*lease, SimDuration::from_secs(120));
            }
        })
    }
}

impl ProtocolConversionManager for JiniPcm {
    fn middleware(&self) -> Middleware {
        Middleware::Jini
    }

    fn imported(&self) -> Vec<String> {
        self.imported.lock().clone()
    }

    fn exported(&self) -> Vec<Name> {
        self.exported.lock().clone()
    }
}

impl fmt::Debug for JiniPcm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JiniPcm")
            .field("node", &self.node)
            .field("imported", &self.imported.lock().len())
            .field("exported", &self.exported.lock().len())
            .finish()
    }
}

trait EntryExt {
    fn local_name_is_name(&self) -> bool;
}

impl EntryExt for Entry {
    fn local_name_is_name(&self) -> bool {
        self.class == "net.jini.lookup.entry.Name"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::catalog;
    use crate::protocol::Soap11;
    use crate::vsr::Vsr;
    use jini::{LookupService, ServiceTemplate};
    use simnet::Sim;

    fn jini_island(sim: &Sim) -> (Network, LookupService) {
        let net = Network::ethernet(sim);
        let reggie = LookupService::start(&net, "reggie", &["public"], SimDuration::from_secs(30));
        (net, reggie)
    }

    fn install_laserdisc(net: &Network) -> RegistrarClient {
        let exporter = RmiExporter::attach(net, "laserdisc");
        let playing = Arc::new(Mutex::new(false));
        let stub = exporter.export("LaserdiscPlayer", move |_, method, args| match method {
            "play" => {
                let chapter = args.first().and_then(JValue::as_int).unwrap_or(0);
                *playing.lock() = true;
                Ok(JValue::Str(format!("chapter {chapter}")))
            }
            "stop" => {
                *playing.lock() = false;
                Ok(JValue::Null)
            }
            "status" => Ok(JValue::Str(
                if *playing.lock() {
                    "playing"
                } else {
                    "stopped"
                }
                .into(),
            )),
            other => Err(format!("no method {other}")),
        });
        let node = net.attach("ld-join");
        let registrars = discover(net, node, "public");
        let client = RegistrarClient::new(net, node, registrars[0]);
        client
            .register(
                &ServiceItem::new(
                    stub,
                    vec!["LaserdiscPlayer".into()],
                    vec![Entry::name("laserdisc")],
                ),
                SimDuration::from_secs(300),
            )
            .unwrap();
        client
    }

    fn world() -> (Sim, Network, Vsg, JiniPcm) {
        let sim = Sim::new(1);
        let backbone = Network::ethernet(&sim);
        let vsr = Vsr::start(&backbone);
        let vsg = Vsg::start(&backbone, "jini-gw", Arc::new(Soap11::new()), vsr.node()).unwrap();
        let (jini_net, _reggie) = jini_island(&sim);
        install_laserdisc(&jini_net);
        let pcm = JiniPcm::start(&vsg, &jini_net, "public", InterfaceCatalog::standard()).unwrap();
        (sim, jini_net, vsg, pcm)
    }

    #[test]
    fn client_proxy_imports_jini_service() {
        let (sim, _jini_net, vsg, pcm) = world();
        let names = pcm.import_services().unwrap();
        assert_eq!(names, vec!["laserdisc".to_owned()]);
        assert_eq!(pcm.imported(), names);

        // Invoke through the framework: canonical -> RMI conversion.
        let got = vsg
            .invoke(
                &sim,
                "laserdisc",
                "play",
                &[("chapter".into(), Value::Int(3))],
            )
            .unwrap();
        assert_eq!(got, Value::Str("chapter 3".into()));
        let got = vsg.invoke(&sim, "laserdisc", "status", &[]).unwrap();
        assert_eq!(got, Value::Str("playing".into()));
    }

    #[test]
    fn server_proxy_exposes_remote_service_to_jini_clients() {
        let (sim, jini_net, vsg, pcm) = world();
        // A "remote" service fronted by this same gateway (stands in for
        // an X10 lamp on another island).
        let switched = Arc::new(Mutex::new(false));
        let switched2 = switched.clone();
        vsg.export(
            VirtualService::new("hall-lamp", catalog::lamp(), Middleware::X10, vsg.name()),
            move |_: &Sim, op: &str, args: &[(String, Value)]| match op {
                "switch" => {
                    *switched2.lock() = args
                        .iter()
                        .find(|(k, _)| k == "on")
                        .and_then(|(_, v)| v.as_bool())
                        .unwrap_or(false);
                    Ok(Value::Null)
                }
                "status" => Ok(Value::Bool(*switched2.lock())),
                _ => Ok(Value::Null),
            },
        )
        .unwrap();

        let record = vsg.resolve("hall-lamp").unwrap();
        pcm.export_remote(&record).unwrap();
        assert_eq!(pcm.exported(), vec!["hall-lamp".to_owned()]);

        // An unmodified Jini client finds a Lamp and switches it.
        let client_node = jini_net.attach("legacy-client");
        let registrars = discover(&jini_net, client_node, "public");
        let client = RegistrarClient::new(&jini_net, client_node, registrars[0]);
        let found = client
            .lookup_one(&ServiceTemplate::by_interface("Lamp"))
            .unwrap();
        let proxy = RemoteProxy::new(&jini_net, client_node, found.proxy);
        proxy.invoke("switch", &[JValue::Bool(true)]).unwrap();
        assert!(*switched.lock());
        let status = proxy.invoke("status", &[]).unwrap();
        assert_eq!(status, JValue::Bool(true));
        let _ = sim;
    }

    #[test]
    fn import_skips_bridged_and_unknown_items() {
        let (_sim, jini_net, vsg, pcm) = world();
        // Export a remote into Jini, then re-import: the bridged item
        // must not echo back.
        vsg.export(
            VirtualService::new("hall-lamp", catalog::lamp(), Middleware::X10, vsg.name()),
            |_: &Sim, _: &str, _: &[(String, Value)]| Ok(Value::Null),
        )
        .unwrap();
        let record = vsg.resolve("hall-lamp").unwrap();
        pcm.export_remote(&record).unwrap();

        // An item with an unknown interface is skipped too.
        let exporter = RmiExporter::attach(&jini_net, "mystery");
        let stub = exporter.export("FluxCapacitor", |_, _, _| Ok(JValue::Null));
        pcm.registrar()
            .register(
                &ServiceItem::new(stub, vec!["FluxCapacitor".into()], vec![]),
                SimDuration::from_secs(300),
            )
            .unwrap();

        let names = pcm.import_services().unwrap();
        assert_eq!(names, vec!["laserdisc".to_owned()]);
    }

    #[test]
    fn value_conversion_round_trips() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(-3),
            Value::Float(2.5),
            Value::Str("x".into()),
            Value::Bytes(vec![1, 2]),
            Value::List(vec![Value::Int(1), Value::Str("a".into())]),
            Value::Record(vec![("k".into(), Value::Int(9))]),
        ] {
            assert_eq!(jvalue_to_value(&value_to_jvalue(&v)), v);
        }
    }

    #[test]
    fn lease_renewal_keeps_bridged_items_alive() {
        let (sim, jini_net, vsg, pcm) = world();
        vsg.export(
            VirtualService::new("hall-lamp", catalog::lamp(), Middleware::X10, vsg.name()),
            |_: &Sim, _: &str, _: &[(String, Value)]| Ok(Value::Null),
        )
        .unwrap();
        pcm.export_remote(&vsg.resolve("hall-lamp").unwrap())
            .unwrap();
        let _renewal = pcm.start_lease_renewal(SimDuration::from_secs(60));

        // Without renewal the 120 s lease would expire well before 10 min.
        sim.run_for(SimDuration::from_secs(600));
        let client_node = jini_net.attach("late-client");
        let registrars = discover(&jini_net, client_node, "public");
        let client = RegistrarClient::new(&jini_net, client_node, registrars[0]);
        assert!(client
            .lookup_one(&ServiceTemplate::by_interface("Lamp"))
            .is_ok());
    }
}
