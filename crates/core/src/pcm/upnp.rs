//! The UPnP PCM — the "new middleware joins effortlessly" proof (§5/§6).
//!
//! UPnP postdates the framework in the paper's narrative; connecting it
//! required only this file. Client Proxy: SSDP-discovered devices whose
//! service types are in the mapping table become VSG services. Server
//! Proxy: remote VSG services are hosted as real UPnP devices that any
//! unmodified control point can discover and drive.

use crate::error::MetaError;
use crate::iface::{OpSig, ServiceInterface, TypeTag};
use crate::intern::Name;
use crate::pcm::ProtocolConversionManager;
use crate::proxygen::{self, ProxyGenCost, ProxyTarget};
use crate::service::{Middleware, VirtualService};
use crate::trace::HopKind;
use crate::vsg::Vsg;
use crate::vsr::ServiceRecord;
use parking_lot::Mutex;
use simnet::{Network, Sim};
use soap::Value;
use std::fmt;
use std::sync::Arc;
use upnp::{ControlPoint, DeviceDescription, UpnpDevice, SSDP_ALL};

/// The standard `SwitchPower` service, as a canonical interface.
pub const SWITCH_POWER: &str = "urn:schemas-upnp-org:service:SwitchPower:1";
/// The standard `Dimming` service.
pub const DIMMING: &str = "urn:schemas-upnp-org:service:Dimming:1";

fn switch_power_interface() -> ServiceInterface {
    ServiceInterface::new("UpnpSwitchPower")
        .op(OpSig::new("switch").param("on", TypeTag::Bool))
        .op(OpSig::new("status").returns(TypeTag::Bool))
}

fn dimmable_light_interface() -> ServiceInterface {
    ServiceInterface::new("UpnpDimmableLight")
        .op(OpSig::new("switch").param("on", TypeTag::Bool))
        .op(OpSig::new("status").returns(TypeTag::Bool))
        .op(OpSig::new("set_level").param("level", TypeTag::Int))
        .op(OpSig::new("level").returns(TypeTag::Int))
}

/// A mapped UPnP invocation: the target service type, the action name,
/// and the action's named arguments.
type UpnpAction = (&'static str, String, Vec<(String, Value)>);

/// Maps a canonical op to `(service-type, action, action-args)`.
fn op_to_action(op: &str, args: &[(String, Value)]) -> Option<UpnpAction> {
    match op {
        "switch" => {
            let on = args.iter().find(|(k, _)| k == "on")?.1.clone();
            Some((
                SWITCH_POWER,
                "SetTarget".into(),
                vec![("NewTargetValue".into(), on)],
            ))
        }
        "status" => Some((SWITCH_POWER, "GetStatus".into(), vec![])),
        "set_level" => {
            let level = args.iter().find(|(k, _)| k == "level")?.1.clone();
            Some((
                DIMMING,
                "SetLoadLevelTarget".into(),
                vec![("NewLoadLevelTarget".into(), level)],
            ))
        }
        "level" => Some((DIMMING, "GetLoadLevelStatus".into(), vec![])),
        _ => None,
    }
}

/// The UPnP Protocol Conversion Manager.
pub struct UpnpPcm {
    vsg: Vsg,
    net: Network,
    cp: ControlPoint,
    imported: Arc<Mutex<Vec<String>>>,
    exported: Arc<Mutex<Vec<Name>>>,
    hosted: Arc<Mutex<Vec<UpnpDevice>>>,
}

impl UpnpPcm {
    /// Starts the PCM with a control point on the UPnP network.
    pub fn start(vsg: &Vsg, upnp_net: &Network) -> UpnpPcm {
        UpnpPcm {
            vsg: vsg.clone(),
            net: upnp_net.clone(),
            cp: ControlPoint::new(upnp_net, "upnp-pcm"),
            imported: Arc::new(Mutex::new(Vec::new())),
            exported: Arc::new(Mutex::new(Vec::new())),
            hosted: Arc::new(Mutex::new(Vec::new())),
        }
    }

    // ---- Client Proxy: UPnP devices -> VSG ----------------------------------

    /// Discovers devices and exports every `SwitchPower`-capable one.
    pub fn import_services(&self) -> Result<Vec<String>, MetaError> {
        let sim = self.net.sim().clone();
        let mut names = Vec::new();
        for hit in self.cp.discover(SSDP_ALL) {
            // Skip devices we host ourselves (bridge echo).
            if hit.usn.starts_with("uuid:vsg-bridge-") {
                continue;
            }
            let desc = self
                .cp
                .describe(&hit)
                .map_err(|e| MetaError::native("upnp", e))?;
            let Some(svc) = desc.find_service(SWITCH_POWER) else {
                continue;
            };
            let name = desc
                .friendly_name
                .to_lowercase()
                .replace(char::is_whitespace, "-");
            let dimming_url = desc.find_service(DIMMING).map(|d| d.control_url.clone());
            let iface = if dimming_url.is_some() {
                dimmable_light_interface()
            } else {
                switch_power_interface()
            };
            let target = self.action_target(hit.node, svc.control_url.clone(), dimming_url);
            let proxy = proxygen::generate(&sim, ProxyGenCost::default(), &iface, target);
            self.vsg.export(
                VirtualService::new(&name, iface, Middleware::Upnp, self.vsg.name()),
                proxy,
            )?;
            self.imported.lock().push(name.clone());
            names.push(name);
        }
        Ok(names)
    }

    fn action_target(
        &self,
        device: simnet::NodeId,
        switch_url: String,
        dimming_url: Option<String>,
    ) -> ProxyTarget {
        let cp = self.cp.clone();
        let tracer = self.vsg.tracer().clone();
        let vsg = self.vsg.clone();
        Arc::new(move |sim, op, args| {
            let (service_type, action, action_args) =
                op_to_action(op, args).ok_or_else(|| MetaError::UnknownOperation {
                    service: "upnp-device".into(),
                    operation: op.to_owned(),
                })?;
            let url = if service_type == DIMMING {
                dimming_url
                    .as_deref()
                    .ok_or_else(|| MetaError::native("upnp", "device has no Dimming service"))?
            } else {
                &switch_url
            };
            let refs: Vec<(&str, Value)> = action_args
                .iter()
                .map(|(k, v)| (k.as_str(), v.clone()))
                .collect();
            let span = tracer.begin(sim, HopKind::PcmConvert, || format!("upnp {action}"));
            let started = sim.now();
            let result = cp
                .invoke(device, url, service_type, &action, &refs)
                .map_err(|e| MetaError::native("upnp", e));
            vsg.metrics().record_layer_with_exemplar(
                crate::obs::Layer::Pcm,
                (sim.now() - started).as_micros(),
                span.trace_id(),
            );
            tracer.end_result(sim, span, &result);
            result
        })
    }

    // ---- Server Proxy: VSG services -> UPnP ---------------------------------

    /// Hosts one remote VSG service as a UPnP device. Its single service
    /// type is `urn:vsg-bridge:service:<Interface>:1`, with one SOAP
    /// action per canonical operation (named arguments preserved).
    pub fn export_remote(&self, record: &ServiceRecord) -> Result<(), MetaError> {
        let service_type = format!("urn:vsg-bridge:service:{}:1", record.interface.name);
        let desc = DeviceDescription::new(
            format!("urn:vsg-bridge:device:{}:1", record.interface.name),
            record.name.clone(),
            format!("uuid:vsg-bridge-{}", record.name),
        )
        .service(
            &service_type,
            &format!("urn:vsg-bridge:serviceId:{}", record.interface.name),
        );
        let device = UpnpDevice::install(&self.net, desc);
        let vsg = self.vsg.clone();
        let service_name = record.name.clone();
        device.implement(&service_type, move |sim: &Sim, action: &str, args| {
            let named: Vec<(String, Value)> =
                args.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            // A control-point action arrives from outside any framework
            // call: each starts a fresh trace.
            let tracer = vsg.tracer();
            let span = tracer.begin_root(sim, HopKind::PcmConvert, || {
                format!("upnp-bridge {service_name}.{action}")
            });
            let result = vsg.invoke(sim, &service_name, action, &named);
            tracer.end_result(sim, span, &result);
            result.map_err(|e| e.to_string())
        });
        self.hosted.lock().push(device);
        self.exported.lock().push(record.name.clone());
        Ok(())
    }
}

impl ProtocolConversionManager for UpnpPcm {
    fn middleware(&self) -> Middleware {
        Middleware::Upnp
    }

    fn imported(&self) -> Vec<String> {
        self.imported.lock().clone()
    }

    fn exported(&self) -> Vec<Name> {
        self.exported.lock().clone()
    }
}

impl fmt::Debug for UpnpPcm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UpnpPcm")
            .field("imported", &self.imported.lock().len())
            .field("exported", &self.exported.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::catalog;
    use crate::protocol::Soap11;
    use crate::vsr::Vsr;

    fn world() -> (Sim, Network, Vsg, UpnpPcm) {
        let sim = Sim::new(1);
        let backbone = Network::ethernet(&sim);
        let vsr = Vsr::start(&backbone);
        let vsg = Vsg::start(&backbone, "upnp-gw", Arc::new(Soap11::new()), vsr.node()).unwrap();
        let upnp_net = Network::ethernet(&sim);
        let pcm = UpnpPcm::start(&vsg, &upnp_net);
        (sim, upnp_net, vsg, pcm)
    }

    fn install_light(net: &Network, name: &str) -> Arc<Mutex<bool>> {
        let desc = DeviceDescription::new(
            "urn:schemas-upnp-org:device:BinaryLight:1",
            name,
            format!("uuid:{name}"),
        )
        .service(SWITCH_POWER, "urn:upnp-org:serviceId:SwitchPower");
        let dev = UpnpDevice::install(net, desc);
        let on = Arc::new(Mutex::new(false));
        let on2 = on.clone();
        dev.implement(SWITCH_POWER, move |_, action, args| match action {
            "SetTarget" => {
                *on2.lock() = args
                    .iter()
                    .find(|(k, _)| k == "NewTargetValue")
                    .and_then(|(_, v)| v.as_bool())
                    .ok_or("missing NewTargetValue")?;
                Ok(Value::Null)
            }
            "GetStatus" => Ok(Value::Bool(*on2.lock())),
            other => Err(format!("no action {other}")),
        });
        on
    }

    #[test]
    fn client_proxy_imports_upnp_light() {
        let (sim, net, vsg, pcm) = world();
        let on = install_light(&net, "Porch Light");
        let names = pcm.import_services().unwrap();
        assert_eq!(names, vec!["porch-light".to_owned()]);

        vsg.invoke(
            &sim,
            "porch-light",
            "switch",
            &[("on".into(), Value::Bool(true))],
        )
        .unwrap();
        assert!(*on.lock());
        assert_eq!(
            vsg.invoke(&sim, "porch-light", "status", &[]).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn server_proxy_hosts_bridge_device() {
        let (sim, net, vsg, pcm) = world();
        // A fridge from the Jini island, as seen in the VSR.
        vsg.export(
            VirtualService::new("fridge", catalog::fridge(), Middleware::Jini, vsg.name()),
            move |_: &Sim, op: &str, _: &[(String, Value)]| match op {
                "temperature" => Ok(Value::Float(4.5)),
                _ => Ok(Value::Null),
            },
        )
        .unwrap();
        pcm.export_remote(&vsg.resolve("fridge").unwrap()).unwrap();

        // An unmodified UPnP control point discovers and calls it.
        let cp = ControlPoint::new(&net, "legacy-cp");
        let hits = cp.discover("urn:vsg-bridge:device:Fridge:1");
        assert_eq!(hits.len(), 1);
        let desc = cp.describe(&hits[0]).unwrap();
        let svc = &desc.services[0];
        let t = cp
            .invoke(
                hits[0].node,
                &svc.control_url,
                &svc.service_type,
                "temperature",
                &[],
            )
            .unwrap();
        assert_eq!(t, Value::Float(4.5));
        let _ = sim;
    }

    #[test]
    fn bridge_devices_are_not_reimported() {
        let (_sim, _net, vsg, pcm) = world();
        vsg.export(
            VirtualService::new("fridge", catalog::fridge(), Middleware::Jini, vsg.name()),
            |_: &Sim, _: &str, _: &[(String, Value)]| Ok(Value::Null),
        )
        .unwrap();
        pcm.export_remote(&vsg.resolve("fridge").unwrap()).unwrap();
        assert!(pcm.import_services().unwrap().is_empty());
    }

    #[test]
    fn devices_without_known_services_are_skipped() {
        let (_sim, net, _vsg, pcm) = world();
        let desc = DeviceDescription::new(
            "urn:schemas-upnp-org:device:Exotic:1",
            "Mystery Box",
            "uuid:mystery",
        )
        .service(
            "urn:vendor:service:Strange:1",
            "urn:vendor:serviceId:Strange",
        );
        UpnpDevice::install(&net, desc);
        assert!(pcm.import_services().unwrap().is_empty());
    }
}

#[cfg(test)]
mod dimming_tests {
    use super::*;
    use upnp::DeviceDescription;

    const LIGHT_DEV: &str = "urn:schemas-upnp-org:device:DimmableLight:1";

    fn world() -> (Sim, Network, Vsg, UpnpPcm) {
        let sim = Sim::new(1);
        let backbone = Network::ethernet(&sim);
        let vsr = crate::vsr::Vsr::start(&backbone);
        let vsg = Vsg::start(
            &backbone,
            "upnp-gw",
            Arc::new(crate::protocol::Soap11::new()),
            vsr.node(),
        )
        .unwrap();
        let upnp_net = Network::ethernet(&sim);
        let pcm = UpnpPcm::start(&vsg, &upnp_net);
        (sim, upnp_net, vsg, pcm)
    }

    fn install_dimmable(net: &Network) -> Arc<Mutex<(bool, i64)>> {
        let desc = DeviceDescription::new(LIGHT_DEV, "Bedroom Light", "uuid:bedroom")
            .service(SWITCH_POWER, "urn:upnp-org:serviceId:SwitchPower")
            .service(DIMMING, "urn:upnp-org:serviceId:Dimming");
        let dev = UpnpDevice::install(net, desc);
        let state = Arc::new(Mutex::new((false, 100i64)));
        let s1 = state.clone();
        dev.implement(SWITCH_POWER, move |_, action, args| match action {
            "SetTarget" => {
                s1.lock().0 = args
                    .iter()
                    .find(|(k, _)| k == "NewTargetValue")
                    .and_then(|(_, v)| v.as_bool())
                    .ok_or("missing NewTargetValue")?;
                Ok(Value::Null)
            }
            "GetStatus" => Ok(Value::Bool(s1.lock().0)),
            other => Err(format!("no action {other}")),
        });
        let s2 = state.clone();
        dev.implement(DIMMING, move |_, action, args| match action {
            "SetLoadLevelTarget" => {
                s2.lock().1 = args
                    .iter()
                    .find(|(k, _)| k == "NewLoadLevelTarget")
                    .and_then(|(_, v)| v.as_int())
                    .ok_or("missing NewLoadLevelTarget")?;
                Ok(Value::Null)
            }
            "GetLoadLevelStatus" => Ok(Value::Int(s2.lock().1)),
            other => Err(format!("no action {other}")),
        });
        state
    }

    #[test]
    fn dimmable_devices_get_the_richer_interface() {
        let (sim, net, vsg, pcm) = world();
        let state = install_dimmable(&net);
        let names = pcm.import_services().unwrap();
        assert_eq!(names, vec!["bedroom-light".to_owned()]);

        // The record carries the dimmable interface.
        let rec = vsg.resolve("bedroom-light").unwrap();
        assert_eq!(rec.interface.name, "UpnpDimmableLight");
        assert!(rec.interface.find("set_level").is_some());

        vsg.invoke(
            &sim,
            "bedroom-light",
            "switch",
            &[("on".into(), Value::Bool(true))],
        )
        .unwrap();
        vsg.invoke(
            &sim,
            "bedroom-light",
            "set_level",
            &[("level".into(), Value::Int(40))],
        )
        .unwrap();
        assert_eq!(*state.lock(), (true, 40));
        assert_eq!(
            vsg.invoke(&sim, "bedroom-light", "level", &[]).unwrap(),
            Value::Int(40)
        );
    }

    #[test]
    fn plain_switches_reject_dimming_ops() {
        let (sim, net, vsg, pcm) = world();
        let desc = DeviceDescription::new(
            "urn:schemas-upnp-org:device:BinaryLight:1",
            "Plain Light",
            "uuid:plain",
        )
        .service(SWITCH_POWER, "urn:upnp-org:serviceId:SwitchPower");
        let dev = UpnpDevice::install(&net, desc);
        dev.implement(SWITCH_POWER, |_, action, _| match action {
            "GetStatus" => Ok(Value::Bool(false)),
            _ => Ok(Value::Null),
        });
        pcm.import_services().unwrap();
        // The plain light's interface has no set_level, so the gateway's
        // type layer rejects it before any UPnP traffic.
        let err = vsg
            .invoke(
                &sim,
                "plain-light",
                "set_level",
                &[("level".into(), Value::Int(10))],
            )
            .unwrap_err();
        assert!(matches!(err, MetaError::UnknownOperation { .. }), "{err}");
    }
}
