//! The HAVi PCM.
//!
//! Client Proxy: harvests FCMs from the HAVi Registry and exports each
//! to the VSG; canonical invocations become HAVi messages with compact
//! binary parameters.
//!
//! Server Proxy: registers a *bridge software element* per remote VSG
//! service. HAVi controllers message it with the bridge API (operation
//! index + positional parameters) exactly like any other software
//! element; the element converts and forwards over the VSG.

use crate::error::MetaError;
use crate::iface::{OpSig, ServiceInterface, TypeTag};
use crate::intern::Name;
use crate::pcm::ProtocolConversionManager;
use crate::proxygen::{self, ProxyGenCost, ProxyTarget};
use crate::service::{Middleware, VirtualService};
use crate::trace::HopKind;
use crate::vsg::Vsg;
use crate::vsr::ServiceRecord;
use havi::{
    attr, oper, DdiElement, DdiPanel, FcmKind, HValue, HaviError, HaviStatus, MessagingSystem,
    OpCode, RegistryClient, Seid,
};
use parking_lot::Mutex;
use simnet::Network;
use soap::Value;
use std::fmt;
use std::sync::Arc;

/// The bridge software element's API class (outside HAVi's reserved
/// range; carried by Server Proxy elements).
pub const API_VSG_BRIDGE: u16 = 0x0200;

/// The canonical interface of each FCM device class, mirroring the
/// operations `havi::fcm` actually implements.
pub fn fcm_interface(kind: FcmKind) -> ServiceInterface {
    match kind {
        FcmKind::Vcr => ServiceInterface::new("HaviVcr")
            .op(OpSig::new("play"))
            .op(OpSig::new("stop"))
            .op(OpSig::new("record"))
            .op(OpSig::new("wind"))
            .op(OpSig::new("rewind"))
            .op(OpSig::new("status").returns(TypeTag::Str))
            .op(OpSig::new("position").returns(TypeTag::Int)),
        FcmKind::DvCamera => ServiceInterface::new("HaviDvCamera")
            .op(OpSig::new("play"))
            .op(OpSig::new("stop"))
            .op(OpSig::new("record"))
            .op(OpSig::new("status").returns(TypeTag::Str))
            .op(OpSig::new("capture").returns(TypeTag::Int)),
        FcmKind::Tuner => ServiceInterface::new("HaviTuner")
            .op(OpSig::new("set_channel").param("channel", TypeTag::Int))
            .op(OpSig::new("channel").returns(TypeTag::Int)),
        FcmKind::Display => {
            ServiceInterface::new("HaviDisplay").op(OpSig::new("show").param("text", TypeTag::Str))
        }
        FcmKind::Amplifier => ServiceInterface::new("HaviAmplifier")
            .op(OpSig::new("set_volume").param("volume", TypeTag::Int))
            .op(OpSig::new("volume").returns(TypeTag::Int)),
    }
}

fn kind_from_class(class: &str) -> Option<FcmKind> {
    match class {
        "vcr" => Some(FcmKind::Vcr),
        "dv-camera" => Some(FcmKind::DvCamera),
        "tuner" => Some(FcmKind::Tuner),
        "display" => Some(FcmKind::Display),
        "amplifier" => Some(FcmKind::Amplifier),
        _ => None,
    }
}

/// Maps one canonical operation to the FCM wire call.
fn op_to_fcm(kind: FcmKind, op: &str, args: &[(String, Value)]) -> Option<(OpCode, Vec<HValue>)> {
    let api = kind.api_code();
    let arg_int = |name: &str| -> Option<u32> {
        args.iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_int())
            .and_then(|i| u32::try_from(i).ok())
    };
    let code = match op {
        "play" => (OpCode::new(api, oper::PLAY), vec![]),
        "stop" => (OpCode::new(api, oper::STOP), vec![]),
        "record" => (OpCode::new(api, oper::RECORD), vec![]),
        "wind" => (OpCode::new(api, oper::WIND), vec![]),
        "rewind" => (OpCode::new(api, oper::REWIND), vec![]),
        "status" | "position" => (OpCode::new(api, oper::STATUS), vec![]),
        "set_channel" => (
            OpCode::new(api, oper::SET_CHANNEL),
            vec![HValue::U16(arg_int("channel")? as u16)],
        ),
        "channel" => (OpCode::new(api, oper::GET_CHANNEL), vec![]),
        "show" => (
            OpCode::new(api, oper::SHOW_OSD),
            vec![HValue::Str(
                args.iter()
                    .find(|(k, _)| k == "text")?
                    .1
                    .as_str()?
                    .to_owned(),
            )],
        ),
        "set_volume" => (
            OpCode::new(api, oper::SET_VOLUME),
            vec![HValue::U8(arg_int("volume")? as u8)],
        ),
        "volume" => (OpCode::new(api, oper::GET_VOLUME), vec![]),
        "capture" => (OpCode::new(api, oper::CAPTURE), vec![]),
        _ => return None,
    };
    Some(code)
}

fn fcm_reply_to_value(op: &str, params: &[HValue]) -> Value {
    match op {
        "status" => params
            .first()
            .and_then(HValue::as_str)
            .map(|s| Value::Str(s.to_owned()))
            .unwrap_or(Value::Null),
        "position" => params
            .get(1)
            .and_then(HValue::as_u32)
            .map(|p| Value::Int(i64::from(p)))
            .unwrap_or(Value::Null),
        "channel" | "volume" | "capture" => params
            .first()
            .and_then(HValue::as_u32)
            .map(|p| Value::Int(i64::from(p)))
            .unwrap_or(Value::Null),
        _ => Value::Null,
    }
}

/// Converts canonical values to positional HAVi parameters (Server Proxy
/// inbound direction).
pub fn value_to_hvalue(v: &Value) -> HValue {
    match v {
        Value::Bool(b) => HValue::Bool(*b),
        Value::Int(i) => HValue::U32(*i as u32),
        Value::Str(s) => HValue::Str(s.clone()),
        Value::Bytes(b) => HValue::Bytes(b.clone()),
        other => HValue::Str(other.to_string()),
    }
}

/// Converts a HAVi parameter to a canonical value under a declared type.
pub fn hvalue_to_value(h: &HValue, ty: TypeTag) -> Value {
    match (ty, h) {
        (TypeTag::Bool, HValue::Bool(b)) => Value::Bool(*b),
        // HAVi's parameter encoding has no float type; floats travel as
        // decimal strings and are re-typed here.
        (TypeTag::Float, HValue::Str(s)) => {
            s.parse::<f64>().map(Value::Float).unwrap_or(Value::Null)
        }
        (TypeTag::Float, other) => other
            .as_u32()
            .map(|u| Value::Float(f64::from(u)))
            .unwrap_or(Value::Null),
        (TypeTag::Int, _) => h
            .as_u32()
            .map(|u| Value::Int(i64::from(u)))
            .unwrap_or(Value::Null),
        (TypeTag::Str, HValue::Str(s)) => Value::Str(s.clone()),
        (TypeTag::Bytes, HValue::Bytes(b)) => Value::Bytes(b.clone()),
        (_, HValue::Bool(b)) => Value::Bool(*b),
        (_, HValue::Str(s)) => Value::Str(s.clone()),
        (_, HValue::Bytes(b)) => Value::Bytes(b.clone()),
        (_, other) => other
            .as_u32()
            .map(|u| Value::Int(i64::from(u)))
            .unwrap_or(Value::Null),
    }
}

/// The HAVi Protocol Conversion Manager.
pub struct HaviPcm {
    vsg: Vsg,
    net: Network,
    ms: MessagingSystem,
    control: Seid,
    registry: RegistryClient,
    imported: Arc<Mutex<Vec<String>>>,
    imported_fcms: Arc<Mutex<std::collections::HashMap<String, (FcmKind, Seid)>>>,
    exported: Arc<Mutex<Vec<Name>>>,
}

impl HaviPcm {
    /// Starts the PCM on the HAVi island, attaching its own node to the
    /// 1394 bus and locating the registry at `registry_seid`.
    pub fn start(vsg: &Vsg, havi_net: &Network, registry_seid: Seid) -> HaviPcm {
        let ms = MessagingSystem::attach(havi_net, "havi-pcm");
        let control = ms.register_element(|_, _| (HaviStatus::Success, vec![]));
        let registry = RegistryClient::new(&ms, control.handle, registry_seid);
        HaviPcm {
            vsg: vsg.clone(),
            net: havi_net.clone(),
            ms,
            control,
            registry,
            imported: Arc::new(Mutex::new(Vec::new())),
            imported_fcms: Arc::new(Mutex::new(std::collections::HashMap::new())),
            exported: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The native FCM behind an imported service (kind and SEID) — used
    /// by the AV meta-middleware to set up native data paths (§6).
    pub fn fcm_of(&self, service: &str) -> Option<(FcmKind, Seid)> {
        self.imported_fcms.lock().get(service).copied()
    }

    /// The PCM's messaging system (for tests and examples).
    pub fn messaging(&self) -> &MessagingSystem {
        &self.ms
    }

    // ---- Client Proxy: HAVi FCMs -> VSG -------------------------------------

    /// Harvests FCMs from the registry and exports each to the VSG.
    pub fn import_services(&self) -> Result<Vec<String>, MetaError> {
        let sim = self.net.sim().clone();
        let entries = self
            .registry
            .query(&[(attr::SE_TYPE, "fcm")])
            .map_err(|e| MetaError::native("havi", e))?;
        let mut names = Vec::new();
        for entry in entries {
            // Skip our own bridge elements.
            if entry.attributes.contains_key("ATT_VSG_BRIDGE") {
                continue;
            }
            let Some(kind) = entry
                .attributes
                .get(attr::DEVICE_CLASS)
                .and_then(|c| kind_from_class(c))
            else {
                continue;
            };
            let name = entry
                .attributes
                .get(attr::NAME)
                .cloned()
                .unwrap_or_else(|| format!("havi-{}", entry.seid));
            let iface = fcm_interface(kind);
            let target = self.fcm_target(kind, entry.seid);
            let proxy = proxygen::generate(&sim, ProxyGenCost::default(), &iface, target);
            self.vsg.export(
                VirtualService::new(&name, iface, Middleware::Havi, self.vsg.name()),
                proxy,
            )?;
            self.imported.lock().push(name.clone());
            self.imported_fcms
                .lock()
                .insert(name.clone(), (kind, entry.seid));
            names.push(name);
        }
        Ok(names)
    }

    fn fcm_target(&self, kind: FcmKind, fcm: Seid) -> ProxyTarget {
        let ms = self.ms.clone();
        let control = self.control;
        let tracer = self.vsg.tracer().clone();
        let vsg = self.vsg.clone();
        Arc::new(move |sim, op, args| {
            let (opcode, params) =
                op_to_fcm(kind, op, args).ok_or_else(|| MetaError::UnknownOperation {
                    service: kind.device_class().to_owned(),
                    operation: op.to_owned(),
                })?;
            let span = tracer.begin(sim, HopKind::PcmConvert, || format!("havi {op}"));
            let started = sim.now();
            let result = ms
                .send_ok(control.handle, fcm, opcode, params)
                .map_err(|e: HaviError| MetaError::native("havi", e))
                .map(|reply| fcm_reply_to_value(op, &reply));
            vsg.metrics().record_layer_with_exemplar(
                crate::obs::Layer::Pcm,
                (sim.now() - started).as_micros(),
                span.trace_id(),
            );
            tracer.end_result(sim, span, &result);
            result
        })
    }

    // ---- Server Proxy: VSG services -> HAVi ---------------------------------

    /// Exports one remote VSG service as a bridge software element,
    /// advertised in the HAVi registry. Returns its SEID.
    pub fn export_remote(&self, record: &ServiceRecord) -> Result<Seid, MetaError> {
        let vsg = self.vsg.clone();
        let iface = record.interface.clone();
        let service_name = record.name.clone();
        let seid = self.ms.register_element(move |sim, msg| {
            if msg.opcode.api != API_VSG_BRIDGE {
                return (HaviStatus::EUnsupported, vec![]);
            }
            let Some(sig) = iface.operations.get(msg.opcode.oper as usize) else {
                return (HaviStatus::EUnsupported, vec![]);
            };
            let args: Vec<(String, Value)> = sig
                .params
                .iter()
                .zip(&msg.params)
                .map(|((name, ty), h)| (name.clone(), hvalue_to_value(h, *ty)))
                .collect();
            if args.len() != sig.params.len() {
                return (HaviStatus::EParameter, vec![]);
            }
            // Messages from native HAVi controllers arrive from outside
            // any framework call: each starts a fresh trace.
            let tracer = vsg.tracer();
            let span = tracer.begin_root(sim, HopKind::PcmConvert, || {
                format!("havi-bridge {service_name}.{}", sig.name)
            });
            let result = vsg.invoke(sim, &service_name, &sig.name, &args);
            tracer.end_result(sim, span, &result);
            match result {
                Ok(Value::Null) => (HaviStatus::Success, vec![]),
                Ok(v) => (HaviStatus::Success, vec![value_to_hvalue(&v)]),
                Err(_) => (HaviStatus::ENetwork, vec![]),
            }
        });
        self.registry
            .register(
                seid,
                &[
                    (attr::SE_TYPE, "fcm"),
                    (attr::NAME, &record.name),
                    ("ATT_VSG_BRIDGE", record.middleware.label()),
                    (attr::DEVICE_CLASS, &record.interface.name.to_lowercase()),
                ],
            )
            .map_err(|e| MetaError::native("havi", e))?;
        self.exported.lock().push(record.name.clone());
        Ok(seid)
    }

    /// Exports a remote service *and* serves a DDI panel for it, so the
    /// TV GUI can render and drive it with zero device-specific code
    /// (§1: "we want to control these appliances from the GUI of the
    /// digital TV"). Buttons are generated for every zero-argument
    /// operation, and an on/off button pair for every operation taking a
    /// single boolean.
    pub fn export_remote_with_panel(
        &self,
        record: &ServiceRecord,
    ) -> Result<(Seid, DdiPanel), MetaError> {
        let bridge = self.export_remote(record)?;

        // Build the action table and the UI tree together.
        let mut actions: Vec<(String, Vec<(String, Value)>)> = Vec::new();
        let mut children = vec![DdiElement::Text {
            label: "origin".into(),
            value: format!("{} via {}", record.middleware, record.gateway),
        }];
        for op in &record.interface.operations {
            match op.params.as_slice() {
                [] => {
                    children.push(DdiElement::Button {
                        id: actions.len() as u16,
                        label: op.name.clone(),
                    });
                    actions.push((op.name.clone(), vec![]));
                }
                [(pname, crate::iface::TypeTag::Bool)] => {
                    for (suffix, v) in [("on", true), ("off", false)] {
                        children.push(DdiElement::Button {
                            id: actions.len() as u16,
                            label: format!("{} {}", op.name, suffix),
                        });
                        actions.push((op.name.clone(), vec![(pname.clone(), Value::Bool(v))]));
                    }
                }
                _ => {} // parameterised ops need a richer UI than DDI buttons
            }
        }
        let tree = DdiElement::Panel {
            title: record.name.to_string(),
            children,
        };

        let vsg = self.vsg.clone();
        let service = record.name.clone();
        let panel = DdiPanel::install(&self.ms, tree, move |sim, id| {
            if let Some((op, args)) = actions.get(id as usize) {
                // A TV-GUI button press starts a fresh trace.
                let tracer = vsg.tracer();
                let span = tracer.begin_root(sim, HopKind::PcmConvert, || {
                    format!("ddi-press {service}.{op}")
                });
                let result = vsg.invoke(sim, &service, op, args);
                tracer.end_result(sim, span, &result);
                if let Err(e) = result {
                    sim.trace("havi-ddi", format!("{service}.{op} failed: {e}"));
                }
            }
        });
        self.registry
            .register(
                panel.seid(),
                &[
                    (attr::SE_TYPE, "ddi-panel"),
                    (attr::NAME, &record.name),
                    ("ATT_VSG_BRIDGE", record.middleware.label()),
                ],
            )
            .map_err(|e| MetaError::native("havi", e))?;
        Ok((bridge, panel))
    }

    /// Exports every non-HAVi service currently in the VSR.
    pub fn export_all_remote(&self) -> Result<Vec<Name>, MetaError> {
        let mut done = Vec::new();
        for record in self.vsg.vsr().find("%", None)? {
            if record.middleware == Middleware::Havi || self.exported.lock().contains(&record.name)
            {
                continue;
            }
            self.export_remote(&record)?;
            done.push(record.name);
        }
        Ok(done)
    }
}

/// A helper for *native* HAVi controllers calling a bridged service: the
/// Server Proxy's wire contract, packaged.
#[derive(Debug, Clone)]
pub struct HaviBridgeClient {
    ms: MessagingSystem,
    src_handle: u32,
    bridge: Seid,
    interface: Arc<ServiceInterface>,
}

impl HaviBridgeClient {
    /// Wraps a bridge element found in the registry. The interface is
    /// shared (`Arc`) so wrapping a resolved [`ServiceRecord`]'s
    /// interface costs no clone of the operation table.
    pub fn new(
        ms: &MessagingSystem,
        src_handle: u32,
        bridge: Seid,
        interface: Arc<ServiceInterface>,
    ) -> HaviBridgeClient {
        HaviBridgeClient {
            ms: ms.clone(),
            src_handle,
            bridge,
            interface,
        }
    }

    /// Calls `op` with positional canonical args.
    pub fn call(&self, op: &str, args: &[Value]) -> Result<Value, MetaError> {
        let idx = self
            .interface
            .operations
            .iter()
            .position(|o| o.name == op)
            .ok_or_else(|| MetaError::UnknownOperation {
                service: self.interface.name.clone(),
                operation: op.to_owned(),
            })?;
        let sig = &self.interface.operations[idx];
        let params: Vec<HValue> = args.iter().map(value_to_hvalue).collect();
        let reply = self
            .ms
            .send_ok(
                self.src_handle,
                self.bridge,
                OpCode::new(API_VSG_BRIDGE, idx as u16),
                params,
            )
            .map_err(|e| MetaError::native("havi", e))?;
        Ok(match (sig.returns, reply.first()) {
            (Some(ty), Some(h)) => hvalue_to_value(h, ty),
            _ => Value::Null,
        })
    }
}

impl ProtocolConversionManager for HaviPcm {
    fn middleware(&self) -> Middleware {
        Middleware::Havi
    }

    fn imported(&self) -> Vec<String> {
        self.imported.lock().clone()
    }

    fn exported(&self) -> Vec<Name> {
        self.exported.lock().clone()
    }
}

impl fmt::Debug for HaviPcm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HaviPcm")
            .field("imported", &self.imported.lock().len())
            .field("exported", &self.exported.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::catalog;
    use crate::protocol::Soap11;
    use crate::vsr::Vsr;
    use havi::{Dcm, Registry};
    use simnet::Sim;

    fn world() -> (Sim, Network, Vsg, HaviPcm, Registry) {
        let sim = Sim::new(1);
        let backbone = Network::ethernet(&sim);
        let vsr = Vsr::start(&backbone);
        let vsg = Vsg::start(&backbone, "havi-gw", Arc::new(Soap11::new()), vsr.node()).unwrap();
        let bus = Network::ieee1394(&sim);
        let fav = MessagingSystem::attach(&bus, "fav");
        let registry = Registry::start(&fav);
        let pcm = HaviPcm::start(&vsg, &bus, registry.seid());
        (sim, bus, vsg, pcm, registry)
    }

    #[test]
    fn client_proxy_imports_fcms() {
        let (sim, bus, vsg, pcm, registry) = world();
        let mut camcorder = Dcm::install(
            &bus,
            "camcorder",
            7,
            &[(FcmKind::DvCamera, "dv-camera"), (FcmKind::Vcr, "dv-tape")],
            None,
        );
        camcorder.announce(registry.seid()).unwrap();

        let mut names = pcm.import_services().unwrap();
        names.sort();
        assert_eq!(names, vec!["dv-camera".to_owned(), "dv-tape".to_owned()]);

        // Drive the camera through the framework.
        vsg.invoke(&sim, "dv-camera", "record", &[]).unwrap();
        assert_eq!(
            camcorder.fcm(FcmKind::DvCamera).unwrap().state().transport,
            havi::TransportState::Recording
        );
        let shot = vsg.invoke(&sim, "dv-camera", "capture", &[]).unwrap();
        assert_eq!(shot, Value::Int(1));
        let status = vsg.invoke(&sim, "dv-camera", "status", &[]).unwrap();
        assert_eq!(status, Value::Str("recording".into()));
    }

    #[test]
    fn tuner_arguments_convert() {
        let (sim, bus, vsg, pcm, registry) = world();
        let mut tv = Dcm::install(&bus, "tv", 9, &[(FcmKind::Tuner, "tv-tuner")], None);
        tv.announce(registry.seid()).unwrap();
        pcm.import_services().unwrap();

        vsg.invoke(
            &sim,
            "tv-tuner",
            "set_channel",
            &[("channel".into(), Value::Int(42))],
        )
        .unwrap();
        let ch = vsg.invoke(&sim, "tv-tuner", "channel", &[]).unwrap();
        assert_eq!(ch, Value::Int(42));
    }

    #[test]
    fn server_proxy_makes_remote_service_native() {
        let (_sim, _bus, vsg, pcm, _registry) = world();
        // Stand-in for a Jini fridge on another island.
        let temp = Arc::new(Mutex::new(4.0f64));
        let temp2 = temp.clone();
        vsg.export(
            VirtualService::new("fridge", catalog::fridge(), Middleware::Jini, vsg.name()),
            move |_: &Sim, op: &str, args: &[(String, Value)]| match op {
                "temperature" => Ok(Value::Float(*temp2.lock())),
                "set_target" => {
                    if let Some((_, Value::Float(c))) = args.first() {
                        *temp2.lock() = *c;
                    }
                    Ok(Value::Null)
                }
                _ => Ok(Value::Null),
            },
        )
        .unwrap();

        let record = vsg.resolve("fridge").unwrap();
        let bridge_seid = pcm.export_remote(&record).unwrap();

        // A native HAVi controller (the TV GUI of §1) calls the fridge.
        let tv = &pcm.ms; // reuse the bus
        let me = tv.register_element(|_, _| (HaviStatus::Success, vec![]));
        let client = HaviBridgeClient::new(tv, me.handle, bridge_seid, record.interface.clone());
        let t = client.call("temperature", &[]).unwrap();
        assert_eq!(t, Value::Float(4.0));
        assert!(matches!(
            client.call("defrost", &[]),
            Err(MetaError::UnknownOperation { .. })
        ));
    }

    #[test]
    fn bridge_elements_are_not_reimported() {
        let (_sim, _bus, vsg, pcm, _registry) = world();
        vsg.export(
            VirtualService::new("fridge", catalog::fridge(), Middleware::Jini, vsg.name()),
            |_: &Sim, _: &str, _: &[(String, Value)]| Ok(Value::Null),
        )
        .unwrap();
        pcm.export_remote(&vsg.resolve("fridge").unwrap()).unwrap();
        // The bridge element is an FCM in the registry, but import must
        // not echo it back as a HAVi service.
        let names = pcm.import_services().unwrap();
        assert!(names.is_empty(), "echoed: {names:?}");
    }

    #[test]
    fn fcm_interfaces_cover_all_kinds() {
        for kind in [
            FcmKind::Vcr,
            FcmKind::DvCamera,
            FcmKind::Tuner,
            FcmKind::Display,
            FcmKind::Amplifier,
        ] {
            let iface = fcm_interface(kind);
            assert!(!iface.operations.is_empty());
            // Every declared op maps to a wire call with well-typed args.
            for op in &iface.operations {
                let args: Vec<(String, Value)> = op
                    .params
                    .iter()
                    .map(|(n, t)| {
                        let v = match t {
                            TypeTag::Int => Value::Int(1),
                            TypeTag::Str => Value::Str("x".into()),
                            TypeTag::Bool => Value::Bool(true),
                            _ => Value::Null,
                        };
                        (n.clone(), v)
                    })
                    .collect();
                assert!(
                    op_to_fcm(kind, &op.name, &args).is_some(),
                    "{kind}: {} unmapped",
                    op.name
                );
            }
        }
    }
}

#[cfg(test)]
mod ddi_tests {
    use super::*;
    use crate::home::SmartHome;
    use havi::DdiController;

    #[test]
    fn tv_gui_controls_an_x10_lamp_through_a_generated_panel() {
        let home = SmartHome::builder().build().unwrap();
        let havi = home.havi.as_ref().unwrap();

        // Bridge the X10 lamp into HAVi with an auto-generated panel.
        let record = havi.vsg.resolve("hall-lamp").unwrap();
        let (_bridge, panel) = havi.pcm.export_remote_with_panel(&record).unwrap();

        // The TV GUI fetches and renders it, knowing nothing about X10.
        let tv = havi.tv.messaging();
        let gui = tv.register_element(|_, _| (HaviStatus::Success, vec![]));
        let controller = DdiController::new(tv, gui.handle);
        let ui = controller.fetch(panel.seid()).unwrap();
        let buttons = ui.buttons();
        // lamp: switch on/off pair + status + (dim is parameterised, skipped)
        let labels: Vec<&str> = buttons.iter().map(|(_, l)| *l).collect();
        assert!(labels.contains(&"switch on"), "{labels:?}");
        assert!(labels.contains(&"switch off"), "{labels:?}");
        assert!(labels.contains(&"status"), "{labels:?}");

        // Pressing "switch on" physically switches the powerline lamp.
        let (on_id, _) = buttons.iter().find(|(_, l)| *l == "switch on").unwrap();
        controller.press(panel.seid(), *on_id).unwrap();
        assert!(home.x10.as_ref().unwrap().hall_lamp.is_on());

        let (off_id, _) = buttons.iter().find(|(_, l)| *l == "switch off").unwrap();
        controller.press(panel.seid(), *off_id).unwrap();
        assert!(!home.x10.as_ref().unwrap().hall_lamp.is_on());
    }

    #[test]
    fn generated_panels_list_origin_and_register_in_havi() {
        let home = SmartHome::builder().build().unwrap();
        let havi = home.havi.as_ref().unwrap();
        let record = havi.vsg.resolve("laserdisc").unwrap();
        let (_bridge, panel) = havi.pcm.export_remote_with_panel(&record).unwrap();

        let tv = havi.tv.messaging();
        let gui = tv.register_element(|_, _| (HaviStatus::Success, vec![]));
        let ui = DdiController::new(tv, gui.handle)
            .fetch(panel.seid())
            .unwrap();
        assert!(ui.to_string().contains("jini via jini-gw"), "{ui}");

        // Discoverable in the HAVi registry as a ddi-panel element.
        let probe = tv.register_element(|_, _| (HaviStatus::Success, vec![]));
        let client = RegistryClient::new(tv, probe.handle, havi.registry.seid());
        let panels = client.query(&[(attr::SE_TYPE, "ddi-panel")]).unwrap();
        assert_eq!(panels.len(), 1);
        assert_eq!(panels[0].attributes.get(attr::NAME).unwrap(), "laserdisc");
    }

    #[test]
    fn panel_failures_are_traced_not_fatal() {
        let home = SmartHome::builder().build().unwrap();
        let havi = home.havi.as_ref().unwrap();
        let record = havi.vsg.resolve("hall-lamp").unwrap();
        let (_bridge, panel) = havi.pcm.export_remote_with_panel(&record).unwrap();
        // Withdraw the lamp, then press: the press succeeds at the DDI
        // layer; the failure lands in the trace.
        home.x10
            .as_ref()
            .unwrap()
            .vsg
            .withdraw("hall-lamp")
            .unwrap();
        let tv = havi.tv.messaging();
        let gui = tv.register_element(|_, _| (HaviStatus::Success, vec![]));
        let controller = DdiController::new(tv, gui.handle);
        let ui = controller.fetch(panel.seid()).unwrap();
        let (id, _) = ui.buttons()[0];
        controller.press(panel.seid(), id).unwrap();
        let traced = home.sim.with_tracer(|t| t.by_component("havi-ddi").count());
        assert!(traced >= 1, "failure should be traced");
    }
}
