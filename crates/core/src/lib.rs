//! # metaware — a framework for connecting home computing middleware
//!
//! A faithful reproduction of Tokunaga, Ishikawa, Kurahashi, Morimoto &
//! Nakajima, *"A Framework for Connecting Home Computing Middleware"*,
//! Proc. 22nd ICDCS Workshops, 2002 — as a Rust library over simulated
//! middleware stacks ([`jini`], [`havi`], [`x10`], [`mailsvc`],
//! [`upnp`]) on a deterministic virtual-time network substrate
//! ([`simnet`]).
//!
//! ## The architecture (paper §3)
//!
//! ```text
//!   Jini island          HAVi island          X10 island
//!  (Ethernet/RMI)       (IEEE1394 msgs)      (powerline/CM11A)
//!        │                    │                    │
//!     [ PCM ]              [ PCM ]              [ PCM ]      ← one per middleware
//!        │                    │                    │
//!     [ VSG ]═══════════ [ VSG ] ═══════════ [ VSG ]         ← SOAP (pluggable)
//!                   ╲         │        ╱
//!                      [ VSR: WSDL + UDDI ]                  ← discovery
//! ```
//!
//! * [`Vsg`] — the **Virtual Service Gateway**: one per middleware
//!   island; gateways speak a pluggable [`VsgProtocol`] to each other
//!   ([`Soap11`] as the prototype, [`CompactBinary`] and [`SipLike`] as
//!   the paper's discussed alternatives).
//! * [`pcm`] — **Protocol Conversion Managers** with Server Proxy /
//!   Client Proxy module pairs, one per middleware.
//! * [`Vsr`] — the **Virtual Service Repository**: a SOAP service over a
//!   UDDI registry holding WSDL service descriptions.
//! * [`proxygen`] — automatic proxy generation from interfaces (the
//!   prototype's Javassist role).
//! * [`events`] — the §4.2 event problem: HTTP polling vs SIP push.
//! * [`SmartHome`] — the paper's §1 scenario, ready-made for examples,
//!   tests and benchmarks.
//!
//! ## Quick start
//!
//! ```
//! use metaware::{SmartHome, Middleware};
//! use soap::Value;
//!
//! // The full §1 home: Jini + HAVi + X10 + mail, bridged over SOAP.
//! let home = SmartHome::builder().build().unwrap();
//!
//! // From the Jini island's PC, switch an X10 lamp — transparently.
//! home.invoke_from(Middleware::Jini, "hall-lamp", "switch",
//!                  &[("on".into(), Value::Bool(true))]).unwrap();
//! assert!(home.x10.as_ref().unwrap().hall_lamp.is_on());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod activation;
pub mod avmeta;
pub mod batch;
pub mod compose;
pub mod error;
pub mod events;
pub mod federation;
pub mod fleet;
pub mod home;
pub mod iface;
pub mod intern;
pub mod metrics;
pub mod obs;
pub mod pcm;
pub mod protocol;
pub mod proxygen;
pub mod rescache;
pub mod resilience;
pub mod service;
pub mod trace;
pub mod vsg;
pub mod vsr;

pub use activation::{ActivationStats, Activator};
pub use avmeta::{AvBroker, AvFormat, AvReport, AvSession};
pub use batch::{BatchCall, BatchItem, BatchPolicy};
pub use compose::{
    Binding, CompensationSpec, ComposeOutcome, CompositeSpec, StepSpec, COMPOSITE_SPEC_CONTEXT,
};
pub use error::MetaError;
pub use events::{BridgeStats, PollingBridge, SipPublisher, SipSubscriber};
pub use federation::{FederationConfig, ShardMap, Version};
pub use fleet::{env_threads, HomeFleet};
pub use home::{house, unit, SmartHome, SmartHomeBuilder};
pub use iface::{catalog, InterfaceCatalog, OpSig, ServiceInterface, TypeTag};
pub use intern::Name;
pub use metrics::{
    footprint, CacheStats, Measurement, MetricsRegistry, MetricsSnapshot, Probe, RegistrySnapshot,
};
pub use obs::{
    FlightRecorder, HistSketch, KeepReason, KeptTrace, Layer, RecorderStats, SamplePolicy,
};
pub use pcm::cloud::{
    CloudBackbone, CloudBridgePcm, CloudBridgeStats, CloudCell, CloudCellStats, CloudCommand,
    CloudConfig, CloudFleetSummary, CloudIsland,
};
pub use pcm::ProtocolConversionManager;
pub use protocol::{CompactBinary, SipLike, Soap11, VsgProtocol, VsgRequest};
pub use proxygen::{generate, GeneratedProxy, ProxyGenCost, ProxyTarget};
pub use rescache::{ResolutionCache, ShardMapCache};
pub use resilience::{BreakerBank, BreakerState, CircuitBreaker, ResiliencePolicy};
pub use service::{Middleware, ServiceInvoker, VirtualService};
pub use trace::{HopKind, Span, SpanId, TraceContext, TraceId, Tracer};
pub use vsg::Vsg;
pub use vsr::{ServiceRecord, Vsr, VsrClient};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use soap::Value;

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            (-1.0e9f64..1.0e9).prop_map(Value::Float),
            "[ -~]{0,24}".prop_map(Value::Str),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Every VSG protocol must deliver arbitrary argument records
        /// between gateways unchanged — the core transparency property.
        #[test]
        fn protocols_preserve_arbitrary_args(
            args in prop::collection::vec(("[a-z][a-z0-9]{0,6}", arb_value()), 0..5),
            which in 0usize..3,
        ) {
            // Unique argument names (duplicates are ill-formed calls).
            let mut seen = std::collections::HashSet::new();
            let args: Vec<(String, Value)> = args
                .into_iter()
                .filter(|(k, _)| seen.insert(k.clone()))
                .collect();

            let protocol: std::sync::Arc<dyn VsgProtocol> = match which {
                0 => std::sync::Arc::new(Soap11::new()),
                1 => std::sync::Arc::new(CompactBinary::new()),
                _ => std::sync::Arc::new(SipLike::new()),
            };
            let sim = simnet::Sim::new(1);
            let net = simnet::Network::ethernet(&sim);
            let server = protocol.bind(
                &net,
                "gw",
                std::sync::Arc::new(|_, req: &VsgRequest| Ok(Value::Record(req.args.clone()))),
            );
            let client = net.attach("c");
            let mut req = VsgRequest::new("svc", "echo");
            req.args = args.clone();
            let got = protocol.call(&net, client, server, &req).unwrap();
            prop_assert_eq!(got, Value::Record(args));
        }

        /// Type checking accepts exactly the well-typed argument lists.
        #[test]
        fn type_checking_is_sound(n in 0usize..4, swap in any::<bool>()) {
            let mut sig = OpSig::new("op");
            let mut good: Vec<(String, Value)> = Vec::new();
            for i in 0..n {
                sig = sig.param(format!("p{i}"), TypeTag::Int);
                good.push((format!("p{i}"), Value::Int(i as i64)));
            }
            prop_assert!(sig.check_args(&good).is_ok());
            if swap && n > 0 {
                let mut bad = good.clone();
                bad[0].1 = Value::Str("nope".into());
                prop_assert!(sig.check_args(&bad).is_err());
            }
        }
    }
}
