//! Event delivery across middleware — the §4.2 problem and its fixes.
//!
//! The paper's event-based multimedia system failed on the SOAP/HTTP
//! VSG: "HTTP is inherently a client/server protocol, which does not map
//! well to asynchronous notification scenarios." This module provides
//! both delivery strategies so experiment E6 can quantify the claim:
//!
//! * [`PollingBridge`] — all HTTP allows: the interested island
//!   periodically invokes `drain_events` on the source service through
//!   the VSG. Latency ≈ poll period / 2; cost ≈ one SOAP round trip per
//!   period *even when idle*.
//! * [`SipPublisher`] / [`SipSubscriber`] — what the §5 SIP discussion
//!   enables: the source island pushes a NOTIFY the moment the event
//!   happens. Latency ≈ one LAN frame; zero idle cost.

use crate::protocol::SipLike;
use crate::trace::{HopKind, Tracer};
use crate::vsg::Vsg;
use parking_lot::Mutex;
use simnet::{Network, NodeId, RepeatHandle, Sim, SimDuration};
use soap::Value;
use std::fmt;
use std::sync::Arc;

/// Statistics shared by both bridge kinds, for E6's cost accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BridgeStats {
    /// Poll round-trips or NOTIFY frames sent.
    pub carrier_messages: u64,
    /// Events actually delivered to the handler.
    pub events_delivered: u64,
}

/// The HTTP-era strategy: poll the source service through the VSG.
pub struct PollingBridge {
    handle: RepeatHandle,
    stats: Arc<Mutex<BridgeStats>>,
}

impl PollingBridge {
    /// Starts polling `source_service` (which must offer `drain_events`,
    /// e.g. [`crate::iface::catalog::motion_sensor`]) every `period`
    /// through `vsg`, delivering each drained event to `handler`.
    pub fn start(
        vsg: &Vsg,
        source_service: &str,
        period: SimDuration,
        mut handler: impl FnMut(&Sim, &Value) + Send + 'static,
    ) -> PollingBridge {
        let stats = Arc::new(Mutex::new(BridgeStats::default()));
        let stats2 = stats.clone();
        let vsg = vsg.clone();
        let service = source_service.to_owned();
        let sim = vsg.backbone().sim().clone();
        let handle = sim.every(period, move |sim| {
            stats2.lock().carrier_messages += 1;
            // A timer tick is not part of any in-flight framework call,
            // so each poll starts a fresh trace.
            let tracer = vsg.tracer();
            let span = tracer.begin_root(sim, HopKind::Event, || format!("poll {service}"));
            let result = vsg.invoke(sim, &service, "drain_events", &[]);
            tracer.end_result(sim, span, &result);
            match result {
                Ok(Value::List(events)) => {
                    let mut st = stats2.lock();
                    st.events_delivered += events.len() as u64;
                    drop(st);
                    for e in &events {
                        handler(sim, e);
                    }
                }
                Ok(_) => {}
                Err(e) => sim.trace("poll-bridge", format!("poll failed: {e}")),
            }
        });
        PollingBridge { handle, stats }
    }

    /// Stops polling.
    pub fn stop(&self) {
        self.handle.cancel();
    }

    /// Messages and deliveries so far.
    pub fn stats(&self) -> BridgeStats {
        *self.stats.lock()
    }
}

impl fmt::Debug for PollingBridge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PollingBridge")
            .field("stats", &self.stats())
            .finish()
    }
}

/// The SIP-era strategy, source side: pushes events to subscribers the
/// moment they occur.
#[derive(Clone)]
pub struct SipPublisher {
    net: Network,
    node: NodeId,
    proto: SipLike,
    subscribers: Arc<Mutex<Vec<(NodeId, String)>>>,
    stats: Arc<Mutex<BridgeStats>>,
    tracer: Tracer,
}

impl SipPublisher {
    /// Creates a publisher sending from the source gateway's node.
    /// Pushes are recorded as `event` spans only once
    /// [`SipPublisher::with_tracer`] attaches an enabled gateway tracer.
    pub fn new(net: &Network, node: NodeId) -> SipPublisher {
        SipPublisher {
            net: net.clone(),
            node,
            proto: SipLike::new(),
            subscribers: Arc::new(Mutex::new(Vec::new())),
            stats: Arc::new(Mutex::new(BridgeStats::default())),
            tracer: Tracer::new("sip-publisher"),
        }
    }

    /// Attributes pushed NOTIFYs to `tracer` (the source gateway's).
    pub fn with_tracer(mut self, tracer: Tracer) -> SipPublisher {
        self.tracer = tracer;
        self
    }

    /// Subscribes a gateway node to events of `service` (`%` = all).
    pub fn subscribe(&self, subscriber: NodeId, service_pattern: &str) {
        self.subscribers
            .lock()
            .push((subscriber, service_pattern.to_owned()));
    }

    /// Removes all subscriptions of `subscriber`.
    pub fn unsubscribe(&self, subscriber: NodeId) {
        self.subscribers.lock().retain(|(n, _)| *n != subscriber);
    }

    /// Pushes one event for `service` to every matching subscriber.
    pub fn publish(&self, service: &str, event: &Value) {
        let targets: Vec<NodeId> = self
            .subscribers
            .lock()
            .iter()
            .filter(|(_, pat)| pat == "%" || pat == service)
            .map(|(n, _)| *n)
            .collect();
        // An event push originates at the device, outside any in-flight
        // framework call: one fresh-trace span covers the whole fan-out.
        let sim = self.net.sim();
        let span = self
            .tracer
            .begin_root(sim, HopKind::Event, || format!("notify {service}"));
        for target in targets {
            let mut st = self.stats.lock();
            st.carrier_messages += 1;
            if self
                .proto
                .notify(&self.net, self.node, target, service, event)
            {
                st.events_delivered += 1;
            }
        }
        self.tracer.end(sim, span);
    }

    /// Messages and deliveries so far.
    pub fn stats(&self) -> BridgeStats {
        *self.stats.lock()
    }
}

impl fmt::Debug for SipPublisher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SipPublisher")
            .field("subscribers", &self.subscribers.lock().len())
            .field("stats", &self.stats())
            .finish()
    }
}

/// The SIP-era strategy, sink side: installs the NOTIFY receiver on a
/// gateway node.
pub struct SipSubscriber {
    received: Arc<Mutex<u64>>,
}

impl SipSubscriber {
    /// Installs the receiver on `node` (a gateway endpoint); `handler`
    /// gets `(service, event)` the instant a NOTIFY lands.
    pub fn install(
        net: &Network,
        node: NodeId,
        mut handler: impl FnMut(&Sim, &str, &Value) + Send + 'static,
    ) -> SipSubscriber {
        let received = Arc::new(Mutex::new(0u64));
        let received2 = received.clone();
        SipLike::new().install_push_handler(net, node, move |sim, service, event| {
            *received2.lock() += 1;
            handler(sim, service, event);
        });
        SipSubscriber { received }
    }

    /// Events received so far.
    pub fn received(&self) -> u64 {
        *self.received.lock()
    }
}

impl fmt::Debug for SipSubscriber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SipSubscriber")
            .field("received", &self.received())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::catalog;
    use crate::protocol::{Soap11, VsgProtocol};
    use crate::service::{Middleware, VirtualService};
    use crate::vsr::Vsr;
    use std::collections::VecDeque;

    /// A VSG hosting a pollable event source backed by a queue we can
    /// fill from the test.
    fn polling_world() -> (Sim, Vsg, Arc<Mutex<VecDeque<Value>>>) {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let vsr = Vsr::start(&net);
        let vsg = Vsg::start(&net, "src-gw", Arc::new(Soap11::new()), vsr.node()).unwrap();
        let queue: Arc<Mutex<VecDeque<Value>>> = Arc::new(Mutex::new(VecDeque::new()));
        let queue2 = queue.clone();
        vsg.export(
            VirtualService::new(
                "hall-motion",
                catalog::motion_sensor(),
                Middleware::X10,
                "src-gw",
            ),
            move |_: &Sim, op: &str, _: &[(String, Value)]| match op {
                "state" => Ok(Value::Bool(!queue2.lock().is_empty())),
                "drain_events" => Ok(Value::List(queue2.lock().drain(..).collect())),
                _ => Ok(Value::Null),
            },
        )
        .unwrap();
        (sim, vsg, queue)
    }

    #[test]
    fn polling_bridge_delivers_with_period_bounded_latency() {
        let (sim, vsg, queue) = polling_world();
        let delivered: Arc<Mutex<Vec<(u64, Value)>>> = Arc::new(Mutex::new(Vec::new()));
        let delivered2 = delivered.clone();
        let bridge = PollingBridge::start(
            &vsg,
            "hall-motion",
            SimDuration::from_secs(2),
            move |sim, e| delivered2.lock().push((sim.now().as_micros(), e.clone())),
        );

        // Event occurs at t=3s; the 2s-period poller sees it at t≈4s.
        sim.run_for(SimDuration::from_secs(3));
        queue.lock().push_back(Value::Bool(true));
        let event_at = sim.now();
        sim.run_for(SimDuration::from_secs(3));

        let delivered = delivered.lock();
        assert_eq!(delivered.len(), 1);
        let latency_us = delivered[0].0 - event_at.as_micros();
        assert!(
            (500_000..2_500_000).contains(&latency_us),
            "latency {latency_us}us should be bounded by the poll period"
        );
        // Idle polls happened too: ~3 carrier messages for 1 event.
        let stats = bridge.stats();
        assert!(stats.carrier_messages >= 2);
        assert_eq!(stats.events_delivered, 1);
        bridge.stop();
    }

    #[test]
    fn stopped_bridge_stops_polling() {
        let (sim, vsg, _queue) = polling_world();
        let bridge =
            PollingBridge::start(&vsg, "hall-motion", SimDuration::from_secs(1), |_, _| {});
        sim.run_for(SimDuration::from_secs(3));
        let before = bridge.stats().carrier_messages;
        bridge.stop();
        sim.run_for(SimDuration::from_secs(5));
        assert_eq!(bridge.stats().carrier_messages, before);
    }

    #[test]
    fn sip_push_is_immediate_and_filtered() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let source = net.attach("src-gw");
        // Two sink gateways with different interests.
        let proto = SipLike::new();
        let sink_a = proto.bind(&net, "gw-a", Arc::new(|_, _| Ok(Value::Null)));
        let sink_b = proto.bind(&net, "gw-b", Arc::new(|_, _| Ok(Value::Null)));

        let got_a: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let got_a2 = got_a.clone();
        let sub_a = SipSubscriber::install(&net, sink_a, move |_, svc, _| {
            got_a2.lock().push(svc.to_owned());
        });
        let got_b: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let got_b2 = got_b.clone();
        let _sub_b = SipSubscriber::install(&net, sink_b, move |_, svc, _| {
            got_b2.lock().push(svc.to_owned());
        });

        let publisher = SipPublisher::new(&net, source);
        publisher.subscribe(sink_a, "%");
        publisher.subscribe(sink_b, "door-motion");

        let before = sim.now();
        publisher.publish("hall-motion", &Value::Bool(true));
        let latency = sim.now() - before;
        assert!(latency < SimDuration::from_millis(1), "push took {latency}");

        publisher.publish("door-motion", &Value::Bool(true));
        assert_eq!(
            *got_a.lock(),
            vec!["hall-motion".to_owned(), "door-motion".to_owned()]
        );
        assert_eq!(*got_b.lock(), vec!["door-motion".to_owned()]);
        assert_eq!(sub_a.received(), 2);

        publisher.unsubscribe(sink_a);
        publisher.publish("hall-motion", &Value::Bool(false));
        assert_eq!(sub_a.received(), 2);
        assert_eq!(publisher.stats().carrier_messages, 3);
    }
}
