//! Event delivery across middleware — the §4.2 problem and its fixes.
//!
//! The paper's event-based multimedia system failed on the SOAP/HTTP
//! VSG: "HTTP is inherently a client/server protocol, which does not map
//! well to asynchronous notification scenarios." This module provides
//! both delivery strategies so experiment E6 can quantify the claim:
//!
//! * [`PollingBridge`] — all HTTP allows: the interested island
//!   periodically invokes `drain_events` on the source service through
//!   the VSG. Latency ≈ poll period / 2; cost ≈ one SOAP round trip per
//!   period *even when idle*.
//! * [`SipPublisher`] / [`SipSubscriber`] — what the §5 SIP discussion
//!   enables: the source island pushes a NOTIFY the moment the event
//!   happens. Latency ≈ one LAN frame; zero idle cost.
//! * [`SipPublisher::with_batching`] — the multiplexed fan-out: one
//!   published event is marshalled once, queued per peer, and flushed
//!   as shared NOTIFY batch frames under an adaptive (Nagle-with-a-
//!   deadline) policy, amortising the per-frame cost across members.

use crate::batch::BatchPolicy;
use crate::metrics::MetricsRegistry;
use crate::protocol::SipLike;
use crate::trace::{HopKind, Tracer};
use crate::vsg::Vsg;
use parking_lot::Mutex;
use simnet::{Network, NodeId, RepeatHandle, Sim, SimDuration, SimTime};
use soap::Value;
use std::fmt;
use std::sync::Arc;

/// Statistics shared by both bridge kinds, for E6's cost accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BridgeStats {
    /// Poll round-trips or NOTIFY frames sent.
    pub carrier_messages: u64,
    /// Events actually delivered to the handler.
    pub events_delivered: u64,
    /// Events that never reached their subscriber: the NOTIFY was lost
    /// in transport, or a full per-peer queue rejected the event
    /// (backpressure).
    pub events_dropped: u64,
}

/// The HTTP-era strategy: poll the source service through the VSG.
pub struct PollingBridge {
    handle: RepeatHandle,
    stats: Arc<Mutex<BridgeStats>>,
}

impl PollingBridge {
    /// Starts polling `source_service` (which must offer `drain_events`,
    /// e.g. [`crate::iface::catalog::motion_sensor`]) every `period`
    /// through `vsg`, delivering each drained event to `handler`.
    pub fn start(
        vsg: &Vsg,
        source_service: &str,
        period: SimDuration,
        mut handler: impl FnMut(&Sim, &Value) + Send + 'static,
    ) -> PollingBridge {
        let stats = Arc::new(Mutex::new(BridgeStats::default()));
        let stats2 = stats.clone();
        let vsg = vsg.clone();
        let service = source_service.to_owned();
        let sim = vsg.backbone().sim().clone();
        let handle = sim.every(period, move |sim| {
            stats2.lock().carrier_messages += 1;
            // A timer tick is not part of any in-flight framework call,
            // so each poll starts a fresh trace.
            let tracer = vsg.tracer();
            let span = tracer.begin_root(sim, HopKind::Event, || format!("poll {service}"));
            let result = vsg.invoke(sim, &service, "drain_events", &[]);
            tracer.end_result(sim, span, &result);
            match result {
                Ok(Value::List(events)) => {
                    let mut st = stats2.lock();
                    st.events_delivered += events.len() as u64;
                    drop(st);
                    for e in &events {
                        handler(sim, e);
                    }
                }
                Ok(_) => {}
                Err(e) => sim.trace("poll-bridge", format!("poll failed: {e}")),
            }
        });
        PollingBridge { handle, stats }
    }

    /// Stops polling.
    pub fn stop(&self) {
        self.handle.cancel();
    }

    /// Messages and deliveries so far.
    pub fn stats(&self) -> BridgeStats {
        *self.stats.lock()
    }
}

impl fmt::Debug for PollingBridge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PollingBridge")
            .field("stats", &self.stats())
            .finish()
    }
}

/// One pre-marshalled event waiting in a peer's queue: the payload
/// bytes were produced once at publish time, never re-encoded at
/// flush; the service tag lets the flush splice consecutive
/// same-service members into shared run groups.
struct QueuedEvent {
    service: String,
    payload: Vec<u8>,
    queued_at: SimTime,
}

/// Per-peer queues of the batched fan-out path (small-N association
/// lists: a home has a handful of gateways, not thousands).
#[derive(Default)]
struct MuxState {
    queues: Vec<(NodeId, Vec<QueuedEvent>)>,
    last_flush: Vec<(NodeId, SimTime)>,
}

impl MuxState {
    fn queue_mut(&mut self, peer: NodeId) -> &mut Vec<QueuedEvent> {
        if let Some(i) = self.queues.iter().position(|(n, _)| *n == peer) {
            &mut self.queues[i].1
        } else {
            self.queues.push((peer, Vec::new()));
            &mut self.queues.last_mut().expect("just pushed").1
        }
    }

    fn last_flush(&self, peer: NodeId) -> Option<SimTime> {
        self.last_flush
            .iter()
            .find(|(n, _)| *n == peer)
            .map(|(_, t)| *t)
    }

    fn note_flush(&mut self, peer: NodeId, now: SimTime) {
        if let Some(i) = self.last_flush.iter().position(|(n, _)| *n == peer) {
            self.last_flush[i].1 = now;
        } else {
            self.last_flush.push((peer, now));
        }
    }

    /// Drains every peer whose oldest queued event has waited at least
    /// `max_delay` — the Nagle deadline.
    fn take_due(
        &mut self,
        now: SimTime,
        max_delay: SimDuration,
    ) -> Vec<(NodeId, Vec<QueuedEvent>)> {
        self.queues
            .iter_mut()
            .filter(|(_, q)| {
                q.first()
                    .is_some_and(|e| now.since(e.queued_at) >= max_delay)
            })
            .map(|(peer, q)| (*peer, std::mem::take(q)))
            .collect()
    }

    fn take_all(&mut self) -> Vec<(NodeId, Vec<QueuedEvent>)> {
        self.queues
            .iter_mut()
            .filter(|(_, q)| !q.is_empty())
            .map(|(peer, q)| (*peer, std::mem::take(q)))
            .collect()
    }
}

/// Everything a flush needs, cloneable into the max-delay timer.
#[derive(Clone)]
struct FlushCtx {
    net: Network,
    node: NodeId,
    proto: SipLike,
    stats: Arc<Mutex<BridgeStats>>,
    tracer: Tracer,
    metrics: Arc<MetricsRegistry>,
}

impl FlushCtx {
    /// Sends one peer's queued events as a single NOTIFY batch frame:
    /// one carrier message whatever the member count, one shared
    /// transport fate, per-event queue wait recorded at flush.
    fn flush_peer(&self, peer: NodeId, items: Vec<QueuedEvent>) {
        if items.is_empty() {
            return;
        }
        let sim = self.net.sim();
        let n = items.len() as u64;
        let span = self
            .tracer
            .begin_root(sim, HopKind::Event, || format!("notify batch of {n}"));
        let now = sim.now();
        for q in &items {
            self.metrics
                .record_queue_wait(now.since(q.queued_at).as_micros());
        }
        let members: Vec<(&str, &[u8])> = items
            .iter()
            .map(|q| (q.service.as_str(), q.payload.as_slice()))
            .collect();
        self.stats.lock().carrier_messages += 1;
        let ok = self
            .proto
            .notify_batch(&self.net, self.node, peer, &members);
        let mut st = self.stats.lock();
        if ok {
            st.events_delivered += n;
        } else {
            st.events_dropped += n;
        }
        drop(st);
        self.tracer.end(sim, span);
    }
}

/// The SIP-era strategy, source side: pushes events to subscribers the
/// moment they occur.
#[derive(Clone)]
pub struct SipPublisher {
    net: Network,
    node: NodeId,
    proto: SipLike,
    subscribers: Arc<Mutex<Vec<(NodeId, String)>>>,
    stats: Arc<Mutex<BridgeStats>>,
    tracer: Tracer,
    metrics: Arc<MetricsRegistry>,
    policy: BatchPolicy,
    mux: Option<Arc<Mutex<MuxState>>>,
    _timer: Option<Arc<RepeatHandle>>,
}

impl SipPublisher {
    /// Creates a publisher sending from the source gateway's node.
    /// Pushes are recorded as `event` spans only once
    /// [`SipPublisher::with_tracer`] attaches an enabled gateway tracer.
    pub fn new(net: &Network, node: NodeId) -> SipPublisher {
        SipPublisher {
            net: net.clone(),
            node,
            proto: SipLike::new(),
            subscribers: Arc::new(Mutex::new(Vec::new())),
            stats: Arc::new(Mutex::new(BridgeStats::default())),
            tracer: Tracer::new("sip-publisher"),
            metrics: Arc::new(MetricsRegistry::new()),
            policy: BatchPolicy::disabled(),
            mux: None,
            _timer: None,
        }
    }

    /// Attributes pushed NOTIFYs to `tracer` (the source gateway's).
    pub fn with_tracer(mut self, tracer: Tracer) -> SipPublisher {
        self.tracer = tracer;
        self
    }

    /// Switches the publisher onto the multiplexed fan-out: each
    /// publish marshals the event once; per-peer queues coalesce
    /// members into shared NOTIFY batch frames under `policy` (flush
    /// immediately for idle peers, otherwise at
    /// [`BatchPolicy::max_batch`] members or after
    /// [`BatchPolicy::max_delay`], enforced by a repeating timer that
    /// fires under `Sim::run_for`). A full peer queue drops the event
    /// and counts it in [`BridgeStats::events_dropped`].
    pub fn with_batching(mut self, policy: BatchPolicy) -> SipPublisher {
        if !policy.enabled {
            self.policy = policy;
            self.mux = None;
            self._timer = None;
            return self;
        }
        let mux = Arc::new(Mutex::new(MuxState::default()));
        let ctx = self.flush_ctx();
        let mux2 = mux.clone();
        let max_delay = policy.max_delay;
        let timer = self.net.sim().every(max_delay, move |sim| {
            let due = {
                let mut state = mux2.lock();
                let due = state.take_due(sim.now(), max_delay);
                for (peer, _) in &due {
                    state.note_flush(*peer, sim.now());
                }
                due
            };
            for (peer, items) in due {
                ctx.flush_peer(peer, items);
            }
        });
        self.policy = policy;
        self.mux = Some(mux);
        self._timer = Some(Arc::new(timer));
        self
    }

    fn flush_ctx(&self) -> FlushCtx {
        FlushCtx {
            net: self.net.clone(),
            node: self.node,
            proto: self.proto,
            stats: self.stats.clone(),
            tracer: self.tracer.clone(),
            metrics: self.metrics.clone(),
        }
    }

    /// Subscribes a gateway node to events of `service` (`%` = all).
    pub fn subscribe(&self, subscriber: NodeId, service_pattern: &str) {
        self.subscribers
            .lock()
            .push((subscriber, service_pattern.to_owned()));
    }

    /// Removes all subscriptions of `subscriber`.
    pub fn unsubscribe(&self, subscriber: NodeId) {
        self.subscribers.lock().retain(|(n, _)| *n != subscriber);
    }

    /// Pushes one event for `service` to every matching subscriber —
    /// immediately (one NOTIFY each) on an unbatched publisher, through
    /// the per-peer coalescing queues on a batched one.
    pub fn publish(&self, service: &str, event: &Value) {
        let targets: Vec<NodeId> = self
            .subscribers
            .lock()
            .iter()
            .filter(|(_, pat)| pat == "%" || pat == service)
            .map(|(n, _)| *n)
            .collect();
        let sim = self.net.sim();
        let Some(mux) = &self.mux else {
            // The unbatched wire: one NOTIFY per subscriber, inline. An
            // event push originates at the device, outside any
            // in-flight framework call: one fresh-trace span covers the
            // whole fan-out.
            let span = self
                .tracer
                .begin_root(sim, HopKind::Event, || format!("notify {service}"));
            for target in targets {
                self.stats.lock().carrier_messages += 1;
                let ok = self
                    .proto
                    .notify(&self.net, self.node, target, service, event);
                let mut st = self.stats.lock();
                if ok {
                    st.events_delivered += 1;
                } else {
                    st.events_dropped += 1;
                }
            }
            self.tracer.end(sim, span);
            return;
        };
        // Marshal once: every peer's queue takes a copy of the payload
        // bytes, not a re-encoding.
        let payload = SipLike::encode_event_payload(event);
        let ctx = self.flush_ctx();
        for target in targets {
            let flush_now = {
                let mut state = mux.lock();
                let last = state.last_flush(target);
                let q = state.queue_mut(target);
                let idle = q.is_empty()
                    && last.is_none_or(|t| sim.now().since(t) >= self.policy.idle_threshold);
                if idle {
                    // An idle peer pays no coalescing tax: its event
                    // leaves as a batch of one, right now.
                    state.note_flush(target, sim.now());
                    Some(vec![QueuedEvent {
                        service: service.to_owned(),
                        payload: payload.clone(),
                        queued_at: sim.now(),
                    }])
                } else if q.len() >= self.policy.max_queue {
                    // Backpressure: drop loudly rather than queue
                    // without bound.
                    self.stats.lock().events_dropped += 1;
                    None
                } else {
                    q.push(QueuedEvent {
                        service: service.to_owned(),
                        payload: payload.clone(),
                        queued_at: sim.now(),
                    });
                    if q.len() >= self.policy.max_batch {
                        let items = std::mem::take(q);
                        state.note_flush(target, sim.now());
                        Some(items)
                    } else {
                        None
                    }
                }
            };
            if let Some(items) = flush_now {
                ctx.flush_peer(target, items);
            }
        }
    }

    /// Flushes every queued event now (a no-op on an unbatched
    /// publisher). The max-delay timer does this automatically while
    /// the sim runs; explicit flush serves callers driving virtual time
    /// by hand.
    pub fn flush(&self) {
        let Some(mux) = &self.mux else {
            return;
        };
        let sim = self.net.sim();
        let all = {
            let mut state = mux.lock();
            let all = state.take_all();
            for (peer, _) in &all {
                state.note_flush(*peer, sim.now());
            }
            all
        };
        let ctx = self.flush_ctx();
        for (peer, items) in all {
            ctx.flush_peer(peer, items);
        }
    }

    /// The publisher's own metrics registry; its queue-wait histogram
    /// records how long each batched event sat queued before its flush.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Messages and deliveries so far.
    pub fn stats(&self) -> BridgeStats {
        *self.stats.lock()
    }
}

impl fmt::Debug for SipPublisher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SipPublisher")
            .field("subscribers", &self.subscribers.lock().len())
            .field("stats", &self.stats())
            .finish()
    }
}

/// The SIP-era strategy, sink side: installs the NOTIFY receiver on a
/// gateway node.
pub struct SipSubscriber {
    received: Arc<Mutex<u64>>,
}

impl SipSubscriber {
    /// Installs the receiver on `node` (a gateway endpoint); `handler`
    /// gets `(service, event)` the instant a NOTIFY lands.
    pub fn install(
        net: &Network,
        node: NodeId,
        mut handler: impl FnMut(&Sim, &str, &Value) + Send + 'static,
    ) -> SipSubscriber {
        let received = Arc::new(Mutex::new(0u64));
        let received2 = received.clone();
        SipLike::new().install_push_handler(net, node, move |sim, service, event| {
            *received2.lock() += 1;
            handler(sim, service, event);
        });
        SipSubscriber { received }
    }

    /// Events received so far.
    pub fn received(&self) -> u64 {
        *self.received.lock()
    }
}

impl fmt::Debug for SipSubscriber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SipSubscriber")
            .field("received", &self.received())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::catalog;
    use crate::protocol::{Soap11, VsgProtocol};
    use crate::service::{Middleware, VirtualService};
    use crate::vsr::Vsr;
    use std::collections::VecDeque;

    /// A VSG hosting a pollable event source backed by a queue we can
    /// fill from the test.
    fn polling_world() -> (Sim, Vsg, Arc<Mutex<VecDeque<Value>>>) {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let vsr = Vsr::start(&net);
        let vsg = Vsg::start(&net, "src-gw", Arc::new(Soap11::new()), vsr.node()).unwrap();
        let queue: Arc<Mutex<VecDeque<Value>>> = Arc::new(Mutex::new(VecDeque::new()));
        let queue2 = queue.clone();
        vsg.export(
            VirtualService::new(
                "hall-motion",
                catalog::motion_sensor(),
                Middleware::X10,
                "src-gw",
            ),
            move |_: &Sim, op: &str, _: &[(String, Value)]| match op {
                "state" => Ok(Value::Bool(!queue2.lock().is_empty())),
                "drain_events" => Ok(Value::List(queue2.lock().drain(..).collect())),
                _ => Ok(Value::Null),
            },
        )
        .unwrap();
        (sim, vsg, queue)
    }

    #[test]
    fn polling_bridge_delivers_with_period_bounded_latency() {
        let (sim, vsg, queue) = polling_world();
        let delivered: Arc<Mutex<Vec<(u64, Value)>>> = Arc::new(Mutex::new(Vec::new()));
        let delivered2 = delivered.clone();
        let bridge = PollingBridge::start(
            &vsg,
            "hall-motion",
            SimDuration::from_secs(2),
            move |sim, e| delivered2.lock().push((sim.now().as_micros(), e.clone())),
        );

        // Event occurs at t=3s; the 2s-period poller sees it at t≈4s.
        sim.run_for(SimDuration::from_secs(3));
        queue.lock().push_back(Value::Bool(true));
        let event_at = sim.now();
        sim.run_for(SimDuration::from_secs(3));

        let delivered = delivered.lock();
        assert_eq!(delivered.len(), 1);
        let latency_us = delivered[0].0 - event_at.as_micros();
        assert!(
            (500_000..2_500_000).contains(&latency_us),
            "latency {latency_us}us should be bounded by the poll period"
        );
        // Idle polls happened too: ~3 carrier messages for 1 event.
        let stats = bridge.stats();
        assert!(stats.carrier_messages >= 2);
        assert_eq!(stats.events_delivered, 1);
        bridge.stop();
    }

    #[test]
    fn stopped_bridge_stops_polling() {
        let (sim, vsg, _queue) = polling_world();
        let bridge =
            PollingBridge::start(&vsg, "hall-motion", SimDuration::from_secs(1), |_, _| {});
        sim.run_for(SimDuration::from_secs(3));
        let before = bridge.stats().carrier_messages;
        bridge.stop();
        sim.run_for(SimDuration::from_secs(5));
        assert_eq!(bridge.stats().carrier_messages, before);
    }

    #[test]
    fn sip_push_is_immediate_and_filtered() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let source = net.attach("src-gw");
        // Two sink gateways with different interests.
        let proto = SipLike::new();
        let sink_a = proto.bind(&net, "gw-a", Arc::new(|_, _| Ok(Value::Null)));
        let sink_b = proto.bind(&net, "gw-b", Arc::new(|_, _| Ok(Value::Null)));

        let got_a: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let got_a2 = got_a.clone();
        let sub_a = SipSubscriber::install(&net, sink_a, move |_, svc, _| {
            got_a2.lock().push(svc.to_owned());
        });
        let got_b: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let got_b2 = got_b.clone();
        let _sub_b = SipSubscriber::install(&net, sink_b, move |_, svc, _| {
            got_b2.lock().push(svc.to_owned());
        });

        let publisher = SipPublisher::new(&net, source);
        publisher.subscribe(sink_a, "%");
        publisher.subscribe(sink_b, "door-motion");

        let before = sim.now();
        publisher.publish("hall-motion", &Value::Bool(true));
        let latency = sim.now() - before;
        assert!(latency < SimDuration::from_millis(1), "push took {latency}");

        publisher.publish("door-motion", &Value::Bool(true));
        assert_eq!(
            *got_a.lock(),
            vec!["hall-motion".to_owned(), "door-motion".to_owned()]
        );
        assert_eq!(*got_b.lock(), vec!["door-motion".to_owned()]);
        assert_eq!(sub_a.received(), 2);

        publisher.unsubscribe(sink_a);
        publisher.publish("hall-motion", &Value::Bool(false));
        assert_eq!(sub_a.received(), 2);
        assert_eq!(publisher.stats().carrier_messages, 3);
    }

    /// Two subscribing sink gateways with handlers that record
    /// `(service, event)` per delivery, plus the publisher's network.
    #[allow(clippy::type_complexity)]
    fn fanout_world() -> (
        Sim,
        Network,
        NodeId,
        (NodeId, Arc<Mutex<Vec<(String, Value)>>>),
        (NodeId, Arc<Mutex<Vec<(String, Value)>>>),
    ) {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let source = net.attach("src-gw");
        let proto = SipLike::new();
        let mut sinks = Vec::new();
        for name in ["gw-a", "gw-b"] {
            let node = proto.bind(&net, name, Arc::new(|_, _| Ok(Value::Null)));
            let got: Arc<Mutex<Vec<(String, Value)>>> = Arc::new(Mutex::new(Vec::new()));
            let got2 = got.clone();
            // The handler stays installed on the network; the
            // subscriber guard only carries a counter.
            let _sub = SipSubscriber::install(&net, node, move |_, svc, e| {
                got2.lock().push((svc.to_owned(), e.clone()));
            });
            sinks.push((node, got));
        }
        let b = sinks.pop().unwrap();
        let a = sinks.pop().unwrap();
        (sim, net, source, a, b)
    }

    #[test]
    fn batched_publisher_coalesces_the_fanout() {
        let (_sim, net, source, (sink_a, got_a), (sink_b, got_b)) = fanout_world();
        let publisher = SipPublisher::new(&net, source).with_batching(BatchPolicy::default());
        publisher.subscribe(sink_a, "%");
        publisher.subscribe(sink_b, "%");

        // Eight events back-to-back: the first finds both peers idle
        // and leaves immediately; the other seven coalesce per peer.
        for i in 0..8 {
            publisher.publish("hall-motion", &Value::Int(i));
        }
        publisher.flush();

        let stats = publisher.stats();
        assert_eq!(stats.events_delivered, 16);
        assert_eq!(stats.events_dropped, 0);
        assert_eq!(
            stats.carrier_messages, 4,
            "2 idle singles + 2 batch frames, not 16 NOTIFYs"
        );
        // Every event arrived, in publish order, on both sinks.
        let want: Vec<(String, Value)> = (0..8)
            .map(|i| ("hall-motion".to_owned(), Value::Int(i)))
            .collect();
        assert_eq!(*got_a.lock(), want);
        assert_eq!(*got_b.lock(), want);
        // Each delivered event recorded its queue wait.
        assert_eq!(publisher.metrics().snapshot().queue_wait.count, 16);
    }

    #[test]
    fn batched_publisher_deadline_timer_flushes_stragglers() {
        let (sim, net, source, (sink_a, got_a), _b) = fanout_world();
        let publisher = SipPublisher::new(&net, source).with_batching(BatchPolicy::default());
        publisher.subscribe(sink_a, "%");
        for i in 0..3 {
            publisher.publish("hall-motion", &Value::Int(i));
        }
        // No explicit flush: the max-delay timer drains the queue as
        // virtual time passes.
        sim.run_for(SimDuration::from_millis(10));
        assert_eq!(publisher.stats().events_delivered, 3);
        assert_eq!(got_a.lock().len(), 3);
        // And the straggler wait is bounded by the Nagle deadline plus
        // one timer period.
        let snap = publisher.metrics().snapshot();
        let mean = snap.queue_wait.mean_us();
        assert!(mean < 5_000.0, "mean queue wait {mean}us");
    }

    #[test]
    fn batched_publisher_drops_loudly_when_a_peer_queue_fills() {
        let (_sim, net, source, (sink_a, _got_a), _b) = fanout_world();
        let publisher = SipPublisher::new(&net, source).with_batching(BatchPolicy {
            max_batch: 64,
            max_queue: 2,
            ..BatchPolicy::default()
        });
        publisher.subscribe(sink_a, "%");
        for i in 0..5 {
            publisher.publish("hall-motion", &Value::Int(i));
        }
        // 1 idle single + 2 queued; events 3 and 4 hit the bound.
        assert_eq!(publisher.stats().events_dropped, 2);
        publisher.flush();
        assert_eq!(publisher.stats().events_delivered, 3);
    }

    #[test]
    fn unbatched_publish_counts_undeliverable_events() {
        let (sim, net, source, (sink_a, _got_a), _b) = fanout_world();
        let publisher = SipPublisher::new(&net, source);
        publisher.subscribe(sink_a, "%");
        publisher.publish("hall-motion", &Value::Bool(true));
        let t = sim.now();
        net.set_fault_plan(simnet::FaultPlan::new().node_down(
            sink_a,
            t,
            t + SimDuration::from_secs(1),
        ));
        publisher.publish("hall-motion", &Value::Bool(false));
        let stats = publisher.stats();
        assert_eq!(stats.carrier_messages, 2);
        assert_eq!(stats.events_delivered, 1);
        assert_eq!(
            stats.events_dropped, 1,
            "a lost NOTIFY must be counted, not silently forgotten"
        );
    }
}
