//! Dynamic service activation — the first §6 future-work item.
//!
//! "We are working on the deployment of novel … middleware which applies
//! dynamic service activation" (§6). The prototype couldn't start a
//! service on demand: if a VCR's control service wasn't running, a call
//! failed. This module adds the missing piece to the framework proper:
//! an [`Activator`] registered with a gateway lazily *activates*
//! (exports) a service the first time somebody asks for it, and can
//! deactivate idle services to reclaim appliance resources.

use crate::error::MetaError;
use crate::service::{ServiceInvoker, VirtualService};
use crate::vsg::Vsg;
use parking_lot::Mutex;
use simnet::{Sim, SimDuration, SimTime};
use soap::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Builds the live invoker for a service when it is first needed.
///
/// In a real appliance this is "power up the device / launch the control
/// servlet"; the returned invoker is then exported as usual.
pub type ActivationFactory =
    Box<dyn FnMut(&Sim) -> Result<Box<dyn ServiceInvoker>, MetaError> + Send>;

struct Registration {
    service: VirtualService,
    factory: ActivationFactory,
    /// Virtual time the activation itself costs (device spin-up).
    spin_up: SimDuration,
}

struct ActiveInfo {
    last_used: SimTime,
}

struct ActivatorState {
    registered: HashMap<String, Registration>,
    active: HashMap<String, ActiveInfo>,
    activations: u64,
    deactivations: u64,
}

/// Lazily activates services on a gateway.
#[derive(Clone)]
pub struct Activator {
    vsg: Vsg,
    state: Arc<Mutex<ActivatorState>>,
}

/// Counters for tests and the ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActivationStats {
    /// Services activated so far.
    pub activations: u64,
    /// Services deactivated (idle-reaped) so far.
    pub deactivations: u64,
    /// Currently active services.
    pub currently_active: usize,
}

impl Activator {
    /// Creates an activator for `vsg`.
    pub fn new(vsg: &Vsg) -> Activator {
        Activator {
            vsg: vsg.clone(),
            state: Arc::new(Mutex::new(ActivatorState {
                registered: HashMap::new(),
                active: HashMap::new(),
                activations: 0,
                deactivations: 0,
            })),
        }
    }

    /// Registers an *activatable* service: it is published in the VSR
    /// immediately (so it is discoverable) but its invoker is not built
    /// until first use. The interim invoker activates on demand.
    pub fn register(
        &self,
        service: VirtualService,
        spin_up: SimDuration,
        factory: impl FnMut(&Sim) -> Result<Box<dyn ServiceInvoker>, MetaError> + Send + 'static,
    ) -> Result<(), MetaError> {
        let name = service.name.clone();
        self.state.lock().registered.insert(
            name.clone(),
            Registration {
                service: service.clone(),
                factory: Box::new(factory),
                spin_up,
            },
        );
        // Export a trampoline: on first call it activates the real
        // service (replacing itself), then re-dispatches.
        let activator = self.clone();
        self.vsg.export(
            service,
            move |sim: &Sim, op: &str, args: &[(String, Value)]| {
                activator.activate(sim, &name)?;
                // Re-enter through the gateway: the real invoker is now
                // installed under the same name.
                activator.vsg.invoke(sim, &name, op, args)
            },
        )
    }

    /// Activates `name` now (idempotent). Charges the spin-up time.
    pub fn activate(&self, sim: &Sim, name: &str) -> Result<(), MetaError> {
        let mut st = self.state.lock();
        if st.active.contains_key(name) {
            st.active.get_mut(name).expect("checked").last_used = sim.now();
            return Ok(());
        }
        let reg = st
            .registered
            .get_mut(name)
            .ok_or_else(|| MetaError::UnknownService(name.to_owned()))?;
        sim.advance(reg.spin_up);
        let invoker = (reg.factory)(sim)?;
        let service = reg.service.clone();
        st.activations += 1;
        st.active.insert(
            name.to_owned(),
            ActiveInfo {
                last_used: sim.now(),
            },
        );
        drop(st);
        sim.trace("activator", format!("activated {name}"));

        // Wrap the invoker so usage refreshes the idle clock.
        let activator = self.clone();
        let name2 = name.to_owned();
        let invoker = Arc::new(Mutex::new(invoker));
        self.vsg.export(
            service,
            move |sim: &Sim, op: &str, args: &[(String, Value)]| {
                if let Some(info) = activator.state.lock().active.get_mut(&name2) {
                    info.last_used = sim.now();
                }
                invoker.lock().invoke(sim, op, args)
            },
        )
    }

    /// Deactivates `name`: swaps the trampoline back in so a later call
    /// re-activates. Returns `false` if it was not active.
    pub fn deactivate(&self, name: &str) -> Result<bool, MetaError> {
        let (was_active, service, spin_up_known) = {
            let mut st = self.state.lock();
            let was = st.active.remove(name).is_some();
            if was {
                st.deactivations += 1;
            }
            let reg = st.registered.get(name);
            (was, reg.map(|r| r.service.clone()), reg.is_some())
        };
        if !was_active || !spin_up_known {
            return Ok(false);
        }
        let service = service.expect("registered");
        let activator = self.clone();
        let name2 = name.to_owned();
        self.vsg.export(
            service,
            move |sim: &Sim, op: &str, args: &[(String, Value)]| {
                activator.activate(sim, &name2)?;
                activator.vsg.invoke(sim, &name2, op, args)
            },
        )?;
        Ok(true)
    }

    /// Deactivates every service idle for at least `max_idle` at `now`.
    /// Returns the names reaped.
    pub fn reap_idle(&self, now: SimTime, max_idle: SimDuration) -> Vec<String> {
        let victims: Vec<String> = self
            .state
            .lock()
            .active
            .iter()
            .filter(|(_, info)| now - info.last_used >= max_idle)
            .map(|(n, _)| n.clone())
            .collect();
        let mut reaped = Vec::new();
        for name in victims {
            if self.deactivate(&name).unwrap_or(false) {
                reaped.push(name);
            }
        }
        reaped
    }

    /// Starts a periodic idle reaper.
    pub fn start_reaper(&self, period: SimDuration, max_idle: SimDuration) -> simnet::RepeatHandle {
        let activator = self.clone();
        self.vsg.backbone().sim().every(period, move |sim| {
            let _ = activator.reap_idle(sim.now(), max_idle);
        })
    }

    /// Current counters.
    pub fn stats(&self) -> ActivationStats {
        let st = self.state.lock();
        ActivationStats {
            activations: st.activations,
            deactivations: st.deactivations,
            currently_active: st.active.len(),
        }
    }
}

impl fmt::Debug for Activator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        f.debug_struct("Activator")
            .field("active", &s.currently_active)
            .field("activations", &s.activations)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::catalog;
    use crate::protocol::Soap11;
    use crate::service::Middleware;
    use crate::vsr::Vsr;
    use simnet::Network;

    fn world() -> (Sim, Vsg, Activator) {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let vsr = Vsr::start(&net);
        let vsg = Vsg::start(&net, "gw", Arc::new(Soap11::new()), vsr.node()).unwrap();
        let activator = Activator::new(&vsg);
        (sim, vsg, activator)
    }

    fn register_counter_lamp(activator: &Activator, vsg: &Vsg, built: Arc<Mutex<u32>>) {
        let built2 = built;
        activator
            .register(
                VirtualService::new("lazy-lamp", catalog::lamp(), Middleware::X10, vsg.name()),
                SimDuration::from_millis(500),
                move |_| {
                    *built2.lock() += 1;
                    let on = Arc::new(Mutex::new(false));
                    Ok(Box::new(
                        move |_: &Sim, op: &str, args: &[(String, Value)]| match op {
                            "switch" => {
                                *on.lock() = args
                                    .iter()
                                    .find(|(k, _)| k == "on")
                                    .and_then(|(_, v)| v.as_bool())
                                    .unwrap_or(false);
                                Ok(Value::Null)
                            }
                            "status" => Ok(Value::Bool(*on.lock())),
                            _ => Ok(Value::Null),
                        },
                    ))
                },
            )
            .unwrap();
    }

    #[test]
    fn first_call_activates_and_pays_spin_up() {
        let (sim, vsg, activator) = world();
        let built = Arc::new(Mutex::new(0u32));
        register_counter_lamp(&activator, &vsg, built.clone());

        // Discoverable before activation.
        assert!(vsg.vsr().resolve("lazy-lamp").is_ok());
        assert_eq!(*built.lock(), 0);

        let t0 = sim.now();
        let got = vsg.invoke(&sim, "lazy-lamp", "status", &[]).unwrap();
        assert_eq!(got, Value::Bool(false));
        assert_eq!(*built.lock(), 1);
        assert!(
            sim.now() - t0 >= SimDuration::from_millis(500),
            "spin-up charged"
        );
        assert_eq!(activator.stats().activations, 1);

        // Second call: already active, no new build, no spin-up.
        let t0 = sim.now();
        vsg.invoke(&sim, "lazy-lamp", "status", &[]).unwrap();
        assert_eq!(*built.lock(), 1);
        assert!(sim.now() - t0 < SimDuration::from_millis(500));
    }

    #[test]
    fn deactivation_and_reactivation_preserve_discoverability() {
        let (sim, vsg, activator) = world();
        let built = Arc::new(Mutex::new(0u32));
        register_counter_lamp(&activator, &vsg, built.clone());

        vsg.invoke(
            &sim,
            "lazy-lamp",
            "switch",
            &[("on".into(), Value::Bool(true))],
        )
        .unwrap();
        assert!(activator.deactivate("lazy-lamp").unwrap());
        assert!(!activator.deactivate("lazy-lamp").unwrap(), "idempotent");
        assert_eq!(activator.stats().currently_active, 0);

        // Still in the VSR; next call transparently re-activates (state
        // resets — the appliance power-cycled, honestly).
        let got = vsg.invoke(&sim, "lazy-lamp", "status", &[]).unwrap();
        assert_eq!(got, Value::Bool(false));
        assert_eq!(*built.lock(), 2);
        assert_eq!(activator.stats().activations, 2);
        assert_eq!(activator.stats().deactivations, 1);
    }

    #[test]
    fn idle_reaper_deactivates_unused_services() {
        let (sim, vsg, activator) = world();
        let built = Arc::new(Mutex::new(0u32));
        register_counter_lamp(&activator, &vsg, built);
        let _reaper =
            activator.start_reaper(SimDuration::from_secs(10), SimDuration::from_secs(60));

        vsg.invoke(&sim, "lazy-lamp", "status", &[]).unwrap();
        assert_eq!(activator.stats().currently_active, 1);

        // Keep using it: survives.
        for _ in 0..5 {
            sim.run_for(SimDuration::from_secs(30));
            vsg.invoke(&sim, "lazy-lamp", "status", &[]).unwrap();
        }
        assert_eq!(activator.stats().currently_active, 1);

        // Go idle: reaped.
        sim.run_for(SimDuration::from_secs(120));
        assert_eq!(activator.stats().currently_active, 0);
        assert!(activator.stats().deactivations >= 1);
    }

    #[test]
    fn factory_failure_surfaces_and_allows_retry() {
        let (sim, vsg, activator) = world();
        let attempts = Arc::new(Mutex::new(0u32));
        let attempts2 = attempts.clone();
        activator
            .register(
                VirtualService::new("flaky", catalog::lamp(), Middleware::X10, vsg.name()),
                SimDuration::ZERO,
                move |_| {
                    *attempts2.lock() += 1;
                    if *attempts2.lock() == 1 {
                        Err(MetaError::native("x10", "device did not answer"))
                    } else {
                        Ok(Box::new(|_: &Sim, _: &str, _: &[(String, Value)]| {
                            Ok(Value::Bool(true))
                        }))
                    }
                },
            )
            .unwrap();

        assert!(vsg.invoke(&sim, "flaky", "status", &[]).is_err());
        assert_eq!(
            activator.stats().activations,
            0,
            "failed activation not counted"
        );
        // Retry succeeds.
        assert_eq!(
            vsg.invoke(&sim, "flaky", "status", &[]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(*attempts.lock(), 2);
    }

    #[test]
    fn unknown_service_activation_errors() {
        let (sim, _vsg, activator) = world();
        assert!(matches!(
            activator.activate(&sim, "ghost"),
            Err(MetaError::UnknownService(_))
        ));
        assert!(!activator.deactivate("ghost").unwrap());
    }
}
