//! The gateway's record-level resolution cache.
//!
//! The original route cache memoised only the serving gateway's
//! `NodeId`, so every miss re-fetched and re-parsed the service's full
//! WSDL from the VSR. This cache holds the entire resolved
//! [`ServiceRecord`] (interface interned behind `Arc`) together with
//! the gateway node, bounded by an LRU capacity, with explicit
//! invalidation on withdraw/re-export and short-lived negative entries
//! so repeated lookups of a nonexistent service don't hammer the VSR.

use crate::intern::Name;
use crate::metrics::CacheStats;
use crate::vsr::ServiceRecord;
use simnet::NodeId;
use std::collections::HashMap;
use std::sync::Arc;

/// Default per-gateway capacity: generous for a home's service count
/// while still bounding a pathological churn workload.
pub const DEFAULT_CAPACITY: usize = 512;

/// How many lookups a negative entry may answer before it expires and
/// the next lookup re-consults the VSR. Keeps a service published
/// elsewhere *after* a failed lookup from becoming invisible for long.
const NEGATIVE_USE_BUDGET: u32 = 4;

enum Entry {
    Resolved {
        record: ServiceRecord,
        gw_node: NodeId,
        last_used: u64,
    },
    Negative {
        budget: u32,
        last_used: u64,
    },
    /// An invalidated resolution kept around as a last resort: normal
    /// lookups skip it (the route is suspect), but when the VSR itself
    /// is unreachable a gateway in degraded mode may still serve it via
    /// [`ResolutionCache::stale_lookup`] — availability over freshness.
    Stale {
        record: ServiceRecord,
        gw_node: NodeId,
        last_used: u64,
    },
}

impl Entry {
    fn last_used(&self) -> u64 {
        match self {
            Entry::Resolved { last_used, .. }
            | Entry::Negative { last_used, .. }
            | Entry::Stale { last_used, .. } => *last_used,
        }
    }
}

/// Outcome of a cache lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup {
    /// Known record and serving gateway node — zero VSR traffic needed.
    Hit(ServiceRecord, NodeId),
    /// Known-missing service — answer `UnknownService` without a VSR
    /// round trip.
    NegativeHit,
    /// Unknown to the cache; resolve via the VSR.
    Miss,
}

impl Lookup {
    /// A short outcome label (used to name `cache-hit` trace spans).
    pub fn label(&self) -> &'static str {
        match self {
            Lookup::Hit(..) => "hit",
            Lookup::NegativeHit => "negative-hit",
            Lookup::Miss => "miss",
        }
    }
}

/// A bounded LRU cache of VSR resolutions.
pub struct ResolutionCache {
    entries: HashMap<Name, Entry>,
    capacity: usize,
    tick: u64,
    stats: CacheStats,
}

impl Default for ResolutionCache {
    fn default() -> Self {
        ResolutionCache::new(DEFAULT_CAPACITY)
    }
}

impl ResolutionCache {
    /// Creates a cache bounded to `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> ResolutionCache {
        ResolutionCache {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Looks up `service`, updating recency and counters. A negative
    /// entry spends one unit of its budget and expires at zero.
    pub fn lookup(&mut self, service: &str) -> Lookup {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(service) {
            Some(Entry::Resolved {
                record,
                gw_node,
                last_used,
            }) => {
                *last_used = tick;
                self.stats.hits += 1;
                Lookup::Hit(record.clone(), *gw_node)
            }
            Some(Entry::Negative { budget, last_used }) => {
                *last_used = tick;
                self.stats.negative_hits += 1;
                *budget -= 1;
                if *budget == 0 {
                    self.entries.remove(service);
                }
                Lookup::NegativeHit
            }
            // A stale entry is not a route — the VSR must be re-asked.
            Some(Entry::Stale { .. }) | None => {
                self.stats.misses += 1;
                Lookup::Miss
            }
        }
    }

    /// Serves an invalidated (stale) resolution, if one survives. Only
    /// for degraded mode: the caller has already failed to reach the
    /// VSR and prefers a possibly-outdated route over no route at all.
    pub fn stale_lookup(&mut self, service: &str) -> Option<(ServiceRecord, NodeId)> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(service) {
            Some(Entry::Stale {
                record,
                gw_node,
                last_used,
            }) => {
                *last_used = tick;
                self.stats.stale_serves += 1;
                Some((record.clone(), *gw_node))
            }
            _ => None,
        }
    }

    /// Caches a successful resolution, displacing the least recently
    /// used entry if the cache is full.
    pub fn insert_resolved(&mut self, service: &str, record: ServiceRecord, gw_node: NodeId) {
        self.tick += 1;
        let entry = Entry::Resolved {
            record,
            gw_node,
            last_used: self.tick,
        };
        self.insert(service, entry);
    }

    /// Caches a definitive "no such service" answer from the VSR.
    /// Never call this for transport failures — a dead link says
    /// nothing about whether the service exists.
    pub fn insert_negative(&mut self, service: &str) {
        self.tick += 1;
        let entry = Entry::Negative {
            budget: NEGATIVE_USE_BUDGET,
            last_used: self.tick,
        };
        self.insert(service, entry);
    }

    fn insert(&mut self, service: &str, entry: Entry) {
        if !self.entries.contains_key(service) && self.entries.len() >= self.capacity {
            self.evict_lru();
        }
        // Interned: a service resolved before (or named by a live
        // ServiceRecord) reuses its existing allocation.
        self.entries.insert(Name::new(service), entry);
    }

    fn evict_lru(&mut self) {
        if let Some(victim) = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_used())
            .map(|(name, _)| name.clone())
        {
            self.entries.remove(&victim);
            self.stats.evictions += 1;
        }
    }

    /// Invalidates the entry for `service` (withdraw, re-export, or a
    /// stale route detected mid-invocation). A resolved entry is
    /// demoted to stale — invisible to [`Self::lookup`] but available
    /// to [`Self::stale_lookup`] when the VSR is down; a negative entry
    /// is dropped. Returns whether a live entry was invalidated.
    pub fn invalidate(&mut self, service: &str) -> bool {
        match self.entries.get_mut(service) {
            Some(entry @ Entry::Resolved { .. }) => {
                let demoted = match entry {
                    Entry::Resolved {
                        record,
                        gw_node,
                        last_used,
                    } => Entry::Stale {
                        record: record.clone(),
                        gw_node: *gw_node,
                        last_used: *last_used,
                    },
                    _ => unreachable!(),
                };
                *entry = demoted;
                self.stats.invalidations += 1;
                true
            }
            Some(Entry::Negative { .. }) => {
                self.entries.remove(service);
                self.stats.invalidations += 1;
                true
            }
            Some(Entry::Stale { .. }) | None => false,
        }
    }

    /// Drops every entry. Live (resolved/negative) entries count as
    /// invalidations; stale entries were already counted when demoted.
    pub fn clear(&mut self) {
        self.stats.invalidations += self
            .entries
            .values()
            .filter(|e| !matches!(e, Entry::Stale { .. }))
            .count() as u64;
        self.entries.clear();
    }

    /// Re-bounds the cache, evicting LRU entries if shrinking below
    /// the current population.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.entries.len() > self.capacity {
            self.evict_lru();
        }
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// Counters for a [`ShardMapCache`] (test and metrics introspection).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardMapCacheStats {
    /// Successful map refreshes stored via [`ShardMapCache::put`].
    pub refreshes: u64,
    /// Invalidations (typically after a `MovedShard` redirect).
    pub invalidations: u64,
}

struct ShardMapCacheInner {
    current: Option<Arc<crate::federation::ShardMap>>,
    /// The most recent map ever seen, kept across invalidations: even
    /// a stale map names replicas worth asking for a fresh one, which
    /// is how a client rides out the bootstrap replica being down.
    last: Option<Arc<crate::federation::ShardMap>>,
    stats: ShardMapCacheStats,
}

/// A client-side cache of the federation's [`ShardMap`]. Shared (via
/// `Arc`) between the clones of one `VsrClient`, so a redirect
/// observed on one cloned handle refreshes routing for all of them.
///
/// [`ShardMap`]: crate::federation::ShardMap
pub struct ShardMapCache {
    inner: parking_lot::Mutex<ShardMapCacheInner>,
}

impl Default for ShardMapCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardMapCache {
    /// An empty cache: the first routing decision must fetch a map.
    pub fn new() -> ShardMapCache {
        ShardMapCache {
            inner: parking_lot::Mutex::new(ShardMapCacheInner {
                current: None,
                last: None,
                stats: ShardMapCacheStats::default(),
            }),
        }
    }

    /// The trusted current map, if any.
    pub fn get(&self) -> Option<Arc<crate::federation::ShardMap>> {
        self.inner.lock().current.clone()
    }

    /// The current map or, failing that, the last map ever seen (no
    /// longer trusted for routing, but still a source of candidate
    /// replicas to ask for a fresh one).
    pub fn peek(&self) -> Option<Arc<crate::federation::ShardMap>> {
        let inner = self.inner.lock();
        inner.current.clone().or_else(|| inner.last.clone())
    }

    /// Stores a freshly fetched map.
    pub fn put(&self, map: Arc<crate::federation::ShardMap>) {
        let mut inner = self.inner.lock();
        inner.current = Some(map.clone());
        inner.last = Some(map);
        inner.stats.refreshes += 1;
    }

    /// Drops trust in the current map (a replica answered
    /// `MovedShard`, so routing is stale) while keeping it reachable
    /// via [`ShardMapCache::peek`].
    pub fn invalidate(&self) {
        let mut inner = self.inner.lock();
        inner.current = None;
        inner.stats.invalidations += 1;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ShardMapCacheStats {
        self.inner.lock().stats
    }
}

impl std::fmt::Debug for ShardMapCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("ShardMapCache")
            .field("cached", &inner.current.is_some())
            .field("stats", &inner.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::catalog;
    use crate::service::Middleware;
    use std::sync::Arc;

    fn record(name: &str) -> ServiceRecord {
        ServiceRecord {
            name: Name::new(name),
            middleware: Middleware::X10,
            gateway: "x10-gw".to_owned(),
            interface: Arc::new(catalog::lamp()),
            contexts: vec![],
        }
    }

    #[test]
    fn hit_miss_and_counters() {
        let mut cache = ResolutionCache::new(8);
        assert_eq!(cache.lookup("lamp"), Lookup::Miss);
        cache.insert_resolved("lamp", record("lamp"), NodeId(7));
        match cache.lookup("lamp") {
            Lookup::Hit(rec, node) => {
                assert_eq!(rec.name, "lamp");
                assert_eq!(node, NodeId(7));
            }
            other => panic!("expected hit, got {other:?}"),
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!(stats.hit_ratio() > 0.49 && stats.hit_ratio() < 0.51);
    }

    #[test]
    fn lru_eviction_respects_recency() {
        let mut cache = ResolutionCache::new(2);
        cache.insert_resolved("a", record("a"), NodeId(1));
        cache.insert_resolved("b", record("b"), NodeId(2));
        // Touch "a" so "b" is the LRU victim.
        assert!(matches!(cache.lookup("a"), Lookup::Hit(..)));
        cache.insert_resolved("c", record("c"), NodeId(3));
        assert_eq!(cache.len(), 2);
        assert!(matches!(cache.lookup("a"), Lookup::Hit(..)));
        assert_eq!(cache.lookup("b"), Lookup::Miss);
        assert!(matches!(cache.lookup("c"), Lookup::Hit(..)));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn negative_entries_expire_after_budget() {
        let mut cache = ResolutionCache::new(8);
        cache.insert_negative("ghost");
        for _ in 0..NEGATIVE_USE_BUDGET {
            assert_eq!(cache.lookup("ghost"), Lookup::NegativeHit);
        }
        // Budget exhausted: the VSR gets asked again.
        assert_eq!(cache.lookup("ghost"), Lookup::Miss);
        assert_eq!(cache.stats().negative_hits, u64::from(NEGATIVE_USE_BUDGET));
    }

    #[test]
    fn invalidation_and_clear() {
        let mut cache = ResolutionCache::new(8);
        cache.insert_resolved("a", record("a"), NodeId(1));
        assert!(cache.invalidate("a"));
        assert!(!cache.invalidate("a"));
        assert_eq!(cache.lookup("a"), Lookup::Miss);
        cache.insert_resolved("b", record("b"), NodeId(2));
        cache.insert_negative("c");
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().invalidations, 3);
    }

    #[test]
    fn shrinking_capacity_evicts_lru_first() {
        let mut cache = ResolutionCache::new(4);
        for (i, name) in ["a", "b", "c", "d"].into_iter().enumerate() {
            cache.insert_resolved(name, record(name), NodeId(i as u32));
        }
        assert!(matches!(cache.lookup("a"), Lookup::Hit(..)));
        cache.set_capacity(2);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.capacity(), 2);
        assert!(
            matches!(cache.lookup("a"), Lookup::Hit(..)),
            "recently used survives"
        );
        assert!(
            matches!(cache.lookup("d"), Lookup::Hit(..)),
            "newest survives"
        );
    }

    #[test]
    fn invalidated_entries_remain_servable_as_stale() {
        let mut cache = ResolutionCache::new(8);
        cache.insert_resolved("lamp", record("lamp"), NodeId(7));
        assert!(cache.invalidate("lamp"));
        // Invisible to the normal path…
        assert_eq!(cache.lookup("lamp"), Lookup::Miss);
        // …but a degraded gateway can still get a route.
        let (rec, node) = cache.stale_lookup("lamp").expect("stale route");
        assert_eq!((rec.name.as_str(), node), ("lamp", NodeId(7)));
        assert_eq!(cache.stats().stale_serves, 1);
        // A fresh resolution replaces the stale entry outright.
        cache.insert_resolved("lamp", record("lamp"), NodeId(9));
        assert!(matches!(cache.lookup("lamp"), Lookup::Hit(..)));
        assert!(cache.stale_lookup("lamp").is_none());
        // Nothing stale for unknown services.
        assert!(cache.stale_lookup("ghost").is_none());
    }

    #[test]
    fn churn_stays_bounded() {
        let mut cache = ResolutionCache::new(16);
        for i in 0..1000 {
            cache.insert_resolved(&format!("svc-{i}"), record(&format!("svc-{i}")), NodeId(1));
            assert!(cache.len() <= 16);
        }
        assert_eq!(cache.stats().evictions, 1000 - 16);
    }
}
