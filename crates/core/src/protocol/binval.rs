//! A compact binary codec for canonical [`Value`]s.
//!
//! Used by the `CompactBinary` VSG protocol (the E4 strawman showing what
//! SOAP's XML costs) and as the SIP-like protocol's body encoding.
//!
//! Three decode tiers share one wire format:
//!
//! * [`from_bytes`] — owned [`Value`] tree (copies every string).
//! * [`from_bytes_ref`] — borrowed [`ValueRef`] tree: strings and byte
//!   runs are slices of the frame, only the tree spine allocates.
//! * [`ListStream`] — single-pass iteration over a wire-form list's
//!   items without materialising the outer list at all (how batch
//!   frames are demultiplexed member by member).
//!
//! There is additionally a *length-prefixed streaming frame* mode
//! ([`FrameEncoder`] / [`StreamDecoder`]) for large batch frames moving
//! through chunked transports: each item is prefixed with its encoded
//! byte length, so the receiver can decode item-by-item as chunks
//! arrive, holding at most one frame's worth of bytes (never the frame
//! *plus* a decoded copy of all of it — the old double buffer).

use soap::Value;

/// Encodes a value.
pub fn encode(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(3);
            out.extend_from_slice(&f.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(4);
            write_len(out, s.len());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(5);
            write_len(out, b.len());
            out.extend_from_slice(b);
        }
        Value::List(items) => {
            out.push(6);
            write_len(out, items.len());
            for item in items {
                encode(item, out);
            }
        }
        Value::Record(fields) => {
            out.push(7);
            write_len(out, fields.len());
            for (k, v) in fields {
                write_len(out, k.len());
                out.extend_from_slice(k.as_bytes());
                encode(v, out);
            }
        }
    }
}

/// Encodes to a fresh buffer.
pub fn to_bytes(v: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    encode(v, &mut out);
    out
}

// ---- borrowed-field encoders ------------------------------------------
//
// The invocation hot path marshals a `VsgRequest` whose arguments it only
// borrows; these helpers emit the exact wire form of the corresponding
// owned `Value` without first cloning anything into one.

/// Encodes a borrowed string in `Value::Str` wire form.
pub fn encode_str(s: &str, out: &mut Vec<u8>) {
    out.push(4);
    write_len(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

/// Writes a record header for `len` fields. The caller must follow with
/// exactly `len` fields, each emitted via [`encode_field_key`] plus one
/// value encoder.
pub fn begin_record(len: usize, out: &mut Vec<u8>) {
    out.push(7);
    write_len(out, len);
}

/// Writes a list header for `len` items. The caller must follow with
/// exactly `len` encoded values — this is how a batch frame splices
/// members that were each marshalled once, ahead of time, into one
/// `Value::List` wire form without re-encoding them per flush.
pub fn begin_list(len: usize, out: &mut Vec<u8>) {
    out.push(6);
    write_len(out, len);
}

/// Writes one record field key; follow with the field's value.
pub fn encode_field_key(key: &str, out: &mut Vec<u8>) {
    write_len(out, key.len());
    out.extend_from_slice(key.as_bytes());
}

/// Encodes one complete string-valued record field — key then
/// `Value::Str` wire form — from borrows. The shape every tagged
/// metadata field of the binary VSG request (`s`, `o`, `t`) uses.
pub fn encode_str_field(key: &str, value: &str, out: &mut Vec<u8>) {
    encode_field_key(key, out);
    encode_str(value, out);
}

/// Encodes borrowed `(name, value)` pairs in `Value::Record` wire form.
/// Keys are anything str-shaped (`&str`, `String`, interned names) —
/// no caller has to materialise owned keys just to encode.
pub fn encode_record_fields<K: AsRef<str>>(fields: &[(K, Value)], out: &mut Vec<u8>) {
    begin_record(fields.len(), out);
    for (k, v) in fields {
        encode_field_key(k.as_ref(), out);
        encode(v, out);
    }
}

/// Decodes one value, advancing `pos`.
pub fn decode(data: &[u8], pos: &mut usize) -> Option<Value> {
    let tag = *data.get(*pos)?;
    *pos += 1;
    match tag {
        0 => Some(Value::Null),
        1 => {
            let b = *data.get(*pos)?;
            *pos += 1;
            Some(Value::Bool(b != 0))
        }
        2 => {
            let bytes = data.get(*pos..*pos + 8)?;
            *pos += 8;
            Some(Value::Int(i64::from_le_bytes(bytes.try_into().ok()?)))
        }
        3 => {
            let bytes = data.get(*pos..*pos + 8)?;
            *pos += 8;
            Some(Value::Float(f64::from_le_bytes(bytes.try_into().ok()?)))
        }
        4 => {
            let len = read_len(data, pos)?;
            let bytes = data.get(*pos..*pos + len)?;
            *pos += len;
            Some(Value::Str(std::str::from_utf8(bytes).ok()?.to_owned()))
        }
        5 => {
            let len = read_len(data, pos)?;
            let bytes = data.get(*pos..*pos + len)?;
            *pos += len;
            Some(Value::Bytes(bytes.to_vec()))
        }
        6 => {
            let len = read_len(data, pos)?;
            if len > data.len() {
                return None;
            }
            let mut items = Vec::with_capacity(len);
            for _ in 0..len {
                items.push(decode(data, pos)?);
            }
            Some(Value::List(items))
        }
        7 => {
            let len = read_len(data, pos)?;
            if len > data.len() {
                return None;
            }
            let mut fields = Vec::with_capacity(len);
            for _ in 0..len {
                let klen = read_len(data, pos)?;
                let kbytes = data.get(*pos..*pos + klen)?;
                *pos += klen;
                let key = std::str::from_utf8(kbytes).ok()?.to_owned();
                fields.push((key, decode(data, pos)?));
            }
            Some(Value::Record(fields))
        }
        _ => None,
    }
}

/// Decodes a whole buffer; fails on trailing bytes.
pub fn from_bytes(data: &[u8]) -> Option<Value> {
    let mut pos = 0;
    let v = decode(data, &mut pos)?;
    (pos == data.len()).then_some(v)
}

// ---- borrowed decode ---------------------------------------------------

/// A value decoded without copying: strings and byte runs are slices of
/// the frame buffer; only list/record spines allocate.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueRef<'a> {
    /// Explicit null.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// String slice of the frame.
    Str(&'a str),
    /// Byte slice of the frame.
    Bytes(&'a [u8]),
    /// Ordered list.
    List(Vec<ValueRef<'a>>),
    /// Named fields in order.
    Record(Vec<(&'a str, ValueRef<'a>)>),
}

impl<'a> ValueRef<'a> {
    /// Copies into an owned [`Value`].
    pub fn to_owned(&self) -> Value {
        match self {
            ValueRef::Null => Value::Null,
            ValueRef::Bool(b) => Value::Bool(*b),
            ValueRef::Int(i) => Value::Int(*i),
            ValueRef::Float(f) => Value::Float(*f),
            ValueRef::Str(s) => Value::Str((*s).to_owned()),
            ValueRef::Bytes(b) => Value::Bytes(b.to_vec()),
            ValueRef::List(items) => Value::List(items.iter().map(ValueRef::to_owned).collect()),
            ValueRef::Record(fields) => Value::Record(
                fields
                    .iter()
                    .map(|(k, v)| ((*k).to_owned(), v.to_owned()))
                    .collect(),
            ),
        }
    }

    /// The string slice, if this is a `Str`.
    pub fn as_str(&self) -> Option<&'a str> {
        match self {
            ValueRef::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The named field's value, if this is a `Record` containing it.
    pub fn field(&self, name: &str) -> Option<&ValueRef<'a>> {
        match self {
            ValueRef::Record(fields) => fields.iter().find(|(k, _)| *k == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Decodes one value without copying, advancing `pos`.
pub fn decode_ref<'a>(data: &'a [u8], pos: &mut usize) -> Option<ValueRef<'a>> {
    let tag = *data.get(*pos)?;
    *pos += 1;
    match tag {
        0 => Some(ValueRef::Null),
        1 => {
            let b = *data.get(*pos)?;
            *pos += 1;
            Some(ValueRef::Bool(b != 0))
        }
        2 => {
            let bytes = data.get(*pos..*pos + 8)?;
            *pos += 8;
            Some(ValueRef::Int(i64::from_le_bytes(bytes.try_into().ok()?)))
        }
        3 => {
            let bytes = data.get(*pos..*pos + 8)?;
            *pos += 8;
            Some(ValueRef::Float(f64::from_le_bytes(bytes.try_into().ok()?)))
        }
        4 => {
            let len = read_len(data, pos)?;
            let bytes = data.get(*pos..*pos + len)?;
            *pos += len;
            Some(ValueRef::Str(std::str::from_utf8(bytes).ok()?))
        }
        5 => {
            let len = read_len(data, pos)?;
            let bytes = data.get(*pos..*pos + len)?;
            *pos += len;
            Some(ValueRef::Bytes(bytes))
        }
        6 => {
            let len = read_len(data, pos)?;
            if len > data.len() {
                return None;
            }
            let mut items = Vec::with_capacity(len);
            for _ in 0..len {
                items.push(decode_ref(data, pos)?);
            }
            Some(ValueRef::List(items))
        }
        7 => {
            let len = read_len(data, pos)?;
            if len > data.len() {
                return None;
            }
            let mut fields = Vec::with_capacity(len);
            for _ in 0..len {
                let klen = read_len(data, pos)?;
                let kbytes = data.get(*pos..*pos + klen)?;
                *pos += klen;
                let key = std::str::from_utf8(kbytes).ok()?;
                fields.push((key, decode_ref(data, pos)?));
            }
            Some(ValueRef::Record(fields))
        }
        _ => None,
    }
}

/// Decodes a whole buffer without copying; fails on trailing bytes.
pub fn from_bytes_ref(data: &[u8]) -> Option<ValueRef<'_>> {
    let mut pos = 0;
    let v = decode_ref(data, &mut pos)?;
    (pos == data.len()).then_some(v)
}

/// Single-pass iteration over a wire-form list's items.
///
/// Where [`from_bytes`] on a batch frame materialises the outer
/// `Value::List` *and* every member before the first one is looked at,
/// `ListStream` verifies only the list header up front and then decodes
/// one member per [`ListStream::next_ref`] call — the demultiplexer can
/// convert, dispatch and drop each member before touching the next.
pub struct ListStream<'a> {
    data: &'a [u8],
    pos: usize,
    remaining: usize,
}

impl<'a> ListStream<'a> {
    /// Opens the list wire form starting at `data[0]`. Fails unless a
    /// list header is present.
    pub fn open(data: &'a [u8]) -> Option<ListStream<'a>> {
        let mut pos = 0;
        if *data.get(pos)? != 6 {
            return None;
        }
        pos += 1;
        let remaining = read_len(data, &mut pos)?;
        if remaining > data.len() {
            return None;
        }
        Some(ListStream {
            data,
            pos,
            remaining,
        })
    }

    /// Number of items not yet decoded.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Decodes the next item without copying; `None` when exhausted or
    /// on a malformed item.
    pub fn next_ref(&mut self) -> Option<ValueRef<'a>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        decode_ref(self.data, &mut self.pos)
    }

    /// True if every announced item was decoded and the buffer holds
    /// no trailing bytes.
    pub fn finished_clean(&self) -> bool {
        self.remaining == 0 && self.pos == self.data.len()
    }
}

// ---- length-prefixed streaming frames ----------------------------------

/// Encodes a streaming frame: a varint item count followed by items,
/// each prefixed with its encoded byte length.
///
/// The encoder owns one reusable scratch buffer sized to the largest
/// single item — the whole frame is never held twice. Call
/// [`FrameEncoder::begin`], then [`FrameEncoder::item`] per member,
/// writing into the same output the frame head went to.
#[derive(Default)]
pub struct FrameEncoder {
    scratch: Vec<u8>,
}

impl FrameEncoder {
    /// Creates an encoder (scratch grows to the largest item seen).
    pub fn new() -> FrameEncoder {
        FrameEncoder::default()
    }

    /// Writes the frame head announcing `count` items.
    pub fn begin(&mut self, count: usize, out: &mut Vec<u8>) {
        write_len(out, count);
    }

    /// Appends one item: varint byte-length prefix, then the item's
    /// ordinary wire form.
    pub fn item(&mut self, v: &Value, out: &mut Vec<u8>) {
        self.scratch.clear();
        encode(v, &mut self.scratch);
        write_len(out, self.scratch.len());
        out.extend_from_slice(&self.scratch);
    }

    /// Appends one already-encoded item (its plain wire bytes).
    pub fn item_bytes(&mut self, encoded: &[u8], out: &mut Vec<u8>) {
        write_len(out, encoded.len());
        out.extend_from_slice(encoded);
    }

    /// Current scratch capacity — the encode-side peak extra buffer.
    pub fn peak_scratch(&self) -> usize {
        self.scratch.capacity()
    }
}

/// Encodes `items` as one streaming frame into `out`. Convenience over
/// [`FrameEncoder`] for callers that already hold every item.
pub fn encode_frame_into(items: &[Value], out: &mut Vec<u8>) {
    let mut enc = FrameEncoder::new();
    enc.begin(items.len(), out);
    for v in items {
        enc.item(v, out);
    }
}

/// Incremental decoder for streaming frames arriving in arbitrary
/// chunks.
///
/// Feed bytes with [`StreamDecoder::push`]; drain decoded items with
/// [`StreamDecoder::next_item`]. Consumed bytes are dropped from the
/// internal buffer as each item completes, so the decoder holds at most
/// the bytes of items not yet decoded — bounded by one frame, never the
/// frame plus a second copy. [`StreamDecoder::peak_buffer`] reports the
/// high-water mark for harness asserts.
pub struct StreamDecoder {
    buf: Vec<u8>,
    expected: Option<usize>,
    yielded: usize,
    peak: usize,
    malformed: bool,
}

impl Default for StreamDecoder {
    fn default() -> Self {
        StreamDecoder::new()
    }
}

impl StreamDecoder {
    /// Creates an empty decoder awaiting a frame head.
    pub fn new() -> StreamDecoder {
        StreamDecoder {
            buf: Vec::new(),
            expected: None,
            yielded: 0,
            peak: 0,
            malformed: false,
        }
    }

    /// Feeds one chunk of frame bytes.
    pub fn push(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
        self.peak = self.peak.max(self.buf.len());
    }

    /// Decodes the next complete item, if one is buffered. `None`
    /// means "need more bytes" (or the frame is done / malformed —
    /// check [`StreamDecoder::is_malformed`] and
    /// [`StreamDecoder::finished`]).
    pub fn next_item(&mut self) -> Option<Value> {
        if self.malformed {
            return None;
        }
        let mut pos = 0;
        if self.expected.is_none() {
            match read_len(&self.buf, &mut pos) {
                Some(n) => {
                    self.expected = Some(n);
                    self.buf.drain(..pos);
                }
                None => return None, // head not complete yet
            }
        }
        if self.yielded >= self.expected.unwrap_or(0) {
            return None;
        }
        let mut pos = 0;
        let item_len = read_len(&self.buf, &mut pos)?;
        if self.buf.len() < pos + item_len {
            return None; // item not complete yet
        }
        let item = from_bytes(&self.buf[pos..pos + item_len]);
        self.buf.drain(..pos + item_len);
        match item {
            Some(v) => {
                self.yielded += 1;
                Some(v)
            }
            None => {
                self.malformed = true;
                None
            }
        }
    }

    /// True once every announced item was yielded.
    pub fn finished(&self) -> bool {
        !self.malformed && self.expected == Some(self.yielded)
    }

    /// True if an item failed to decode (frame corrupt).
    pub fn is_malformed(&self) -> bool {
        self.malformed
    }

    /// High-water mark of buffered bytes — the decode-side peak buffer.
    pub fn peak_buffer(&self) -> usize {
        self.peak
    }
}

fn write_len(out: &mut Vec<u8>, len: usize) {
    // Varint (LEB128, unsigned).
    let mut n = len as u64;
    loop {
        let byte = (n & 0x7F) as u8;
        n >>= 7;
        if n == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_len(data: &[u8], pos: &mut usize) -> Option<usize> {
    let mut n: u64 = 0;
    let mut shift = 0;
    loop {
        let byte = *data.get(*pos)?;
        *pos += 1;
        n |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift > 56 {
            return None;
        }
    }
    usize::try_from(n).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(-9),
            Value::Float(1.25),
            Value::Str("hello".into()),
            Value::Bytes(vec![1, 2, 3]),
        ] {
            assert_eq!(from_bytes(&to_bytes(&v)), Some(v));
        }
    }

    #[test]
    fn compounds_round_trip() {
        let v = Value::Record(vec![
            ("list".into(), Value::List(vec![Value::Int(1), Value::Null])),
            (
                "nested".into(),
                Value::Record(vec![("x".into(), Value::Bool(false))]),
            ),
        ]);
        assert_eq!(from_bytes(&to_bytes(&v)), Some(v));
    }

    #[test]
    fn binary_is_much_smaller_than_xml() {
        let v = Value::Record(vec![
            ("channel".into(), Value::Int(42)),
            ("title".into(), Value::Str("News".into())),
        ]);
        let binary = to_bytes(&v).len();
        let xml = v.to_element("v").to_xml().len();
        assert!(binary * 3 < xml, "binary {binary} vs xml {xml}");
    }

    #[test]
    fn garbage_and_truncation_fail_cleanly() {
        assert_eq!(from_bytes(&[99]), None);
        assert_eq!(from_bytes(&[]), None);
        let enc = to_bytes(&Value::Str("hello".into()));
        assert_eq!(from_bytes(&enc[..enc.len() - 1]), None);
        // Trailing bytes rejected.
        let mut enc = to_bytes(&Value::Int(1));
        enc.push(0);
        assert_eq!(from_bytes(&enc), None);
        // Implausible lengths rejected, not allocated.
        assert_eq!(from_bytes(&[4, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F]), None);
    }

    #[test]
    fn borrowed_encoders_match_owned_encoding() {
        let fields = vec![
            ("channel".to_owned(), Value::Int(42)),
            ("title".to_owned(), Value::Str("News".into())),
        ];
        let mut borrowed = Vec::new();
        encode_record_fields(&fields, &mut borrowed);
        assert_eq!(borrowed, to_bytes(&Value::Record(fields)));

        let mut s = Vec::new();
        encode_str("hello", &mut s);
        assert_eq!(s, to_bytes(&Value::Str("hello".into())));

        // Piecewise record assembly matches too.
        let mut piecewise = Vec::new();
        begin_record(1, &mut piecewise);
        encode_str_field("name", "hall", &mut piecewise);
        assert_eq!(
            piecewise,
            to_bytes(&Value::Record(vec![(
                "name".into(),
                Value::Str("hall".into())
            )]))
        );

        // Splicing pre-encoded items after a list header matches the
        // owned list encoding.
        let items = vec![Value::Int(1), Value::Str("x".into())];
        let mut spliced = Vec::new();
        begin_list(items.len(), &mut spliced);
        for item in &items {
            encode(item, &mut spliced);
        }
        assert_eq!(spliced, to_bytes(&Value::List(items)));
    }

    #[test]
    fn varint_lengths() {
        let long = Value::Str("x".repeat(300));
        assert_eq!(from_bytes(&to_bytes(&long)), Some(long));
    }

    fn sample_values() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(2.5),
            Value::Str("hello & <world>".into()),
            Value::Bytes(vec![0, 255, 7]),
            Value::List(vec![Value::Int(1), Value::Str("x".into())]),
            Value::Record(vec![
                ("s".into(), Value::Str("vcr".into())),
                ("a".into(), Value::Record(vec![("n".into(), Value::Int(9))])),
            ]),
        ]
    }

    #[test]
    fn borrowed_decode_matches_owned_decode() {
        for v in sample_values() {
            let wire = to_bytes(&v);
            let r = from_bytes_ref(&wire).unwrap();
            assert_eq!(r.to_owned(), v);
        }
    }

    #[test]
    fn borrowed_decode_borrows_strings_from_the_frame() {
        let wire = to_bytes(&Value::Str("borrow-me".into()));
        let r = from_bytes_ref(&wire).unwrap();
        let ValueRef::Str(s) = r else { panic!() };
        let p = s.as_ptr() as usize;
        let range = wire.as_ptr() as usize..wire.as_ptr() as usize + wire.len();
        assert!(range.contains(&p));
    }

    #[test]
    fn borrowed_decode_rejects_what_owned_rejects() {
        for bad in [
            &[99u8][..],
            &[],
            &[4, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F],
            &[2, 1, 2, 3],
        ] {
            assert_eq!(from_bytes(bad), None);
            assert!(from_bytes_ref(bad).is_none());
        }
        let mut trailing = to_bytes(&Value::Int(1));
        trailing.push(0);
        assert!(from_bytes_ref(&trailing).is_none());
    }

    #[test]
    fn list_stream_iterates_without_outer_list() {
        let items = sample_values();
        let wire = to_bytes(&Value::List(items.clone()));
        let mut stream = ListStream::open(&wire).unwrap();
        assert_eq!(stream.remaining(), items.len());
        for want in &items {
            assert_eq!(stream.next_ref().unwrap().to_owned(), *want);
        }
        assert!(stream.next_ref().is_none());
        assert!(stream.finished_clean());
        // Not a list → refuses to open.
        assert!(ListStream::open(&to_bytes(&Value::Int(3))).is_none());
    }

    #[test]
    fn streamed_frame_round_trips_and_bounds_buffering() {
        let items: Vec<Value> = (0..40)
            .map(|i| {
                Value::Record(vec![
                    ("i".into(), Value::Int(i)),
                    ("pad".into(), Value::Str("x".repeat(50))),
                ])
            })
            .collect();
        let mut frame = Vec::new();
        encode_frame_into(&items, &mut frame);

        // Feed in awkward chunk sizes; items must come out intact.
        let mut dec = StreamDecoder::new();
        let mut got = Vec::new();
        for chunk in frame.chunks(13) {
            dec.push(chunk);
            while let Some(v) = dec.next_item() {
                got.push(v);
            }
        }
        assert_eq!(got, items);
        assert!(dec.finished());
        assert!(!dec.is_malformed());
        // The decoder never held anywhere near the whole frame: items
        // are drained as they complete.
        assert!(
            dec.peak_buffer() <= frame.len(),
            "peak {} > frame {}",
            dec.peak_buffer(),
            frame.len()
        );
    }

    #[test]
    fn streamed_equals_buffered_encoding_per_item() {
        // Each item's bytes inside the streaming frame are exactly its
        // plain wire form — only the length prefix is new.
        let items = sample_values();
        let mut frame = Vec::new();
        encode_frame_into(&items, &mut frame);
        let mut pos = 0;
        let count = read_len(&frame, &mut pos).unwrap();
        assert_eq!(count, items.len());
        for want in &items {
            let len = read_len(&frame, &mut pos).unwrap();
            let body = &frame[pos..pos + len];
            assert_eq!(body, to_bytes(want).as_slice());
            pos += len;
        }
        assert_eq!(pos, frame.len());
    }

    #[test]
    fn stream_decoder_flags_corrupt_items() {
        let mut frame = Vec::new();
        let mut enc = FrameEncoder::new();
        enc.begin(1, &mut frame);
        enc.item_bytes(&[99, 99], &mut frame); // bogus tag
        let mut dec = StreamDecoder::new();
        dec.push(&frame);
        assert_eq!(dec.next_item(), None);
        assert!(dec.is_malformed());
        assert!(!dec.finished());
    }

    #[test]
    fn empty_streaming_frame_finishes_immediately() {
        let mut frame = Vec::new();
        encode_frame_into(&[], &mut frame);
        let mut dec = StreamDecoder::new();
        dec.push(&frame);
        assert_eq!(dec.next_item(), None);
        assert!(dec.finished());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Arbitrary [`Value`] trees, bounded in depth and width so frames
    /// stay a few KB.
    fn arb_value() -> BoxedStrategy<Value> {
        arb_value_depth(2)
    }

    fn arb_value_depth(depth: usize) -> BoxedStrategy<Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            (-1.0e12f64..1.0e12).prop_map(Value::Float),
            "[ -~]{0,24}".prop_map(Value::Str),
            prop::collection::vec(any::<u8>(), 0..24).prop_map(Value::Bytes),
        ]
        .boxed();
        if depth == 0 {
            return leaf;
        }
        let list = prop::collection::vec(arb_value_depth(depth - 1), 0..4)
            .prop_map(Value::List)
            .boxed();
        let record = prop::collection::vec(("[a-z]{1,6}", arb_value_depth(depth - 1)), 0..4)
            .prop_map(Value::Record)
            .boxed();
        prop_oneof![3 => leaf, 1 => list, 1 => record].boxed()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Streamed framing is the buffered encoding plus length
        /// prefixes: pushing the frame through [`StreamDecoder`] in
        /// arbitrary chunk sizes recovers exactly the input items, each
        /// item's bytes inside the frame equal its plain [`to_bytes`]
        /// form, and the decoder never buffers more than one frame.
        #[test]
        fn streamed_equals_buffered(
            items in prop::collection::vec(arb_value(), 0..6),
            chunk in 1usize..64,
        ) {
            let mut frame = Vec::new();
            encode_frame_into(&items, &mut frame);

            // Per-item bytes match the buffered encoder exactly.
            let mut pos = 0;
            let count = read_len(&frame, &mut pos).unwrap();
            prop_assert_eq!(count, items.len());
            for want in &items {
                let len = read_len(&frame, &mut pos).unwrap();
                let buffered = to_bytes(want);
                prop_assert_eq!(&frame[pos..pos + len], buffered.as_slice());
                pos += len;
            }
            prop_assert_eq!(pos, frame.len());

            // Chunked streaming decode recovers the items in order.
            let mut dec = StreamDecoder::new();
            let mut got = Vec::new();
            for piece in frame.chunks(chunk) {
                dec.push(piece);
                while let Some(v) = dec.next_item() {
                    got.push(v);
                }
            }
            prop_assert_eq!(got, items);
            prop_assert!(dec.finished());
            prop_assert!(!dec.is_malformed());
            prop_assert!(dec.peak_buffer() <= frame.len().max(1));
        }

        /// The borrowed decode tier agrees with the owned tier on every
        /// frame the owned tier accepts.
        #[test]
        fn borrowed_decode_equals_owned(v in arb_value()) {
            let wire = to_bytes(&v);
            let owned = from_bytes(&wire).unwrap();
            let borrowed = from_bytes_ref(&wire).unwrap().to_owned();
            prop_assert_eq!(&owned, &v);
            prop_assert_eq!(borrowed, owned);
        }
    }
}
