//! A compact binary codec for canonical [`Value`]s.
//!
//! Used by the `CompactBinary` VSG protocol (the E4 strawman showing what
//! SOAP's XML costs) and as the SIP-like protocol's body encoding.

use soap::Value;

/// Encodes a value.
pub fn encode(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(3);
            out.extend_from_slice(&f.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(4);
            write_len(out, s.len());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(5);
            write_len(out, b.len());
            out.extend_from_slice(b);
        }
        Value::List(items) => {
            out.push(6);
            write_len(out, items.len());
            for item in items {
                encode(item, out);
            }
        }
        Value::Record(fields) => {
            out.push(7);
            write_len(out, fields.len());
            for (k, v) in fields {
                write_len(out, k.len());
                out.extend_from_slice(k.as_bytes());
                encode(v, out);
            }
        }
    }
}

/// Encodes to a fresh buffer.
pub fn to_bytes(v: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    encode(v, &mut out);
    out
}

// ---- borrowed-field encoders ------------------------------------------
//
// The invocation hot path marshals a `VsgRequest` whose arguments it only
// borrows; these helpers emit the exact wire form of the corresponding
// owned `Value` without first cloning anything into one.

/// Encodes a borrowed string in `Value::Str` wire form.
pub fn encode_str(s: &str, out: &mut Vec<u8>) {
    out.push(4);
    write_len(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

/// Writes a record header for `len` fields. The caller must follow with
/// exactly `len` fields, each emitted via [`encode_field_key`] plus one
/// value encoder.
pub fn begin_record(len: usize, out: &mut Vec<u8>) {
    out.push(7);
    write_len(out, len);
}

/// Writes a list header for `len` items. The caller must follow with
/// exactly `len` encoded values — this is how a batch frame splices
/// members that were each marshalled once, ahead of time, into one
/// `Value::List` wire form without re-encoding them per flush.
pub fn begin_list(len: usize, out: &mut Vec<u8>) {
    out.push(6);
    write_len(out, len);
}

/// Writes one record field key; follow with the field's value.
pub fn encode_field_key(key: &str, out: &mut Vec<u8>) {
    write_len(out, key.len());
    out.extend_from_slice(key.as_bytes());
}

/// Encodes one complete string-valued record field — key then
/// `Value::Str` wire form — from borrows. The shape every tagged
/// metadata field of the binary VSG request (`s`, `o`, `t`) uses.
pub fn encode_str_field(key: &str, value: &str, out: &mut Vec<u8>) {
    encode_field_key(key, out);
    encode_str(value, out);
}

/// Encodes borrowed `(name, value)` pairs in `Value::Record` wire form.
pub fn encode_record_fields(fields: &[(String, Value)], out: &mut Vec<u8>) {
    begin_record(fields.len(), out);
    for (k, v) in fields {
        encode_field_key(k, out);
        encode(v, out);
    }
}

/// Decodes one value, advancing `pos`.
pub fn decode(data: &[u8], pos: &mut usize) -> Option<Value> {
    let tag = *data.get(*pos)?;
    *pos += 1;
    match tag {
        0 => Some(Value::Null),
        1 => {
            let b = *data.get(*pos)?;
            *pos += 1;
            Some(Value::Bool(b != 0))
        }
        2 => {
            let bytes = data.get(*pos..*pos + 8)?;
            *pos += 8;
            Some(Value::Int(i64::from_le_bytes(bytes.try_into().ok()?)))
        }
        3 => {
            let bytes = data.get(*pos..*pos + 8)?;
            *pos += 8;
            Some(Value::Float(f64::from_le_bytes(bytes.try_into().ok()?)))
        }
        4 => {
            let len = read_len(data, pos)?;
            let bytes = data.get(*pos..*pos + len)?;
            *pos += len;
            Some(Value::Str(std::str::from_utf8(bytes).ok()?.to_owned()))
        }
        5 => {
            let len = read_len(data, pos)?;
            let bytes = data.get(*pos..*pos + len)?;
            *pos += len;
            Some(Value::Bytes(bytes.to_vec()))
        }
        6 => {
            let len = read_len(data, pos)?;
            if len > data.len() {
                return None;
            }
            let mut items = Vec::with_capacity(len);
            for _ in 0..len {
                items.push(decode(data, pos)?);
            }
            Some(Value::List(items))
        }
        7 => {
            let len = read_len(data, pos)?;
            if len > data.len() {
                return None;
            }
            let mut fields = Vec::with_capacity(len);
            for _ in 0..len {
                let klen = read_len(data, pos)?;
                let kbytes = data.get(*pos..*pos + klen)?;
                *pos += klen;
                let key = std::str::from_utf8(kbytes).ok()?.to_owned();
                fields.push((key, decode(data, pos)?));
            }
            Some(Value::Record(fields))
        }
        _ => None,
    }
}

/// Decodes a whole buffer; fails on trailing bytes.
pub fn from_bytes(data: &[u8]) -> Option<Value> {
    let mut pos = 0;
    let v = decode(data, &mut pos)?;
    (pos == data.len()).then_some(v)
}

fn write_len(out: &mut Vec<u8>, len: usize) {
    // Varint (LEB128, unsigned).
    let mut n = len as u64;
    loop {
        let byte = (n & 0x7F) as u8;
        n >>= 7;
        if n == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_len(data: &[u8], pos: &mut usize) -> Option<usize> {
    let mut n: u64 = 0;
    let mut shift = 0;
    loop {
        let byte = *data.get(*pos)?;
        *pos += 1;
        n |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift > 56 {
            return None;
        }
    }
    usize::try_from(n).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(-9),
            Value::Float(1.25),
            Value::Str("hello".into()),
            Value::Bytes(vec![1, 2, 3]),
        ] {
            assert_eq!(from_bytes(&to_bytes(&v)), Some(v));
        }
    }

    #[test]
    fn compounds_round_trip() {
        let v = Value::Record(vec![
            ("list".into(), Value::List(vec![Value::Int(1), Value::Null])),
            (
                "nested".into(),
                Value::Record(vec![("x".into(), Value::Bool(false))]),
            ),
        ]);
        assert_eq!(from_bytes(&to_bytes(&v)), Some(v));
    }

    #[test]
    fn binary_is_much_smaller_than_xml() {
        let v = Value::Record(vec![
            ("channel".into(), Value::Int(42)),
            ("title".into(), Value::Str("News".into())),
        ]);
        let binary = to_bytes(&v).len();
        let xml = v.to_element("v").to_xml().len();
        assert!(binary * 3 < xml, "binary {binary} vs xml {xml}");
    }

    #[test]
    fn garbage_and_truncation_fail_cleanly() {
        assert_eq!(from_bytes(&[99]), None);
        assert_eq!(from_bytes(&[]), None);
        let enc = to_bytes(&Value::Str("hello".into()));
        assert_eq!(from_bytes(&enc[..enc.len() - 1]), None);
        // Trailing bytes rejected.
        let mut enc = to_bytes(&Value::Int(1));
        enc.push(0);
        assert_eq!(from_bytes(&enc), None);
        // Implausible lengths rejected, not allocated.
        assert_eq!(from_bytes(&[4, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F]), None);
    }

    #[test]
    fn borrowed_encoders_match_owned_encoding() {
        let fields = vec![
            ("channel".to_owned(), Value::Int(42)),
            ("title".to_owned(), Value::Str("News".into())),
        ];
        let mut borrowed = Vec::new();
        encode_record_fields(&fields, &mut borrowed);
        assert_eq!(borrowed, to_bytes(&Value::Record(fields)));

        let mut s = Vec::new();
        encode_str("hello", &mut s);
        assert_eq!(s, to_bytes(&Value::Str("hello".into())));

        // Piecewise record assembly matches too.
        let mut piecewise = Vec::new();
        begin_record(1, &mut piecewise);
        encode_str_field("name", "hall", &mut piecewise);
        assert_eq!(
            piecewise,
            to_bytes(&Value::Record(vec![(
                "name".into(),
                Value::Str("hall".into())
            )]))
        );

        // Splicing pre-encoded items after a list header matches the
        // owned list encoding.
        let items = vec![Value::Int(1), Value::Str("x".into())];
        let mut spliced = Vec::new();
        begin_list(items.len(), &mut spliced);
        for item in &items {
            encode(item, &mut spliced);
        }
        assert_eq!(spliced, to_bytes(&Value::List(items)));
    }

    #[test]
    fn varint_lengths() {
        let long = Value::Str("x".repeat(300));
        assert_eq!(from_bytes(&to_bytes(&long)), Some(long));
    }
}
