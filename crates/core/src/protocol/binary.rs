//! A compact binary VSG protocol — the E4 ablation baseline.
//!
//! Everything SOAP does (request/response RPC between gateways) with
//! none of its weight: varint-framed binary values in a single exchange,
//! no HTTP, no per-request connection. It exists to quantify the cost of
//! the prototype's "simple protocol" choice.

use super::{binval, GatewayHandler, VsgProtocol, VsgRequest};
use crate::error::MetaError;
use simnet::{Network, NodeId, Protocol, SimDuration};
use soap::Value;

const MAGIC: &[u8; 4] = b"VSGB";

/// The binary protocol.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompactBinary;

impl CompactBinary {
    /// Creates the protocol.
    pub fn new() -> CompactBinary {
        CompactBinary
    }
}

fn encode_request(req: &VsgRequest) -> Vec<u8> {
    let mut out = MAGIC.to_vec();
    let body = Value::Record(vec![
        ("s".into(), Value::Str(req.service.clone())),
        ("o".into(), Value::Str(req.operation.clone())),
        ("a".into(), Value::Record(req.args.clone())),
    ]);
    binval::encode(&body, &mut out);
    out
}

fn decode_request(data: &[u8]) -> Option<VsgRequest> {
    let body = binval::from_bytes(data.strip_prefix(MAGIC)?)?;
    let service = body.field("s")?.as_str()?.to_owned();
    let operation = body.field("o")?.as_str()?.to_owned();
    let args = match body.field("a")? {
        Value::Record(fields) => fields.clone(),
        _ => return None,
    };
    Some(VsgRequest { service, operation, args })
}

fn encode_reply(result: &Result<Value, MetaError>) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    match result {
        Ok(v) => {
            out.push(1);
            binval::encode(v, &mut out);
        }
        Err(e) => {
            out.push(0);
            binval::encode(&Value::Str(e.to_string()), &mut out);
        }
    }
    out
}

fn decode_reply(data: &[u8]) -> Result<Value, MetaError> {
    match data.split_first() {
        Some((1, rest)) => {
            binval::from_bytes(rest).ok_or_else(|| MetaError::Protocol("bad reply body".into()))
        }
        Some((0, rest)) => {
            let msg = binval::from_bytes(rest)
                .and_then(|v| v.as_str().map(str::to_owned))
                .unwrap_or_else(|| "unknown remote error".to_owned());
            Err(MetaError::native("remote-gateway", msg))
        }
        _ => Err(MetaError::Protocol("empty reply".into())),
    }
}

impl VsgProtocol for CompactBinary {
    fn name(&self) -> &'static str {
        "binary"
    }

    fn bind(&self, net: &Network, label: &str, handler: GatewayHandler) -> NodeId {
        let node = net.attach(label);
        net.set_request_handler(node, move |sim, frame| {
            sim.advance(SimDuration::from_micros(20)); // cheap dispatch
            let result = match decode_request(&frame.payload) {
                Some(req) => handler(sim, &req),
                None => Err(MetaError::Protocol("malformed binary request".into())),
            };
            Ok(encode_reply(&result).into())
        })
        .expect("node attached");
        node
    }

    fn call(
        &self,
        net: &Network,
        from: NodeId,
        to: NodeId,
        req: &VsgRequest,
    ) -> Result<Value, MetaError> {
        let reply = net
            .request(from, to, Protocol::Raw, encode_request(req))
            .map_err(|e| MetaError::Protocol(e.to_string()))?;
        decode_reply(&reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::conformance;

    #[test]
    fn binary_conformance() {
        conformance::run(&CompactBinary::new());
    }

    #[test]
    fn request_codec_round_trip() {
        let req = VsgRequest::new("vcr", "record").arg("channel", 42).arg("title", "News");
        assert_eq!(decode_request(&encode_request(&req)), Some(req));
        assert_eq!(decode_request(b"nope"), None);
    }

    #[test]
    fn binary_is_an_order_of_magnitude_lighter_than_soap() {
        use crate::protocol::Soap11;
        use simnet::{Network, Protocol, Sim};
        use std::sync::Arc;

        let measure = |p: &dyn VsgProtocol, proto: Protocol| {
            let sim = Sim::new(1);
            let net = Network::ethernet(&sim);
            let server = p.bind(&net, "gw", Arc::new(|_, _| Ok(Value::Null)));
            let client = net.attach("c");
            let req = VsgRequest::new("vcr", "record").arg("channel", 42);
            p.call(&net, client, server, &req).unwrap();
            (
                net.with_stats(|s| s.protocol(proto).bytes),
                sim.now().as_micros(),
            )
        };
        let (soap_bytes, soap_us) = measure(&Soap11::new(), Protocol::Http);
        let (bin_bytes, bin_us) = measure(&CompactBinary::new(), Protocol::Raw);
        assert!(
            bin_bytes * 10 < soap_bytes,
            "binary {bin_bytes}B vs soap {soap_bytes}B"
        );
        assert!(bin_us < soap_us, "binary {bin_us}us vs soap {soap_us}us");
    }
}
