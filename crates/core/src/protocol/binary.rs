//! A compact binary VSG protocol — the E4 ablation baseline.
//!
//! Everything SOAP does (request/response RPC between gateways) with
//! none of its weight: varint-framed binary values in a single exchange,
//! no HTTP, no per-request connection. It exists to quantify the cost of
//! the prototype's "simple protocol" choice.

use super::{
    binval, member_from_ref, member_to_value, result_from_ref, result_to_value, GatewayHandler,
    VsgProtocol, VsgRequest,
};
use crate::error::MetaError;
use simnet::{Network, NodeId, Protocol, SimDuration};
use soap::Value;

const MAGIC: &[u8; 4] = b"VSGB";

/// The binary protocol.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompactBinary;

impl CompactBinary {
    /// Creates the protocol.
    pub fn new() -> CompactBinary {
        CompactBinary
    }
}

fn encode_request(req: &VsgRequest) -> Vec<u8> {
    // Wire form of Record{s, o, a[, t]}, marshalled from borrows — no
    // clone of the service name, operation, or argument list. The "t"
    // field carries the caller's trace context and is simply absent
    // when tracing is off, so the untraced wire form is unchanged.
    let mut out = MAGIC.to_vec();
    binval::begin_record(if req.trace.is_some() { 4 } else { 3 }, &mut out);
    binval::encode_str_field("s", &req.service, &mut out);
    binval::encode_str_field("o", &req.operation, &mut out);
    binval::encode_field_key("a", &mut out);
    binval::encode_record_fields(&req.args, &mut out);
    if let Some(ctx) = &req.trace {
        binval::encode_str_field("t", &ctx.to_wire(), &mut out);
    }
    out
}

fn decode_request(data: &[u8]) -> Option<VsgRequest> {
    // Borrowed decode: the request body has exactly the batch-member
    // shape {s, o, a[, t]}, and `member_from_ref` converts it to an
    // owned request straight from frame slices — the old path built an
    // owned `Value` tree first and then cloned the argument list out
    // of it, buffering every string twice.
    let body = binval::from_bytes_ref(data.strip_prefix(MAGIC)?)?;
    member_from_ref(&body)
}

// Reply tags. Tag 2 is distinct from the generic fault so a stale
// route (the serving gateway no longer knows the service) survives the
// wire as a typed, retry-safe error even without fault-string parsing.
const TAG_FAULT: u8 = 0;
const TAG_OK: u8 = 1;
const TAG_UNKNOWN_SERVICE: u8 = 2;
// A batch reply: a list of per-member result records.
const TAG_BATCH: u8 = 3;

// A batch request is MAGIC + Record{"B": List[member records]} — the
// "B" key cannot collide with a single request, which always carries
// "s"/"o"/"a" fields.
fn encode_batch_request(reqs: &[VsgRequest]) -> Vec<u8> {
    let mut out = MAGIC.to_vec();
    binval::begin_record(1, &mut out);
    binval::encode_field_key("B", &mut out);
    binval::begin_list(reqs.len(), &mut out);
    for req in reqs {
        binval::encode(&member_to_value(req), &mut out);
    }
    out
}

fn decode_batch_request(data: &[u8]) -> Option<Vec<VsgRequest>> {
    // The batch head is fixed: Record{1 field} with key "B" — match its
    // four wire bytes directly, then stream the member list. Each
    // member is converted to an owned request and its borrowed form
    // dropped before the next is decoded, so peak live decode state is
    // one member, not the whole frame's value tree.
    let rest = data.strip_prefix(MAGIC)?.strip_prefix(&[7u8, 1, 1, b'B'])?;
    let mut stream = binval::ListStream::open(rest)?;
    let mut reqs = Vec::with_capacity(stream.remaining());
    while stream.remaining() > 0 {
        reqs.push(member_from_ref(&stream.next_ref()?)?);
    }
    stream.finished_clean().then_some(reqs)
}

fn encode_batch_reply(results: &[Result<Value, MetaError>]) -> Vec<u8> {
    let mut out = vec![TAG_BATCH];
    binval::begin_list(results.len(), &mut out);
    for r in results {
        binval::encode(&result_to_value(r), &mut out);
    }
    out
}

fn decode_batch_reply(data: &[u8]) -> Result<Vec<Result<Value, MetaError>>, MetaError> {
    let bad = || MetaError::Protocol("bad batch reply body".into());
    match data.split_first() {
        Some((&TAG_BATCH, rest)) => {
            // Stream the result list: an undecodable member fails the
            // whole frame (as `from_bytes` used to); a decodable member
            // of the wrong shape stays a per-member error.
            let mut stream = binval::ListStream::open(rest).ok_or_else(bad)?;
            let mut results = Vec::with_capacity(stream.remaining());
            while stream.remaining() > 0 {
                let member = stream.next_ref().ok_or_else(bad)?;
                results.push(result_from_ref(&member));
            }
            if !stream.finished_clean() {
                return Err(bad());
            }
            Ok(results)
        }
        // The server answered in single-reply form (e.g. it rejected
        // the frame as malformed): surface that as the whole-batch
        // error.
        _ => Err(decode_reply(data)
            .err()
            .unwrap_or_else(|| MetaError::Protocol("single reply to a batch request".into()))),
    }
}

fn encode_reply(result: &Result<Value, MetaError>) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    match result {
        Ok(v) => {
            out.push(TAG_OK);
            binval::encode(v, &mut out);
        }
        Err(MetaError::UnknownService(name)) => {
            out.push(TAG_UNKNOWN_SERVICE);
            binval::encode_str(name, &mut out);
        }
        Err(e) => {
            out.push(TAG_FAULT);
            binval::encode_str(&e.to_string(), &mut out);
        }
    }
    out
}

fn decode_reply(data: &[u8]) -> Result<Value, MetaError> {
    let payload_str = |rest: &[u8], fallback: &str| {
        binval::from_bytes(rest)
            .and_then(|v| v.as_str().map(str::to_owned))
            .unwrap_or_else(|| fallback.to_owned())
    };
    match data.split_first() {
        Some((&TAG_OK, rest)) => {
            binval::from_bytes(rest).ok_or_else(|| MetaError::Protocol("bad reply body".into()))
        }
        Some((&TAG_UNKNOWN_SERVICE, rest)) => {
            Err(MetaError::UnknownService(payload_str(rest, "?")))
        }
        Some((&TAG_FAULT, rest)) => Err(MetaError::from_fault_string(&payload_str(
            rest,
            "unknown remote error",
        ))),
        _ => Err(MetaError::Protocol("empty reply".into())),
    }
}

impl VsgProtocol for CompactBinary {
    fn name(&self) -> &'static str {
        "binary"
    }

    fn bind(&self, net: &Network, label: &str, handler: GatewayHandler) -> NodeId {
        let node = net.attach(label);
        net.set_request_handler(node, move |sim, frame| {
            sim.advance(SimDuration::from_micros(20)); // cheap dispatch
            if let Some(reqs) = decode_batch_request(&frame.payload) {
                let results: Vec<_> = reqs.iter().map(|req| handler(sim, req)).collect();
                return Ok(encode_batch_reply(&results).into());
            }
            let result = match decode_request(&frame.payload) {
                Some(req) => handler(sim, &req),
                None => Err(MetaError::Protocol("malformed binary request".into())),
            };
            Ok(encode_reply(&result).into())
        })
        .expect("node attached");
        node
    }

    fn call(
        &self,
        net: &Network,
        from: NodeId,
        to: NodeId,
        req: &VsgRequest,
    ) -> Result<Value, MetaError> {
        let reply = net
            .request(from, to, Protocol::Raw, encode_request(req))
            .map_err(|e| MetaError::from_wire_error(&e, from))?;
        decode_reply(&reply)
    }

    fn call_batch(
        &self,
        net: &Network,
        from: NodeId,
        to: NodeId,
        reqs: &[VsgRequest],
    ) -> Result<Vec<Result<Value, MetaError>>, MetaError> {
        if reqs.is_empty() {
            return Ok(Vec::new());
        }
        let reply = net
            .request(from, to, Protocol::Raw, encode_batch_request(reqs))
            .map_err(|e| MetaError::from_wire_error(&e, from))?;
        let results = decode_batch_reply(&reply)?;
        if results.len() != reqs.len() {
            return Err(MetaError::Protocol("batch reply arity mismatch".into()));
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::conformance;

    #[test]
    fn binary_conformance() {
        conformance::run(&CompactBinary::new());
    }

    #[test]
    fn request_codec_round_trip() {
        let req = VsgRequest::new("vcr", "record")
            .arg("channel", 42)
            .arg("title", "News");
        assert_eq!(decode_request(&encode_request(&req)), Some(req));
        assert_eq!(decode_request(b"nope"), None);
    }

    #[test]
    fn trace_context_rides_a_tagged_field() {
        use crate::trace::{SpanId, TraceContext, TraceId};
        let untraced = VsgRequest::new("vcr", "record").arg("channel", 42);
        let mut traced = untraced.clone();
        traced.trace = Some(TraceContext {
            trace: TraceId(7),
            parent: SpanId(9),
        });
        let plain = encode_request(&untraced);
        let tagged = encode_request(&traced);
        // Tracing off leaves the wire form byte-identical to before the
        // field existed; on, it costs only the one extra field.
        assert!(tagged.len() > plain.len());
        assert_eq!(decode_request(&plain), Some(untraced));
        assert_eq!(decode_request(&tagged), Some(traced));
    }

    #[test]
    fn binary_is_an_order_of_magnitude_lighter_than_soap() {
        use crate::protocol::Soap11;
        use simnet::{Network, Protocol, Sim};
        use std::sync::Arc;

        let measure = |p: &dyn VsgProtocol, proto: Protocol| {
            let sim = Sim::new(1);
            let net = Network::ethernet(&sim);
            let server = p.bind(&net, "gw", Arc::new(|_, _| Ok(Value::Null)));
            let client = net.attach("c");
            let req = VsgRequest::new("vcr", "record").arg("channel", 42);
            p.call(&net, client, server, &req).unwrap();
            (
                net.with_stats(|s| s.protocol(proto).bytes),
                sim.now().as_micros(),
            )
        };
        let (soap_bytes, soap_us) = measure(&Soap11::new(), Protocol::Http);
        let (bin_bytes, bin_us) = measure(&CompactBinary::new(), Protocol::Raw);
        assert!(
            bin_bytes * 10 < soap_bytes,
            "binary {bin_bytes}B vs soap {soap_bytes}B"
        );
        assert!(bin_us < soap_us, "binary {bin_us}us vs soap {soap_us}us");
    }
}
