//! A SIP-flavoured VSG protocol.
//!
//! §5: "SIP allows abstract naming, provides end-to-end security, and
//! can carry a flexible payload … SIP supports asynchronous calls and
//! call forwarding which is not supported by HTTP. We think that is also
//! effective choice to use SIP with some modification to connect various
//! appliances." This implementation keeps the properties the paper cares
//! about: text request lines with a compact body, no per-request TCP
//! connection, and — crucially — an unsolicited **NOTIFY** push path
//! that the HTTP-based prototype lacks (§4.2).

use super::{
    binval, member_from_ref, member_to_value, result_from_ref, result_to_value, GatewayHandler,
    VsgProtocol, VsgRequest,
};
use crate::error::MetaError;
use parking_lot::Mutex;
use simnet::{Frame, Network, NodeId, Protocol, Sim, SimDuration};
use soap::Value;
use std::sync::Arc;

/// Receives pushed events: `(service, event-payload)`.
pub type PushHandler = Box<dyn FnMut(&Sim, &str, &Value) + Send>;

/// The SIP-like protocol.
#[derive(Debug, Clone, Copy, Default)]
pub struct SipLike;

impl SipLike {
    /// Creates the protocol.
    pub fn new() -> SipLike {
        SipLike
    }

    /// Sends an unsolicited NOTIFY (one-way, fire-and-forget) carrying an
    /// event for `service` to the gateway at `to`.
    ///
    /// Returns `false` if the frame was lost (the sender cannot know in
    /// real SIP-over-UDP either; this is for statistics).
    pub fn notify(
        &self,
        net: &Network,
        from: NodeId,
        to: NodeId,
        service: &str,
        event: &Value,
    ) -> bool {
        let mut payload = Vec::with_capacity(32 + service.len());
        payload.extend_from_slice(b"NOTIFY vsg:");
        payload.extend_from_slice(service.as_bytes());
        payload.extend_from_slice(b" VSG-SIP/1.0\r\n\r\n");
        binval::encode(event, &mut payload);
        net.send(Frame::new(from, to, Protocol::Sip, payload))
            .is_ok()
    }

    /// Sends one NOTIFY frame carrying several `(service, payload)`
    /// members, each payload already marshalled by
    /// [`SipLike::encode_event_payload`]. Members are framed as runs —
    /// consecutive same-service members share one `Record{s, l}` group
    /// — so a burst from one sensor pays for its service name once, not
    /// per member, while delivery order is preserved exactly.
    ///
    /// Returns `false` if the frame was lost — the whole batch shares
    /// one transport fate.
    pub fn notify_batch(
        &self,
        net: &Network,
        from: NodeId,
        to: NodeId,
        members: &[(&str, &[u8])],
    ) -> bool {
        let mut payload = b"NOTIFY vsg:* VSG-SIP/1.0\r\n\r\n".to_vec();
        let mut runs = 0usize;
        let mut prev: Option<&str> = None;
        for (svc, _) in members {
            if prev != Some(*svc) {
                runs += 1;
                prev = Some(svc);
            }
        }
        binval::begin_list(runs, &mut payload);
        let mut i = 0;
        while i < members.len() {
            let svc = members[i].0;
            let mut j = i;
            while j < members.len() && members[j].0 == svc {
                j += 1;
            }
            binval::begin_record(2, &mut payload);
            binval::encode_str_field("s", svc, &mut payload);
            binval::encode_field_key("l", &mut payload);
            binval::begin_list(j - i, &mut payload);
            for (_, blob) in &members[i..j] {
                payload.extend_from_slice(blob);
            }
            i = j;
        }
        net.send(Frame::new(from, to, Protocol::Sip, payload))
            .is_ok()
    }

    /// Marshals one event payload to the wire bytes
    /// [`SipLike::notify_batch`] splices into its run groups.
    pub fn encode_event_payload(event: &Value) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        binval::encode(event, &mut out);
        out
    }

    /// Installs the push receiver on a bound gateway node. NOTIFYs
    /// arriving at `node` are decoded and handed to `handler`.
    pub fn install_push_handler(
        &self,
        net: &Network,
        node: NodeId,
        handler: impl FnMut(&Sim, &str, &Value) + Send + 'static,
    ) {
        let handler = Arc::new(Mutex::new(Box::new(handler) as PushHandler));
        net.set_frame_handler(node, move |sim, frame| {
            let Some((head, body)) = split_head(&frame.payload) else {
                return;
            };
            let Some(service) = head
                .strip_prefix("NOTIFY vsg:")
                .and_then(|r| r.split_whitespace().next())
            else {
                return;
            };
            // `vsg:*` marks a coalesced frame: a list of `{s, l}` run
            // groups, each a service name and its consecutive events,
            // delivered one by one in enqueue order.
            if service == "*" {
                // Stream the run groups: each group is decoded from
                // frame slices, its events handed over one by one, and
                // dropped before the next group is touched.
                let Some(mut groups) = binval::ListStream::open(body) else {
                    return;
                };
                let mut h = handler.lock();
                while let Some(group) = groups.next_ref() {
                    let Some(svc) = group.field("s").and_then(binval::ValueRef::as_str) else {
                        continue;
                    };
                    let Some(binval::ValueRef::List(events)) = group.field("l") else {
                        continue;
                    };
                    for event in events {
                        h(sim, svc, &event.to_owned());
                    }
                }
                return;
            }
            let Some(event) = binval::from_bytes(body) else {
                return;
            };
            (handler.lock())(sim, service, &event);
        })
        .expect("push node exists");
    }
}

fn split_head(payload: &[u8]) -> Option<(&str, &[u8])> {
    let sep = payload.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&payload[..sep]).ok()?;
    // Head is first line only (no extra headers in the simulation).
    let first_line = head.lines().next()?;
    Some((first_line, &payload[sep + 4..]))
}

/// The SIP-style header line carrying the caller's trace context.
const TRACE_HEADER: &str = "Trace-Context: ";

fn encode_invite(req: &VsgRequest) -> Vec<u8> {
    // Head written straight into the output bytes — the old `format!`
    // built (and immediately threw away) an intermediate `String` on
    // every call.
    let mut out = Vec::with_capacity(48 + req.service.len() + req.operation.len());
    out.extend_from_slice(b"INVITE vsg:");
    out.extend_from_slice(req.service.as_bytes());
    out.extend_from_slice(b" VSG-SIP/1.0\r\nOperation: ");
    out.extend_from_slice(req.operation.as_bytes());
    out.extend_from_slice(b"\r\n");
    if let Some(ctx) = &req.trace {
        out.extend_from_slice(TRACE_HEADER.as_bytes());
        out.extend_from_slice(ctx.to_wire().as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"\r\n");
    // Body marshalled from borrowed args — no clone into an owned record.
    binval::encode_record_fields(&req.args, &mut out);
    out
}

fn decode_invite(payload: &[u8]) -> Option<VsgRequest> {
    let sep = payload.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&payload[..sep]).ok()?;
    let mut lines = head.lines();
    let service = lines
        .next()?
        .strip_prefix("INVITE vsg:")?
        .split_whitespace()
        .next()?
        .to_owned();
    // Remaining header lines in any order; unknown ones are tolerated
    // (real SIP parsers skip headers they don't understand).
    let mut operation = None;
    let mut trace = None;
    for line in lines {
        if let Some(op) = line.strip_prefix("Operation: ") {
            operation = Some(op.to_owned());
        } else if let Some(ctx) = line.strip_prefix(TRACE_HEADER) {
            trace = crate::trace::TraceContext::from_wire(ctx);
        }
    }
    let args = match binval::from_bytes(&payload[sep + 4..])? {
        Value::Record(fields) => fields,
        _ => return None,
    };
    Some(VsgRequest {
        service: service.into(),
        operation: operation?,
        args,
        trace,
    })
}

// A batch rides a `BATCH vsg:- VSG-SIP/1.0` request line with a
// `Members:` count header and a binval list of member records as the
// body; the response is a 200 whose body is the list of per-member
// result records.
fn encode_batch(reqs: &[VsgRequest]) -> Vec<u8> {
    use std::io::Write as _;
    let mut out = Vec::with_capacity(48);
    out.extend_from_slice(b"BATCH vsg:- VSG-SIP/1.0\r\nMembers: ");
    write!(out, "{}", reqs.len()).expect("vec write");
    out.extend_from_slice(b"\r\n\r\n");
    binval::begin_list(reqs.len(), &mut out);
    for req in reqs {
        binval::encode(&member_to_value(req), &mut out);
    }
    out
}

fn decode_batch(payload: &[u8]) -> Option<Vec<VsgRequest>> {
    let sep = payload.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&payload[..sep]).ok()?;
    head.lines().next()?.strip_prefix("BATCH vsg:")?;
    // Stream the member list: each member becomes an owned request
    // straight from frame slices, dropped from decode state before the
    // next — no intermediate owned `Value` tree for the whole frame.
    let mut stream = binval::ListStream::open(&payload[sep + 4..])?;
    let mut reqs = Vec::with_capacity(stream.remaining());
    while stream.remaining() > 0 {
        reqs.push(member_from_ref(&stream.next_ref()?)?);
    }
    stream.finished_clean().then_some(reqs)
}

fn encode_batch_response(results: &[Result<Value, MetaError>]) -> Vec<u8> {
    let mut out = b"VSG-SIP/1.0 200 OK\r\n\r\n".to_vec();
    binval::begin_list(results.len(), &mut out);
    for r in results {
        binval::encode(&result_to_value(r), &mut out);
    }
    out
}

fn decode_batch_response(payload: &[u8]) -> Result<Vec<Result<Value, MetaError>>, MetaError> {
    let (head, body) =
        split_head(payload).ok_or_else(|| MetaError::Protocol("malformed SIP response".into()))?;
    if head.strip_prefix("VSG-SIP/1.0 200").is_some() {
        let bad = || MetaError::Protocol("bad SIP batch body".into());
        let mut stream = binval::ListStream::open(body).ok_or_else(bad)?;
        let mut results = Vec::with_capacity(stream.remaining());
        while stream.remaining() > 0 {
            let member = stream.next_ref().ok_or_else(bad)?;
            results.push(result_from_ref(&member));
        }
        if !stream.finished_clean() {
            return Err(bad());
        }
        Ok(results)
    } else {
        // Non-200 means the frame itself was rejected; decode it the
        // single-response way and apply the error to the whole batch.
        Err(decode_response(payload)
            .err()
            .unwrap_or_else(|| MetaError::Protocol("unexpected SIP batch status".into())))
    }
}

fn encode_response(result: &Result<Value, MetaError>) -> Vec<u8> {
    match result {
        Ok(v) => {
            let mut out = b"VSG-SIP/1.0 200 OK\r\n\r\n".to_vec();
            binval::encode(v, &mut out);
            out
        }
        // 404 marks a stale route — the callee no longer serves this
        // name — so the caller can re-resolve and retry safely.
        Err(MetaError::UnknownService(name)) => {
            format!("VSG-SIP/1.0 404 {name}\r\n\r\n").into_bytes()
        }
        Err(e) => format!("VSG-SIP/1.0 500 {e}\r\n\r\n").into_bytes(),
    }
}

fn decode_response(payload: &[u8]) -> Result<Value, MetaError> {
    let (head, body) =
        split_head(payload).ok_or_else(|| MetaError::Protocol("malformed SIP response".into()))?;
    if let Some(rest) = head.strip_prefix("VSG-SIP/1.0 200") {
        let _ = rest;
        binval::from_bytes(body).ok_or_else(|| MetaError::Protocol("bad SIP body".into()))
    } else if let Some(name) = head.strip_prefix("VSG-SIP/1.0 404 ") {
        Err(MetaError::UnknownService(name.to_owned()))
    } else if let Some(msg) = head.strip_prefix("VSG-SIP/1.0 500 ") {
        Err(MetaError::from_fault_string(msg))
    } else {
        Err(MetaError::Protocol(format!(
            "unexpected SIP status: {head}"
        )))
    }
}

impl VsgProtocol for SipLike {
    fn name(&self) -> &'static str {
        "sip"
    }

    fn bind(&self, net: &Network, label: &str, handler: GatewayHandler) -> NodeId {
        let node = net.attach(label);
        net.set_request_handler(node, move |sim, frame| {
            sim.advance(SimDuration::from_micros(60)); // header parse
            if let Some(reqs) = decode_batch(&frame.payload) {
                let results: Vec<_> = reqs.iter().map(|req| handler(sim, req)).collect();
                return Ok(encode_batch_response(&results).into());
            }
            let result = match decode_invite(&frame.payload) {
                Some(req) => handler(sim, &req),
                None => Err(MetaError::Protocol("malformed INVITE".into())),
            };
            Ok(encode_response(&result).into())
        })
        .expect("node attached");
        node
    }

    fn call(
        &self,
        net: &Network,
        from: NodeId,
        to: NodeId,
        req: &VsgRequest,
    ) -> Result<Value, MetaError> {
        let reply = net
            .request(from, to, Protocol::Sip, encode_invite(req))
            .map_err(|e| MetaError::from_wire_error(&e, from))?;
        decode_response(&reply)
    }

    fn call_batch(
        &self,
        net: &Network,
        from: NodeId,
        to: NodeId,
        reqs: &[VsgRequest],
    ) -> Result<Vec<Result<Value, MetaError>>, MetaError> {
        if reqs.is_empty() {
            return Ok(Vec::new());
        }
        let reply = net
            .request(from, to, Protocol::Sip, encode_batch(reqs))
            .map_err(|e| MetaError::from_wire_error(&e, from))?;
        let results = decode_batch_response(&reply)?;
        if results.len() != reqs.len() {
            return Err(MetaError::Protocol("batch reply arity mismatch".into()));
        }
        Ok(results)
    }

    fn supports_push(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::conformance;
    use simnet::Sim;

    #[test]
    fn sip_conformance() {
        conformance::run(&SipLike::new());
    }

    #[test]
    fn invite_codec_round_trip() {
        let req = VsgRequest::new("camera", "record").arg("channel", 3);
        assert_eq!(decode_invite(&encode_invite(&req)), Some(req));
        assert_eq!(decode_invite(b"garbage"), None);
    }

    #[test]
    fn invite_carries_trace_context_as_header_line() {
        use crate::trace::{SpanId, TraceContext, TraceId};
        let mut req = VsgRequest::new("camera", "record").arg("channel", 3);
        req.trace = Some(TraceContext {
            trace: TraceId(0xfeed),
            parent: SpanId(0xbee),
        });
        let wire = encode_invite(&req);
        let head = String::from_utf8_lossy(&wire);
        assert!(head.contains("Trace-Context: "), "{head}");
        assert_eq!(decode_invite(&wire), Some(req));
        // A mangled header is dropped, never fatal.
        let mangled =
            String::from_utf8_lossy(&wire).replace("Trace-Context: ", "Trace-Context: zz");
        let decoded = decode_invite(mangled.as_bytes()).unwrap();
        assert_eq!(decoded.trace, None);
    }

    #[test]
    fn push_notify_delivers_immediately() {
        let sim = Sim::new(1);
        let net = simnet::Network::ethernet(&sim);
        let p = SipLike::new();
        let gw = p.bind(&net, "gw-sink", Arc::new(|_, _| Ok(Value::Null)));
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        p.install_push_handler(&net, gw, move |_, service, event| {
            seen2.lock().push((service.to_owned(), event.clone()));
        });

        let source = net.attach("gw-source");
        let before = sim.now();
        assert!(p.notify(&net, source, gw, "motion-1", &Value::Bool(true)));
        let latency = sim.now() - before;
        assert_eq!(seen.lock().len(), 1);
        assert_eq!(seen.lock()[0], ("motion-1".to_owned(), Value::Bool(true)));
        // One UDP-ish frame on the LAN: well under a millisecond.
        assert!(latency.as_micros() < 1_000, "push took {latency}");
    }

    #[test]
    fn push_ignores_garbage_frames() {
        let sim = Sim::new(1);
        let net = simnet::Network::ethernet(&sim);
        let p = SipLike::new();
        let gw = p.bind(&net, "gw", Arc::new(|_, _| Ok(Value::Null)));
        let count = Arc::new(Mutex::new(0u32));
        let count2 = count.clone();
        p.install_push_handler(&net, gw, move |_, _, _| *count2.lock() += 1);
        let src = net.attach("src");
        net.send(Frame::new(src, gw, Protocol::Sip, &b"not sip at all"[..]))
            .unwrap();
        net.send(Frame::new(
            src,
            gw,
            Protocol::Sip,
            &b"NOTIFY vsg:x VSG-SIP/1.0\r\n\r\n\xFF\xFF"[..],
        ))
        .unwrap();
        assert_eq!(*count.lock(), 0);
    }

    #[test]
    fn sip_supports_push_soap_does_not() {
        assert!(SipLike::new().supports_push());
    }

    #[test]
    fn sip_calls_are_lighter_than_soap() {
        use crate::protocol::Soap11;
        use simnet::{Network, Protocol as P};
        let measure = |p: &dyn VsgProtocol, proto: P| {
            let sim = Sim::new(1);
            let net = Network::ethernet(&sim);
            let server = p.bind(&net, "gw", Arc::new(|_, _| Ok(Value::Null)));
            let client = net.attach("c");
            p.call(&net, client, server, &VsgRequest::new("svc", "op"))
                .unwrap();
            net.with_stats(|s| s.protocol(proto).bytes)
        };
        let sip = measure(&SipLike::new(), P::Sip);
        let soap = measure(&Soap11::new(), P::Http);
        assert!(sip * 3 < soap, "sip {sip}B vs soap {soap}B");
    }
}
