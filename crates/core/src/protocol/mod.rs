//! Pluggable VSG protocols.
//!
//! §3.1: "The Virtual Service Gateway is a gateway which connects
//! middleware to another middleware using certain protocol … How the
//! protocol should we chose depends on the purpose of service
//! integration." The prototype chose SOAP; §5 discusses SIP as an
//! alternative. This module makes the choice a trait:
//!
//! * [`Soap11`] — the prototype's protocol: XML envelopes over HTTP over
//!   per-request TCP connections. Simple, interoperable, heavy, and
//!   strictly client/server (no push).
//! * [`CompactBinary`] — a strawman binary RPC, quantifying what the XML
//!   and HTTP layers cost (experiment E4).
//! * [`SipLike`] — a SIP-flavoured protocol (§5): text headers, binary
//!   body, no per-request connection, and **asynchronous NOTIFY push**,
//!   which fixes the event-delivery problem of §4.2 (experiment E6).

mod binary;
pub mod binval;
mod siplike;
mod soap11;

pub use binary::CompactBinary;
pub use siplike::{PushHandler, SipLike};
pub use soap11::Soap11;

use crate::error::MetaError;
use crate::trace::TraceContext;
use simnet::{Network, NodeId, Sim};
use soap::Value;
use std::sync::Arc;

/// One invocation travelling between gateways.
#[derive(Debug, Clone, PartialEq)]
pub struct VsgRequest {
    /// Target service name.
    pub service: String,
    /// Operation.
    pub operation: String,
    /// Canonical arguments.
    pub args: Vec<(String, Value)>,
    /// The caller's trace context, when tracing is enabled — carried
    /// by every wire protocol (SOAP header element, SIP-style header
    /// line, tagged binary field) so the serving gateway's spans join
    /// the caller's trace.
    pub trace: Option<TraceContext>,
}

impl VsgRequest {
    /// Creates a request.
    pub fn new(service: impl Into<String>, operation: impl Into<String>) -> VsgRequest {
        VsgRequest {
            service: service.into(),
            operation: operation.into(),
            args: Vec::new(),
            trace: None,
        }
    }

    /// Adds an argument (builder style).
    pub fn arg(mut self, name: impl Into<String>, value: impl Into<Value>) -> VsgRequest {
        self.args.push((name.into(), value.into()));
        self
    }
}

/// What a gateway does with an arriving request.
pub type GatewayHandler = Arc<dyn Fn(&Sim, &VsgRequest) -> Result<Value, MetaError> + Send + Sync>;

/// A wire protocol connecting Virtual Service Gateways.
pub trait VsgProtocol: Send + Sync {
    /// The protocol's display name (`"soap"`, `"binary"`, `"sip"`).
    fn name(&self) -> &'static str;

    /// Binds a gateway endpoint on `net`, returning its node.
    fn bind(&self, net: &Network, label: &str, handler: GatewayHandler) -> NodeId;

    /// Carries `req` from `from` to the gateway endpoint at `to`.
    fn call(
        &self,
        net: &Network,
        from: NodeId,
        to: NodeId,
        req: &VsgRequest,
    ) -> Result<Value, MetaError>;

    /// Whether the protocol can push unsolicited server→client messages
    /// (SIP can; HTTP cannot — the §4.2 limitation).
    fn supports_push(&self) -> bool {
        false
    }
}

#[cfg(test)]
pub(crate) mod conformance {
    //! A conformance harness run against every protocol implementation.

    use super::*;

    pub fn run(protocol: &dyn VsgProtocol) {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let server = protocol.bind(
            &net,
            "gw-a",
            Arc::new(|_, req: &VsgRequest| match req.operation.as_str() {
                "echo" => Ok(Value::Record(req.args.clone())),
                "fail" => Err(MetaError::UnknownService(req.service.clone())),
                op => Err(MetaError::UnknownOperation {
                    service: req.service.clone(),
                    operation: op.to_owned(),
                }),
            }),
        );
        let client = net.attach("gw-b");

        // Round trip with args of several types.
        let req = VsgRequest::new("lamp", "echo")
            .arg("on", true)
            .arg("level", 7)
            .arg("name", "hall");
        let before = sim.now();
        let got = protocol.call(&net, client, server, &req).unwrap();
        assert!(sim.now() > before, "{} advances time", protocol.name());
        assert_eq!(got.field("on"), Some(&Value::Bool(true)));
        assert_eq!(got.field("level"), Some(&Value::Int(7)));
        assert_eq!(got.field("name"), Some(&Value::Str("hall".into())));

        // A stale route (the callee no longer knows the service) must
        // arrive *typed* — the caller's retry logic depends on telling
        // it apart from application faults.
        let err = protocol
            .call(&net, client, server, &VsgRequest::new("ghost", "fail"))
            .unwrap_err();
        assert_eq!(
            err,
            MetaError::UnknownService("ghost".into()),
            "{}: stale-route error must decode typed",
            protocol.name()
        );
        assert!(err.is_retry_safe());

        // Application faults arrive typed too, and are NOT retry-safe:
        // the remote side processed the call.
        let err = protocol
            .call(&net, client, server, &VsgRequest::new("lamp", "explode"))
            .unwrap_err();
        assert_eq!(
            err,
            MetaError::UnknownOperation {
                service: "lamp".into(),
                operation: "explode".into()
            },
            "{}: application fault must decode typed",
            protocol.name()
        );
        assert!(!err.is_retry_safe());

        // A trace context must survive the wire intact, and an absent
        // one must stay absent — distributed tracing depends on every
        // protocol round-tripping the caller's identity.
        let seen = Arc::new(parking_lot::Mutex::new(None));
        let seen2 = seen.clone();
        let traced_gw = protocol.bind(
            &net,
            "gw-traced",
            Arc::new(move |_, req: &VsgRequest| {
                *seen2.lock() = req.trace;
                Ok(Value::Null)
            }),
        );
        let ctx = TraceContext {
            trace: crate::trace::TraceId(0xabc),
            parent: crate::trace::SpanId(0x17),
        };
        let mut req = VsgRequest::new("lamp", "echo");
        req.trace = Some(ctx);
        protocol.call(&net, client, traced_gw, &req).unwrap();
        assert_eq!(
            *seen.lock(),
            Some(ctx),
            "{}: trace context lost on the wire",
            protocol.name()
        );
        protocol
            .call(&net, client, traced_gw, &VsgRequest::new("lamp", "echo"))
            .unwrap();
        assert_eq!(
            *seen.lock(),
            None,
            "{}: phantom trace context appeared",
            protocol.name()
        );
    }
}
