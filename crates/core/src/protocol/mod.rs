//! Pluggable VSG protocols.
//!
//! §3.1: "The Virtual Service Gateway is a gateway which connects
//! middleware to another middleware using certain protocol … How the
//! protocol should we chose depends on the purpose of service
//! integration." The prototype chose SOAP; §5 discusses SIP as an
//! alternative. This module makes the choice a trait:
//!
//! * [`Soap11`] — the prototype's protocol: XML envelopes over HTTP over
//!   per-request TCP connections. Simple, interoperable, heavy, and
//!   strictly client/server (no push).
//! * [`CompactBinary`] — a strawman binary RPC, quantifying what the XML
//!   and HTTP layers cost (experiment E4).
//! * [`SipLike`] — a SIP-flavoured protocol (§5): text headers, binary
//!   body, no per-request connection, and **asynchronous NOTIFY push**,
//!   which fixes the event-delivery problem of §4.2 (experiment E6).

mod binary;
pub mod binval;
mod siplike;
mod soap11;

pub use binary::CompactBinary;
pub use siplike::{PushHandler, SipLike};
pub use soap11::Soap11;

use crate::error::MetaError;
use crate::intern::Name;
use crate::trace::TraceContext;
use simnet::{Network, NodeId, Sim};
use soap::Value;
use std::sync::Arc;

/// One invocation travelling between gateways.
#[derive(Debug, Clone, PartialEq)]
pub struct VsgRequest {
    /// Target service name (interned — clones are refcount bumps).
    pub service: Name,
    /// Operation.
    pub operation: String,
    /// Canonical arguments.
    pub args: Vec<(String, Value)>,
    /// The caller's trace context, when tracing is enabled — carried
    /// by every wire protocol (SOAP header element, SIP-style header
    /// line, tagged binary field) so the serving gateway's spans join
    /// the caller's trace.
    pub trace: Option<TraceContext>,
}

impl VsgRequest {
    /// Creates a request.
    pub fn new(service: impl Into<Name>, operation: impl Into<String>) -> VsgRequest {
        VsgRequest {
            service: service.into(),
            operation: operation.into(),
            args: Vec::new(),
            trace: None,
        }
    }

    /// Adds an argument (builder style).
    pub fn arg(mut self, name: impl Into<String>, value: impl Into<Value>) -> VsgRequest {
        self.args.push((name.into(), value.into()));
        self
    }
}

/// What a gateway does with an arriving request.
pub type GatewayHandler = Arc<dyn Fn(&Sim, &VsgRequest) -> Result<Value, MetaError> + Send + Sync>;

// ---- batch member / result codecs --------------------------------------
//
// Every wire protocol's batch frame carries the same canonical member
// and per-member-result shapes, expressed as `Value`s so each codec can
// reuse its existing value encoding. A member is `{s, o, a[, t]}`; a
// result is `{ok: value}` or `{err: "<Display-formatted MetaError>"}` —
// the error text round-trips back to a typed error through
// `MetaError::from_fault_string`, exactly like single-call faults.

pub(crate) fn member_to_value(req: &VsgRequest) -> Value {
    let mut fields = vec![
        ("s".to_owned(), Value::Str(req.service.as_str().to_owned())),
        ("o".to_owned(), Value::Str(req.operation.clone())),
        ("a".to_owned(), Value::Record(req.args.clone())),
    ];
    if let Some(ctx) = &req.trace {
        fields.push(("t".to_owned(), Value::Str(ctx.to_wire())));
    }
    Value::Record(fields)
}

pub(crate) fn member_from_value(v: &Value) -> Option<VsgRequest> {
    let service = v.field("s")?.as_str()?.to_owned();
    let operation = v.field("o")?.as_str()?.to_owned();
    let args = match v.field("a")? {
        Value::Record(fields) => fields.clone(),
        _ => return None,
    };
    let trace = v
        .field("t")
        .and_then(Value::as_str)
        .and_then(TraceContext::from_wire);
    Some(VsgRequest {
        service: service.into(),
        operation,
        args,
        trace,
    })
}

/// Borrowed-tier twin of [`member_from_value`]: builds the owned
/// request straight from slices of the frame buffer, so only the final
/// `VsgRequest` fields allocate — no intermediate owned `Value` tree.
pub(crate) fn member_from_ref(v: &binval::ValueRef<'_>) -> Option<VsgRequest> {
    use binval::ValueRef;
    let service = v.field("s")?.as_str()?;
    let operation = v.field("o")?.as_str()?.to_owned();
    let args = match v.field("a")? {
        ValueRef::Record(fields) => fields
            .iter()
            .map(|(k, val)| ((*k).to_owned(), val.to_owned()))
            .collect(),
        _ => return None,
    };
    let trace = v
        .field("t")
        .and_then(ValueRef::as_str)
        .and_then(TraceContext::from_wire);
    Some(VsgRequest {
        service: service.into(),
        operation,
        args,
        trace,
    })
}

pub(crate) fn result_to_value(result: &Result<Value, MetaError>) -> Value {
    match result {
        Ok(v) => Value::Record(vec![("ok".to_owned(), v.clone())]),
        Err(e) => Value::Record(vec![("err".to_owned(), Value::Str(e.to_string()))]),
    }
}

pub(crate) fn result_from_value(v: &Value) -> Result<Value, MetaError> {
    if let Some(ok) = v.field("ok") {
        return Ok(ok.clone());
    }
    match v.field("err").and_then(Value::as_str) {
        Some(fault) => Err(MetaError::from_fault_string(fault)),
        None => Err(MetaError::Protocol("malformed batch member result".into())),
    }
}

/// Borrowed-tier twin of [`result_from_value`]: only the `ok` payload
/// (or the typed error) is copied out of the frame.
pub(crate) fn result_from_ref(v: &binval::ValueRef<'_>) -> Result<Value, MetaError> {
    if let Some(ok) = v.field("ok") {
        return Ok(ok.to_owned());
    }
    match v.field("err").and_then(binval::ValueRef::as_str) {
        Some(fault) => Err(MetaError::from_fault_string(fault)),
        None => Err(MetaError::Protocol("malformed batch member result".into())),
    }
}

/// A wire protocol connecting Virtual Service Gateways.
pub trait VsgProtocol: Send + Sync {
    /// The protocol's display name (`"soap"`, `"binary"`, `"sip"`).
    fn name(&self) -> &'static str;

    /// Binds a gateway endpoint on `net`, returning its node.
    fn bind(&self, net: &Network, label: &str, handler: GatewayHandler) -> NodeId;

    /// Carries `req` from `from` to the gateway endpoint at `to`.
    fn call(
        &self,
        net: &Network,
        from: NodeId,
        to: NodeId,
        req: &VsgRequest,
    ) -> Result<Value, MetaError>;

    /// Carries several requests bound for the same gateway endpoint.
    ///
    /// An outer `Err` means the *frame* failed in transport — none of
    /// the members got an answer, and the error's retry classification
    /// applies to all of them at once. `Ok` carries one result per
    /// member, in member order: application faults are demultiplexed
    /// per member instead of failing the batch.
    ///
    /// The default implementation loops [`VsgProtocol::call`], one wire
    /// exchange per member (so each member has its own transport fate);
    /// protocols override it with a native batch frame that shares one
    /// exchange.
    fn call_batch(
        &self,
        net: &Network,
        from: NodeId,
        to: NodeId,
        reqs: &[VsgRequest],
    ) -> Result<Vec<Result<Value, MetaError>>, MetaError> {
        Ok(reqs.iter().map(|r| self.call(net, from, to, r)).collect())
    }

    /// Whether the protocol can push unsolicited server→client messages
    /// (SIP can; HTTP cannot — the §4.2 limitation).
    fn supports_push(&self) -> bool {
        false
    }
}

#[cfg(test)]
pub(crate) mod conformance {
    //! A conformance harness run against every protocol implementation.

    use super::*;

    pub fn run(protocol: &dyn VsgProtocol) {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let server = protocol.bind(
            &net,
            "gw-a",
            Arc::new(|_, req: &VsgRequest| match req.operation.as_str() {
                "echo" => Ok(Value::Record(req.args.clone())),
                "fail" => Err(MetaError::UnknownService(req.service.to_string())),
                op => Err(MetaError::UnknownOperation {
                    service: req.service.to_string(),
                    operation: op.to_owned(),
                }),
            }),
        );
        let client = net.attach("gw-b");

        // Round trip with args of several types.
        let req = VsgRequest::new("lamp", "echo")
            .arg("on", true)
            .arg("level", 7)
            .arg("name", "hall");
        let before = sim.now();
        let got = protocol.call(&net, client, server, &req).unwrap();
        assert!(sim.now() > before, "{} advances time", protocol.name());
        assert_eq!(got.field("on"), Some(&Value::Bool(true)));
        assert_eq!(got.field("level"), Some(&Value::Int(7)));
        assert_eq!(got.field("name"), Some(&Value::Str("hall".into())));

        // A stale route (the callee no longer knows the service) must
        // arrive *typed* — the caller's retry logic depends on telling
        // it apart from application faults.
        let err = protocol
            .call(&net, client, server, &VsgRequest::new("ghost", "fail"))
            .unwrap_err();
        assert_eq!(
            err,
            MetaError::UnknownService("ghost".into()),
            "{}: stale-route error must decode typed",
            protocol.name()
        );
        assert!(err.is_retry_safe());

        // Application faults arrive typed too, and are NOT retry-safe:
        // the remote side processed the call.
        let err = protocol
            .call(&net, client, server, &VsgRequest::new("lamp", "explode"))
            .unwrap_err();
        assert_eq!(
            err,
            MetaError::UnknownOperation {
                service: "lamp".into(),
                operation: "explode".into()
            },
            "{}: application fault must decode typed",
            protocol.name()
        );
        assert!(!err.is_retry_safe());

        // A trace context must survive the wire intact, and an absent
        // one must stay absent — distributed tracing depends on every
        // protocol round-tripping the caller's identity.
        let seen = Arc::new(parking_lot::Mutex::new(None));
        let seen2 = seen.clone();
        let traced_gw = protocol.bind(
            &net,
            "gw-traced",
            Arc::new(move |_, req: &VsgRequest| {
                *seen2.lock() = req.trace;
                Ok(Value::Null)
            }),
        );
        let ctx = TraceContext {
            trace: crate::trace::TraceId(0xabc),
            parent: crate::trace::SpanId(0x17),
        };
        let mut req = VsgRequest::new("lamp", "echo");
        req.trace = Some(ctx);
        protocol.call(&net, client, traced_gw, &req).unwrap();
        assert_eq!(
            *seen.lock(),
            Some(ctx),
            "{}: trace context lost on the wire",
            protocol.name()
        );
        protocol
            .call(&net, client, traced_gw, &VsgRequest::new("lamp", "echo"))
            .unwrap();
        assert_eq!(
            *seen.lock(),
            None,
            "{}: phantom trace context appeared",
            protocol.name()
        );

        // Batch: several members share one carrier, but answers and
        // application faults stay per-member, in member order.
        let batch = [
            VsgRequest::new("lamp", "echo").arg("level", 3),
            VsgRequest::new("lamp", "explode"),
            VsgRequest::new("ghost", "fail"),
            VsgRequest::new("lamp", "echo").arg("name", "den"),
        ];
        let results = protocol.call_batch(&net, client, server, &batch).unwrap();
        assert_eq!(
            results.len(),
            4,
            "{}: one result per member",
            protocol.name()
        );
        assert_eq!(
            results[0].as_ref().unwrap().field("level"),
            Some(&Value::Int(3))
        );
        assert_eq!(
            results[1],
            Err(MetaError::UnknownOperation {
                service: "lamp".into(),
                operation: "explode".into()
            }),
            "{}: batched application fault must decode typed",
            protocol.name()
        );
        assert_eq!(
            results[2],
            Err(MetaError::UnknownService("ghost".into())),
            "{}: batched stale route must decode typed",
            protocol.name()
        );
        assert_eq!(
            results[3].as_ref().unwrap().field("name"),
            Some(&Value::Str("den".into()))
        );

        // An empty batch is a no-op, not a wire exchange.
        assert_eq!(
            protocol.call_batch(&net, client, server, &[]).unwrap(),
            Vec::new()
        );
    }
}
