//! The prototype's VSG protocol: SOAP 1.1 over HTTP.
//!
//! "We implement the prototype of our framework with SOAP, a simple
//! protocol" (§3.1); §4.1 lists its advantages (simplicity, HTTP
//! scalability, vendor-neutral XML) — and §4.2 its costs (client/server
//! only, heavy TCP).

use super::{
    member_from_value, member_to_value, result_from_value, result_to_value, GatewayHandler,
    VsgProtocol, VsgRequest,
};
use crate::error::MetaError;
use parking_lot::Mutex;
use simnet::{Network, NodeId};
use soap::{CpuModel, Fault, RpcCall, SoapClient, SoapError, SoapServer, TcpModel, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// The namespace every gateway mounts.
pub const GATEWAY_NS: &str = "urn:vsg:gateway";
const SERVICE_ARG: &str = "__service";
/// The `SOAP-ENV:Header` entry carrying the caller's trace context.
const TRACE_HEADER: &str = "TraceContext";
/// The method name of a batch envelope. Its `SOAP-ENV:Header` carries a
/// [`BATCH_HEADER`] entry (the moral equivalent of a `mustUnderstand`
/// extension: an endpoint that doesn't implement batching rejects the
/// unknown method rather than half-executing it), and its arguments
/// `m0…mN` are the member records.
const BATCH_METHOD: &str = "__batch__";
/// The header entry declaring the member count of a batch envelope.
const BATCH_HEADER: &str = "Batch";

/// SOAP 1.1 over simulated HTTP.
///
/// Holds one [`SoapClient`] per calling node rather than constructing a
/// fresh one inside every `call` — the client is just a handle, but
/// handle churn on the invocation hot path is pure waste. Node ids are
/// network-local, so cached clients are validated against the network
/// they were created on.
#[derive(Debug, Clone)]
pub struct Soap11 {
    cpu: CpuModel,
    tcp: TcpModel,
    clients: Arc<Mutex<HashMap<NodeId, (Network, SoapClient)>>>,
}

impl Soap11 {
    /// The prototype's configuration (2002 Java XML stack, per-request
    /// TCP connections).
    pub fn new() -> Soap11 {
        Soap11::with_models(CpuModel::default(), TcpModel::default())
    }

    /// The multiplexed-wire configuration: same CPU model, but
    /// persistent per-peer TCP connections instead of the prototype's
    /// connect-per-call (only the first exchange to each gateway pays
    /// the handshake).
    pub fn multiplexed() -> Soap11 {
        Soap11::with_models(CpuModel::default(), TcpModel::persistent())
    }

    /// A configuration with custom cost models (for ablations).
    pub fn with_models(cpu: CpuModel, tcp: TcpModel) -> Soap11 {
        Soap11 {
            cpu,
            tcp,
            clients: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    fn client(&self, net: &Network, from: NodeId) -> SoapClient {
        let mut clients = self.clients.lock();
        match clients.get(&from) {
            Some((cached_net, client)) if cached_net.same_as(net) => client.clone(),
            _ => {
                let client = SoapClient::on_node(net, from, self.cpu, self.tcp);
                clients.insert(from, (net.clone(), client.clone()));
                client
            }
        }
    }
}

impl Default for Soap11 {
    fn default() -> Self {
        Soap11::new()
    }
}

impl VsgProtocol for Soap11 {
    fn name(&self) -> &'static str {
        "soap"
    }

    fn bind(&self, net: &Network, label: &str, handler: GatewayHandler) -> NodeId {
        let server = SoapServer::bind_with(net, label, self.cpu, self.tcp);
        server.mount(GATEWAY_NS, move |sim, call: &RpcCall| {
            // A batch envelope: every `mN` argument is a member record;
            // the reply is the list of per-member results (application
            // faults stay per member, so the envelope itself is a 200).
            if call.method == BATCH_METHOD && call.get_header(BATCH_HEADER).is_some() {
                let mut results = Vec::with_capacity(call.args.len());
                for (_, member) in &call.args {
                    let result = match member_from_value(member) {
                        Some(req) => handler(sim, &req),
                        None => Err(MetaError::Protocol("malformed batch member".into())),
                    };
                    results.push(result_to_value(&result));
                }
                return Ok(Value::List(results));
            }
            let mut service = None;
            let mut args = Vec::with_capacity(call.args.len());
            for (k, v) in &call.args {
                if k == SERVICE_ARG {
                    service = v.as_str().map(str::to_owned);
                } else {
                    args.push((k.clone(), v.clone()));
                }
            }
            let Some(service) = service else {
                return Err(Fault::client("missing __service argument"));
            };
            let req = VsgRequest {
                service: service.into(),
                operation: call.method.clone(),
                args,
                trace: call
                    .get_header(TRACE_HEADER)
                    .and_then(crate::trace::TraceContext::from_wire),
            };
            handler(sim, &req).map_err(|e| Fault::server(e.to_string()))
        });
        server.node()
    }

    fn call(
        &self,
        net: &Network,
        from: NodeId,
        to: NodeId,
        req: &VsgRequest,
    ) -> Result<Value, MetaError> {
        let client = self.client(net, from);
        // Marshal from borrows: the only owned datum is the service
        // name riding along as the routing argument.
        let service = Value::Str(req.service.as_str().to_owned());
        let args = std::iter::once((SERVICE_ARG, &service))
            .chain(req.args.iter().map(|(k, v)| (k.as_str(), v)));
        let result = match &req.trace {
            // A trace context rides as a SOAP header element, never as
            // a call argument.
            Some(ctx) => {
                let headers = [(TRACE_HEADER, ctx.to_wire())];
                client.call_parts_with_headers(to, GATEWAY_NS, &req.operation, args, &headers)
            }
            None => client.call_parts(to, GATEWAY_NS, &req.operation, args),
        };
        result.map_err(|e| match e {
            // Fault strings carry a Display-formatted MetaError from
            // the serving gateway; recover the typed error so stale
            // routes (UnknownService) stay distinguishable from
            // application faults.
            SoapError::Fault(f) => MetaError::from_fault_string(&f.string),
            // HTTP-layer failures arrive pre-classified by delivery
            // leg, so the resilience layer knows whether the remote
            // gateway may have executed the operation.
            SoapError::Http(h) => MetaError::from_http_error(&h),
            other => MetaError::Protocol(other.to_string()),
        })
    }

    fn call_batch(
        &self,
        net: &Network,
        from: NodeId,
        to: NodeId,
        reqs: &[VsgRequest],
    ) -> Result<Vec<Result<Value, MetaError>>, MetaError> {
        if reqs.is_empty() {
            return Ok(Vec::new());
        }
        let client = self.client(net, from);
        // All member keys ("m0".."mN") share one backing buffer — one
        // allocation for the lot instead of a `format!` String each.
        use std::fmt::Write as _;
        let mut keybuf = String::with_capacity(reqs.len() * 4);
        let mut spans = Vec::with_capacity(reqs.len());
        for i in 0..reqs.len() {
            let start = keybuf.len();
            write!(keybuf, "m{i}").expect("string write");
            spans.push(start..keybuf.len());
        }
        let members: Vec<Value> = reqs.iter().map(member_to_value).collect();
        let args = spans
            .iter()
            .zip(&members)
            .map(|(span, v)| (&keybuf[span.clone()], v));
        let headers = [(BATCH_HEADER, reqs.len().to_string())];
        let reply = client
            .call_parts_with_headers(to, GATEWAY_NS, BATCH_METHOD, args, &headers)
            .map_err(|e| match e {
                SoapError::Fault(f) => MetaError::from_fault_string(&f.string),
                SoapError::Http(h) => MetaError::from_http_error(&h),
                other => MetaError::Protocol(other.to_string()),
            })?;
        let Value::List(items) = reply else {
            return Err(MetaError::Protocol("bad batch reply body".into()));
        };
        if items.len() != reqs.len() {
            return Err(MetaError::Protocol("batch reply arity mismatch".into()));
        }
        Ok(items.iter().map(result_from_value).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::conformance;

    #[test]
    fn soap11_conformance() {
        conformance::run(&Soap11::new());
    }

    #[test]
    fn soap_has_no_push() {
        assert!(!Soap11::new().supports_push());
        assert_eq!(Soap11::new().name(), "soap");
    }

    #[test]
    fn soap_call_moves_hundreds_of_wire_bytes() {
        use simnet::{Network, Protocol, Sim};
        use std::sync::Arc;
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let p = Soap11::new();
        let server = p.bind(&net, "gw", Arc::new(|_, _| Ok(Value::Null)));
        let client = net.attach("c");
        p.call(&net, client, server, &VsgRequest::new("svc", "ping"))
            .unwrap();
        let http = net.with_stats(|s| s.protocol(Protocol::Http));
        assert!(
            http.bytes > 600,
            "SOAP ping moved only {} bytes",
            http.bytes
        );
    }
}
