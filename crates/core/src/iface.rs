//! Canonical service interfaces.
//!
//! A [`ServiceInterface`] is the framework's middleware-neutral interface
//! descriptor — the artefact the paper's prototype extracted from Java
//! interfaces to drive both WSDL generation and automatic proxy
//! generation (§4.1). Every PCM maps its middleware's native service
//! descriptions onto this form.

use crate::error::MetaError;
use soap::Value;
use std::fmt;
use wsdl::{Operation, ServiceDescription, XsdType};

/// A parameter or return type in the canonical type system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeTag {
    /// Boolean.
    Bool,
    /// 64-bit integer.
    Int,
    /// Double-precision float.
    Float,
    /// UTF-8 string.
    Str,
    /// Opaque bytes.
    Bytes,
    /// Anything (lists, records, or any scalar).
    Any,
}

impl TypeTag {
    /// True if `value` inhabits this type.
    pub fn admits(self, value: &Value) -> bool {
        matches!(
            (self, value),
            (TypeTag::Any, _)
                | (TypeTag::Bool, Value::Bool(_))
                | (TypeTag::Int, Value::Int(_))
                | (TypeTag::Float, Value::Float(_))
                | (TypeTag::Str, Value::Str(_))
                | (TypeTag::Bytes, Value::Bytes(_))
        )
    }

    /// The matching WSDL part type.
    pub fn to_xsd(self) -> XsdType {
        match self {
            TypeTag::Bool => XsdType::Boolean,
            TypeTag::Int => XsdType::Int,
            TypeTag::Float => XsdType::Double,
            TypeTag::Str => XsdType::String,
            TypeTag::Bytes => XsdType::Base64,
            TypeTag::Any => XsdType::Any,
        }
    }

    /// Inverse of [`TypeTag::to_xsd`].
    pub fn from_xsd(t: XsdType) -> TypeTag {
        match t {
            XsdType::Boolean => TypeTag::Bool,
            XsdType::Int => TypeTag::Int,
            XsdType::Double => TypeTag::Float,
            XsdType::String => TypeTag::Str,
            XsdType::Base64 => TypeTag::Bytes,
            XsdType::Any => TypeTag::Any,
        }
    }
}

impl fmt::Display for TypeTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TypeTag::Bool => "bool",
            TypeTag::Int => "int",
            TypeTag::Float => "float",
            TypeTag::Str => "str",
            TypeTag::Bytes => "bytes",
            TypeTag::Any => "any",
        };
        f.write_str(s)
    }
}

/// One operation signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpSig {
    /// Operation name.
    pub name: String,
    /// Named, typed parameters in call order.
    pub params: Vec<(String, TypeTag)>,
    /// Return type; `None` for void.
    pub returns: Option<TypeTag>,
    /// Whether calling the operation twice is equivalent to calling it
    /// once (a pure read, or an absolute state set). The resilience
    /// layer only re-sends an operation whose response was lost — an
    /// *ambiguous* failure — when this is `true`. Defaults to `false`:
    /// the safe assumption for an operation nobody has classified.
    pub idempotent: bool,
}

impl OpSig {
    /// Creates a void, parameterless operation.
    pub fn new(name: impl Into<String>) -> OpSig {
        OpSig {
            name: name.into(),
            params: Vec::new(),
            returns: None,
            idempotent: false,
        }
    }

    /// Adds a parameter (builder style).
    pub fn param(mut self, name: impl Into<String>, ty: TypeTag) -> OpSig {
        self.params.push((name.into(), ty));
        self
    }

    /// Sets the return type (builder style).
    pub fn returns(mut self, ty: TypeTag) -> OpSig {
        self.returns = Some(ty);
        self
    }

    /// Marks the operation idempotent (builder style).
    pub fn idempotent(mut self) -> OpSig {
        self.idempotent = true;
        self
    }

    /// Type-checks an argument list against this signature. Arguments are
    /// matched by name; extra arguments are rejected, missing ones too.
    pub fn check_args(&self, args: &[(String, Value)]) -> Result<(), MetaError> {
        for (name, ty) in &self.params {
            let arg =
                args.iter()
                    .find(|(k, _)| k == name)
                    .ok_or_else(|| MetaError::TypeMismatch {
                        operation: self.name.clone(),
                        parameter: name.clone(),
                        expected: ty.to_string(),
                        got: "missing".into(),
                    })?;
            if !ty.admits(&arg.1) {
                return Err(MetaError::TypeMismatch {
                    operation: self.name.clone(),
                    parameter: name.clone(),
                    expected: ty.to_string(),
                    got: arg.1.type_label().to_owned(),
                });
            }
        }
        if let Some((extra, _)) = args
            .iter()
            .find(|(k, _)| !self.params.iter().any(|(p, _)| p == k))
        {
            return Err(MetaError::TypeMismatch {
                operation: self.name.clone(),
                parameter: extra.clone(),
                expected: "no such parameter".into(),
                got: "present".into(),
            });
        }
        Ok(())
    }
}

/// A named set of operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceInterface {
    /// Interface name (e.g. `VcrControl`).
    pub name: String,
    /// Operations.
    pub operations: Vec<OpSig>,
}

impl ServiceInterface {
    /// Creates an empty interface.
    pub fn new(name: impl Into<String>) -> ServiceInterface {
        ServiceInterface {
            name: name.into(),
            operations: Vec::new(),
        }
    }

    /// Adds an operation (builder style).
    pub fn op(mut self, op: OpSig) -> ServiceInterface {
        self.operations.push(op);
        self
    }

    /// Finds an operation by name.
    pub fn find(&self, name: &str) -> Option<&OpSig> {
        self.operations.iter().find(|o| o.name == name)
    }

    /// Generates the WSDL-style description for a service implementing
    /// this interface at `endpoint`.
    pub fn to_wsdl(&self, service_name: &str, endpoint: &str) -> ServiceDescription {
        let mut desc = ServiceDescription::new(service_name, format!("urn:vsg:{service_name}"))
            .at(endpoint)
            .doc(format!("interface {}", self.name));
        for op in &self.operations {
            let mut w = Operation::new(&op.name);
            if op.idempotent {
                w = w.idempotent();
            }
            for (p, t) in &op.params {
                w = w.input(p, t.to_xsd());
            }
            if let Some(r) = op.returns {
                w = w.returns(r.to_xsd());
            }
            desc = desc.operation(w);
        }
        desc
    }

    /// Reconstructs an interface from a WSDL description (used when a PCM
    /// learns about a remote service from the VSR).
    pub fn from_wsdl(desc: &ServiceDescription) -> ServiceInterface {
        let mut iface = ServiceInterface::new(
            desc.documentation
                .strip_prefix("interface ")
                .unwrap_or(&desc.name)
                .to_owned(),
        );
        for op in &desc.operations {
            let mut sig = OpSig::new(&op.name);
            if op.idempotent {
                sig = sig.idempotent();
            }
            for part in &op.inputs {
                sig = sig.param(&part.name, TypeTag::from_xsd(part.ty));
            }
            if let Some(out) = &op.output {
                sig = sig.returns(TypeTag::from_xsd(out.ty));
            }
            iface = iface.op(sig);
        }
        iface
    }
}

/// A name-indexed collection of known interfaces.
///
/// PCMs use this to reconstruct a full [`ServiceInterface`] from the bare
/// interface *name* a native middleware advertises (a Jini proxy's Java
/// interface name, a UPnP service type) — the role Java reflection played
/// in the prototype.
#[derive(Debug, Clone, Default)]
pub struct InterfaceCatalog {
    by_name: std::collections::HashMap<String, ServiceInterface>,
}

impl InterfaceCatalog {
    /// An empty catalog.
    pub fn new() -> InterfaceCatalog {
        InterfaceCatalog::default()
    }

    /// The catalog of standard appliance interfaces (see [`catalog`]).
    pub fn standard() -> InterfaceCatalog {
        let mut c = InterfaceCatalog::new();
        for iface in [
            catalog::lamp(),
            catalog::vcr(),
            catalog::laserdisc(),
            catalog::dv_camera(),
            catalog::tuner(),
            catalog::display(),
            catalog::fridge(),
            catalog::aircon(),
            catalog::mailer(),
            catalog::motion_sensor(),
        ] {
            c.insert(iface);
        }
        c
    }

    /// Adds (or replaces) an interface.
    pub fn insert(&mut self, iface: ServiceInterface) {
        self.by_name.insert(iface.name.clone(), iface);
    }

    /// Looks up an interface by name.
    pub fn get(&self, name: &str) -> Option<&ServiceInterface> {
        self.by_name.get(name)
    }

    /// Number of known interfaces.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }
}

/// Well-known appliance interfaces used throughout examples and tests —
/// the vocabulary of the paper's smart home.
pub mod catalog {
    use super::*;

    /// An on/off (dimmable) lamp.
    pub fn lamp() -> ServiceInterface {
        ServiceInterface::new("Lamp")
            .op(OpSig::new("switch").param("on", TypeTag::Bool))
            .op(OpSig::new("dim").param("steps", TypeTag::Int))
            .op(OpSig::new("status").returns(TypeTag::Bool).idempotent())
    }

    /// A VCR with transport and timer recording.
    pub fn vcr() -> ServiceInterface {
        ServiceInterface::new("VcrControl")
            .op(OpSig::new("play"))
            .op(OpSig::new("stop"))
            .op(OpSig::new("record")
                .param("channel", TypeTag::Int)
                .param("title", TypeTag::Str)
                .returns(TypeTag::Bool))
            .op(OpSig::new("position").returns(TypeTag::Int).idempotent())
    }

    /// The Jini Laserdisc player of Fig. 5.
    pub fn laserdisc() -> ServiceInterface {
        ServiceInterface::new("LaserdiscPlayer")
            .op(OpSig::new("play").param("chapter", TypeTag::Int))
            .op(OpSig::new("stop"))
            .op(OpSig::new("status").returns(TypeTag::Str).idempotent())
    }

    /// The HAVi DV camera of Fig. 5.
    pub fn dv_camera() -> ServiceInterface {
        ServiceInterface::new("DvCamera")
            .op(OpSig::new("play"))
            .op(OpSig::new("stop"))
            .op(OpSig::new("record"))
            .op(OpSig::new("capture").returns(TypeTag::Int))
    }

    /// A TV tuner.
    pub fn tuner() -> ServiceInterface {
        ServiceInterface::new("Tuner")
            .op(OpSig::new("set_channel").param("channel", TypeTag::Int))
            .op(OpSig::new("channel").returns(TypeTag::Int).idempotent())
    }

    /// A display panel (for OSD).
    pub fn display() -> ServiceInterface {
        ServiceInterface::new("Display").op(OpSig::new("show").param("text", TypeTag::Str))
    }

    /// A refrigerator (the §1 Jini appliance).
    pub fn fridge() -> ServiceInterface {
        ServiceInterface::new("Fridge")
            .op(OpSig::new("temperature")
                .returns(TypeTag::Float)
                .idempotent())
            .op(OpSig::new("set_target").param("celsius", TypeTag::Float))
    }

    /// An air conditioner (the §1 Jini appliance).
    pub fn aircon() -> ServiceInterface {
        ServiceInterface::new("AirConditioner")
            .op(OpSig::new("switch").param("on", TypeTag::Bool))
            .op(OpSig::new("set_target").param("celsius", TypeTag::Float))
            .op(OpSig::new("status").returns(TypeTag::Str).idempotent())
    }

    /// A mail notification service.
    pub fn mailer() -> ServiceInterface {
        ServiceInterface::new("Mailer")
            .op(OpSig::new("send")
                .param("to", TypeTag::Str)
                .param("subject", TypeTag::Str)
                .param("body", TypeTag::Str))
            .op(OpSig::new("unread")
                .param("mailbox", TypeTag::Str)
                .returns(TypeTag::Int)
                .idempotent())
    }

    /// A motion sensor (event source, pollable).
    pub fn motion_sensor() -> ServiceInterface {
        ServiceInterface::new("MotionSensor")
            .op(OpSig::new("state").returns(TypeTag::Bool).idempotent())
            .op(OpSig::new("drain_events").returns(TypeTag::Any))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_admission() {
        assert!(TypeTag::Int.admits(&Value::Int(3)));
        assert!(!TypeTag::Int.admits(&Value::Str("3".into())));
        assert!(TypeTag::Any.admits(&Value::List(vec![])));
        assert!(TypeTag::Bytes.admits(&Value::Bytes(vec![1])));
        assert!(!TypeTag::Bool.admits(&Value::Null));
    }

    #[test]
    fn xsd_round_trip() {
        for t in [
            TypeTag::Bool,
            TypeTag::Int,
            TypeTag::Float,
            TypeTag::Str,
            TypeTag::Bytes,
            TypeTag::Any,
        ] {
            assert_eq!(TypeTag::from_xsd(t.to_xsd()), t);
        }
    }

    #[test]
    fn arg_checking() {
        let sig = OpSig::new("record")
            .param("channel", TypeTag::Int)
            .param("title", TypeTag::Str);
        assert!(sig
            .check_args(&[
                ("channel".into(), Value::Int(4)),
                ("title".into(), Value::Str("t".into()))
            ])
            .is_ok());
        // Order doesn't matter.
        assert!(sig
            .check_args(&[
                ("title".into(), Value::Str("t".into())),
                ("channel".into(), Value::Int(4))
            ])
            .is_ok());
        // Missing parameter.
        assert!(sig
            .check_args(&[("channel".into(), Value::Int(4))])
            .is_err());
        // Wrong type.
        assert!(sig
            .check_args(&[
                ("channel".into(), Value::Str("x".into())),
                ("title".into(), Value::Str("t".into()))
            ])
            .is_err());
        // Extra parameter.
        assert!(sig
            .check_args(&[
                ("channel".into(), Value::Int(4)),
                ("title".into(), Value::Str("t".into())),
                ("ghost".into(), Value::Int(1)),
            ])
            .is_err());
    }

    #[test]
    fn wsdl_round_trip_preserves_interface() {
        let iface = catalog::vcr();
        let desc = iface.to_wsdl("living-room-vcr", "vsg://havi-gw/living-room-vcr");
        assert_eq!(desc.namespace, "urn:vsg:living-room-vcr");
        let back = ServiceInterface::from_wsdl(&desc);
        assert_eq!(back, iface);
    }

    #[test]
    fn wsdl_survives_the_wire() {
        let iface = catalog::mailer();
        let desc = iface.to_wsdl("mailer", "vsg://inet-gw/mailer");
        let text = desc.to_xml().to_document();
        let parsed = wsdl::ServiceDescription::from_xml(&minixml::parse(&text).unwrap()).unwrap();
        assert_eq!(ServiceInterface::from_wsdl(&parsed), iface);
    }

    #[test]
    fn catalog_interfaces_are_well_formed() {
        for iface in [
            catalog::lamp(),
            catalog::vcr(),
            catalog::laserdisc(),
            catalog::dv_camera(),
            catalog::tuner(),
            catalog::display(),
            catalog::fridge(),
            catalog::aircon(),
            catalog::mailer(),
            catalog::motion_sensor(),
        ] {
            assert!(!iface.operations.is_empty(), "{} has ops", iface.name);
            // Operation names unique.
            let mut names: Vec<&str> = iface.operations.iter().map(|o| o.name.as_str()).collect();
            names.sort();
            let len = names.len();
            names.dedup();
            assert_eq!(names.len(), len, "{} has duplicate ops", iface.name);
        }
    }

    #[test]
    fn find_op() {
        let iface = catalog::lamp();
        assert!(iface.find("switch").is_some());
        assert!(iface.find("explode").is_none());
    }
}
