//! Measurement helpers and the device-footprint model.
//!
//! [`Probe`] captures virtual-time and per-network traffic deltas around
//! a closure — the instrument behind most benches. The [`footprint`]
//! module models §4.2's closing observation: "current HTTP must run over
//! TCP, and a TCP stack is large and complex. This can be an issue in
//! small devices or appliances with stringent memory and processing
//! requirements" (experiment E7).

use simnet::{Counter, Network, Sim, SimDuration, SimTime};
use std::fmt;

/// One measured interaction.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Virtual time consumed.
    pub elapsed: SimDuration,
    /// Per-network deltas `(network-name, delivered)` over the closure.
    pub traffic: Vec<(String, Counter)>,
}

impl Measurement {
    /// Total payload bytes moved across all probed networks.
    pub fn total_bytes(&self) -> u64 {
        self.traffic.iter().map(|(_, c)| c.bytes).sum()
    }

    /// Total frames moved across all probed networks.
    pub fn total_frames(&self) -> u64 {
        self.traffic.iter().map(|(_, c)| c.frames).sum()
    }

    /// Total frames dropped by lossy links across all probed networks.
    pub fn total_lost(&self) -> u64 {
        self.traffic.iter().map(|(_, c)| c.lost).sum()
    }
}

impl fmt::Display for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} / {}B / {} frames",
            self.elapsed,
            self.total_bytes(),
            self.total_frames()
        )?;
        // Silence would hide loss during bench runs on lossy media
        // (powerline, SIP-over-UDP); zero-loss output stays unchanged.
        let lost = self.total_lost();
        if lost > 0 {
            write!(f, " / {lost} lost")?;
        }
        Ok(())
    }
}

/// Measures a closure against a set of networks.
pub struct Probe<'a> {
    sim: &'a Sim,
    networks: Vec<&'a Network>,
}

impl<'a> Probe<'a> {
    /// Creates a probe over the given networks.
    pub fn new(sim: &'a Sim, networks: Vec<&'a Network>) -> Probe<'a> {
        Probe { sim, networks }
    }

    /// Runs `f`, returning its value and the measurement.
    pub fn measure<T>(&self, f: impl FnOnce() -> T) -> (T, Measurement) {
        let t0: SimTime = self.sim.now();
        let before: Vec<Counter> = self
            .networks
            .iter()
            .map(|n| n.with_stats(|s| s.total()))
            .collect();
        let value = f();
        let traffic = self
            .networks
            .iter()
            .zip(before)
            .map(|(n, b)| {
                let after = n.with_stats(|s| s.total());
                (
                    n.name().to_owned(),
                    Counter {
                        frames: after.frames - b.frames,
                        bytes: after.bytes - b.bytes,
                        lost: after.lost - b.lost,
                    },
                )
            })
            .collect();
        (
            value,
            Measurement {
                elapsed: self.sim.now() - t0,
                traffic,
            },
        )
    }
}

/// Hit/miss/eviction counters for the gateway resolution cache
/// (observable per gateway via `Vsg::cache_stats`, reported by the E11
/// hot-path ablations).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a cached `ServiceRecord`.
    pub hits: u64,
    /// Lookups answered from a cached negative ("no such service")
    /// entry, sparing the VSR a round trip per repeated miss.
    pub negative_hits: u64,
    /// Lookups that fell through to VSR resolution.
    pub misses: u64,
    /// Entries displaced by the capacity bound (LRU order).
    pub evictions: u64,
    /// Entries dropped by explicit invalidation (withdraw/re-export or
    /// a stale route detected mid-invocation).
    pub invalidations: u64,
    /// Invalidated entries served anyway because the VSR was
    /// unreachable and the gateway preferred availability (degraded
    /// mode).
    pub stale_serves: u64,
}

impl CacheStats {
    /// Hit ratio over all lookups (0.0 when no lookups happened).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.negative_hits + self.misses;
        if total == 0 {
            0.0
        } else {
            (self.hits + self.negative_hits) as f64 / total as f64
        }
    }
}

// ---- the per-gateway metrics registry --------------------------------------

use crate::obs::{HistSketch, Layer, LAYERS};
use crate::trace::TraceId;

#[derive(Debug, Default)]
struct MetricsState {
    invocations: u64,
    errors: std::collections::BTreeMap<&'static str, u64>,
    per_service: std::collections::BTreeMap<String, u64>,
    latency: HistSketch,
    queue_wait: HistSketch,
    layers: [HistSketch; LAYERS.len()],
    retries: u64,
    degraded_serves: u64,
    breaker_transitions: u64,
    breaker_state: std::collections::BTreeMap<String, &'static str>,
    shard_ops: std::collections::BTreeMap<u32, u64>,
    vsr_failovers: u64,
    shard_map_refreshes: u64,
    replication_lag: std::collections::BTreeMap<u32, u64>,
    compose_executions: u64,
    compose_steps: u64,
    compose_failures: u64,
    compose_compensations: u64,
    compose_compensation_failures: u64,
}

/// Per-gateway monotonic counters and latency histogram, fed by every
/// `Vsg::invoke`. Always on — unlike tracing, a handful of counter
/// bumps behind a mutex is cheap enough to not need a switch.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    state: parking_lot::Mutex<MetricsState>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Records one invocation of `service` that took `elapsed_us` of
    /// virtual time; `error_kind` is [`crate::MetaError::kind`] when it
    /// failed.
    pub fn record(&self, service: &str, elapsed_us: u64, error_kind: Option<&'static str>) {
        self.record_with_exemplar(service, elapsed_us, error_kind, None);
    }

    /// [`MetricsRegistry::record`] plus an exemplar: the trace id of
    /// the invocation (when tracing is on), stored on the latency
    /// bucket the sample lands in so a slow bucket in a fleet-merged
    /// snapshot points at one concrete kept trace.
    pub fn record_with_exemplar(
        &self,
        service: &str,
        elapsed_us: u64,
        error_kind: Option<&'static str>,
        exemplar: Option<TraceId>,
    ) {
        let mut st = self.state.lock();
        st.invocations += 1;
        if let Some(kind) = error_kind {
            *st.errors.entry(kind).or_insert(0) += 1;
        }
        if let Some(n) = st.per_service.get_mut(service) {
            *n += 1;
        } else {
            st.per_service.insert(service.to_owned(), 1);
        }
        st.latency.record_with_exemplar(elapsed_us, exemplar);
    }

    /// Records `elapsed_us` against one attribution layer (VSR lookup,
    /// VSG wire, PCM conversion, app body). Always on, like the other
    /// counters.
    pub fn record_layer(&self, layer: Layer, elapsed_us: u64) {
        self.record_layer_with_exemplar(layer, elapsed_us, None);
    }

    /// [`MetricsRegistry::record_layer`] with a trace-id exemplar.
    pub fn record_layer_with_exemplar(
        &self,
        layer: Layer,
        elapsed_us: u64,
        exemplar: Option<TraceId>,
    ) {
        self.state.lock().layers[layer.index()].record_with_exemplar(elapsed_us, exemplar);
    }

    /// Records one wire-call retry (the resilience layer re-sending
    /// after a transport failure).
    pub fn record_retry(&self) {
        self.state.lock().retries += 1;
    }

    /// Records how long one batched call or event sat in its per-peer
    /// queue between enqueue and flush. Kept separate from the
    /// invocation latency histogram so coalescing delay is observable
    /// on its own rather than hidden inside end-to-end time.
    pub fn record_queue_wait(&self, us: u64) {
        self.state.lock().queue_wait.record(us);
    }

    /// Records one invocation answered from a stale route because the
    /// VSR was unreachable (degraded mode).
    pub fn record_degraded_serve(&self) {
        self.state.lock().degraded_serves += 1;
    }

    /// Records a circuit-breaker state transition for `gateway` and
    /// updates the per-gateway state gauge.
    pub fn record_breaker_transition(&self, gateway: &str, state: &'static str) {
        let mut st = self.state.lock();
        st.breaker_transitions += 1;
        st.breaker_state.insert(gateway.to_owned(), state);
    }

    /// Records one repository operation routed to `shard` of the
    /// federated VSR (per-shard load visibility).
    pub fn record_shard_op(&self, shard: u32) {
        *self.state.lock().shard_ops.entry(shard).or_insert(0) += 1;
    }

    /// Records one VSR replica failover: the shard's preferred replica
    /// could not be reached and the operation moved down the
    /// preference list.
    pub fn record_vsr_failover(&self) {
        self.state.lock().vsr_failovers += 1;
    }

    /// Records one client-side shard-map refresh (a fetch forced by a
    /// cold cache or a `moved-shard` redirect).
    pub fn record_shard_map_refresh(&self) {
        self.state.lock().shard_map_refreshes += 1;
    }

    /// Sets the replication-lag gauge for `shard`: how many records on
    /// the shard's primary its laggiest backup has not yet caught up
    /// on (0 when fully converged).
    pub fn set_replication_lag(&self, shard: u32, lag: u64) {
        self.state.lock().replication_lag.insert(shard, lag);
    }

    /// Records one composition-engine execution: how many steps
    /// completed, how its compensators fared, and whether the pipeline
    /// as a whole failed.
    pub fn record_compose(&self, outcome: &crate::compose::ComposeOutcome, failed: bool) {
        let mut st = self.state.lock();
        st.compose_executions += 1;
        st.compose_steps += outcome.steps_completed as u64;
        st.compose_compensations += outcome.compensations_run as u64;
        st.compose_compensation_failures += outcome.compensations_failed as u64;
        if failed {
            st.compose_failures += 1;
        }
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let st = self.state.lock();
        RegistrySnapshot {
            invocations: st.invocations,
            errors: st
                .errors
                .iter()
                .map(|(k, v)| ((*k).to_owned(), *v))
                .collect(),
            per_service: st
                .per_service
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            latency: st.latency,
            queue_wait: st.queue_wait,
            layers: st.layers,
            retries: st.retries,
            degraded_serves: st.degraded_serves,
            breaker_transitions: st.breaker_transitions,
            breakers: st
                .breaker_state
                .iter()
                .map(|(k, v)| (k.clone(), (*v).to_owned()))
                .collect(),
            shard_ops: st.shard_ops.iter().map(|(k, v)| (*k, *v)).collect(),
            vsr_failovers: st.vsr_failovers,
            shard_map_refreshes: st.shard_map_refreshes,
            replication_lag: st.replication_lag.iter().map(|(k, v)| (*k, *v)).collect(),
            compose_executions: st.compose_executions,
            compose_steps: st.compose_steps,
            compose_failures: st.compose_failures,
            compose_compensations: st.compose_compensations,
            compose_compensation_failures: st.compose_compensation_failures,
        }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`] (sorted by key).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Total invocations through the gateway.
    pub invocations: u64,
    /// Failures, counted by [`crate::MetaError::kind`].
    pub errors: Vec<(String, u64)>,
    /// Calls per target service.
    pub per_service: Vec<(String, u64)>,
    /// Virtual-time latency sketch of end-to-end invocations.
    pub latency: HistSketch,
    /// Time batched calls/events spent queued before their flush
    /// (empty unless batching is enabled).
    pub queue_wait: HistSketch,
    /// Per-layer latency sketches, indexed by [`Layer::index`].
    pub layers: [HistSketch; LAYERS.len()],
    /// Wire-call retries performed by the resilience layer.
    pub retries: u64,
    /// Invocations served from a stale route during a VSR outage.
    pub degraded_serves: u64,
    /// Circuit-breaker state transitions (open/half-open/closed).
    pub breaker_transitions: u64,
    /// Current breaker state per remote gateway (gauge).
    pub breakers: Vec<(String, String)>,
    /// Repository operations per shard of the federated VSR.
    pub shard_ops: Vec<(u32, u64)>,
    /// VSR replica failovers (preferred replica skipped or failed).
    pub vsr_failovers: u64,
    /// Client-side shard-map refreshes.
    pub shard_map_refreshes: u64,
    /// Replication-lag gauge per shard (records the laggiest backup is
    /// behind its primary by).
    pub replication_lag: Vec<(u32, u64)>,
    /// Composite pipelines executed by this gateway's composition
    /// engine (success or failure).
    pub compose_executions: u64,
    /// Pipeline steps completed across all composite executions.
    pub compose_steps: u64,
    /// Composite executions that failed (after compensation ran).
    pub compose_failures: u64,
    /// Compensating undos the engine invoked that succeeded.
    pub compose_compensations: u64,
    /// Compensating undos the engine invoked that themselves failed.
    pub compose_compensation_failures: u64,
}

/// Merges two sorted `(key, count)` vectors, summing on key collision.
fn merge_counts<K: Ord + Clone>(a: &mut Vec<(K, u64)>, b: &[(K, u64)]) {
    merge_sorted(a, b, |mine, theirs| *mine += theirs);
}

fn merge_sorted<K: Ord + Clone, V: Clone>(
    a: &mut Vec<(K, V)>,
    b: &[(K, V)],
    mut collide: impl FnMut(&mut V, &V),
) {
    let mut out: Vec<(K, V)> = Vec::with_capacity(a.len() + b.len());
    let mut i = 0;
    let mut j = 0;
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j].clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let mut entry = a[i].clone();
                collide(&mut entry.1, &b[j].1);
                out.push(entry);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    *a = out;
}

impl RegistrySnapshot {
    /// The latency sketch for one attribution layer.
    pub fn layer(&self, layer: Layer) -> &HistSketch {
        &self.layers[layer.index()]
    }

    /// Folds `other` into `self`: counters add, sketches bucket-merge,
    /// the replication-lag gauge keeps the worst (max) value per shard
    /// and breaker gauges collapse to `"mixed"` when homes disagree.
    /// Associative and commutative except for the `"mixed"` collapse,
    /// which is still order-independent in its final value.
    pub fn merge_from(&mut self, other: &RegistrySnapshot) {
        self.invocations += other.invocations;
        merge_counts(&mut self.errors, &other.errors);
        merge_counts(&mut self.per_service, &other.per_service);
        self.latency.merge(&other.latency);
        self.queue_wait.merge(&other.queue_wait);
        for (mine, theirs) in self.layers.iter_mut().zip(&other.layers) {
            mine.merge(theirs);
        }
        self.retries += other.retries;
        self.degraded_serves += other.degraded_serves;
        self.breaker_transitions += other.breaker_transitions;
        merge_sorted(&mut self.breakers, &other.breakers, |mine, theirs| {
            if *mine != *theirs {
                *mine = "mixed".to_owned();
            }
        });
        merge_counts(&mut self.shard_ops, &other.shard_ops);
        self.vsr_failovers += other.vsr_failovers;
        self.shard_map_refreshes += other.shard_map_refreshes;
        merge_sorted(
            &mut self.replication_lag,
            &other.replication_lag,
            |mine, theirs| *mine = (*mine).max(*theirs),
        );
        self.compose_executions += other.compose_executions;
        self.compose_steps += other.compose_steps;
        self.compose_failures += other.compose_failures;
        self.compose_compensations += other.compose_compensations;
        self.compose_compensation_failures += other.compose_compensation_failures;
    }
}

/// A gateway's full observable state — invocation counters merged with
/// its resolution-cache statistics — serializable to JSON for bench
/// artefacts (`Vsg::metrics_snapshot`).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// The gateway's name.
    pub gateway: String,
    /// The simulation island this gateway's home runs on (0 for
    /// standalone worlds). A pure function of the topology — never of
    /// the thread count — so snapshots stay byte-identical between
    /// `SIM_THREADS=1` and `SIM_THREADS=N` while making fleet
    /// comparisons apples-to-apples.
    pub island: u32,
    /// Invocation counters and latency histogram.
    pub registry: RegistrySnapshot,
    /// Resolution-cache counters.
    pub cache: CacheStats,
}

impl MetricsSnapshot {
    /// An empty snapshot to fold others into, labelled `gateway`.
    /// [`MetricsSnapshot::merge_from`] accumulates per-gateway
    /// snapshots in O(buckets) memory regardless of sample count.
    pub fn empty(gateway: &str, island: u32) -> MetricsSnapshot {
        MetricsSnapshot {
            gateway: gateway.to_owned(),
            island,
            registry: RegistrySnapshot::default(),
            cache: CacheStats::default(),
        }
    }

    /// Folds `other` into `self` (see [`RegistrySnapshot::merge_from`]
    /// for the per-field rules; cache counters add). The gateway label
    /// and island id of `self` are kept — a fleet rollup labels itself
    /// once and absorbs everything else.
    pub fn merge_from(&mut self, other: &MetricsSnapshot) {
        self.registry.merge_from(&other.registry);
        self.cache.hits += other.cache.hits;
        self.cache.negative_hits += other.cache.negative_hits;
        self.cache.misses += other.cache.misses;
        self.cache.evictions += other.cache.evictions;
        self.cache.invalidations += other.cache.invalidations;
        self.cache.stale_serves += other.cache.stale_serves;
    }

    /// Hand-rolled JSON (the workspace deliberately has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!(
            "{{\"gateway\":{},\"island\":{}",
            json_str(&self.gateway),
            self.island
        ));
        out.push_str(&format!(",\"invocations\":{}", self.registry.invocations));
        out.push_str(",\"errors\":{");
        for (i, (k, v)) in self.registry.errors.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{v}", json_str(k)));
        }
        out.push_str("},\"per_service\":{");
        for (i, (k, v)) in self.registry.per_service.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{v}", json_str(k)));
        }
        out.push_str("},\"latency\":");
        out.push_str(&self.registry.latency.to_json());
        out.push_str(",\"queue_wait\":");
        out.push_str(&self.registry.queue_wait.to_json());
        out.push_str(",\"layers\":{");
        for (i, layer) in LAYERS.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{}",
                layer.label(),
                self.registry.layer(*layer).to_json()
            ));
        }
        out.push('}');
        out.push_str(&format!(
            ",\"resilience\":{{\"retries\":{},\"degraded_serves\":{},\"breaker_transitions\":{},\"breakers\":{{",
            self.registry.retries, self.registry.degraded_serves, self.registry.breaker_transitions
        ));
        for (i, (gw, state)) in self.registry.breakers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json_str(gw), json_str(state)));
        }
        out.push_str("}}");
        out.push_str(&format!(
            ",\"federation\":{{\"vsr_failovers\":{},\"shard_map_refreshes\":{},\"shard_ops\":{{",
            self.registry.vsr_failovers, self.registry.shard_map_refreshes
        ));
        for (i, (shard, n)) in self.registry.shard_ops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{shard}\":{n}"));
        }
        out.push_str("},\"replication_lag\":{");
        for (i, (shard, lag)) in self.registry.replication_lag.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{shard}\":{lag}"));
        }
        out.push_str("}}");
        out.push_str(&format!(
            ",\"compose\":{{\"executions\":{},\"steps\":{},\"failures\":{},\"compensations\":{},\"compensation_failures\":{}}}",
            self.registry.compose_executions,
            self.registry.compose_steps,
            self.registry.compose_failures,
            self.registry.compose_compensations,
            self.registry.compose_compensation_failures
        ));
        out.push_str(&format!(
            ",\"cache\":{{\"hits\":{},\"negative_hits\":{},\"misses\":{},\"evictions\":{},\"invalidations\":{},\"stale_serves\":{}}}}}",
            self.cache.hits,
            self.cache.negative_hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.invalidations,
            self.cache.stale_serves
        ));
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The §4.2 footprint model: what each protocol stack costs on 2002-era
/// appliance hardware, and what each device class can afford.
pub mod footprint {
    /// A protocol stack's resource appetite (order-of-magnitude figures
    /// from 2002-era embedded-TCP and HAVi/X10 implementations).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct StackProfile {
        /// Display name.
        pub name: &'static str,
        /// Code (flash/ROM) bytes.
        pub code_bytes: u32,
        /// Working RAM bytes.
        pub ram_bytes: u32,
    }

    /// A class of appliance hardware.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct DeviceClass {
        /// Display name.
        pub name: &'static str,
        /// Available code space.
        pub code_budget: u32,
        /// Available RAM.
        pub ram_budget: u32,
    }

    /// An X10 module's microcontroller (PIC-class).
    pub const X10_MODULE: DeviceClass = DeviceClass {
        name: "x10-module",
        code_budget: 2_048,
        ram_budget: 128,
    };
    /// A sensor node / small appliance MCU.
    pub const SENSOR_NODE: DeviceClass = DeviceClass {
        name: "sensor-node",
        code_budget: 65_536,
        ram_budget: 16_384,
    };
    /// A digital AV appliance (HAVi-class, 32-bit with some RAM).
    pub const AV_APPLIANCE: DeviceClass = DeviceClass {
        name: "av-appliance",
        code_budget: 2_097_152,
        ram_budget: 524_288,
    };
    /// A set-top box / residential gateway.
    pub const SET_TOP_BOX: DeviceClass = DeviceClass {
        name: "set-top-box",
        code_budget: 8_388_608,
        ram_budget: 8_388_608,
    };
    /// A PC.
    pub const PC: DeviceClass = DeviceClass {
        name: "pc",
        code_budget: u32::MAX,
        ram_budget: u32::MAX,
    };

    /// All device classes, smallest first.
    pub const DEVICE_CLASSES: [DeviceClass; 5] =
        [X10_MODULE, SENSOR_NODE, AV_APPLIANCE, SET_TOP_BOX, PC];

    /// X10 receiver logic: a code wheel and a latch.
    pub const X10_STACK: StackProfile = StackProfile {
        name: "x10",
        code_bytes: 512,
        ram_bytes: 16,
    };
    /// An IEEE1394 link + HAVi messaging subset.
    pub const HAVI_STACK: StackProfile = StackProfile {
        name: "havi-1394",
        code_bytes: 262_144,
        ram_bytes: 65_536,
    };
    /// UDP/IP + a SIP-subset parser.
    pub const SIP_UDP_STACK: StackProfile = StackProfile {
        name: "sip-udp",
        code_bytes: 24_576,
        ram_bytes: 8_192,
    };
    /// TCP/IP + HTTP/1.1.
    pub const TCP_HTTP_STACK: StackProfile = StackProfile {
        name: "tcp-http",
        code_bytes: 49_152,
        ram_bytes: 32_768,
    };
    /// TCP/IP + HTTP + XML parser + SOAP runtime (the full VSG stack).
    pub const SOAP_STACK: StackProfile = StackProfile {
        name: "tcp-http-soap",
        code_bytes: 262_144,
        ram_bytes: 131_072,
    };
    /// The JVM-hosted Jini stack.
    pub const JINI_STACK: StackProfile = StackProfile {
        name: "jvm-jini",
        code_bytes: 8_388_608,
        ram_bytes: 4_194_304,
    };

    /// All stacks, lightest first.
    pub const STACKS: [StackProfile; 6] = [
        X10_STACK,
        SIP_UDP_STACK,
        TCP_HTTP_STACK,
        HAVI_STACK,
        SOAP_STACK,
        JINI_STACK,
    ];

    impl DeviceClass {
        /// True if this device can host the stack.
        pub fn can_host(&self, stack: &StackProfile) -> bool {
            stack.code_bytes <= self.code_budget && stack.ram_bytes <= self.ram_budget
        }
    }
}

#[cfg(test)]
mod tests {
    use super::footprint::*;
    use super::*;
    use simnet::{Frame, Protocol};

    #[test]
    fn probe_measures_time_and_traffic() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let a = net.attach("a");
        let b = net.attach("b");
        let probe = Probe::new(&sim, vec![&net]);
        let ((), m) = probe.measure(|| {
            net.send(Frame::new(a, b, Protocol::Raw, vec![0u8; 100]))
                .unwrap();
            sim.advance(SimDuration::from_millis(1));
        });
        assert!(m.elapsed >= SimDuration::from_millis(1));
        assert_eq!(m.total_bytes(), 100);
        assert_eq!(m.total_frames(), 1);
        assert_eq!(m.traffic[0].0, "ethernet");
        assert!(m.to_string().contains("100B"));
    }

    #[test]
    fn probe_delta_excludes_prior_traffic() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let a = net.attach("a");
        let b = net.attach("b");
        net.send(Frame::new(a, b, Protocol::Raw, vec![0u8; 500]))
            .unwrap();
        let probe = Probe::new(&sim, vec![&net]);
        let ((), m) = probe.measure(|| {});
        assert_eq!(m.total_bytes(), 0);
    }

    #[test]
    fn display_reports_dropped_frames() {
        let m = Measurement {
            elapsed: SimDuration::from_millis(2),
            traffic: vec![(
                "powerline".into(),
                simnet::Counter {
                    frames: 10,
                    bytes: 40,
                    lost: 3,
                },
            )],
        };
        assert_eq!(m.total_lost(), 3);
        assert!(m.to_string().contains("3 lost"), "{m}");
        // Lossless measurements keep the historical format.
        let clean = Measurement {
            elapsed: SimDuration::from_millis(2),
            traffic: vec![],
        };
        assert!(!clean.to_string().contains("lost"), "{clean}");
    }

    #[test]
    fn latency_sketch_records_and_means() {
        let mut h = HistSketch::default();
        h.record(50);
        h.record(100);
        h.record(700);
        h.record(2_000_000);
        assert_eq!(h.count, 4);
        assert!((h.mean_us() - 500_212.5).abs() < 0.01);
        assert_eq!(h.min_us(), 50);
        assert_eq!(h.max_us(), 2_000_000);
    }

    #[test]
    fn merged_snapshots_sum_counters_and_sketches() {
        let a = MetricsRegistry::new();
        a.record_with_exemplar("lamp", 300, None, Some(TraceId(9)));
        a.record("lamp", 90, Some("unknown-operation"));
        a.record_layer(Layer::Wire, 200);
        a.record_breaker_transition("havi-gw", "open");
        a.set_replication_lag(1, 3);
        let b = MetricsRegistry::new();
        b.record_with_exemplar("vcr", 310, None, Some(TraceId(4)));
        b.record_layer(Layer::Wire, 220);
        b.record_breaker_transition("havi-gw", "closed");
        b.set_replication_lag(1, 7);

        let snap_a = MetricsSnapshot {
            gateway: "a".into(),
            island: 0,
            registry: a.snapshot(),
            cache: CacheStats {
                hits: 2,
                ..CacheStats::default()
            },
        };
        let snap_b = MetricsSnapshot {
            gateway: "b".into(),
            island: 1,
            registry: b.snapshot(),
            cache: CacheStats {
                hits: 3,
                ..CacheStats::default()
            },
        };
        let mut fleet = MetricsSnapshot::empty("fleet", 0);
        fleet.merge_from(&snap_a);
        fleet.merge_from(&snap_b);
        assert_eq!(fleet.gateway, "fleet");
        assert_eq!(fleet.registry.invocations, 3);
        assert_eq!(
            fleet.registry.errors,
            vec![("unknown-operation".to_owned(), 1)]
        );
        assert_eq!(
            fleet.registry.per_service,
            vec![("lamp".to_owned(), 2), ("vcr".to_owned(), 1)]
        );
        assert_eq!(fleet.registry.latency.count, 3);
        assert_eq!(fleet.registry.layer(Layer::Wire).count, 2);
        // both 300 and 310 land in the same power-of-two bucket: the
        // exemplar min-merges to the smaller trace id
        assert_eq!(
            fleet.registry.latency.exemplar(crate::obs::bucket_of(300)),
            Some(TraceId(4))
        );
        // disagreeing breaker gauges collapse to "mixed"
        assert_eq!(
            fleet.registry.breakers,
            vec![("havi-gw".to_owned(), "mixed".to_owned())]
        );
        // replication lag keeps the worst shard value
        assert_eq!(fleet.registry.replication_lag, vec![(1, 7)]);
        assert_eq!(fleet.cache.hits, 5);
        // merge order does not matter
        let mut other = MetricsSnapshot::empty("fleet", 0);
        other.merge_from(&snap_b);
        other.merge_from(&snap_a);
        assert_eq!(fleet.to_json(), other.to_json());
    }

    #[test]
    fn registry_counts_invocations_errors_and_services() {
        let reg = MetricsRegistry::new();
        reg.record("lamp", 120, None);
        reg.record("lamp", 90, Some("unknown-operation"));
        reg.record("vcr", 4_000, Some("unknown-operation"));
        let snap = reg.snapshot();
        assert_eq!(snap.invocations, 3);
        assert_eq!(snap.errors, vec![("unknown-operation".to_owned(), 2)]);
        assert_eq!(
            snap.per_service,
            vec![("lamp".to_owned(), 2), ("vcr".to_owned(), 1)]
        );
        assert_eq!(snap.latency.count, 3);
    }

    #[test]
    fn queue_wait_is_tracked_separately_from_latency() {
        let reg = MetricsRegistry::new();
        reg.record("lamp", 120, None);
        reg.record_queue_wait(1_500);
        reg.record_queue_wait(40);
        let snap = reg.snapshot();
        assert_eq!(snap.latency.count, 1);
        assert_eq!(snap.queue_wait.count, 2);
        assert!((snap.queue_wait.mean_us() - 770.0).abs() < f64::EPSILON);
        let json = MetricsSnapshot {
            gateway: "gw".into(),
            island: 0,
            registry: snap,
            cache: CacheStats::default(),
        }
        .to_json();
        assert!(json.contains("\"queue_wait\":{"), "{json}");
        assert!(json.contains("\"mean_us\":770.0"), "{json}");
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn registry_tracks_resilience_events() {
        let reg = MetricsRegistry::new();
        reg.record_retry();
        reg.record_retry();
        reg.record_degraded_serve();
        reg.record_breaker_transition("havi-gw", "open");
        reg.record_breaker_transition("havi-gw", "half-open");
        reg.record_breaker_transition("jini-gw", "open");
        let snap = reg.snapshot();
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.degraded_serves, 1);
        assert_eq!(snap.breaker_transitions, 3);
        assert_eq!(
            snap.breakers,
            vec![
                ("havi-gw".to_owned(), "half-open".to_owned()),
                ("jini-gw".to_owned(), "open".to_owned()),
            ]
        );
        let json = MetricsSnapshot {
            gateway: "soap-gw".into(),
            island: 0,
            registry: snap,
            cache: CacheStats::default(),
        }
        .to_json();
        for needle in [
            "\"retries\":2",
            "\"degraded_serves\":1",
            "\"breaker_transitions\":3",
            "\"havi-gw\":\"half-open\"",
            "\"stale_serves\":0",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn registry_tracks_federation_events() {
        let reg = MetricsRegistry::new();
        reg.record_shard_op(0);
        reg.record_shard_op(3);
        reg.record_shard_op(3);
        reg.record_vsr_failover();
        reg.record_shard_map_refresh();
        reg.record_shard_map_refresh();
        reg.set_replication_lag(3, 7);
        reg.set_replication_lag(3, 0); // gauge: latest value wins
        let snap = reg.snapshot();
        assert_eq!(snap.shard_ops, vec![(0, 1), (3, 2)]);
        assert_eq!(snap.vsr_failovers, 1);
        assert_eq!(snap.shard_map_refreshes, 2);
        assert_eq!(snap.replication_lag, vec![(3, 0)]);
        let json = MetricsSnapshot {
            gateway: "jini-gw".into(),
            island: 0,
            registry: snap,
            cache: CacheStats::default(),
        }
        .to_json();
        for needle in [
            "\"federation\":{",
            "\"vsr_failovers\":1",
            "\"shard_map_refreshes\":2",
            "\"shard_ops\":{\"0\":1,\"3\":2}",
            "\"replication_lag\":{\"3\":0}",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let reg = MetricsRegistry::new();
        reg.record("hall-lamp", 300, Some("type-mismatch"));
        let snap = MetricsSnapshot {
            gateway: "x10-gw".into(),
            island: 0,
            registry: reg.snapshot(),
            cache: CacheStats {
                hits: 5,
                ..CacheStats::default()
            },
        };
        let json = snap.to_json();
        for needle in [
            "\"gateway\":\"x10-gw\"",
            "\"invocations\":1",
            "\"type-mismatch\":1",
            "\"hall-lamp\":1",
            "\"latency\":{\"count\":1",
            "\"buckets\":{\"9\":1}",
            "\"layers\":{\"app\":",
            "\"hits\":5",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        // Well-formed enough for a JSON parser: balanced braces.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn x10_module_cannot_host_tcp() {
        // The paper's core E7 claim, as data.
        assert!(X10_MODULE.can_host(&X10_STACK));
        assert!(!X10_MODULE.can_host(&TCP_HTTP_STACK));
        assert!(!X10_MODULE.can_host(&SIP_UDP_STACK));
        assert!(!SENSOR_NODE.can_host(&SOAP_STACK));
        assert!(
            SENSOR_NODE.can_host(&SIP_UDP_STACK),
            "SIP/UDP fits where SOAP cannot"
        );
        assert!(AV_APPLIANCE.can_host(&HAVI_STACK));
        assert!(
            !AV_APPLIANCE.can_host(&JINI_STACK),
            "no JVM on an AV appliance"
        );
        assert!(SET_TOP_BOX.can_host(&SOAP_STACK));
        assert!(PC.can_host(&JINI_STACK));
    }

    #[test]
    fn stack_ordering_is_monotone() {
        for w in STACKS.windows(2) {
            assert!(
                w[0].code_bytes <= w[1].code_bytes,
                "{} should be lighter than {}",
                w[0].name,
                w[1].name
            );
        }
    }
}
