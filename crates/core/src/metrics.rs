//! Measurement helpers and the device-footprint model.
//!
//! [`Probe`] captures virtual-time and per-network traffic deltas around
//! a closure — the instrument behind most benches. The [`footprint`]
//! module models §4.2's closing observation: "current HTTP must run over
//! TCP, and a TCP stack is large and complex. This can be an issue in
//! small devices or appliances with stringent memory and processing
//! requirements" (experiment E7).

use simnet::{Counter, Network, Sim, SimDuration, SimTime};
use std::fmt;

/// One measured interaction.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Virtual time consumed.
    pub elapsed: SimDuration,
    /// Per-network deltas `(network-name, delivered)` over the closure.
    pub traffic: Vec<(String, Counter)>,
}

impl Measurement {
    /// Total payload bytes moved across all probed networks.
    pub fn total_bytes(&self) -> u64 {
        self.traffic.iter().map(|(_, c)| c.bytes).sum()
    }

    /// Total frames moved across all probed networks.
    pub fn total_frames(&self) -> u64 {
        self.traffic.iter().map(|(_, c)| c.frames).sum()
    }
}

impl fmt::Display for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} / {}B / {} frames",
            self.elapsed,
            self.total_bytes(),
            self.total_frames()
        )?;
        Ok(())
    }
}

/// Measures a closure against a set of networks.
pub struct Probe<'a> {
    sim: &'a Sim,
    networks: Vec<&'a Network>,
}

impl<'a> Probe<'a> {
    /// Creates a probe over the given networks.
    pub fn new(sim: &'a Sim, networks: Vec<&'a Network>) -> Probe<'a> {
        Probe { sim, networks }
    }

    /// Runs `f`, returning its value and the measurement.
    pub fn measure<T>(&self, f: impl FnOnce() -> T) -> (T, Measurement) {
        let t0: SimTime = self.sim.now();
        let before: Vec<Counter> = self
            .networks
            .iter()
            .map(|n| n.with_stats(|s| s.total()))
            .collect();
        let value = f();
        let traffic = self
            .networks
            .iter()
            .zip(before)
            .map(|(n, b)| {
                let after = n.with_stats(|s| s.total());
                (
                    n.name().to_owned(),
                    Counter {
                        frames: after.frames - b.frames,
                        bytes: after.bytes - b.bytes,
                        lost: after.lost - b.lost,
                    },
                )
            })
            .collect();
        (
            value,
            Measurement {
                elapsed: self.sim.now() - t0,
                traffic,
            },
        )
    }
}

/// Hit/miss/eviction counters for the gateway resolution cache
/// (observable per gateway via `Vsg::cache_stats`, reported by the E11
/// hot-path ablations).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a cached `ServiceRecord`.
    pub hits: u64,
    /// Lookups answered from a cached negative ("no such service")
    /// entry, sparing the VSR a round trip per repeated miss.
    pub negative_hits: u64,
    /// Lookups that fell through to VSR resolution.
    pub misses: u64,
    /// Entries displaced by the capacity bound (LRU order).
    pub evictions: u64,
    /// Entries dropped by explicit invalidation (withdraw/re-export or
    /// a stale route detected mid-invocation).
    pub invalidations: u64,
}

impl CacheStats {
    /// Hit ratio over all lookups (0.0 when no lookups happened).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.negative_hits + self.misses;
        if total == 0 {
            0.0
        } else {
            (self.hits + self.negative_hits) as f64 / total as f64
        }
    }
}

/// The §4.2 footprint model: what each protocol stack costs on 2002-era
/// appliance hardware, and what each device class can afford.
pub mod footprint {
    /// A protocol stack's resource appetite (order-of-magnitude figures
    /// from 2002-era embedded-TCP and HAVi/X10 implementations).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct StackProfile {
        /// Display name.
        pub name: &'static str,
        /// Code (flash/ROM) bytes.
        pub code_bytes: u32,
        /// Working RAM bytes.
        pub ram_bytes: u32,
    }

    /// A class of appliance hardware.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct DeviceClass {
        /// Display name.
        pub name: &'static str,
        /// Available code space.
        pub code_budget: u32,
        /// Available RAM.
        pub ram_budget: u32,
    }

    /// An X10 module's microcontroller (PIC-class).
    pub const X10_MODULE: DeviceClass = DeviceClass {
        name: "x10-module",
        code_budget: 2_048,
        ram_budget: 128,
    };
    /// A sensor node / small appliance MCU.
    pub const SENSOR_NODE: DeviceClass = DeviceClass {
        name: "sensor-node",
        code_budget: 65_536,
        ram_budget: 16_384,
    };
    /// A digital AV appliance (HAVi-class, 32-bit with some RAM).
    pub const AV_APPLIANCE: DeviceClass = DeviceClass {
        name: "av-appliance",
        code_budget: 2_097_152,
        ram_budget: 524_288,
    };
    /// A set-top box / residential gateway.
    pub const SET_TOP_BOX: DeviceClass = DeviceClass {
        name: "set-top-box",
        code_budget: 8_388_608,
        ram_budget: 8_388_608,
    };
    /// A PC.
    pub const PC: DeviceClass = DeviceClass {
        name: "pc",
        code_budget: u32::MAX,
        ram_budget: u32::MAX,
    };

    /// All device classes, smallest first.
    pub const DEVICE_CLASSES: [DeviceClass; 5] =
        [X10_MODULE, SENSOR_NODE, AV_APPLIANCE, SET_TOP_BOX, PC];

    /// X10 receiver logic: a code wheel and a latch.
    pub const X10_STACK: StackProfile = StackProfile {
        name: "x10",
        code_bytes: 512,
        ram_bytes: 16,
    };
    /// An IEEE1394 link + HAVi messaging subset.
    pub const HAVI_STACK: StackProfile = StackProfile {
        name: "havi-1394",
        code_bytes: 262_144,
        ram_bytes: 65_536,
    };
    /// UDP/IP + a SIP-subset parser.
    pub const SIP_UDP_STACK: StackProfile = StackProfile {
        name: "sip-udp",
        code_bytes: 24_576,
        ram_bytes: 8_192,
    };
    /// TCP/IP + HTTP/1.1.
    pub const TCP_HTTP_STACK: StackProfile = StackProfile {
        name: "tcp-http",
        code_bytes: 49_152,
        ram_bytes: 32_768,
    };
    /// TCP/IP + HTTP + XML parser + SOAP runtime (the full VSG stack).
    pub const SOAP_STACK: StackProfile = StackProfile {
        name: "tcp-http-soap",
        code_bytes: 262_144,
        ram_bytes: 131_072,
    };
    /// The JVM-hosted Jini stack.
    pub const JINI_STACK: StackProfile = StackProfile {
        name: "jvm-jini",
        code_bytes: 8_388_608,
        ram_bytes: 4_194_304,
    };

    /// All stacks, lightest first.
    pub const STACKS: [StackProfile; 6] = [
        X10_STACK,
        SIP_UDP_STACK,
        TCP_HTTP_STACK,
        HAVI_STACK,
        SOAP_STACK,
        JINI_STACK,
    ];

    impl DeviceClass {
        /// True if this device can host the stack.
        pub fn can_host(&self, stack: &StackProfile) -> bool {
            stack.code_bytes <= self.code_budget && stack.ram_bytes <= self.ram_budget
        }
    }
}

#[cfg(test)]
mod tests {
    use super::footprint::*;
    use super::*;
    use simnet::{Frame, Protocol};

    #[test]
    fn probe_measures_time_and_traffic() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let a = net.attach("a");
        let b = net.attach("b");
        let probe = Probe::new(&sim, vec![&net]);
        let ((), m) = probe.measure(|| {
            net.send(Frame::new(a, b, Protocol::Raw, vec![0u8; 100]))
                .unwrap();
            sim.advance(SimDuration::from_millis(1));
        });
        assert!(m.elapsed >= SimDuration::from_millis(1));
        assert_eq!(m.total_bytes(), 100);
        assert_eq!(m.total_frames(), 1);
        assert_eq!(m.traffic[0].0, "ethernet");
        assert!(m.to_string().contains("100B"));
    }

    #[test]
    fn probe_delta_excludes_prior_traffic() {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let a = net.attach("a");
        let b = net.attach("b");
        net.send(Frame::new(a, b, Protocol::Raw, vec![0u8; 500]))
            .unwrap();
        let probe = Probe::new(&sim, vec![&net]);
        let ((), m) = probe.measure(|| {});
        assert_eq!(m.total_bytes(), 0);
    }

    #[test]
    fn x10_module_cannot_host_tcp() {
        // The paper's core E7 claim, as data.
        assert!(X10_MODULE.can_host(&X10_STACK));
        assert!(!X10_MODULE.can_host(&TCP_HTTP_STACK));
        assert!(!X10_MODULE.can_host(&SIP_UDP_STACK));
        assert!(!SENSOR_NODE.can_host(&SOAP_STACK));
        assert!(
            SENSOR_NODE.can_host(&SIP_UDP_STACK),
            "SIP/UDP fits where SOAP cannot"
        );
        assert!(AV_APPLIANCE.can_host(&HAVI_STACK));
        assert!(
            !AV_APPLIANCE.can_host(&JINI_STACK),
            "no JVM on an AV appliance"
        );
        assert!(SET_TOP_BOX.can_host(&SOAP_STACK));
        assert!(PC.can_host(&JINI_STACK));
    }

    #[test]
    fn stack_ordering_is_monotone() {
        for w in STACKS.windows(2) {
            assert!(
                w[0].code_bytes <= w[1].code_bytes,
                "{} should be lighter than {}",
                w[0].name,
                w[1].name
            );
        }
    }
}
