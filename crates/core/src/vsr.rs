//! The Virtual Service Repository.
//!
//! §3.3: "a virtual database which has a lot of information of
//! heterogeneous services such as service locations and service
//! contexts. The VSG and the PCM use this component to detect services
//! … if the protocol of VSG is SOAP, the VSG will be implemented with
//! WSDL and UDDI." And so it is here: the repository is a SOAP service
//! on the backbone whose storage is a UDDI registry holding WSDL
//! documents as tModels.
//!
//! Since this PR the "virtual database" is federated (see
//! [`crate::federation`]): [`Vsr::start_federated`] brings up N
//! replicas with the namespace consistently hashed across shards, and
//! [`VsrClient`] routes each operation to the owning shard's replicas,
//! caching the shard map and failing writes over (with promotion) when
//! a primary is unreachable. [`Vsr::start`] remains the one-replica,
//! one-shard special case and is wire- and behaviour-compatible with
//! the original single-node repository.

use crate::error::MetaError;
use crate::federation::{
    self, shard_lag, start_replicas, sync_cluster, FederationConfig, Replica, ShardMap,
};
use crate::iface::ServiceInterface;
use crate::intern::Name;
use crate::metrics::MetricsRegistry;
use crate::rescache::ShardMapCache;
use crate::resilience::BreakerBank;
use crate::service::{Middleware, VirtualService};
use crate::trace::{HopKind, Span, Tracer};
use parking_lot::Mutex;
use simnet::{Network, NodeId, Sim, SimDuration};
use soap::{RpcCall, SoapClient, SoapError, Value};
use std::fmt;
use std::sync::Arc;

/// The repository's SOAP namespace.
pub const VSR_NS: &str = federation::VSR_NS;

/// Consecutive transport failures before a client opens its breaker
/// for one replica and routes around it.
const ROUTE_BREAKER_THRESHOLD: u32 = 3;
/// How long an opened per-replica breaker stays open before the next
/// probe (short: in a home deployment a replica reboot is seconds).
const ROUTE_BREAKER_WINDOW_MS: u64 = 1_000;
/// `MovedShard` redirects tolerated per operation before giving up
/// (one stale map plus one promotion race is the realistic worst case).
const MAX_REDIRECTS: u32 = 2;

/// A resolved repository record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceRecord {
    /// Service name (interned — clones are refcount bumps).
    pub name: Name,
    /// Native middleware.
    pub middleware: Middleware,
    /// Fronting gateway.
    pub gateway: String,
    /// Reconstructed interface, interned behind `Arc` so resolution
    /// caches and bridge clients share one parse instead of cloning
    /// the whole operation table per call.
    pub interface: Arc<ServiceInterface>,
    /// Service contexts (§3.3), e.g. `("room", "hall")`.
    pub contexts: Vec<(String, String)>,
}

impl ServiceRecord {
    /// The `vsg://` endpoint.
    pub fn endpoint(&self) -> String {
        format!("vsg://{}/{}", self.gateway, self.name)
    }

    /// True when this record describes a composite pipeline rather
    /// than a natively bridged service.
    pub fn is_composite(&self) -> bool {
        self.middleware == Middleware::Composite
    }

    /// The composite pipeline spec carried in the record's contexts,
    /// if any. `None` for native services or malformed specs.
    pub fn composite_spec(&self) -> Option<crate::compose::CompositeSpec> {
        self.contexts
            .iter()
            .find(|(k, _)| k == crate::compose::COMPOSITE_SPEC_CONTEXT)
            .and_then(|(_, xml)| crate::compose::CompositeSpec::from_xml(xml))
    }

    fn from_value(v: &Value) -> Option<ServiceRecord> {
        let name = Name::new(v.field("name")?.as_str()?);
        let middleware = Middleware::from_label(v.field("middleware")?.as_str()?)?;
        let gateway = v.field("gateway")?.as_str()?.to_owned();
        let wsdl_doc = v.field("wsdl")?.as_str()?;
        let parsed = minixml::parse(wsdl_doc).ok()?;
        let desc = wsdl::ServiceDescription::from_xml(&parsed).ok()?;
        let contexts = match v.field("contexts") {
            Some(Value::Record(fields)) => fields
                .iter()
                .filter_map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_owned())))
                .collect(),
            _ => Vec::new(),
        };
        Some(ServiceRecord {
            name,
            middleware,
            gateway,
            interface: Arc::new(ServiceInterface::from_wsdl(&desc)),
            contexts,
        })
    }
}

/// The running repository service — one handle for the whole cluster,
/// however many replicas it has.
#[derive(Clone)]
pub struct Vsr {
    sim: Sim,
    replicas: Vec<Replica>,
    map: Arc<Mutex<ShardMap>>,
    metrics: Arc<MetricsRegistry>,
    tracer: Tracer,
}

impl Vsr {
    /// Starts a single-replica, single-shard repository on a fresh
    /// node of the backbone `net` — the original §3.3 deployment.
    pub fn start(net: &Network) -> Vsr {
        Vsr::start_federated(net, &FederationConfig::default())
    }

    /// Starts a federated repository: `config.replicas` replicas on
    /// fresh backbone nodes, the namespace consistently hashed over
    /// `config.shards` shards, each shard replicated on up to
    /// `config.replication` replicas (primary first).
    pub fn start_federated(net: &Network, config: &FederationConfig) -> Vsr {
        let tracer = Tracer::new("vsr-cluster");
        let (replicas, map) = start_replicas(net, config, &tracer);
        Vsr {
            sim: net.sim().clone(),
            replicas,
            map,
            metrics: Arc::new(MetricsRegistry::new()),
            tracer,
        }
    }

    /// The bootstrap replica's backbone node (what [`VsrClient`]s are
    /// pointed at; they discover the rest via the shard map).
    pub fn node(&self) -> NodeId {
        self.replicas[0].node
    }

    /// Every replica's backbone node, in start order.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.replicas.iter().map(|r| r.node).collect()
    }

    /// A snapshot of the cluster's current shard map.
    pub fn shard_map(&self) -> ShardMap {
        self.map.lock().clone()
    }

    /// The node currently primary for the shard owning `name`.
    pub fn primary_for(&self, name: &str) -> NodeId {
        let map = self.map.lock();
        map.primary(map.shard_of(name))
    }

    /// Number of published services, cluster-wide: each live record is
    /// counted once, on its shard's current primary (backups hold
    /// copies; counting them would double-count).
    pub fn service_count(&self) -> usize {
        let map = self.map.lock();
        self.replicas
            .iter()
            .map(|r| {
                let st = r.state.lock();
                st.entries
                    .iter()
                    .filter(|(_, e)| {
                        matches!(e.kind, federation::EntryKind::Record(_))
                            && map.primary(e.shard) == r.node
                    })
                    .count()
            })
            .sum()
    }

    /// The underlying registries' inquiry statistics, summed across
    /// replicas (with one replica this is exactly the old single-node
    /// counter).
    pub fn registry_stats(&self) -> wsdl::RegistryStats {
        let mut total = wsdl::RegistryStats::default();
        for r in &self.replicas {
            let stats = r.state.lock().registry.stats();
            total.publishes += stats.publishes;
            total.inquiries += stats.inquiries;
            total.records_scanned += stats.records_scanned;
        }
        total
    }

    /// Toggles index-backed inquiry on every replica's registry
    /// (ablation hook — indexes are maintained either way, only the
    /// lookup path changes, so toggling mid-run is safe).
    pub fn set_indexing(&self, enabled: bool) {
        for r in &self.replicas {
            r.state.lock().registry.set_indexing(enabled);
        }
    }

    /// Turns record leases on (`Some(duration)`) or off (`None`, the
    /// default) on every replica. With leases on, a record not renewed
    /// or re-published within `duration` is reaped lazily on the next
    /// repository operation — a crashed gateway's exports stop
    /// resolving instead of lingering forever. Records published
    /// before the switch have no lease until their next publish/renew.
    pub fn set_lease_duration(&self, duration: Option<SimDuration>) {
        for r in &self.replicas {
            r.state.lock().lease = duration;
        }
    }

    /// Runs one anti-entropy pass over every shard (backups exchange
    /// digests with their primary over the backbone) and refreshes the
    /// per-shard replication-lag gauges. Returns the worst per-shard
    /// lag *after* the pass — 0 means fully converged. The
    /// `SmartHomeBuilder` arms this on a timer for multi-replica
    /// clusters; tests may call it directly.
    pub fn sync_now(&self) -> u64 {
        sync_cluster(
            &self.sim,
            &self.replicas,
            &self.map,
            &self.metrics,
            &self.tracer,
        )
    }

    /// The worst per-shard replication lag right now (entries on a
    /// shard's primary that a backup is missing or holds at a
    /// different version), measured in-process without syncing.
    pub fn replication_lag(&self) -> u64 {
        let map = self.map.lock().clone();
        let mut worst = 0;
        for shard in 0..map.shard_count() {
            let prefs = map.replicas_for(shard);
            worst = worst.max(shard_lag(&self.replicas, shard, prefs[0], &prefs[1..]));
        }
        worst
    }

    /// The cluster's metrics registry: per-shard op counters live in
    /// the *client* registries, but failover promotions observed
    /// server-side and the replication-lag gauges land here.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Enables or disables the cluster's federation tracer
    /// (replication pushes, anti-entropy exchanges, promotions).
    pub fn set_tracing(&self, on: bool) {
        self.tracer.set_enabled(on);
    }

    /// Drains the cluster tracer's recorded spans.
    pub fn take_spans(&self) -> Vec<Span> {
        self.tracer.take_spans()
    }
}

impl fmt::Debug for Vsr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Vsr")
            .field("replicas", &self.replicas.len())
            .field("shards", &self.map.lock().shard_count())
            .field("services", &self.service_count())
            .finish()
    }
}

/// A client of the repository (used by gateways and PCMs). Shard-map
/// aware: it learns the cluster topology from its bootstrap replica,
/// caches it, routes each operation to the owning shard's preference
/// list, and on a `MovedShard` redirect refreshes the map and retries.
/// Writes that cannot reach a shard's primary fail over to a backup
/// with a promotion request.
#[derive(Debug, Clone)]
pub struct VsrClient {
    soap: SoapClient,
    seed: NodeId,
    sim: Sim,
    tracer: Tracer,
    map_cache: Arc<ShardMapCache>,
    breakers: Arc<BreakerBank>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl VsrClient {
    /// Creates a client calling from `node` on the backbone, pointed
    /// at bootstrap replica `vsr`. Spans are recorded only once
    /// [`VsrClient::with_tracer`] attaches an enabled gateway tracer.
    pub fn new(net: &Network, node: NodeId, vsr: NodeId) -> VsrClient {
        VsrClient {
            soap: SoapClient::on_node(
                net,
                node,
                soap::CpuModel::default(),
                soap::TcpModel::default(),
            ),
            seed: vsr,
            sim: net.sim().clone(),
            tracer: Tracer::new("vsr-client"),
            map_cache: Arc::new(ShardMapCache::new()),
            breakers: Arc::new(BreakerBank::new(
                ROUTE_BREAKER_THRESHOLD,
                SimDuration::from_millis(ROUTE_BREAKER_WINDOW_MS),
            )),
            metrics: None,
        }
    }

    /// Attributes this client's repository round trips to `tracer`
    /// (the owning gateway's), as `vsr-lookup` spans (plus
    /// `federation` spans for routing decisions).
    pub fn with_tracer(mut self, tracer: Tracer) -> VsrClient {
        self.tracer = tracer;
        self
    }

    /// Records this client's shard routing (per-shard op counters,
    /// failovers, map refreshes) into `metrics` — typically the owning
    /// gateway's registry.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> VsrClient {
        self.metrics = Some(metrics);
        self
    }

    /// One SOAP round trip to a specific replica, traced and with
    /// faults mapped back to typed errors.
    fn call_node(&self, node: NodeId, call: &RpcCall) -> Result<Value, MetaError> {
        let span = self
            .tracer
            .begin(&self.sim, HopKind::VsrLookup, || call.method.clone());
        let started = self.sim.now();
        let result = self.soap.call(node, call).map_err(|e| match e {
            SoapError::Fault(f) => MetaError::from_fault_string(&f.string),
            // A wire failure on the repository leg: typed, so callers
            // can tell "VSR down" from a protocol bug and degrade.
            SoapError::Http(h) => MetaError::from_http_error(&h),
            other => MetaError::Protocol(other.to_string()),
        });
        if let Some(metrics) = &self.metrics {
            metrics.record_layer_with_exemplar(
                crate::obs::Layer::Vsr,
                (self.sim.now() - started).as_micros(),
                span.trace_id(),
            );
        }
        self.tracer.end_result(&self.sim, span, &result);
        result
    }

    fn federation_note(&self, name: impl FnOnce() -> String) {
        let span = self.tracer.begin(&self.sim, HopKind::Federation, name);
        self.tracer.end(&self.sim, span);
    }

    /// The synthesized error when no replica could even be tried
    /// (every breaker open, or the map names nobody reachable). It is
    /// transport-classified so gateways engage the same degraded path
    /// as for a single-node VSR outage.
    fn unreachable() -> MetaError {
        MetaError::transport("all VSR replicas unreachable", true)
    }

    /// The cached shard map, fetching it if this client has none yet.
    fn map(&self) -> Result<Arc<ShardMap>, MetaError> {
        match self.map_cache.get() {
            Some(map) => Ok(map),
            None => self.refresh_map(),
        }
    }

    /// Fetches a fresh shard map from the first reachable replica:
    /// the bootstrap node first, then every replica the last-known map
    /// named (so a client survives its bootstrap replica dying).
    fn refresh_map(&self) -> Result<Arc<ShardMap>, MetaError> {
        let mut candidates: Vec<NodeId> = vec![self.seed];
        if let Some(stale) = self.map_cache.peek() {
            for n in stale.nodes() {
                if !candidates.contains(&n) {
                    candidates.push(n);
                }
            }
        }
        let mut last: Option<MetaError> = None;
        for node in candidates {
            if !self.breakers.admit(node, self.sim.now()) {
                continue;
            }
            match self.call_node(node, &RpcCall::new(VSR_NS, "shard_map")) {
                Ok(v) => {
                    self.breakers.on_success(node);
                    match ShardMap::from_value(&v) {
                        Some(map) => {
                            let map = Arc::new(map);
                            self.map_cache.put(map.clone());
                            if let Some(m) = &self.metrics {
                                m.record_shard_map_refresh();
                            }
                            self.federation_note(|| {
                                format!("shard map v{} from n{}", map.version(), node.0)
                            });
                            return Ok(map);
                        }
                        None => last = Some(MetaError::Repository("bad shard_map reply".into())),
                    }
                }
                Err(e) if e.is_transport_failure() => {
                    self.breakers.on_failure(node, self.sim.now());
                    last = Some(e);
                }
                Err(e) => {
                    self.breakers.on_success(node);
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(Self::unreachable))
    }

    /// Routes one operation to `shard`: walks the shard's preference
    /// list (skipping replicas whose breaker is open), failing over on
    /// transport errors — a write landing on a backup carries a
    /// promotion request — and refreshing the map on `MovedShard`.
    fn route(
        &self,
        shard: u32,
        write: bool,
        build: &dyn Fn(bool) -> RpcCall,
    ) -> Result<Value, MetaError> {
        if let Some(m) = &self.metrics {
            m.record_shard_op(shard);
        }
        let mut map = self.map()?;
        let mut redirects = 0u32;
        'with_map: loop {
            let prefs: Vec<NodeId> = map.replicas_for(shard).to_vec();
            let mut last_transport: Option<MetaError> = None;
            for (i, &node) in prefs.iter().enumerate() {
                if !self.breakers.admit(node, self.sim.now()) {
                    continue;
                }
                match self.call_node(node, &build(write && i > 0)) {
                    Ok(v) => {
                        self.breakers.on_success(node);
                        if i > 0 {
                            if let Some(m) = &self.metrics {
                                m.record_vsr_failover();
                            }
                            self.federation_note(|| {
                                format!("shard {shard} failover -> n{}", node.0)
                            });
                        }
                        return Ok(v);
                    }
                    Err(MetaError::MovedShard { shard: s, node: to }) => {
                        // The replica is alive but disowns the shard:
                        // our map is stale. Refresh and re-route.
                        self.breakers.on_success(node);
                        self.map_cache.invalidate();
                        if redirects >= MAX_REDIRECTS {
                            return Err(MetaError::Repository(format!(
                                "shard {s} routing did not settle (last redirect -> n{to})"
                            )));
                        }
                        redirects += 1;
                        self.federation_note(|| {
                            format!("shard {s} moved, refreshing map (n{} -> n{to})", node.0)
                        });
                        map = self.refresh_map()?;
                        continue 'with_map;
                    }
                    Err(e) if e.is_transport_failure() => {
                        self.breakers.on_failure(node, self.sim.now());
                        last_transport = Some(e);
                    }
                    Err(e) => {
                        // The replica answered (liveness proven): a
                        // domain error is final, not worth a failover.
                        self.breakers.on_success(node);
                        return Err(e);
                    }
                }
            }
            return Err(last_transport.unwrap_or_else(Self::unreachable));
        }
    }

    /// Registers a gateway's backbone node under its name. The
    /// directory is broadcast to every replica (it is not sharded);
    /// success on any replica counts — anti-entropy spreads the rest.
    pub fn register_gateway(&self, name: &str, node: NodeId) -> Result<(), MetaError> {
        let map = self.map()?;
        let mut ok = false;
        let mut last: Option<MetaError> = None;
        for target in map.nodes() {
            if !self.breakers.admit(target, self.sim.now()) {
                continue;
            }
            let call = RpcCall::new(VSR_NS, "register_gateway")
                .arg("name", name)
                .arg("node", i64::from(node.0));
            match self.call_node(target, &call) {
                Ok(_) => {
                    self.breakers.on_success(target);
                    ok = true;
                }
                Err(e) => {
                    if e.is_transport_failure() {
                        self.breakers.on_failure(target, self.sim.now());
                    } else {
                        self.breakers.on_success(target);
                    }
                    last = Some(e);
                }
            }
        }
        if ok {
            Ok(())
        } else {
            Err(last.unwrap_or_else(Self::unreachable))
        }
    }

    /// Looks up a gateway's backbone node, trying replicas in map
    /// order (any replica may know; a directory miss on one is
    /// retried on the others in case replication is still catching
    /// up).
    pub fn gateway_node(&self, name: &str) -> Result<NodeId, MetaError> {
        let map = self.map()?;
        let mut last: Option<MetaError> = None;
        for target in map.nodes() {
            if !self.breakers.admit(target, self.sim.now()) {
                continue;
            }
            match self.call_node(
                target,
                &RpcCall::new(VSR_NS, "gateway_node").arg("name", name),
            ) {
                Ok(v) => {
                    self.breakers.on_success(target);
                    return v
                        .as_int()
                        .and_then(|n| u32::try_from(n).ok())
                        .map(NodeId)
                        .ok_or_else(|| MetaError::Repository("bad gateway_node reply".into()));
                }
                Err(e) if e.is_transport_failure() => {
                    self.breakers.on_failure(target, self.sim.now());
                    last = Some(e);
                }
                Err(e) => {
                    self.breakers.on_success(target);
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(Self::unreachable))
    }

    /// Publishes a virtual service (a write: routed to its shard's
    /// primary).
    pub fn publish(&self, service: &VirtualService) -> Result<(), MetaError> {
        let wsdl_doc = service
            .interface
            .to_wsdl(&service.name, &service.endpoint())
            .to_xml()
            .to_document();
        let contexts: Vec<(String, Value)> = service
            .contexts
            .iter()
            .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
            .collect();
        let shard = self.map()?.shard_of(&service.name);
        self.route(shard, true, &|promote| {
            let mut call = RpcCall::new(VSR_NS, "publish")
                .arg("name", service.name.as_str())
                .arg("middleware", service.origin.label())
                .arg("gateway", service.gateway.as_str())
                .arg("wsdl", wsdl_doc.clone())
                .arg("contexts", Value::Record(contexts.clone()))
                .arg("shard", i64::from(shard));
            if promote {
                call = call.arg("promote", true);
            }
            call
        })
        .map(|_| ())
    }

    /// Finds services whose name matches `pattern` and whose context bag
    /// contains every given `(key, value)` pair — §3.3's context-aware
    /// discovery ("the VSG and the PCM use this component to detect
    /// services or aware contexts"). Fans out across shards and merges.
    pub fn find_by_context(
        &self,
        pattern: &str,
        contexts: &[(&str, &str)],
    ) -> Result<Vec<ServiceRecord>, MetaError> {
        let ctx: Vec<(String, Value)> = contexts
            .iter()
            .map(|(k, v)| ((*k).to_owned(), Value::Str((*v).to_owned())))
            .collect();
        self.fan_out(&|shard| {
            RpcCall::new(VSR_NS, "find_ctx")
                .arg("pattern", pattern)
                .arg("contexts", Value::Record(ctx.clone()))
                .arg("shard", i64::from(shard))
        })
    }

    /// Renews `name`'s lease (a no-op when the repository runs without
    /// leases). Returns whether the service is currently registered.
    /// With leases on this is a write — it is routed (and fails over)
    /// like one, so a renewal can promote a backup if the shard's
    /// primary just died.
    pub fn renew(&self, name: &str) -> Result<bool, MetaError> {
        let shard = self.map()?.shard_of(name);
        let v = self.route(shard, true, &|promote| {
            let mut call = RpcCall::new(VSR_NS, "renew")
                .arg("name", name)
                .arg("shard", i64::from(shard));
            if promote {
                call = call.arg("promote", true);
            }
            call
        })?;
        v.as_bool()
            .ok_or_else(|| MetaError::Repository("bad renew reply".into()))
    }

    /// Withdraws a service by name. Returns whether it existed.
    pub fn unpublish(&self, name: &str) -> Result<bool, MetaError> {
        let shard = self.map()?.shard_of(name);
        let v = self.route(shard, true, &|promote| {
            let mut call = RpcCall::new(VSR_NS, "unpublish")
                .arg("name", name)
                .arg("shard", i64::from(shard));
            if promote {
                call = call.arg("promote", true);
            }
            call
        })?;
        v.as_bool()
            .ok_or_else(|| MetaError::Repository("bad unpublish reply".into()))
    }

    /// Finds services by name pattern (`%` wildcards) and optional
    /// middleware filter, fanning out across shards; the merged result
    /// is sorted by name.
    pub fn find(
        &self,
        pattern: &str,
        middleware: Option<Middleware>,
    ) -> Result<Vec<ServiceRecord>, MetaError> {
        self.fan_out(&|shard| {
            RpcCall::new(VSR_NS, "find")
                .arg("pattern", pattern)
                .arg("middleware", middleware.map_or("", Middleware::label))
                .arg("shard", i64::from(shard))
        })
    }

    /// Resolves one service by exact name (routed straight to its
    /// shard — one round trip, no fan-out).
    pub fn resolve(&self, name: &str) -> Result<ServiceRecord, MetaError> {
        let shard = self.map()?.shard_of(name);
        let v = self.route(shard, false, &|_| {
            RpcCall::new(VSR_NS, "resolve")
                .arg("name", name)
                .arg("shard", i64::from(shard))
        })?;
        ServiceRecord::from_value(&v)
            .ok_or_else(|| MetaError::Repository("bad resolve reply".into()))
    }

    /// Number of published services, summed across shards.
    pub fn count(&self) -> Result<usize, MetaError> {
        let map = self.map()?;
        let mut total: usize = 0;
        for shard in 0..map.shard_count() {
            let v = self.route(shard, false, &|_| {
                RpcCall::new(VSR_NS, "count").arg("shard", i64::from(shard))
            })?;
            total += v
                .as_int()
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| MetaError::Repository("bad count reply".into()))?;
        }
        Ok(total)
    }

    /// Shared shard fan-out for the inquiry operations: queries every
    /// shard, concatenates, sorts by name (shards are disjoint, so no
    /// dedup is needed).
    fn fan_out(&self, build: &dyn Fn(u32) -> RpcCall) -> Result<Vec<ServiceRecord>, MetaError> {
        let map = self.map()?;
        let mut out: Vec<ServiceRecord> = Vec::new();
        for shard in 0..map.shard_count() {
            let v = self.route(shard, false, &|_| build(shard))?;
            match v {
                Value::List(items) => {
                    out.extend(items.iter().filter_map(ServiceRecord::from_value));
                }
                _ => return Err(MetaError::Repository("bad find reply".into())),
            }
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::catalog;
    use simnet::Sim;

    fn world() -> (Sim, Network, Vsr, VsrClient) {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let vsr = Vsr::start(&net);
        let client_node = net.attach("pcm");
        let client = VsrClient::new(&net, client_node, vsr.node());
        (sim, net, vsr, client)
    }

    fn lamp_service() -> VirtualService {
        VirtualService::new("hall-lamp", catalog::lamp(), Middleware::X10, "x10-gw")
    }

    #[test]
    fn publish_resolve_round_trip() {
        let (_sim, _net, vsr, client) = world();
        client.publish(&lamp_service()).unwrap();
        assert_eq!(vsr.service_count(), 1);
        let rec = client.resolve("hall-lamp").unwrap();
        assert_eq!(rec.name, "hall-lamp");
        assert_eq!(rec.middleware, Middleware::X10);
        assert_eq!(rec.gateway, "x10-gw");
        assert_eq!(rec.endpoint(), "vsg://x10-gw/hall-lamp");
        assert_eq!(*rec.interface, catalog::lamp());
    }

    #[test]
    fn find_with_filters() {
        let (_sim, _net, _vsr, client) = world();
        client.publish(&lamp_service()).unwrap();
        client
            .publish(&VirtualService::new(
                "living-room-vcr",
                catalog::vcr(),
                Middleware::Havi,
                "havi-gw",
            ))
            .unwrap();
        client
            .publish(&VirtualService::new(
                "laserdisc",
                catalog::laserdisc(),
                Middleware::Jini,
                "jini-gw",
            ))
            .unwrap();

        assert_eq!(client.find("%", None).unwrap().len(), 3);
        assert_eq!(client.find("l%", None).unwrap().len(), 2);
        let havi_only = client.find("%", Some(Middleware::Havi)).unwrap();
        assert_eq!(havi_only.len(), 1);
        assert_eq!(havi_only[0].name, "living-room-vcr");
        assert!(client.find("%", Some(Middleware::Upnp)).unwrap().is_empty());
        assert_eq!(client.count().unwrap(), 3);
    }

    #[test]
    fn unknown_service_resolution_fails() {
        let (_sim, _net, _vsr, client) = world();
        let err = client.resolve("ghost").unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn republish_replaces() {
        let (_sim, _net, vsr, client) = world();
        client.publish(&lamp_service()).unwrap();
        let mut moved = lamp_service();
        moved.gateway = "x10-gw-2".into();
        client.publish(&moved).unwrap();
        assert_eq!(vsr.service_count(), 1);
        assert_eq!(client.resolve("hall-lamp").unwrap().gateway, "x10-gw-2");
    }

    #[test]
    fn unpublish() {
        let (_sim, _net, vsr, client) = world();
        client.publish(&lamp_service()).unwrap();
        assert!(client.unpublish("hall-lamp").unwrap());
        assert!(!client.unpublish("hall-lamp").unwrap());
        assert_eq!(vsr.service_count(), 0);
        assert!(client.resolve("hall-lamp").is_err());
    }

    #[test]
    fn gateway_directory() {
        let (_sim, net, _vsr, client) = world();
        let gw_node = net.attach("x10-gw");
        client.register_gateway("x10-gw", gw_node).unwrap();
        assert_eq!(client.gateway_node("x10-gw").unwrap(), gw_node);
        assert!(matches!(
            client.gateway_node("ghost-gw"),
            Err(MetaError::GatewayUnreachable(_))
        ));
    }

    #[test]
    fn leases_reap_unrenewed_records_lazily() {
        let (sim, _net, vsr, client) = world();
        vsr.set_lease_duration(Some(SimDuration::from_secs(60)));
        client.publish(&lamp_service()).unwrap();

        sim.advance(SimDuration::from_secs(30));
        assert!(client.resolve("hall-lamp").is_ok(), "mid-lease");
        // Renewal restarts the clock.
        assert!(client.renew("hall-lamp").unwrap());
        sim.advance(SimDuration::from_secs(45));
        assert!(client.resolve("hall-lamp").is_ok(), "renewed lease holds");

        // 45 + 20 > 60: the record is reaped on the next operation.
        sim.advance(SimDuration::from_secs(20));
        assert!(matches!(
            client.resolve("hall-lamp"),
            Err(MetaError::UnknownService(_))
        ));
        assert_eq!(vsr.service_count(), 0, "expired record gone");
        assert!(!client.renew("hall-lamp").unwrap(), "nothing to renew");

        // Re-publishing (a recovered gateway) brings it back.
        client.publish(&lamp_service()).unwrap();
        assert!(client.resolve("hall-lamp").is_ok());
    }

    #[test]
    fn leases_off_by_default_records_never_expire() {
        let (sim, _net, _vsr, client) = world();
        client.publish(&lamp_service()).unwrap();
        sim.advance(SimDuration::from_secs(3600));
        assert!(client.resolve("hall-lamp").is_ok());
    }

    #[test]
    fn repository_access_costs_soap_round_trips() {
        let (sim, _net, _vsr, client) = world();
        let before = sim.now();
        client.publish(&lamp_service()).unwrap();
        client.resolve("hall-lamp").unwrap();
        assert!(sim.now() - before > simnet::SimDuration::from_millis(2));
    }

    #[test]
    fn federated_cluster_replicates_writes_eagerly() {
        let sim = Sim::new(7);
        let net = Network::ethernet(&sim);
        let vsr = Vsr::start_federated(
            &net,
            &FederationConfig {
                shards: 4,
                replicas: 3,
                replication: 2,
                ..FederationConfig::default()
            },
        );
        assert_eq!(vsr.nodes().len(), 3);
        let client_node = net.attach("pcm");
        let client = VsrClient::new(&net, client_node, vsr.node());
        client.publish(&lamp_service()).unwrap();
        assert_eq!(vsr.service_count(), 1, "counted once despite replicas");
        assert_eq!(
            vsr.replication_lag(),
            0,
            "eager push converged without anti-entropy"
        );
        assert_eq!(client.resolve("hall-lamp").unwrap().gateway, "x10-gw");
    }

    #[test]
    fn moved_shard_redirect_refreshes_client_map() {
        let sim = Sim::new(3);
        let net = Network::ethernet(&sim);
        let vsr = Vsr::start_federated(
            &net,
            &FederationConfig {
                shards: 4,
                replicas: 3,
                replication: 2,
                ..FederationConfig::default()
            },
        );
        let client_node = net.attach("pcm");
        let client = VsrClient::new(&net, client_node, vsr.node())
            .with_metrics(Arc::new(crate::metrics::MetricsRegistry::new()));
        client.publish(&lamp_service()).unwrap();

        // Promote the backup server-side: the client's cached map is
        // now stale for this shard, but a write re-routes through the
        // MovedShard redirect and still lands.
        let map = vsr.shard_map();
        let shard = map.shard_of("hall-lamp");
        let backup = map.replicas_for(shard)[1];
        vsr.map.lock().promote(shard, backup);
        assert!(client.renew("hall-lamp").is_ok());
        assert_eq!(vsr.shard_map().primary(shard), backup);
        assert_eq!(client.resolve("hall-lamp").unwrap().name, "hall-lamp");
    }
}
