//! The Virtual Service Repository.
//!
//! §3.3: "a virtual database which has a lot of information of
//! heterogeneous services such as service locations and service
//! contexts. The VSG and the PCM use this component to detect services
//! … if the protocol of VSG is SOAP, the VSG will be implemented with
//! WSDL and UDDI." And so it is here: the repository is a SOAP service
//! on the backbone whose storage is a UDDI registry holding WSDL
//! documents as tModels.

use crate::error::MetaError;
use crate::iface::ServiceInterface;
use crate::service::{Middleware, VirtualService};
use crate::trace::{HopKind, Tracer};
use parking_lot::Mutex;
use simnet::{Network, NodeId, Sim, SimDuration, SimTime};
use soap::{Fault, RpcCall, SoapClient, SoapError, SoapServer, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use wsdl::{Key, KeyedReference, UddiRegistry};

/// The repository's SOAP namespace.
pub const VSR_NS: &str = "urn:vsg:repository";

const TAX_MIDDLEWARE: &str = "uddi:middleware";
const TAX_GATEWAY: &str = "uddi:gateway";
/// Context taxonomies are namespaced per key: `uddi:ctx:<key>`.
const TAX_CONTEXT_PREFIX: &str = "uddi:ctx:";

/// A resolved repository record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceRecord {
    /// Service name.
    pub name: String,
    /// Native middleware.
    pub middleware: Middleware,
    /// Fronting gateway.
    pub gateway: String,
    /// Reconstructed interface, interned behind `Arc` so resolution
    /// caches and bridge clients share one parse instead of cloning
    /// the whole operation table per call.
    pub interface: Arc<ServiceInterface>,
    /// Service contexts (§3.3), e.g. `("room", "hall")`.
    pub contexts: Vec<(String, String)>,
}

impl ServiceRecord {
    /// The `vsg://` endpoint.
    pub fn endpoint(&self) -> String {
        format!("vsg://{}/{}", self.gateway, self.name)
    }

    fn from_value(v: &Value) -> Option<ServiceRecord> {
        let name = v.field("name")?.as_str()?.to_owned();
        let middleware = Middleware::from_label(v.field("middleware")?.as_str()?)?;
        let gateway = v.field("gateway")?.as_str()?.to_owned();
        let wsdl_doc = v.field("wsdl")?.as_str()?;
        let parsed = minixml::parse(wsdl_doc).ok()?;
        let desc = wsdl::ServiceDescription::from_xml(&parsed).ok()?;
        let contexts = match v.field("contexts") {
            Some(Value::Record(fields)) => fields
                .iter()
                .filter_map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_owned())))
                .collect(),
            _ => Vec::new(),
        };
        Some(ServiceRecord {
            name,
            middleware,
            gateway,
            interface: Arc::new(ServiceInterface::from_wsdl(&desc)),
            contexts,
        })
    }
}

struct VsrState {
    registry: UddiRegistry,
    business: Key,
    gateways: HashMap<String, u32>,
    /// When `Some`, every published record carries a lease of this
    /// length and must be renewed (or re-published) before it runs out.
    /// `None` (the default) keeps the original never-expiring registry.
    lease: Option<SimDuration>,
    expiry: HashMap<String, SimTime>,
}

impl VsrState {
    /// Lazily reaps expired leases — called on every repository
    /// operation, so a dead gateway's records disappear the next time
    /// anyone talks to the VSR (no timer machinery needed).
    fn expire_leases(&mut self, now: SimTime) {
        if self.lease.is_none() {
            return;
        }
        let dead: Vec<String> = self
            .expiry
            .iter()
            .filter(|(_, at)| **at <= now)
            .map(|(name, _)| name.clone())
            .collect();
        for name in dead {
            delete_by_name(&mut self.registry, &name);
            self.expiry.remove(&name);
        }
    }
}

/// The running repository service.
#[derive(Clone)]
pub struct Vsr {
    node: NodeId,
    state: Arc<Mutex<VsrState>>,
}

impl Vsr {
    /// Starts the repository on a fresh node of the backbone `net`.
    pub fn start(net: &Network) -> Vsr {
        let mut registry = UddiRegistry::new();
        let business = registry.save_business("smart-home", "the home's service federation");
        let state = Arc::new(Mutex::new(VsrState {
            registry,
            business,
            gateways: HashMap::new(),
            lease: None,
            expiry: HashMap::new(),
        }));
        let server = SoapServer::bind(net, "vsr");
        let state2 = state.clone();
        server.mount(VSR_NS, move |sim, call: &RpcCall| {
            handle(&state2, sim, call).map_err(|e| Fault::server(e.to_string()))
        });
        Vsr {
            node: server.node(),
            state,
        }
    }

    /// The repository's backbone node (what [`VsrClient`]s talk to).
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of published services (test introspection).
    pub fn service_count(&self) -> usize {
        self.state.lock().registry.service_count()
    }

    /// The underlying registry's inquiry statistics.
    pub fn registry_stats(&self) -> wsdl::RegistryStats {
        self.state.lock().registry.stats()
    }

    /// Toggles index-backed inquiry on the underlying registry
    /// (ablation hook — indexes are maintained either way, only the
    /// lookup path changes, so toggling mid-run is safe).
    pub fn set_indexing(&self, enabled: bool) {
        self.state.lock().registry.set_indexing(enabled);
    }

    /// Turns record leases on (`Some(duration)`) or off (`None`, the
    /// default). With leases on, a record not renewed or re-published
    /// within `duration` is reaped lazily on the next repository
    /// operation — a crashed gateway's exports stop resolving instead
    /// of lingering forever. Records published before the switch have
    /// no lease until their next publish/renew.
    pub fn set_lease_duration(&self, duration: Option<SimDuration>) {
        self.state.lock().lease = duration;
    }
}

impl fmt::Debug for Vsr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Vsr")
            .field("node", &self.node)
            .field("services", &self.service_count())
            .finish()
    }
}

fn handle(state: &Mutex<VsrState>, sim: &Sim, call: &RpcCall) -> Result<Value, MetaError> {
    let mut st = state.lock();
    st.expire_leases(sim.now());
    let str_arg = |name: &str| -> Result<String, MetaError> {
        call.get(name)
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| MetaError::Repository(format!("missing argument '{name}'")))
    };
    match call.method.as_str() {
        "register_gateway" => {
            let name = str_arg("name")?;
            let node = call
                .get("node")
                .and_then(Value::as_int)
                .ok_or_else(|| MetaError::Repository("missing node".into()))?;
            st.gateways.insert(name, node as u32);
            Ok(Value::Null)
        }
        "gateway_node" => {
            let name = str_arg("name")?;
            st.gateways
                .get(&name)
                .map(|n| Value::Int(i64::from(*n)))
                .ok_or(MetaError::GatewayUnreachable(name))
        }
        "publish" => {
            let name = str_arg("name")?;
            let middleware = str_arg("middleware")?;
            let gateway = str_arg("gateway")?;
            let wsdl_doc = str_arg("wsdl")?;
            let contexts: Vec<(String, String)> = match call.get("contexts") {
                Some(Value::Record(fields)) => fields
                    .iter()
                    .filter_map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_owned())))
                    .collect(),
                _ => Vec::new(),
            };
            // Replace any existing record of the same name via the
            // registry's delete-by-name index (no inquiry scan), and
            // drop the replaced records' now-orphaned tModels.
            delete_by_name(&mut st.registry, &name);
            let tmodel = st
                .registry
                .save_tmodel(&format!("{name}-interface"), &wsdl_doc);
            let endpoint = format!("vsg://{gateway}/{name}");
            let business = st.business.clone();
            let mut categories = vec![
                KeyedReference::new(TAX_MIDDLEWARE, &middleware),
                KeyedReference::new(TAX_GATEWAY, &gateway),
            ];
            for (k, v) in &contexts {
                categories.push(KeyedReference::new(format!("{TAX_CONTEXT_PREFIX}{k}"), v));
            }
            st.registry
                .save_service(&business, &name, categories, &endpoint, Some(tmodel))
                .ok_or_else(|| MetaError::Repository("publish failed".into()))?;
            if let Some(lease) = st.lease {
                let at = sim.now() + lease;
                st.expiry.insert(name, at);
            }
            Ok(Value::Null)
        }
        "unpublish" => {
            let name = str_arg("name")?;
            let found = delete_by_name(&mut st.registry, &name);
            st.expiry.remove(&name);
            Ok(Value::Bool(found))
        }
        "renew" => {
            let name = str_arg("name")?;
            let exists = st
                .registry
                .find_service(&name, &[])
                .iter()
                .any(|s| s.name == name);
            if exists {
                if let Some(lease) = st.lease {
                    let at = sim.now() + lease;
                    st.expiry.insert(name, at);
                }
            }
            Ok(Value::Bool(exists))
        }
        "find" => {
            let pattern = str_arg("pattern")?;
            let middleware = str_arg("middleware")?;
            let categories: Vec<KeyedReference> = if middleware.is_empty() {
                vec![]
            } else {
                vec![KeyedReference::new(TAX_MIDDLEWARE, &middleware)]
            };
            let services = st.registry.find_service(&pattern, &categories);
            let mut out = Vec::with_capacity(services.len());
            for svc in services {
                if let Some(v) = service_to_value(&mut st.registry, &svc) {
                    out.push(v);
                }
            }
            Ok(Value::List(out))
        }
        "resolve" => {
            let name = str_arg("name")?;
            let services = st.registry.find_service(&name, &[]);
            let svc = services
                .into_iter()
                .find(|s| s.name == name)
                .ok_or(MetaError::UnknownService(name))?;
            service_to_value(&mut st.registry, &svc)
                .ok_or_else(|| MetaError::Repository("corrupt record".into()))
        }
        "find_ctx" => {
            let pattern = str_arg("pattern")?;
            let categories: Vec<KeyedReference> = match call.get("contexts") {
                Some(Value::Record(fields)) => fields
                    .iter()
                    .filter_map(|(k, v)| {
                        v.as_str()
                            .map(|s| KeyedReference::new(format!("{TAX_CONTEXT_PREFIX}{k}"), s))
                    })
                    .collect(),
                _ => Vec::new(),
            };
            let services = st.registry.find_service(&pattern, &categories);
            let mut out = Vec::with_capacity(services.len());
            for svc in services {
                if let Some(v) = service_to_value(&mut st.registry, &svc) {
                    out.push(v);
                }
            }
            Ok(Value::List(out))
        }
        "count" => Ok(Value::Int(st.registry.service_count() as i64)),
        other => Err(MetaError::Repository(format!(
            "unknown VSR operation '{other}'"
        ))),
    }
}

/// Deletes every record named `name` (index-backed, no scan) together
/// with the tModels its bindings referenced. Returns whether anything
/// was removed.
fn delete_by_name(registry: &mut UddiRegistry, name: &str) -> bool {
    let removed = registry.delete_services_by_name(name);
    let found = !removed.is_empty();
    for service in removed {
        for binding in &service.bindings {
            if let Some(tm) = &binding.tmodel_key {
                registry.delete_tmodel(tm);
            }
        }
    }
    found
}

fn service_to_value(registry: &mut UddiRegistry, svc: &wsdl::BusinessService) -> Option<Value> {
    let middleware = svc
        .categories
        .iter()
        .find(|c| c.taxonomy == TAX_MIDDLEWARE)?
        .value
        .clone();
    let gateway = svc
        .categories
        .iter()
        .find(|c| c.taxonomy == TAX_GATEWAY)?
        .value
        .clone();
    let tmodel_key = svc.bindings.first()?.tmodel_key.clone()?;
    let tmodel = registry.get_tmodel(&tmodel_key)?;
    let contexts: Vec<(String, Value)> = svc
        .categories
        .iter()
        .filter_map(|c| {
            c.taxonomy
                .strip_prefix(TAX_CONTEXT_PREFIX)
                .map(|k| (k.to_owned(), Value::Str(c.value.clone())))
        })
        .collect();
    Some(Value::Record(vec![
        ("name".into(), Value::Str(svc.name.clone())),
        ("middleware".into(), Value::Str(middleware)),
        ("gateway".into(), Value::Str(gateway)),
        ("wsdl".into(), Value::Str(tmodel.overview_doc)),
        ("contexts".into(), Value::Record(contexts)),
    ]))
}

/// A client of the repository (used by gateways and PCMs).
#[derive(Debug, Clone)]
pub struct VsrClient {
    soap: SoapClient,
    vsr: NodeId,
    sim: simnet::Sim,
    tracer: Tracer,
}

impl VsrClient {
    /// Creates a client calling from `node` on the backbone. Spans are
    /// recorded only once [`VsrClient::with_tracer`] attaches an
    /// enabled gateway tracer.
    pub fn new(net: &Network, node: NodeId, vsr: NodeId) -> VsrClient {
        VsrClient {
            soap: SoapClient::on_node(
                net,
                node,
                soap::CpuModel::default(),
                soap::TcpModel::default(),
            ),
            vsr,
            sim: net.sim().clone(),
            tracer: Tracer::new("vsr-client"),
        }
    }

    /// Attributes this client's repository round trips to `tracer`
    /// (the owning gateway's), as `vsr-lookup` spans.
    pub fn with_tracer(mut self, tracer: Tracer) -> VsrClient {
        self.tracer = tracer;
        self
    }

    fn call(&self, call: &RpcCall) -> Result<Value, MetaError> {
        let span = self
            .tracer
            .begin(&self.sim, HopKind::VsrLookup, || call.method.clone());
        let result = self.soap.call(self.vsr, call).map_err(|e| match e {
            SoapError::Fault(f) => MetaError::from_fault_string(&f.string),
            // A wire failure on the repository leg: typed, so callers
            // can tell "VSR down" from a protocol bug and degrade.
            SoapError::Http(h) => MetaError::from_http_error(&h),
            other => MetaError::Protocol(other.to_string()),
        });
        self.tracer.end_result(&self.sim, span, &result);
        result
    }

    /// Registers a gateway's backbone node under its name.
    pub fn register_gateway(&self, name: &str, node: NodeId) -> Result<(), MetaError> {
        self.call(
            &RpcCall::new(VSR_NS, "register_gateway")
                .arg("name", name)
                .arg("node", i64::from(node.0)),
        )
        .map(|_| ())
    }

    /// Looks up a gateway's backbone node.
    pub fn gateway_node(&self, name: &str) -> Result<NodeId, MetaError> {
        let v = self.call(&RpcCall::new(VSR_NS, "gateway_node").arg("name", name))?;
        v.as_int()
            .and_then(|n| u32::try_from(n).ok())
            .map(NodeId)
            .ok_or_else(|| MetaError::Repository("bad gateway_node reply".into()))
    }

    /// Publishes a virtual service.
    pub fn publish(&self, service: &VirtualService) -> Result<(), MetaError> {
        let wsdl_doc = service
            .interface
            .to_wsdl(&service.name, &service.endpoint())
            .to_xml()
            .to_document();
        let contexts = Value::Record(
            service
                .contexts
                .iter()
                .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                .collect(),
        );
        self.call(
            &RpcCall::new(VSR_NS, "publish")
                .arg("name", service.name.as_str())
                .arg("middleware", service.origin.label())
                .arg("gateway", service.gateway.as_str())
                .arg("wsdl", wsdl_doc)
                .arg("contexts", contexts),
        )
        .map(|_| ())
    }

    /// Finds services whose name matches `pattern` and whose context bag
    /// contains every given `(key, value)` pair — §3.3's context-aware
    /// discovery ("the VSG and the PCM use this component to detect
    /// services or aware contexts").
    pub fn find_by_context(
        &self,
        pattern: &str,
        contexts: &[(&str, &str)],
    ) -> Result<Vec<ServiceRecord>, MetaError> {
        let ctx = Value::Record(
            contexts
                .iter()
                .map(|(k, v)| ((*k).to_owned(), Value::Str((*v).to_owned())))
                .collect(),
        );
        let v = self.call(
            &RpcCall::new(VSR_NS, "find_ctx")
                .arg("pattern", pattern)
                .arg("contexts", ctx),
        )?;
        match v {
            Value::List(items) => Ok(items.iter().filter_map(ServiceRecord::from_value).collect()),
            _ => Err(MetaError::Repository("bad find_ctx reply".into())),
        }
    }

    /// Renews `name`'s lease (a no-op when the repository runs without
    /// leases). Returns whether the service is currently registered.
    pub fn renew(&self, name: &str) -> Result<bool, MetaError> {
        let v = self.call(&RpcCall::new(VSR_NS, "renew").arg("name", name))?;
        v.as_bool()
            .ok_or_else(|| MetaError::Repository("bad renew reply".into()))
    }

    /// Withdraws a service by name. Returns whether it existed.
    pub fn unpublish(&self, name: &str) -> Result<bool, MetaError> {
        let v = self.call(&RpcCall::new(VSR_NS, "unpublish").arg("name", name))?;
        v.as_bool()
            .ok_or_else(|| MetaError::Repository("bad unpublish reply".into()))
    }

    /// Finds services by name pattern (`%` wildcards) and optional
    /// middleware filter.
    pub fn find(
        &self,
        pattern: &str,
        middleware: Option<Middleware>,
    ) -> Result<Vec<ServiceRecord>, MetaError> {
        let v = self.call(
            &RpcCall::new(VSR_NS, "find")
                .arg("pattern", pattern)
                .arg("middleware", middleware.map_or("", Middleware::label)),
        )?;
        match v {
            Value::List(items) => Ok(items.iter().filter_map(ServiceRecord::from_value).collect()),
            _ => Err(MetaError::Repository("bad find reply".into())),
        }
    }

    /// Resolves one service by exact name.
    pub fn resolve(&self, name: &str) -> Result<ServiceRecord, MetaError> {
        let v = self.call(&RpcCall::new(VSR_NS, "resolve").arg("name", name))?;
        ServiceRecord::from_value(&v)
            .ok_or_else(|| MetaError::Repository("bad resolve reply".into()))
    }

    /// Number of published services.
    pub fn count(&self) -> Result<usize, MetaError> {
        let v = self.call(&RpcCall::new(VSR_NS, "count"))?;
        v.as_int()
            .and_then(|n| usize::try_from(n).ok())
            .ok_or_else(|| MetaError::Repository("bad count reply".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::catalog;
    use simnet::Sim;

    fn world() -> (Sim, Network, Vsr, VsrClient) {
        let sim = Sim::new(1);
        let net = Network::ethernet(&sim);
        let vsr = Vsr::start(&net);
        let client_node = net.attach("pcm");
        let client = VsrClient::new(&net, client_node, vsr.node());
        (sim, net, vsr, client)
    }

    fn lamp_service() -> VirtualService {
        VirtualService::new("hall-lamp", catalog::lamp(), Middleware::X10, "x10-gw")
    }

    #[test]
    fn publish_resolve_round_trip() {
        let (_sim, _net, vsr, client) = world();
        client.publish(&lamp_service()).unwrap();
        assert_eq!(vsr.service_count(), 1);
        let rec = client.resolve("hall-lamp").unwrap();
        assert_eq!(rec.name, "hall-lamp");
        assert_eq!(rec.middleware, Middleware::X10);
        assert_eq!(rec.gateway, "x10-gw");
        assert_eq!(rec.endpoint(), "vsg://x10-gw/hall-lamp");
        assert_eq!(*rec.interface, catalog::lamp());
    }

    #[test]
    fn find_with_filters() {
        let (_sim, _net, _vsr, client) = world();
        client.publish(&lamp_service()).unwrap();
        client
            .publish(&VirtualService::new(
                "living-room-vcr",
                catalog::vcr(),
                Middleware::Havi,
                "havi-gw",
            ))
            .unwrap();
        client
            .publish(&VirtualService::new(
                "laserdisc",
                catalog::laserdisc(),
                Middleware::Jini,
                "jini-gw",
            ))
            .unwrap();

        assert_eq!(client.find("%", None).unwrap().len(), 3);
        assert_eq!(client.find("l%", None).unwrap().len(), 2);
        let havi_only = client.find("%", Some(Middleware::Havi)).unwrap();
        assert_eq!(havi_only.len(), 1);
        assert_eq!(havi_only[0].name, "living-room-vcr");
        assert!(client.find("%", Some(Middleware::Upnp)).unwrap().is_empty());
        assert_eq!(client.count().unwrap(), 3);
    }

    #[test]
    fn unknown_service_resolution_fails() {
        let (_sim, _net, _vsr, client) = world();
        let err = client.resolve("ghost").unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn republish_replaces() {
        let (_sim, _net, vsr, client) = world();
        client.publish(&lamp_service()).unwrap();
        let mut moved = lamp_service();
        moved.gateway = "x10-gw-2".into();
        client.publish(&moved).unwrap();
        assert_eq!(vsr.service_count(), 1);
        assert_eq!(client.resolve("hall-lamp").unwrap().gateway, "x10-gw-2");
    }

    #[test]
    fn unpublish() {
        let (_sim, _net, vsr, client) = world();
        client.publish(&lamp_service()).unwrap();
        assert!(client.unpublish("hall-lamp").unwrap());
        assert!(!client.unpublish("hall-lamp").unwrap());
        assert_eq!(vsr.service_count(), 0);
        assert!(client.resolve("hall-lamp").is_err());
    }

    #[test]
    fn gateway_directory() {
        let (_sim, net, _vsr, client) = world();
        let gw_node = net.attach("x10-gw");
        client.register_gateway("x10-gw", gw_node).unwrap();
        assert_eq!(client.gateway_node("x10-gw").unwrap(), gw_node);
        assert!(matches!(
            client.gateway_node("ghost-gw"),
            Err(MetaError::GatewayUnreachable(_))
        ));
    }

    #[test]
    fn leases_reap_unrenewed_records_lazily() {
        let (sim, _net, vsr, client) = world();
        vsr.set_lease_duration(Some(SimDuration::from_secs(60)));
        client.publish(&lamp_service()).unwrap();

        sim.advance(SimDuration::from_secs(30));
        assert!(client.resolve("hall-lamp").is_ok(), "mid-lease");
        // Renewal restarts the clock.
        assert!(client.renew("hall-lamp").unwrap());
        sim.advance(SimDuration::from_secs(45));
        assert!(client.resolve("hall-lamp").is_ok(), "renewed lease holds");

        // 45 + 20 > 60: the record is reaped on the next operation.
        sim.advance(SimDuration::from_secs(20));
        assert!(matches!(
            client.resolve("hall-lamp"),
            Err(MetaError::UnknownService(_))
        ));
        assert_eq!(vsr.service_count(), 0, "expired record gone");
        assert!(!client.renew("hall-lamp").unwrap(), "nothing to renew");

        // Re-publishing (a recovered gateway) brings it back.
        client.publish(&lamp_service()).unwrap();
        assert!(client.resolve("hall-lamp").is_ok());
    }

    #[test]
    fn leases_off_by_default_records_never_expire() {
        let (sim, _net, _vsr, client) = world();
        client.publish(&lamp_service()).unwrap();
        sim.advance(SimDuration::from_secs(3600));
        assert!(client.resolve("hall-lamp").is_ok());
    }

    #[test]
    fn repository_access_costs_soap_round_trips() {
        let (sim, _net, _vsr, client) = world();
        let before = sim.now();
        client.publish(&lamp_service()).unwrap();
        client.resolve("hall-lamp").unwrap();
        assert!(sim.now() - before > simnet::SimDuration::from_millis(2));
    }
}
