//! The AV meta-middleware — the second §6 future-work item.
//!
//! "Another Meta middleware should be developed for some critical
//! applications such as multimedia services … \[with\] conversion of
//! multimedia streams … And the middleware would be able to coexist with
//! our framework described in this paper, at the same area."
//!
//! [`AvBroker`] is that coexisting meta-middleware: its **control plane**
//! rides the framework (services are found in the VSR; endpoints are the
//! PCM's imported FCMs), but its **data plane** never touches the VSG —
//! streams flow on native IEEE1394 isochronous channels, because E10
//! shows the VSG cannot carry them. Asking for a stream whose endpoints
//! have no shared native medium is refused honestly.

use crate::error::MetaError;
use crate::pcm::havi::HaviPcm;
use crate::service::Middleware;
use crate::vsg::Vsg;
use havi::{Seid, StreamConnection, StreamManager, StreamReport, DV_BYTES_PER_CYCLE};
use parking_lot::Mutex;
use simnet::{Sim, SimDuration};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Stream formats the broker understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AvFormat {
    /// DV standard definition (~30.7 Mbit/s gross).
    Dv,
    /// MPEG-2 at half the DV cycle budget (the broker's transcode target).
    Mpeg2,
}

impl AvFormat {
    /// Reserved isochronous payload per 125 µs cycle.
    pub fn bytes_per_cycle(self) -> u32 {
        match self {
            AvFormat::Dv => DV_BYTES_PER_CYCLE,
            AvFormat::Mpeg2 => DV_BYTES_PER_CYCLE / 2,
        }
    }

    /// Label for traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            AvFormat::Dv => "dv",
            AvFormat::Mpeg2 => "mpeg2",
        }
    }
}

/// An open AV session.
#[derive(Debug, Clone)]
pub struct AvSession {
    /// Session id.
    pub id: u64,
    /// Source service name (as in the VSR).
    pub source: String,
    /// Sink service name.
    pub sink: String,
    /// Format produced by the source.
    pub source_format: AvFormat,
    /// Format delivered to the sink (transcoded if different).
    pub sink_format: AvFormat,
    /// The reserved native connection.
    pub connection: StreamConnection,
}

impl AvSession {
    /// True if the broker inserted a format converter.
    pub fn converted(&self) -> bool {
        self.source_format != self.sink_format
    }
}

/// Statistics from pumping a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AvReport {
    /// The underlying isochronous transfer.
    pub stream: StreamReport,
    /// Bytes saved by transcoding (0 if formats match).
    pub bytes_saved: u64,
}

struct BrokerState {
    next_id: u64,
    sessions: HashMap<u64, AvSession>,
}

/// The AV session broker for one HAVi island.
#[derive(Clone)]
pub struct AvBroker {
    vsg: Vsg,
    pcm: Arc<HaviPcm>,
    streams: StreamManager,
    state: Arc<Mutex<BrokerState>>,
}

impl AvBroker {
    /// Creates a broker over the HAVi island's gateway, PCM and stream
    /// manager.
    pub fn new(vsg: &Vsg, pcm: Arc<HaviPcm>, streams: &StreamManager) -> AvBroker {
        AvBroker {
            vsg: vsg.clone(),
            pcm,
            streams: streams.clone(),
            state: Arc::new(Mutex::new(BrokerState {
                next_id: 0,
                sessions: HashMap::new(),
            })),
        }
    }

    /// Resolves a service to its native FCM endpoint, refusing services
    /// that have no native path on this island.
    fn native_endpoint(&self, service: &str) -> Result<Seid, MetaError> {
        let record = self.vsg.resolve(service)?;
        if record.middleware != Middleware::Havi {
            return Err(MetaError::Native {
                middleware: "avmeta".into(),
                detail: format!(
                    "'{service}' lives on {}: streams cannot ride the VSG (E10); \
                     no native isochronous path exists",
                    record.middleware
                ),
            });
        }
        self.pcm
            .fcm_of(service)
            .map(|(_, seid)| seid)
            .ok_or_else(|| MetaError::native("avmeta", format!("'{service}' has no local FCM")))
    }

    /// Opens a session from `source` to `sink`. The control plane (both
    /// resolutions) crosses the framework; the data plane reserves a
    /// native channel at the *sink's* format (the broker transcodes when
    /// the formats differ).
    pub fn open_session(
        &self,
        sim: &Sim,
        source: &str,
        source_format: AvFormat,
        sink: &str,
        sink_format: AvFormat,
    ) -> Result<AvSession, MetaError> {
        let src_seid = self.native_endpoint(source)?;
        let sink_seid = self.native_endpoint(sink)?;
        // Session setup signalling: one control round trip per endpoint
        // (the CORBA-ish call of §6, carried over the framework).
        sim.advance(SimDuration::from_millis(2));
        let connection = self
            .streams
            .connect(src_seid, sink_seid, sink_format.bytes_per_cycle())
            .map_err(|e| MetaError::native("avmeta", e))?;
        let mut st = self.state.lock();
        st.next_id += 1;
        let session = AvSession {
            id: st.next_id,
            source: source.to_owned(),
            sink: sink.to_owned(),
            source_format,
            sink_format,
            connection,
        };
        st.sessions.insert(session.id, session.clone());
        sim.trace(
            "avmeta",
            format!(
                "session {} open: {source}({}) -> {sink}({}) on ch{}",
                session.id,
                source_format.label(),
                sink_format.label(),
                session.connection.channel
            ),
        );
        Ok(session)
    }

    /// Flows `duration` of media over the session.
    pub fn pump(&self, sim: &Sim, session: &AvSession, duration: SimDuration) -> AvReport {
        let stream = self.streams.pump(sim, &session.connection, duration);
        let bytes_saved = if session.converted() {
            let cycles = stream.packets;
            let source_bytes = cycles * u64::from(session.source_format.bytes_per_cycle());
            source_bytes.saturating_sub(stream.bytes)
        } else {
            0
        };
        AvReport {
            stream,
            bytes_saved,
        }
    }

    /// Closes a session, releasing the channel and bandwidth.
    pub fn close_session(&self, session_id: u64) -> Result<(), MetaError> {
        let session = self
            .state
            .lock()
            .sessions
            .remove(&session_id)
            .ok_or_else(|| MetaError::native("avmeta", format!("no session {session_id}")))?;
        self.streams
            .disconnect(session.connection.channel)
            .map_err(|e| MetaError::native("avmeta", e))
    }

    /// The HAVi PCM whose FCM map provides the native endpoints.
    pub fn pcm(&self) -> &Arc<HaviPcm> {
        &self.pcm
    }

    /// Currently open sessions.
    pub fn session_count(&self) -> usize {
        self.state.lock().sessions.len()
    }
}

impl fmt::Debug for AvBroker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AvBroker")
            .field("sessions", &self.session_count())
            .field(
                "free_bytes_per_cycle",
                &self.streams.available_bytes_per_cycle(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::home::SmartHome;

    fn broker_home() -> (SmartHome, AvBroker) {
        let home = SmartHome::builder().build().unwrap();
        let havi = home.havi.as_ref().unwrap();
        let broker = AvBroker::new(
            &havi.vsg,
            Arc::new(HaviPcm::start(&havi.vsg, &havi.bus, havi.registry.seid())),
            &havi.streams,
        );
        // The fresh PCM needs its own import pass to learn the FCM map.
        broker.pcm.import_services().unwrap();
        (home, broker)
    }

    #[test]
    fn dv_session_flows_natively() {
        let (home, broker) = broker_home();
        let session = broker
            .open_session(
                &home.sim,
                "dv-camera",
                AvFormat::Dv,
                "living-room-vcr",
                AvFormat::Dv,
            )
            .unwrap();
        assert!(!session.converted());
        assert_eq!(broker.session_count(), 1);

        let report = broker.pump(&home.sim, &session, SimDuration::from_secs(2));
        assert_eq!(report.stream.packets, 16_000);
        assert_eq!(report.stream.late_packets, 0);
        assert_eq!(report.bytes_saved, 0);

        broker.close_session(session.id).unwrap();
        assert_eq!(broker.session_count(), 0);
        assert!(broker.close_session(session.id).is_err());
    }

    #[test]
    fn transcoding_halves_reserved_bandwidth() {
        let (home, broker) = broker_home();
        let before = broker.streams.available_bytes_per_cycle();
        let session = broker
            .open_session(
                &home.sim,
                "dv-camera",
                AvFormat::Dv,
                "tv-display",
                AvFormat::Mpeg2,
            )
            .unwrap();
        assert!(session.converted());
        assert_eq!(
            before - broker.streams.available_bytes_per_cycle(),
            AvFormat::Mpeg2.bytes_per_cycle()
        );
        let report = broker.pump(&home.sim, &session, SimDuration::from_secs(1));
        assert!(report.bytes_saved > 0);
        assert_eq!(
            report.bytes_saved,
            u64::from(AvFormat::Dv.bytes_per_cycle() - AvFormat::Mpeg2.bytes_per_cycle()) * 8_000
        );
    }

    #[test]
    fn cross_island_streams_are_refused_with_the_e10_reason() {
        let (home, broker) = broker_home();
        let err = broker
            .open_session(
                &home.sim,
                "dv-camera",
                AvFormat::Dv,
                "hall-lamp",
                AvFormat::Dv,
            )
            .unwrap_err();
        assert!(err.to_string().contains("cannot ride the VSG"), "{err}");
        let err = broker
            .open_session(
                &home.sim,
                "laserdisc",
                AvFormat::Dv,
                "tv-display",
                AvFormat::Dv,
            )
            .unwrap_err();
        assert!(err.to_string().contains("jini"), "{err}");
        assert_eq!(broker.session_count(), 0);
    }

    #[test]
    fn bandwidth_exhaustion_is_a_clean_error() {
        let (home, broker) = broker_home();
        // 10 DV sessions fill the S400 budget.
        let mut opened = 0;
        loop {
            match broker.open_session(
                &home.sim,
                "dv-camera",
                AvFormat::Dv,
                "living-room-vcr",
                AvFormat::Dv,
            ) {
                Ok(_) => opened += 1,
                Err(e) => {
                    assert!(e.to_string().contains("bandwidth"), "{e}");
                    break;
                }
            }
            assert!(opened < 64, "budget never enforced");
        }
        assert_eq!(opened, 10);
    }

    #[test]
    fn sessions_coexist_with_control_traffic() {
        // §6: the AV meta-middleware coexists with the framework "at the
        // same area" — control calls keep working while a stream flows.
        let (home, broker) = broker_home();
        let session = broker
            .open_session(
                &home.sim,
                "dv-camera",
                AvFormat::Dv,
                "living-room-vcr",
                AvFormat::Dv,
            )
            .unwrap();
        broker.pump(&home.sim, &session, SimDuration::from_secs(1));
        home.invoke_from(Middleware::Jini, "dv-camera", "record", &[])
            .unwrap();
        broker.pump(&home.sim, &session, SimDuration::from_secs(1));
        home.invoke_from(Middleware::X10, "living-room-vcr", "status", &[])
            .unwrap();
    }
}
