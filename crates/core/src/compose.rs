//! The service-composition engine: pipelines as first-class services.
//!
//! The paper stops at 1:1 proxy invocation across middleware islands.
//! This module adds the next rung (DESIGN.md §16): a [`CompositeSpec`]
//! names an ordered list of steps — each a `(service, operation)` with
//! argument [`Binding`]s drawn from prior-step outputs, the composite's
//! own inputs, or literals — and is registered in the VSR like any other
//! service ([`crate::Vsg::register_composite`]). A client invokes the
//! composite with *one* call; the gateway hosting it walks the pipeline
//! gateway-to-gateway over the resilient wire, so a k-step cross-island
//! pipeline costs the client one round trip instead of k.
//!
//! Composites inherit the resilience semantics of single calls:
//!
//! * **Budget carving.** One composite-wide deadline
//!   ([`CompositeSpec::budget`], defaulting to the hosting gateway's
//!   policy deadline) is carved across the remaining steps — step `i`
//!   of `k` gets `remaining / (k - i)` — so an early slow step shrinks
//!   what later steps may spend instead of blowing the whole budget.
//! * **Idempotency-aware retries.** Each step rides
//!   [`crate::Vsg::invoke_with_policy`]: ambiguous losses are re-sent
//!   only for operations declared idempotent, exactly as for direct
//!   invocations — a composite never double-executes a step.
//! * **Compensation.** A step may register a [`CompensationSpec`]; when
//!   a later step fails, the engine invokes the compensators of every
//!   *completed* step in reverse order, exactly once each. The step
//!   that failed is *not* compensated: on an ambiguous loss the engine
//!   cannot know whether it executed (the saga assumption — see
//!   DESIGN.md §16).
//!
//! Every step runs under a [`HopKind::Compose`] span in the caller's
//! trace tree, and per-step latency lands in the [`Layer::Compose`]
//! sketch of the hosting gateway's metrics registry.

use crate::error::MetaError;
use crate::iface::{OpSig, ServiceInterface, TypeTag};
use crate::obs::Layer;
use crate::trace::HopKind;
use crate::vsg::Vsg;
use minixml::Element;
use simnet::{Sim, SimDuration};
use soap::Value;

/// The service-context key a composite's encoded spec is published
/// under — the vehicle that carries the pipeline through the VSR, so
/// any gateway resolving the record can read the spec back.
pub const COMPOSITE_SPEC_CONTEXT: &str = "composite-spec";

/// Where one step argument's value comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum Binding {
    /// A constant baked into the spec.
    Literal(Value),
    /// A named input of the composite itself.
    Input(String),
    /// The whole output of an earlier step (0-based).
    Step(usize),
    /// A named field of an earlier step's record output.
    StepField(usize, String),
}

/// How to undo a completed step when a later step fails: an operation
/// on the *same* service, with its own bindings. Compensation bindings
/// may reference the compensated step's own output (it completed).
#[derive(Debug, Clone, PartialEq)]
pub struct CompensationSpec {
    /// The undo operation, invoked on the step's service.
    pub operation: String,
    /// Arguments, resolved with the same rules as forward steps.
    pub args: Vec<(String, Binding)>,
}

/// One pipeline step: an operation on a service, with bound arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct StepSpec {
    /// The target service (resolved through the VSR like any call).
    pub service: String,
    /// The operation to invoke.
    pub operation: String,
    /// Named arguments and where their values come from.
    pub args: Vec<(String, Binding)>,
    /// How to undo this step if a later one fails; `None` means the
    /// step needs no undo (or tolerates none).
    pub compensation: Option<CompensationSpec>,
}

impl StepSpec {
    /// A step with no arguments and no compensation.
    pub fn new(service: impl Into<String>, operation: impl Into<String>) -> StepSpec {
        StepSpec {
            service: service.into(),
            operation: operation.into(),
            args: Vec::new(),
            compensation: None,
        }
    }

    /// Binds an argument (builder style).
    pub fn arg(mut self, name: impl Into<String>, binding: Binding) -> StepSpec {
        self.args.push((name.into(), binding));
        self
    }

    /// Registers the undo operation (builder style).
    pub fn compensate(
        mut self,
        operation: impl Into<String>,
        args: Vec<(String, Binding)>,
    ) -> StepSpec {
        self.compensation = Some(CompensationSpec {
            operation: operation.into(),
            args,
        });
        self
    }
}

/// A declarative pipeline, publishable in the VSR as an ordinary
/// service. The derived interface has one operation
/// ([`CompositeSpec::operation`]) taking [`CompositeSpec::inputs`] and
/// returning the last step's output as [`TypeTag::Any`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompositeSpec {
    /// The composite's service name in the VSR.
    pub name: String,
    /// The single exported operation's name (default `run`).
    pub operation: String,
    /// Named, typed inputs the caller must supply.
    pub inputs: Vec<(String, TypeTag)>,
    /// The pipeline, executed in order.
    pub steps: Vec<StepSpec>,
    /// End-to-end virtual-time budget carved across steps; `None`
    /// borrows the hosting gateway's policy deadline at execution time.
    pub budget: Option<SimDuration>,
}

impl CompositeSpec {
    /// An empty composite exporting operation `run`.
    pub fn new(name: impl Into<String>) -> CompositeSpec {
        CompositeSpec {
            name: name.into(),
            operation: "run".into(),
            inputs: Vec::new(),
            steps: Vec::new(),
            budget: None,
        }
    }

    /// Renames the exported operation (builder style).
    pub fn operation(mut self, op: impl Into<String>) -> CompositeSpec {
        self.operation = op.into();
        self
    }

    /// Declares a caller-supplied input (builder style).
    pub fn input(mut self, name: impl Into<String>, ty: TypeTag) -> CompositeSpec {
        self.inputs.push((name.into(), ty));
        self
    }

    /// Appends a pipeline step (builder style).
    pub fn step(mut self, step: StepSpec) -> CompositeSpec {
        self.steps.push(step);
        self
    }

    /// Sets the composite-wide deadline (builder style).
    pub fn budget(mut self, budget: SimDuration) -> CompositeSpec {
        self.budget = Some(budget);
        self
    }

    /// The derived single-operation interface the composite publishes.
    /// Never idempotent: the engine cannot know whether re-running the
    /// whole pipeline is safe, so ambiguous losses must not re-send it.
    pub fn interface(&self) -> ServiceInterface {
        let mut sig = OpSig::new(&self.operation).returns(TypeTag::Any);
        for (name, ty) in &self.inputs {
            sig = sig.param(name.clone(), *ty);
        }
        ServiceInterface::new(format!("Composite:{}", self.name)).op(sig)
    }

    /// Structural validation, run at registration time: at least one
    /// step, every binding references a declared input or an *earlier*
    /// step, and no step names the composite itself (the one cycle the
    /// spec can see statically; deeper cycles are caught at execution
    /// by the gateway's re-entrancy guard).
    pub fn validate(&self) -> Result<(), MetaError> {
        let fail = |detail: String| {
            Err(MetaError::Native {
                middleware: "composite".into(),
                detail,
            })
        };
        if self.steps.is_empty() {
            return fail(format!("composite '{}' has no steps", self.name));
        }
        for (i, step) in self.steps.iter().enumerate() {
            if step.service == self.name {
                return fail(format!(
                    "composite '{}' step {i} invokes the composite itself",
                    self.name
                ));
            }
            for (arg, binding) in &step.args {
                self.check_binding(binding, i, &format!("step {i} arg '{arg}'"))?;
            }
            if let Some(comp) = &step.compensation {
                for (arg, binding) in &comp.args {
                    // A compensator runs only after its step completed,
                    // so it may bind the step's own output too.
                    self.check_binding(binding, i + 1, &format!("step {i} compensation '{arg}'"))?;
                }
            }
        }
        Ok(())
    }

    /// `limit` is the first step index the binding may *not* reference.
    fn check_binding(&self, binding: &Binding, limit: usize, at: &str) -> Result<(), MetaError> {
        let fail = |detail: String| {
            Err(MetaError::Native {
                middleware: "composite".into(),
                detail,
            })
        };
        match binding {
            Binding::Literal(_) => Ok(()),
            Binding::Input(name) => {
                if self.inputs.iter().any(|(n, _)| n == name) {
                    Ok(())
                } else {
                    fail(format!(
                        "composite '{}' {at} binds undeclared input '{name}'",
                        self.name
                    ))
                }
            }
            Binding::Step(j) | Binding::StepField(j, _) => {
                if *j < limit {
                    Ok(())
                } else {
                    fail(format!(
                        "composite '{}' {at} binds step {j}, not yet executed",
                        self.name
                    ))
                }
            }
        }
    }

    // ---- wire form (rides the VSR record's service contexts) -----------

    /// Encodes the spec as a standalone XML document.
    pub fn to_xml(&self) -> String {
        let mut root = Element::new("composite")
            .attr("name", &self.name)
            .attr("operation", &self.operation);
        if let Some(b) = self.budget {
            root = root.attr("budget-us", b.as_micros().to_string());
        }
        for (name, ty) in &self.inputs {
            root.push(
                Element::new("input")
                    .attr("name", name)
                    .attr("type", ty.to_string()),
            );
        }
        for step in &self.steps {
            let mut el = Element::new("step")
                .attr("service", &step.service)
                .attr("operation", &step.operation)
                .children(step.args.iter().map(|(n, b)| arg_to_xml(n, b)));
            if let Some(comp) = &step.compensation {
                el.push(
                    Element::new("compensate")
                        .attr("operation", &comp.operation)
                        .children(comp.args.iter().map(|(n, b)| arg_to_xml(n, b))),
                );
            }
            root.push(el);
        }
        root.to_document()
    }

    /// Decodes [`CompositeSpec::to_xml`]'s form. `None` for anything
    /// malformed — a resolver must treat a bad spec context as "not a
    /// composite", never fail the resolution.
    pub fn from_xml(doc: &str) -> Option<CompositeSpec> {
        let root = minixml::parse(doc).ok()?;
        if root.local_name() != "composite" {
            return None;
        }
        let mut spec = CompositeSpec::new(root.get_attr("name")?);
        spec.operation = root.get_attr("operation")?.to_owned();
        if let Some(us) = root.get_attr("budget-us") {
            spec.budget = Some(SimDuration::from_micros(us.parse().ok()?));
        }
        for input in root.find_all("input") {
            let ty = match input.get_attr("type")? {
                "bool" => TypeTag::Bool,
                "int" => TypeTag::Int,
                "float" => TypeTag::Float,
                "str" => TypeTag::Str,
                "bytes" => TypeTag::Bytes,
                "any" => TypeTag::Any,
                _ => return None,
            };
            spec.inputs.push((input.get_attr("name")?.to_owned(), ty));
        }
        for step_el in root.find_all("step") {
            let mut step =
                StepSpec::new(step_el.get_attr("service")?, step_el.get_attr("operation")?);
            for arg in step_el.find_all("arg") {
                step.args.push(arg_from_xml(arg)?);
            }
            if let Some(comp_el) = step_el.find("compensate") {
                let mut args = Vec::new();
                for arg in comp_el.find_all("arg") {
                    args.push(arg_from_xml(arg)?);
                }
                step.compensation = Some(CompensationSpec {
                    operation: comp_el.get_attr("operation")?.to_owned(),
                    args,
                });
            }
            spec.steps.push(step);
        }
        Some(spec)
    }
}

fn arg_to_xml(name: &str, binding: &Binding) -> Element {
    let el = Element::new("arg").attr("name", name);
    match binding {
        Binding::Literal(v) => el.child(value_to_xml(v)),
        Binding::Input(input) => el.child(Element::new("in").attr("name", input)),
        Binding::Step(i) => el.child(Element::new("out").attr("step", i.to_string())),
        Binding::StepField(i, field) => el.child(
            Element::new("out")
                .attr("step", i.to_string())
                .attr("field", field),
        ),
    }
}

fn arg_from_xml(el: &Element) -> Option<(String, Binding)> {
    let name = el.get_attr("name")?.to_owned();
    let binding = if let Some(input) = el.find("in") {
        Binding::Input(input.get_attr("name")?.to_owned())
    } else if let Some(out) = el.find("out") {
        let step = out.get_attr("step")?.parse().ok()?;
        match out.get_attr("field") {
            Some(field) => Binding::StepField(step, field.to_owned()),
            None => Binding::Step(step),
        }
    } else {
        Binding::Literal(value_from_xml(el.find("v")?)?)
    };
    Some((name, binding))
}

/// Recursive [`Value`] encoding: `<v t="...">` with text content for
/// scalars (bytes as hex), `<v>` children for lists, and `<f n="...">`
/// field wrappers for records.
fn value_to_xml(v: &Value) -> Element {
    match v {
        Value::Null => Element::new("v").attr("t", "null"),
        Value::Bool(b) => Element::new("v").attr("t", "bool").text(b.to_string()),
        Value::Int(i) => Element::new("v").attr("t", "int").text(i.to_string()),
        // `{:?}` prints round-trippable f64 (shortest form that parses
        // back exactly), where `{}` would drop the ".0" on integers.
        Value::Float(x) => Element::new("v").attr("t", "float").text(format!("{x:?}")),
        Value::Str(s) => Element::new("v").attr("t", "str").text(s),
        Value::Bytes(b) => {
            let mut hex = String::with_capacity(b.len() * 2);
            for byte in b {
                hex.push_str(&format!("{byte:02x}"));
            }
            Element::new("v").attr("t", "bytes").text(hex)
        }
        Value::List(items) => Element::new("v")
            .attr("t", "list")
            .children(items.iter().map(value_to_xml)),
        Value::Record(fields) => Element::new("v").attr("t", "rec").children(
            fields
                .iter()
                .map(|(k, v)| Element::new("f").attr("n", k).child(value_to_xml(v))),
        ),
    }
}

fn value_from_xml(el: &Element) -> Option<Value> {
    Some(match el.get_attr("t")? {
        "null" => Value::Null,
        "bool" => Value::Bool(el.text_content().parse().ok()?),
        "int" => Value::Int(el.text_content().parse().ok()?),
        "float" => Value::Float(el.text_content().parse().ok()?),
        "str" => Value::Str(el.text_content()),
        "bytes" => {
            let hex = el.text_content();
            let hex = hex.trim();
            if !hex.len().is_multiple_of(2) {
                return None;
            }
            let mut bytes = Vec::with_capacity(hex.len() / 2);
            for i in (0..hex.len()).step_by(2) {
                bytes.push(u8::from_str_radix(hex.get(i..i + 2)?, 16).ok()?);
            }
            Value::Bytes(bytes)
        }
        "list" => Value::List(
            el.find_all("v")
                .map(value_from_xml)
                .collect::<Option<Vec<_>>>()?,
        ),
        "rec" => Value::Record(
            el.find_all("f")
                .map(|f| Some((f.get_attr("n")?.to_owned(), value_from_xml(f.find("v")?)?)))
                .collect::<Option<Vec<_>>>()?,
        ),
        _ => return None,
    })
}

/// What one composite execution did, reported alongside the result so
/// callers (and the metrics registry) can account for partial failure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComposeOutcome {
    /// Steps that completed (the engine saw their response).
    pub steps_completed: usize,
    /// Compensators the engine invoked and that returned success.
    pub compensations_run: usize,
    /// Compensators the engine invoked that themselves failed (the
    /// engine continues down the stack regardless — a broken undo must
    /// not strand the undos beneath it).
    pub compensations_failed: usize,
}

/// Resolves one binding against the composite's inputs and the outputs
/// of completed steps.
fn resolve_binding(
    spec_name: &str,
    binding: &Binding,
    inputs: &[(String, Value)],
    outputs: &[Value],
) -> Result<Value, MetaError> {
    let fail = |detail: String| {
        Err(MetaError::Native {
            middleware: "composite".into(),
            detail,
        })
    };
    match binding {
        Binding::Literal(v) => Ok(v.clone()),
        Binding::Input(name) => match inputs.iter().find(|(k, _)| k == name) {
            Some((_, v)) => Ok(v.clone()),
            None => fail(format!("composite '{spec_name}' missing input '{name}'")),
        },
        Binding::Step(i) => match outputs.get(*i) {
            Some(v) => Ok(v.clone()),
            None => fail(format!(
                "composite '{spec_name}' step {i} output unavailable"
            )),
        },
        Binding::StepField(i, field) => match outputs.get(*i) {
            Some(v) => match v.field(field) {
                Some(f) => Ok(f.clone()),
                None => fail(format!(
                    "composite '{spec_name}' step {i} output has no field '{field}'"
                )),
            },
            None => fail(format!(
                "composite '{spec_name}' step {i} output unavailable"
            )),
        },
    }
}

/// Runs `spec` on the gateway `vsg`, which should be the gateway
/// hosting the composite (steps ride *its* wire, not the client's).
/// Returns the final step's output and the execution outcome; on step
/// failure, compensators of completed steps have already run (reverse
/// order, once each) by the time the error is returned.
pub fn execute(
    vsg: &Vsg,
    spec: &CompositeSpec,
    sim: &Sim,
    args: &[(String, Value)],
) -> (Result<Value, MetaError>, ComposeOutcome) {
    let tracer = vsg.tracer();
    let base = vsg.resilience();
    let budget = spec.budget.unwrap_or(base.deadline);
    let started = sim.now();
    let k = spec.steps.len();
    let mut outputs: Vec<Value> = Vec::with_capacity(k);
    let mut outcome = ComposeOutcome::default();

    for (i, step) in spec.steps.iter().enumerate() {
        let span = tracer.begin(sim, HopKind::Compose, || {
            format!("step {i}/{k}: {}.{}", step.service, step.operation)
        });
        let step_started = sim.now();
        let result = (|| {
            let spent = sim.now().since(started);
            if spent >= budget {
                return Err(MetaError::DeadlineExceeded {
                    service: spec.name.clone(),
                    waited_ms: spent.as_millis(),
                });
            }
            // Carve the remaining budget evenly over the remaining
            // steps: an early slow step eats into later steps' shares,
            // never into more than its own carve at once.
            let remaining = budget.as_micros() - spent.as_micros();
            let carve = SimDuration::from_micros(remaining / (k - i) as u64);
            let policy = crate::resilience::ResiliencePolicy {
                deadline: carve,
                ..base.clone()
            };
            let mut step_args = Vec::with_capacity(step.args.len());
            for (name, binding) in &step.args {
                step_args.push((
                    name.clone(),
                    resolve_binding(&spec.name, binding, args, &outputs)?,
                ));
            }
            vsg.invoke_with_policy(sim, &step.service, &step.operation, &step_args, &policy)
        })();
        vsg.metrics().record_layer_with_exemplar(
            Layer::Compose,
            (sim.now() - step_started).as_micros(),
            span.trace_id(),
        );
        tracer.end_result(sim, span, &result);
        match result {
            Ok(v) => {
                outputs.push(v);
                outcome.steps_completed += 1;
            }
            Err(e) => {
                compensate(vsg, spec, sim, args, &outputs, &base, &mut outcome);
                vsg.metrics().record_compose(&outcome, true);
                return (Err(e), outcome);
            }
        }
    }
    let result = outputs.pop().unwrap_or(Value::Null);
    vsg.metrics().record_compose(&outcome, false);
    (Ok(result), outcome)
}

/// Invokes the compensators of every completed step, newest first,
/// exactly once each. Steps without a [`CompensationSpec`] are skipped;
/// a failing compensator is counted and the walk continues beneath it.
fn compensate(
    vsg: &Vsg,
    spec: &CompositeSpec,
    sim: &Sim,
    args: &[(String, Value)],
    outputs: &[Value],
    base: &crate::resilience::ResiliencePolicy,
    outcome: &mut ComposeOutcome,
) {
    let tracer = vsg.tracer();
    for i in (0..outputs.len()).rev() {
        let step = &spec.steps[i];
        let Some(comp) = &step.compensation else {
            continue;
        };
        let span = tracer.begin(sim, HopKind::Compose, || {
            format!("compensate step {i}: {}.{}", step.service, comp.operation)
        });
        let result = (|| {
            let mut comp_args = Vec::with_capacity(comp.args.len());
            for (name, binding) in &comp.args {
                comp_args.push((
                    name.clone(),
                    resolve_binding(&spec.name, binding, args, outputs)?,
                ));
            }
            // Compensation runs on the full base policy, not a carve:
            // the pipeline already failed, and an un-run undo costs
            // more than the extra wait.
            vsg.invoke_with_policy(sim, &step.service, &comp.operation, &comp_args, base)
        })();
        tracer.end_result(sim, span, &result);
        match result {
            Ok(_) => outcome.compensations_run += 1,
            Err(_) => outcome.compensations_failed += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> CompositeSpec {
        CompositeSpec::new("evening-scene")
            .operation("run")
            .input("chapter", TypeTag::Int)
            .budget(SimDuration::from_millis(750))
            .step(
                StepSpec::new("hall-motion", "state")
                    .compensate("state", vec![("why".into(), Binding::Step(0))]),
            )
            .step(
                StepSpec::new("laserdisc", "play")
                    .arg("chapter", Binding::Input("chapter".into()))
                    .arg("seen", Binding::Step(0))
                    .compensate("stop", vec![]),
            )
            .step(
                StepSpec::new("tv-display", "show")
                    .arg("text", Binding::Literal(Value::Str("now playing".into())))
                    .arg("detail", Binding::StepField(1, "title".into())),
            )
    }

    #[test]
    fn spec_xml_round_trips() {
        let spec = sample_spec();
        let doc = spec.to_xml();
        let back = CompositeSpec::from_xml(&doc).expect("parses");
        assert_eq!(back, spec);
    }

    #[test]
    fn values_round_trip_through_xml() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(2.5),
            Value::Float(3.0),
            Value::Str("hello <world> & \"more\"".into()),
            Value::Bytes(vec![0, 255, 16]),
            Value::List(vec![Value::Int(1), Value::Str("two".into())]),
            Value::Record(vec![
                ("a".into(), Value::Int(1)),
                ("nested".into(), Value::List(vec![Value::Null])),
            ]),
        ] {
            let el = value_to_xml(&v);
            let doc = el.to_document();
            let parsed = minixml::parse(&doc).unwrap();
            assert_eq!(value_from_xml(&parsed), Some(v.clone()), "{v:?}");
        }
    }

    #[test]
    fn validate_accepts_well_formed_specs() {
        sample_spec().validate().expect("valid");
    }

    #[test]
    fn validate_rejects_empty_forward_and_self_references() {
        assert!(CompositeSpec::new("empty").validate().is_err());
        // Step 0 referencing step 0's output: not yet executed.
        let fwd =
            CompositeSpec::new("fwd").step(StepSpec::new("a", "op").arg("x", Binding::Step(0)));
        assert!(fwd.validate().is_err());
        // Step referencing a later step.
        let later = CompositeSpec::new("later")
            .step(StepSpec::new("a", "op").arg("x", Binding::Step(1)))
            .step(StepSpec::new("b", "op"));
        assert!(later.validate().is_err());
        // Undeclared input.
        let input = CompositeSpec::new("inp")
            .step(StepSpec::new("a", "op").arg("x", Binding::Input("ghost".into())));
        assert!(input.validate().is_err());
        // Self-invocation.
        let own = CompositeSpec::new("own").step(StepSpec::new("own", "run"));
        assert!(own.validate().is_err());
        // A compensation may bind its own step's output...
        let comp_ok = CompositeSpec::new("c").step(
            StepSpec::new("a", "op").compensate("undo", vec![("token".into(), Binding::Step(0))]),
        );
        comp_ok.validate().expect("own output is bound post-step");
        // ...but not a later step's.
        let comp_bad = CompositeSpec::new("c")
            .step(
                StepSpec::new("a", "op")
                    .compensate("undo", vec![("token".into(), Binding::Step(1))]),
            )
            .step(StepSpec::new("b", "op"));
        assert!(comp_bad.validate().is_err());
    }

    #[test]
    fn derived_interface_is_single_non_idempotent_op() {
        let iface = sample_spec().interface();
        assert_eq!(iface.operations.len(), 1);
        let sig = iface.find("run").expect("run op");
        assert!(!sig.idempotent, "composites must never auto-retry whole");
        assert_eq!(sig.params, vec![("chapter".into(), TypeTag::Int)]);
        assert_eq!(sig.returns, Some(TypeTag::Any));
    }

    #[test]
    fn binding_resolution() {
        let inputs = vec![("chapter".into(), Value::Int(4))];
        let outputs = vec![
            Value::Bool(true),
            Value::Record(vec![("title".into(), Value::Str("dune".into()))]),
        ];
        let get = |b: &Binding| resolve_binding("t", b, &inputs, &outputs);
        assert_eq!(
            get(&Binding::Literal(Value::Int(9))).unwrap(),
            Value::Int(9)
        );
        assert_eq!(
            get(&Binding::Input("chapter".into())).unwrap(),
            Value::Int(4)
        );
        assert_eq!(get(&Binding::Step(0)).unwrap(), Value::Bool(true));
        assert_eq!(
            get(&Binding::StepField(1, "title".into())).unwrap(),
            Value::Str("dune".into())
        );
        assert!(get(&Binding::Input("ghost".into())).is_err());
        assert!(get(&Binding::Step(7)).is_err());
        assert!(get(&Binding::StepField(0, "nope".into())).is_err());
    }

    #[test]
    fn malformed_spec_xml_is_none_not_panic() {
        for doc in [
            "",
            "<other/>",
            "<composite/>",
            "<composite name='x'/>",
            "<composite name='x' operation='run'><step/></composite>",
            "<composite name='x' operation='run' budget-us='zzz'><step service='a' operation='b'/></composite>",
        ] {
            assert!(CompositeSpec::from_xml(doc).is_none(), "{doc}");
        }
        // A minimal well-formed one parses.
        assert!(CompositeSpec::from_xml(
            "<composite name='x' operation='run'><step service='a' operation='b'/></composite>"
        )
        .is_some());
    }
}
