//! Automatic proxy generation.
//!
//! §4.1: "Automatically we can generate a proxy object, such as client
//! proxy and server proxy, for certain service using the interface of
//! that service. The proxy automatic generation is implemented by
//! Javassist … a load-time reflective system for Java."
//!
//! Rust has no load-time bytecode rewriting; the observable behaviour is
//! preserved instead: given only a [`ServiceInterface`] and a transport
//! target, [`generate`] synthesises a dispatching proxy — a validated
//! thunk per operation — at runtime, charging a Javassist-like
//! per-class/per-method generation cost to the virtual clock.
//! Experiment E2 measures this against a hand-written proxy.

use crate::error::MetaError;
use crate::iface::{OpSig, ServiceInterface};
use crate::service::ServiceInvoker;
use simnet::{Sim, SimDuration};
use soap::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Where a generated proxy forwards validated invocations.
pub type ProxyTarget =
    Arc<dyn Fn(&Sim, &str, &[(String, Value)]) -> Result<Value, MetaError> + Send + Sync>;

/// The cost model for load-time proxy synthesis (Javassist-era numbers:
/// class-file generation is milliseconds, each method adds bytecode).
#[derive(Debug, Clone, Copy)]
pub struct ProxyGenCost {
    /// Fixed cost per generated proxy class.
    pub per_class: SimDuration,
    /// Cost per generated method thunk.
    pub per_method: SimDuration,
    /// Cost per parameter (marshalling glue).
    pub per_param: SimDuration,
}

impl Default for ProxyGenCost {
    fn default() -> Self {
        ProxyGenCost {
            per_class: SimDuration::from_millis(2),
            per_method: SimDuration::from_micros(200),
            per_param: SimDuration::from_micros(40),
        }
    }
}

impl ProxyGenCost {
    /// A free model (isolates dispatch overhead in experiments).
    pub fn free() -> ProxyGenCost {
        ProxyGenCost {
            per_class: SimDuration::ZERO,
            per_method: SimDuration::ZERO,
            per_param: SimDuration::ZERO,
        }
    }

    /// The total generation cost for `interface`.
    pub fn total(&self, interface: &ServiceInterface) -> SimDuration {
        let params: usize = interface.operations.iter().map(|o| o.params.len()).sum();
        self.per_class
            + self.per_method * interface.operations.len() as u64
            + self.per_param * params as u64
    }
}

/// A runtime-synthesised dispatching proxy.
pub struct GeneratedProxy {
    interface_name: String,
    thunks: HashMap<String, OpSig>,
    target: ProxyTarget,
}

/// Synthesises a proxy for `interface` forwarding to `target`, charging
/// generation cost to the virtual clock.
pub fn generate(
    sim: &Sim,
    cost: ProxyGenCost,
    interface: &ServiceInterface,
    target: ProxyTarget,
) -> GeneratedProxy {
    sim.advance(cost.total(interface));
    sim.trace(
        "proxygen",
        format!(
            "generated proxy for {} ({} methods)",
            interface.name,
            interface.operations.len()
        ),
    );
    GeneratedProxy {
        interface_name: interface.name.clone(),
        thunks: interface
            .operations
            .iter()
            .map(|o| (o.name.clone(), o.clone()))
            .collect(),
        target,
    }
}

impl GeneratedProxy {
    /// The interface this proxy was generated for.
    pub fn interface_name(&self) -> &str {
        &self.interface_name
    }

    /// The operations the proxy dispatches.
    pub fn operations(&self) -> Vec<&str> {
        let mut ops: Vec<&str> = self.thunks.keys().map(String::as_str).collect();
        ops.sort();
        ops
    }

    /// Dispatches one invocation: unknown-operation check, argument type
    /// check, then the forwarding thunk.
    pub fn dispatch(
        &self,
        sim: &Sim,
        operation: &str,
        args: &[(String, Value)],
    ) -> Result<Value, MetaError> {
        let sig = self
            .thunks
            .get(operation)
            .ok_or_else(|| MetaError::UnknownOperation {
                service: self.interface_name.clone(),
                operation: operation.to_owned(),
            })?;
        sig.check_args(args)?;
        // Per-call dispatch overhead of generated (reflective) code.
        sim.advance(SimDuration::from_micros(2));
        (self.target)(sim, operation, args)
    }
}

impl ServiceInvoker for GeneratedProxy {
    fn invoke(
        &mut self,
        sim: &Sim,
        operation: &str,
        args: &[(String, Value)],
    ) -> Result<Value, MetaError> {
        self.dispatch(sim, operation, args)
    }
}

impl fmt::Debug for GeneratedProxy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GeneratedProxy")
            .field("interface", &self.interface_name)
            .field("methods", &self.thunks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::{catalog, TypeTag};

    fn echo_target() -> ProxyTarget {
        Arc::new(|_, op, args| {
            Ok(Value::Record(vec![
                ("op".into(), Value::Str(op.to_owned())),
                ("n".into(), Value::Int(args.len() as i64)),
            ]))
        })
    }

    #[test]
    fn generation_charges_interface_proportional_cost() {
        let sim = Sim::new(1);
        let small = ServiceInterface::new("Small").op(OpSig::new("a"));
        let t0 = sim.now();
        generate(&sim, ProxyGenCost::default(), &small, echo_target());
        let small_cost = sim.now() - t0;

        let big = catalog::vcr(); // 4 ops with params
        let t0 = sim.now();
        generate(&sim, ProxyGenCost::default(), &big, echo_target());
        let big_cost = sim.now() - t0;
        assert!(big_cost > small_cost, "{big_cost} vs {small_cost}");
        assert_eq!(
            ProxyGenCost::default().total(&small),
            SimDuration::from_micros(2_200)
        );
    }

    #[test]
    fn dispatch_validates_and_forwards() {
        let sim = Sim::new(1);
        let proxy = generate(&sim, ProxyGenCost::free(), &catalog::vcr(), echo_target());
        assert_eq!(proxy.interface_name(), "VcrControl");
        assert_eq!(
            proxy.operations(),
            vec!["play", "position", "record", "stop"]
        );

        let ok = proxy
            .dispatch(
                &sim,
                "record",
                &[
                    ("channel".into(), Value::Int(42)),
                    ("title".into(), Value::Str("News".into())),
                ],
            )
            .unwrap();
        assert_eq!(ok.field("op"), Some(&Value::Str("record".into())));

        assert!(matches!(
            proxy.dispatch(&sim, "eject", &[]),
            Err(MetaError::UnknownOperation { .. })
        ));
        assert!(matches!(
            proxy.dispatch(
                &sim,
                "record",
                &[("channel".into(), Value::Str("x".into()))]
            ),
            Err(MetaError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn generated_proxy_is_an_invoker() {
        let sim = Sim::new(1);
        let mut proxy = generate(
            &sim,
            ProxyGenCost::free(),
            &ServiceInterface::new("I").op(OpSig::new("go").param("x", TypeTag::Int)),
            echo_target(),
        );
        let got =
            ServiceInvoker::invoke(&mut proxy, &sim, "go", &[("x".into(), Value::Int(1))]).unwrap();
        assert_eq!(got.field("n"), Some(&Value::Int(1)));
    }

    #[test]
    fn target_errors_pass_through() {
        let sim = Sim::new(1);
        let failing: ProxyTarget =
            Arc::new(|_, _, _| Err(MetaError::native("x10", "powerline noise")));
        let proxy = generate(
            &sim,
            ProxyGenCost::free(),
            &ServiceInterface::new("I").op(OpSig::new("go")),
            failing,
        );
        let err = proxy.dispatch(&sim, "go", &[]).unwrap_err();
        assert!(err.to_string().contains("powerline"));
    }
}
