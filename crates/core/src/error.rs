//! Framework-level errors.

use std::fmt;

/// Errors surfaced by the meta-middleware framework.
#[derive(Debug, Clone, PartialEq)]
pub enum MetaError {
    /// No service with that name is known to the VSR.
    UnknownService(String),
    /// The service exists but does not offer the operation.
    UnknownOperation {
        /// The service.
        service: String,
        /// The operation that was requested.
        operation: String,
    },
    /// An argument failed the interface's type check.
    TypeMismatch {
        /// The operation.
        operation: String,
        /// The offending parameter.
        parameter: String,
        /// What the interface declares.
        expected: String,
        /// What the caller supplied.
        got: String,
    },
    /// The VSG protocol layer failed (encode/decode/transport).
    Protocol(String),
    /// The underlying middleware reported a failure.
    Native {
        /// Which middleware.
        middleware: String,
        /// Its error text.
        detail: String,
    },
    /// The gateway needed for a remote service is not reachable.
    GatewayUnreachable(String),
    /// The repository rejected or failed a request.
    Repository(String),
}

impl MetaError {
    /// Convenience constructor for middleware-native failures.
    pub fn native(middleware: &str, detail: impl fmt::Display) -> MetaError {
        MetaError::Native { middleware: middleware.to_owned(), detail: detail.to_string() }
    }
}

impl fmt::Display for MetaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetaError::UnknownService(s) => write!(f, "unknown service '{s}'"),
            MetaError::UnknownOperation { service, operation } => {
                write!(f, "service '{service}' has no operation '{operation}'")
            }
            MetaError::TypeMismatch { operation, parameter, expected, got } => write!(
                f,
                "type mismatch in {operation}({parameter}): expected {expected}, got {got}"
            ),
            MetaError::Protocol(m) => write!(f, "VSG protocol error: {m}"),
            MetaError::Native { middleware, detail } => {
                write!(f, "{middleware} error: {detail}")
            }
            MetaError::GatewayUnreachable(g) => write!(f, "gateway '{g}' unreachable"),
            MetaError::Repository(m) => write!(f, "repository error: {m}"),
        }
    }
}

impl std::error::Error for MetaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = MetaError::TypeMismatch {
            operation: "record".into(),
            parameter: "channel".into(),
            expected: "int".into(),
            got: "string".into(),
        };
        let s = e.to_string();
        assert!(s.contains("record"));
        assert!(s.contains("channel"));
        assert!(s.contains("int"));

        let e = MetaError::native("jini", "lease expired");
        assert_eq!(e.to_string(), "jini error: lease expired");
    }
}
