//! Framework-level errors.

use std::fmt;

/// Errors surfaced by the meta-middleware framework.
#[derive(Debug, Clone, PartialEq)]
pub enum MetaError {
    /// No service with that name is known to the VSR.
    UnknownService(String),
    /// The service exists but does not offer the operation.
    UnknownOperation {
        /// The service.
        service: String,
        /// The operation that was requested.
        operation: String,
    },
    /// An argument failed the interface's type check.
    TypeMismatch {
        /// The operation.
        operation: String,
        /// The offending parameter.
        parameter: String,
        /// What the interface declares.
        expected: String,
        /// What the caller supplied.
        got: String,
    },
    /// The VSG protocol layer failed (encode/decode/transport).
    Protocol(String),
    /// The underlying middleware reported a failure.
    Native {
        /// Which middleware.
        middleware: String,
        /// Its error text.
        detail: String,
    },
    /// The gateway needed for a remote service is not reachable.
    GatewayUnreachable(String),
    /// The repository rejected or failed a request.
    Repository(String),
}

impl MetaError {
    /// Convenience constructor for middleware-native failures.
    pub fn native(middleware: &str, detail: impl fmt::Display) -> MetaError {
        MetaError::Native {
            middleware: middleware.to_owned(),
            detail: detail.to_string(),
        }
    }

    /// Recovers a typed error from a fault string produced by
    /// `Display`-formatting a `MetaError` on the remote side. Fault
    /// strings travel as plain text over every VSG wire protocol, so
    /// this is how a caller distinguishes "no such service"
    /// (definitive, cacheable, safe to retry after re-resolving) from
    /// an application fault that proves the call *was* processed.
    pub fn from_fault_string(fault: &str) -> MetaError {
        if let Some(name) = fault
            .strip_prefix("unknown service '")
            .and_then(|rest| rest.strip_suffix('\''))
        {
            return MetaError::UnknownService(name.to_owned());
        }
        if let Some(gw) = fault
            .strip_prefix("gateway '")
            .and_then(|rest| rest.strip_suffix("' unreachable"))
        {
            return MetaError::GatewayUnreachable(gw.to_owned());
        }
        if let Some((service, rest)) = fault
            .strip_prefix("service '")
            .and_then(|rest| rest.split_once("' has no operation '"))
        {
            if let Some(operation) = rest.strip_suffix('\'') {
                return MetaError::UnknownOperation {
                    service: service.to_owned(),
                    operation: operation.to_owned(),
                };
            }
        }
        if let Some((head, tail)) = fault
            .strip_prefix("type mismatch in ")
            .and_then(|rest| rest.split_once("): expected "))
        {
            if let Some((operation, parameter)) = head.split_once('(') {
                if let Some((expected, got)) = tail.split_once(", got ") {
                    return MetaError::TypeMismatch {
                        operation: operation.to_owned(),
                        parameter: parameter.to_owned(),
                        expected: expected.to_owned(),
                        got: got.to_owned(),
                    };
                }
            }
        }
        if let Some(msg) = fault.strip_prefix("VSG protocol error: ") {
            return MetaError::Protocol(msg.to_owned());
        }
        if let Some(msg) = fault.strip_prefix("repository error: ") {
            return MetaError::Repository(msg.to_owned());
        }
        if let Some((middleware, detail)) = fault.split_once(" error: ") {
            if !middleware.is_empty() && !middleware.contains(' ') {
                return MetaError::native(middleware, detail);
            }
        }
        MetaError::Repository(fault.to_owned())
    }

    /// A stable short label for this error's variant, used as the
    /// key of the per-gateway error counters in
    /// [`crate::metrics::MetricsRegistry`].
    pub fn kind(&self) -> &'static str {
        match self {
            MetaError::UnknownService(_) => "unknown-service",
            MetaError::UnknownOperation { .. } => "unknown-operation",
            MetaError::TypeMismatch { .. } => "type-mismatch",
            MetaError::Protocol(_) => "protocol",
            MetaError::Native { .. } => "native",
            MetaError::GatewayUnreachable(_) => "gateway-unreachable",
            MetaError::Repository(_) => "repository",
        }
    }

    /// True if the failure guarantees the operation was *not*
    /// executed — transport/availability problems, or a gateway that
    /// does not know the service (a stale route) — so re-resolving and
    /// retrying cannot double-invoke it. Application-level faults
    /// (unknown operation, type mismatch, native middleware errors)
    /// mean the remote side did process the call and must propagate.
    pub fn is_retry_safe(&self) -> bool {
        matches!(
            self,
            MetaError::Protocol(_)
                | MetaError::GatewayUnreachable(_)
                | MetaError::UnknownService(_)
        )
    }
}

impl fmt::Display for MetaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetaError::UnknownService(s) => write!(f, "unknown service '{s}'"),
            MetaError::UnknownOperation { service, operation } => {
                write!(f, "service '{service}' has no operation '{operation}'")
            }
            MetaError::TypeMismatch {
                operation,
                parameter,
                expected,
                got,
            } => write!(
                f,
                "type mismatch in {operation}({parameter}): expected {expected}, got {got}"
            ),
            MetaError::Protocol(m) => write!(f, "VSG protocol error: {m}"),
            MetaError::Native { middleware, detail } => {
                write!(f, "{middleware} error: {detail}")
            }
            MetaError::GatewayUnreachable(g) => write!(f, "gateway '{g}' unreachable"),
            MetaError::Repository(m) => write!(f, "repository error: {m}"),
        }
    }
}

impl std::error::Error for MetaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = MetaError::TypeMismatch {
            operation: "record".into(),
            parameter: "channel".into(),
            expected: "int".into(),
            got: "string".into(),
        };
        let s = e.to_string();
        assert!(s.contains("record"));
        assert!(s.contains("channel"));
        assert!(s.contains("int"));

        let e = MetaError::native("jini", "lease expired");
        assert_eq!(e.to_string(), "jini error: lease expired");
    }

    #[test]
    fn fault_strings_round_trip_to_typed_errors() {
        for e in [
            MetaError::UnknownService("hall-lamp".into()),
            MetaError::GatewayUnreachable("x10-gw".into()),
            MetaError::UnknownOperation {
                service: "vcr".into(),
                operation: "explode".into(),
            },
            MetaError::TypeMismatch {
                operation: "dim".into(),
                parameter: "level".into(),
                expected: "int".into(),
                got: "string".into(),
            },
            MetaError::Protocol("link down".into()),
            MetaError::Repository("tModel missing".into()),
            MetaError::native("x10", "device jammed"),
        ] {
            assert_eq!(MetaError::from_fault_string(&e.to_string()), e);
        }
        assert_eq!(
            MetaError::from_fault_string("publish failed"),
            MetaError::Repository("publish failed".into())
        );
    }

    #[test]
    fn retry_safety_classification() {
        assert!(MetaError::Protocol("link down".into()).is_retry_safe());
        assert!(MetaError::GatewayUnreachable("gw".into()).is_retry_safe());
        assert!(MetaError::UnknownService("s".into()).is_retry_safe());
        assert!(!MetaError::native("x10", "device jammed").is_retry_safe());
        assert!(!MetaError::Repository("corrupt".into()).is_retry_safe());
        assert!(!MetaError::UnknownOperation {
            service: "s".into(),
            operation: "o".into()
        }
        .is_retry_safe());
        assert!(!MetaError::TypeMismatch {
            operation: "dim".into(),
            parameter: "level".into(),
            expected: "int".into(),
            got: "string".into(),
        }
        .is_retry_safe());
    }
}
