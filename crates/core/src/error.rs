//! Framework-level errors.

use simnet::{NodeId, SimError};
use soap::HttpError;
use std::fmt;

/// Errors surfaced by the meta-middleware framework.
#[derive(Debug, Clone, PartialEq)]
pub enum MetaError {
    /// No service with that name is known to the VSR.
    UnknownService(String),
    /// The service exists but does not offer the operation.
    UnknownOperation {
        /// The service.
        service: String,
        /// The operation that was requested.
        operation: String,
    },
    /// An argument failed the interface's type check.
    TypeMismatch {
        /// The operation.
        operation: String,
        /// The offending parameter.
        parameter: String,
        /// What the interface declares.
        expected: String,
        /// What the caller supplied.
        got: String,
    },
    /// The VSG protocol layer failed (encode/decode/transport).
    Protocol(String),
    /// The underlying middleware reported a failure.
    Native {
        /// Which middleware.
        middleware: String,
        /// Its error text.
        detail: String,
    },
    /// The gateway needed for a remote service is not reachable.
    GatewayUnreachable(String),
    /// The repository rejected or failed a request.
    Repository(String),
    /// The wire path itself failed (link loss, crash, partition).
    Transport {
        /// What the network layer reported.
        detail: String,
        /// `true` when the failure guarantees the request never
        /// reached the serving side (safe to retry unconditionally);
        /// `false` when the outcome is unknown — the response was lost
        /// after delivery, so the remote side may have executed and
        /// only idempotent operations may be retried.
        not_executed: bool,
    },
    /// The invocation's virtual-time budget ran out before any attempt
    /// succeeded. Terminal: the resilience layer already retried as
    /// far as the deadline allowed.
    DeadlineExceeded {
        /// The service being invoked.
        service: String,
        /// How long the caller waited, in virtual milliseconds.
        waited_ms: u64,
    },
    /// The per-gateway circuit breaker is open: recent calls to this
    /// gateway kept failing, so the call was rejected without touching
    /// the wire. Guaranteed not executed, but retrying immediately
    /// would defeat the breaker — wait for its half-open probe.
    CircuitOpen {
        /// The gateway the breaker protects.
        gateway: String,
    },
    /// A federated repository replica refused an operation because the
    /// service's shard is owned by another replica (the client's cached
    /// shard map is stale). Nothing executed: the caller should refresh
    /// its shard map and re-route to the indicated node.
    MovedShard {
        /// The shard the operation hashed to.
        shard: u32,
        /// The backbone node that currently owns the shard's primary.
        node: u32,
    },
    /// The batching layer's bounded per-peer queue is full: the call was
    /// rejected before touching the wire rather than growing the queue
    /// without bound. Guaranteed not executed, but an immediate retry
    /// would add to the very load that overflowed the queue — back off
    /// and let the coalescer drain.
    Overloaded {
        /// The remote gateway whose queue overflowed.
        gateway: String,
        /// How many members were already queued for that gateway.
        queued: u64,
    },
}

impl MetaError {
    /// Convenience constructor for middleware-native failures.
    pub fn native(middleware: &str, detail: impl fmt::Display) -> MetaError {
        MetaError::Native {
            middleware: middleware.to_owned(),
            detail: detail.to_string(),
        }
    }

    /// Convenience constructor for wire-path transport failures.
    pub fn transport(detail: impl fmt::Display, not_executed: bool) -> MetaError {
        MetaError::Transport {
            detail: detail.to_string(),
            not_executed,
        }
    }

    /// Types a raw [`SimError`] returned by a request issued from
    /// `caller` (protocols that talk to the network directly — binary,
    /// SIP-like — use this; SOAP classifies inside its HTTP client).
    /// The request-leg/response-leg split decides
    /// [`MetaError::is_retry_safe`].
    pub fn from_wire_error(e: &SimError, caller: NodeId) -> MetaError {
        MetaError::transport(e, e.before_delivery(caller))
    }

    /// Types an [`HttpError`] from the SOAP transport stack.
    pub fn from_http_error(e: &HttpError) -> MetaError {
        match e {
            HttpError::Unreachable(inner) => MetaError::transport(inner, true),
            HttpError::ResponseLost(inner) => MetaError::transport(inner, false),
            other => MetaError::Protocol(other.to_string()),
        }
    }

    /// Recovers a typed error from a fault string produced by
    /// `Display`-formatting a `MetaError` on the remote side. Fault
    /// strings travel as plain text over every VSG wire protocol, so
    /// this is how a caller distinguishes "no such service"
    /// (definitive, cacheable, safe to retry after re-resolving) from
    /// an application fault that proves the call *was* processed.
    pub fn from_fault_string(fault: &str) -> MetaError {
        if let Some(name) = fault
            .strip_prefix("unknown service '")
            .and_then(|rest| rest.strip_suffix('\''))
        {
            return MetaError::UnknownService(name.to_owned());
        }
        if let Some(gw) = fault
            .strip_prefix("gateway '")
            .and_then(|rest| rest.strip_suffix("' unreachable"))
        {
            return MetaError::GatewayUnreachable(gw.to_owned());
        }
        if let Some((service, rest)) = fault
            .strip_prefix("service '")
            .and_then(|rest| rest.split_once("' has no operation '"))
        {
            if let Some(operation) = rest.strip_suffix('\'') {
                return MetaError::UnknownOperation {
                    service: service.to_owned(),
                    operation: operation.to_owned(),
                };
            }
        }
        if let Some((head, tail)) = fault
            .strip_prefix("type mismatch in ")
            .and_then(|rest| rest.split_once("): expected "))
        {
            if let Some((operation, parameter)) = head.split_once('(') {
                if let Some((expected, got)) = tail.split_once(", got ") {
                    return MetaError::TypeMismatch {
                        operation: operation.to_owned(),
                        parameter: parameter.to_owned(),
                        expected: expected.to_owned(),
                        got: got.to_owned(),
                    };
                }
            }
        }
        if let Some(msg) = fault.strip_prefix("VSG protocol error: ") {
            return MetaError::Protocol(msg.to_owned());
        }
        if let Some(detail) = fault.strip_prefix("transport failure before delivery: ") {
            return MetaError::transport(detail, true);
        }
        if let Some(detail) = fault.strip_prefix("transport failure, outcome unknown: ") {
            return MetaError::transport(detail, false);
        }
        if let Some(rest) = fault.strip_prefix("deadline exceeded after ") {
            if let Some((ms, service)) = rest.split_once("ms invoking '") {
                if let (Ok(waited_ms), Some(service)) = (ms.parse(), service.strip_suffix('\'')) {
                    return MetaError::DeadlineExceeded {
                        service: service.to_owned(),
                        waited_ms,
                    };
                }
            }
        }
        if let Some(gw) = fault
            .strip_prefix("circuit open for gateway '")
            .and_then(|rest| rest.strip_suffix('\''))
        {
            return MetaError::CircuitOpen {
                gateway: gw.to_owned(),
            };
        }
        if let Some((gw, rest)) = fault
            .strip_prefix("gateway '")
            .and_then(|rest| rest.split_once("' overloaded ("))
        {
            if let Some(queued) = rest.strip_suffix(" queued)").and_then(|n| n.parse().ok()) {
                return MetaError::Overloaded {
                    gateway: gw.to_owned(),
                    queued,
                };
            }
        }
        if let Some((shard, node)) = fault
            .strip_prefix("shard ")
            .and_then(|rest| rest.split_once(" moved to node "))
        {
            if let (Ok(shard), Ok(node)) = (shard.parse(), node.parse()) {
                return MetaError::MovedShard { shard, node };
            }
        }
        if let Some(msg) = fault.strip_prefix("repository error: ") {
            return MetaError::Repository(msg.to_owned());
        }
        if let Some((middleware, detail)) = fault.split_once(" error: ") {
            if !middleware.is_empty() && !middleware.contains(' ') {
                return MetaError::native(middleware, detail);
            }
        }
        MetaError::Repository(fault.to_owned())
    }

    /// A stable short label for this error's variant, used as the
    /// key of the per-gateway error counters in
    /// [`crate::metrics::MetricsRegistry`].
    pub fn kind(&self) -> &'static str {
        match self {
            MetaError::UnknownService(_) => "unknown-service",
            MetaError::UnknownOperation { .. } => "unknown-operation",
            MetaError::TypeMismatch { .. } => "type-mismatch",
            MetaError::Protocol(_) => "protocol",
            MetaError::Native { .. } => "native",
            MetaError::GatewayUnreachable(_) => "gateway-unreachable",
            MetaError::Repository(_) => "repository",
            MetaError::Transport { .. } => "transport",
            MetaError::DeadlineExceeded { .. } => "deadline-exceeded",
            MetaError::CircuitOpen { .. } => "circuit-open",
            MetaError::MovedShard { .. } => "moved-shard",
            MetaError::Overloaded { .. } => "overloaded",
        }
    }

    /// True if the failure guarantees the operation was *not*
    /// executed — transport/availability problems before delivery, or
    /// a gateway that does not know the service (a stale route) — so
    /// re-resolving and retrying cannot double-invoke it.
    /// Application-level faults (unknown operation, type mismatch,
    /// native middleware errors) mean the remote side did process the
    /// call and must propagate; a [`MetaError::Transport`] whose
    /// outcome is unknown (lost *response*) is only retryable for
    /// idempotent operations and therefore reports `false` here.
    /// [`MetaError::CircuitOpen`] also reports `false`: nothing
    /// executed, but an immediate retry would defeat the breaker.
    pub fn is_retry_safe(&self) -> bool {
        matches!(
            self,
            MetaError::Protocol(_)
                | MetaError::GatewayUnreachable(_)
                | MetaError::UnknownService(_)
                | MetaError::MovedShard { .. }
                | MetaError::Transport {
                    not_executed: true,
                    ..
                }
        )
    }

    /// True for failures of the wire path itself — the class the
    /// resilience layer retries with backoff and counts against the
    /// per-gateway circuit breaker. Application faults and definitive
    /// repository answers are *successes* from the transport's point
    /// of view: the remote side was reached and responded.
    pub fn is_transport_failure(&self) -> bool {
        matches!(
            self,
            MetaError::Transport { .. } | MetaError::GatewayUnreachable(_)
        )
    }
}

impl fmt::Display for MetaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetaError::UnknownService(s) => write!(f, "unknown service '{s}'"),
            MetaError::UnknownOperation { service, operation } => {
                write!(f, "service '{service}' has no operation '{operation}'")
            }
            MetaError::TypeMismatch {
                operation,
                parameter,
                expected,
                got,
            } => write!(
                f,
                "type mismatch in {operation}({parameter}): expected {expected}, got {got}"
            ),
            MetaError::Protocol(m) => write!(f, "VSG protocol error: {m}"),
            MetaError::Native { middleware, detail } => {
                write!(f, "{middleware} error: {detail}")
            }
            MetaError::GatewayUnreachable(g) => write!(f, "gateway '{g}' unreachable"),
            MetaError::Repository(m) => write!(f, "repository error: {m}"),
            MetaError::Transport {
                detail,
                not_executed: true,
            } => write!(f, "transport failure before delivery: {detail}"),
            MetaError::Transport {
                detail,
                not_executed: false,
            } => write!(f, "transport failure, outcome unknown: {detail}"),
            MetaError::DeadlineExceeded { service, waited_ms } => {
                write!(
                    f,
                    "deadline exceeded after {waited_ms}ms invoking '{service}'"
                )
            }
            MetaError::CircuitOpen { gateway } => {
                write!(f, "circuit open for gateway '{gateway}'")
            }
            MetaError::MovedShard { shard, node } => {
                write!(f, "shard {shard} moved to node {node}")
            }
            MetaError::Overloaded { gateway, queued } => {
                write!(f, "gateway '{gateway}' overloaded ({queued} queued)")
            }
        }
    }
}

impl std::error::Error for MetaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = MetaError::TypeMismatch {
            operation: "record".into(),
            parameter: "channel".into(),
            expected: "int".into(),
            got: "string".into(),
        };
        let s = e.to_string();
        assert!(s.contains("record"));
        assert!(s.contains("channel"));
        assert!(s.contains("int"));

        let e = MetaError::native("jini", "lease expired");
        assert_eq!(e.to_string(), "jini error: lease expired");
    }

    #[test]
    fn fault_strings_round_trip_to_typed_errors() {
        for e in [
            MetaError::UnknownService("hall-lamp".into()),
            MetaError::GatewayUnreachable("x10-gw".into()),
            MetaError::UnknownOperation {
                service: "vcr".into(),
                operation: "explode".into(),
            },
            MetaError::TypeMismatch {
                operation: "dim".into(),
                parameter: "level".into(),
                expected: "int".into(),
                got: "string".into(),
            },
            MetaError::Protocol("link down".into()),
            MetaError::Repository("tModel missing".into()),
            MetaError::native("x10", "device jammed"),
            MetaError::transport("frame to node 3 lost", true),
            MetaError::transport("frame to node 1 lost", false),
            MetaError::DeadlineExceeded {
                service: "hall-lamp".into(),
                waited_ms: 2000,
            },
            MetaError::CircuitOpen {
                gateway: "havi-gw".into(),
            },
            MetaError::MovedShard { shard: 3, node: 17 },
            MetaError::Overloaded {
                gateway: "sip-gw".into(),
                queued: 256,
            },
        ] {
            assert_eq!(MetaError::from_fault_string(&e.to_string()), e);
        }
        assert_eq!(
            MetaError::from_fault_string("publish failed"),
            MetaError::Repository("publish failed".into())
        );
    }

    #[test]
    fn wire_errors_classify_by_leg_and_http_errors_by_variant() {
        let caller = NodeId(1);
        let server = NodeId(2);
        let lost_req = SimError::FrameLost {
            dst: server,
            at: simnet::SimTime::ZERO,
        };
        let lost_resp = SimError::FrameLost {
            dst: caller,
            at: simnet::SimTime::ZERO,
        };
        assert!(MetaError::from_wire_error(&lost_req, caller).is_retry_safe());
        let ambiguous = MetaError::from_wire_error(&lost_resp, caller);
        assert!(!ambiguous.is_retry_safe(), "lost response must not retry");
        assert!(ambiguous.is_transport_failure());
        assert!(
            MetaError::from_http_error(&HttpError::Unreachable(lost_req.clone())).is_retry_safe()
        );
        assert!(!MetaError::from_http_error(&HttpError::ResponseLost(lost_resp)).is_retry_safe());
        assert_eq!(
            MetaError::from_http_error(&HttpError::Malformed("junk")).kind(),
            "protocol"
        );
    }

    #[test]
    fn retry_safety_classification() {
        assert!(MetaError::Protocol("link down".into()).is_retry_safe());
        assert!(MetaError::GatewayUnreachable("gw".into()).is_retry_safe());
        assert!(MetaError::UnknownService("s".into()).is_retry_safe());
        assert!(MetaError::transport("lost", true).is_retry_safe());
        assert!(!MetaError::transport("lost", false).is_retry_safe());
        assert!(!MetaError::DeadlineExceeded {
            service: "s".into(),
            waited_ms: 1
        }
        .is_retry_safe());
        assert!(!MetaError::CircuitOpen {
            gateway: "gw".into()
        }
        .is_retry_safe());
        assert!(!MetaError::Overloaded {
            gateway: "gw".into(),
            queued: 256
        }
        .is_retry_safe());
        assert!(MetaError::MovedShard { shard: 0, node: 2 }.is_retry_safe());
        assert!(!MetaError::MovedShard { shard: 0, node: 2 }.is_transport_failure());
        assert!(!MetaError::Overloaded {
            gateway: "gw".into(),
            queued: 256
        }
        .is_transport_failure());
        assert!(MetaError::transport("lost", false).is_transport_failure());
        assert!(MetaError::GatewayUnreachable("gw".into()).is_transport_failure());
        assert!(!MetaError::native("x10", "jam").is_transport_failure());
        assert!(!MetaError::UnknownService("s".into()).is_transport_failure());
        assert!(!MetaError::native("x10", "device jammed").is_retry_safe());
        assert!(!MetaError::Repository("corrupt".into()).is_retry_safe());
        assert!(!MetaError::UnknownOperation {
            service: "s".into(),
            operation: "o".into()
        }
        .is_retry_safe());
        assert!(!MetaError::TypeMismatch {
            operation: "dim".into(),
            parameter: "level".into(),
            expected: "int".into(),
            got: "string".into(),
        }
        .is_retry_safe());
    }
}
