//! Batching policy and batch work items for the multiplexed VSG wire.
//!
//! The paper's §4.2 failure mode is per-interaction overhead: every
//! invocation and every event notification pays a full connection +
//! request/response round trip. This module holds the knobs for the
//! remedy — coalescing work bound for the same remote gateway into one
//! wire frame — shared by [`crate::Vsg::invoke_batch`] (invocations)
//! and the event fan-out in [`crate::events`] (notifications).

use simnet::SimDuration;
use soap::Value;

/// The reserved operation name that marks a batch member as an event
/// notification rather than an invocation. The serving gateway routes
/// it to its event sink instead of a service invoker.
pub(crate) const EVENT_OP: &str = "__event__";
/// The argument carrying an event member's payload.
pub(crate) const EVENT_ARG: &str = "event";

/// Knobs of the adaptive flush policy (Nagle-with-a-deadline) and the
/// per-peer backpressure bound.
///
/// The flush rule: work for an *idle* peer (its queue is empty) goes
/// out immediately, so a lone call or event pays no coalescing tax;
/// under load, members coalesce until the batch reaches
/// [`BatchPolicy::max_batch`] members or the oldest queued member has
/// waited [`BatchPolicy::max_delay`], whichever comes first. A queue
/// that reaches [`BatchPolicy::max_queue`] rejects further members with
/// [`crate::MetaError::Overloaded`] instead of growing without bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Master switch; `false` reproduces the unbatched wire exactly.
    pub enabled: bool,
    /// Most members one wire frame may carry.
    pub max_batch: usize,
    /// Longest a queued member may wait for company before its peer
    /// queue is flushed anyway (the Nagle deadline).
    pub max_delay: SimDuration,
    /// A peer counts as idle — flush immediately, no coalescing — when
    /// nothing was flushed to it for at least this long.
    pub idle_threshold: SimDuration,
    /// Bound on members queued per peer; beyond it callers get
    /// [`crate::MetaError::Overloaded`].
    pub max_queue: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            enabled: true,
            max_batch: 16,
            max_delay: SimDuration::from_millis(2),
            idle_threshold: SimDuration::from_millis(5),
            max_queue: 256,
        }
    }
}

impl BatchPolicy {
    /// The policy that disables coalescing entirely: every call and
    /// event is its own wire exchange, exactly as before batching
    /// existed. The baseline side of every batched-vs-unbatched
    /// comparison.
    pub fn disabled() -> BatchPolicy {
        BatchPolicy {
            enabled: false,
            ..BatchPolicy::default()
        }
    }
}

/// One invocation inside a batch: `operation` on `service` with named
/// arguments, exactly what [`crate::Vsg::invoke`] takes.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchCall {
    /// Target service name.
    pub service: String,
    /// Operation.
    pub operation: String,
    /// Named arguments.
    pub args: Vec<(String, Value)>,
}

impl BatchCall {
    /// Creates a call with no arguments.
    pub fn new(service: impl Into<String>, operation: impl Into<String>) -> BatchCall {
        BatchCall {
            service: service.into(),
            operation: operation.into(),
            args: Vec::new(),
        }
    }

    /// Adds an argument (builder style).
    pub fn arg(mut self, name: impl Into<String>, value: impl Into<Value>) -> BatchCall {
        self.args.push((name.into(), value.into()));
        self
    }
}

/// One unit of work submitted to [`crate::Vsg::invoke_batch`].
#[derive(Debug, Clone, PartialEq)]
pub enum BatchItem {
    /// An invocation; its per-member result is the operation's answer.
    Call(BatchCall),
    /// An event notification for subscribers behind `service`'s
    /// gateway; its per-member result is `Value::Null` on delivery.
    /// Events are treated as idempotent for re-send decisions — a
    /// duplicated notification is tolerable, a silently dropped batch
    /// is not.
    Event {
        /// The service the event concerns (routes the member to that
        /// service's gateway).
        service: String,
        /// The event payload.
        event: Value,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_enabled_and_bounded() {
        let p = BatchPolicy::default();
        assert!(p.enabled);
        assert!(p.max_batch > 1);
        assert!(p.max_queue >= p.max_batch);
        assert!(p.max_delay < p.idle_threshold);
        assert!(!BatchPolicy::disabled().enabled);
    }

    #[test]
    fn batch_call_builder() {
        let c = BatchCall::new("lamp", "switch").arg("on", true);
        assert_eq!(c.service, "lamp");
        assert_eq!(c.operation, "switch");
        assert_eq!(c.args, vec![("on".to_owned(), Value::Bool(true))]);
    }
}
