//! The smart home of §1, ready-made.
//!
//! "Let's think about a smart home \[with\] a HAVi-based IEEE1394 network
//! connecting a digital TV and VCR, a Jini-based Ethernet network
//! connecting a refrigerator and an air conditioner" — plus the X10
//! powerline, the Internet mail service, and (post-hoc, §5) UPnP.
//!
//! [`SmartHome::builder`] assembles any subset of these islands on one
//! simulation: networks, native middleware, devices, gateways, PCMs, and
//! the VSR — then bridges everything. Examples, integration tests and
//! every benchmark build on it.

use crate::batch::BatchPolicy;
use crate::error::MetaError;
use crate::iface::{catalog, InterfaceCatalog};
use crate::obs::{FlightRecorder, KeptTrace, SamplePolicy};
use crate::pcm::cloud::{CloudConfig, CloudIsland};
use crate::pcm::havi::HaviPcm;
use crate::pcm::jini::JiniPcm;
use crate::pcm::mail::MailPcm;
use crate::pcm::upnp::UpnpPcm;
use crate::pcm::x10::X10Pcm;
use crate::protocol::{Soap11, VsgProtocol};
use crate::resilience::ResiliencePolicy;
use crate::service::Middleware;
use crate::vsg::Vsg;
use crate::vsr::Vsr;
use havi::{Dcm, EventManager, FcmKind, MessagingSystem, Registry, StreamManager};
use jini::{discover, Entry, JValue, LookupService, RegistrarClient, RmiExporter, ServiceItem};
use mailsvc::{MailClient, MailServer};
use parking_lot::Mutex;
use simnet::{Network, Sim, SimDuration};
use soap::Value;
use std::sync::Arc;
use upnp::{DeviceDescription, UpnpDevice};
use x10::{Cm11a, Cm11aDriver, HouseCode, Module, ModuleKind, MotionSensor, Remote, UnitCode};

/// Observable state of the Jini laserdisc player.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaserdiscState {
    /// Currently playing?
    pub playing: bool,
    /// Current chapter.
    pub chapter: i64,
}

/// The Jini island: Ethernet, a lookup service, and three appliances.
pub struct JiniIsland {
    /// The island's Ethernet.
    pub net: Network,
    /// The lookup service.
    pub reggie: LookupService,
    /// The island's gateway.
    pub vsg: Vsg,
    /// The island's PCM.
    pub pcm: JiniPcm,
    /// Laserdisc player state (for assertions).
    pub laserdisc: Arc<Mutex<LaserdiscState>>,
    /// Refrigerator temperature.
    pub fridge_temp: Arc<Mutex<f64>>,
    /// Air conditioner power state.
    pub aircon_on: Arc<Mutex<bool>>,
}

/// The HAVi island: an IEEE1394 bus with AV appliances.
pub struct HaviIsland {
    /// The 1394 bus.
    pub bus: Network,
    /// The FAV controller's messaging system (hosts registry + events).
    pub fav: MessagingSystem,
    /// The HAVi registry.
    pub registry: Registry,
    /// The HAVi event manager.
    pub events: EventManager,
    /// The stream manager.
    pub streams: StreamManager,
    /// The island's gateway.
    pub vsg: Vsg,
    /// The island's PCM.
    pub pcm: HaviPcm,
    /// The digital TV (tuner + display).
    pub tv: Dcm,
    /// The DV camcorder (the Fig. 5 camera).
    pub camcorder: Dcm,
    /// The VCR.
    pub vcr: Dcm,
}

/// The X10 island: the powerline, modules, a sensor and a remote.
pub struct X10Island {
    /// The powerline.
    pub powerline: Network,
    /// The CM11A's serial line.
    pub serial: Network,
    /// The computer interface.
    pub cm11a: Cm11a,
    /// The island's gateway.
    pub vsg: Vsg,
    /// The island's PCM.
    pub pcm: X10Pcm,
    /// Hall lamp at A1.
    pub hall_lamp: Module,
    /// Desk lamp at A2.
    pub desk_lamp: Module,
    /// Fan (appliance module) at A3.
    pub fan: Module,
    /// Motion sensor at C9.
    pub motion: MotionSensor,
}

impl X10Island {
    /// A fresh handheld remote on house code A.
    pub fn remote(&self) -> Remote {
        Remote::new(&self.powerline, "remote", house('A'))
    }
}

/// The Internet island: the mail service across the WAN.
pub struct MailIsland {
    /// The uplink.
    pub inet: Network,
    /// The mail server.
    pub server: MailServer,
    /// A client for test assertions.
    pub client: MailClient,
    /// The island's gateway.
    pub vsg: Vsg,
    /// The island's PCM.
    pub pcm: MailPcm,
}

/// The UPnP island (§5's latecomer).
pub struct UpnpIsland {
    /// The island's Ethernet.
    pub net: Network,
    /// The island's gateway.
    pub vsg: Vsg,
    /// The island's PCM.
    pub pcm: UpnpPcm,
    /// The porch light's power state.
    pub porch_on: Arc<Mutex<bool>>,
}

/// The assembled home.
pub struct SmartHome {
    /// The simulation world.
    pub sim: Sim,
    /// The inter-gateway backbone.
    pub backbone: Network,
    /// The Virtual Service Repository.
    pub vsr: Vsr,
    /// The Jini island, if built.
    pub jini: Option<JiniIsland>,
    /// The HAVi island, if built.
    pub havi: Option<HaviIsland>,
    /// The X10 island, if built.
    pub x10: Option<X10Island>,
    /// The mail island, if built.
    pub mail: Option<MailIsland>,
    /// The UPnP island, if built.
    pub upnp: Option<UpnpIsland>,
    /// The cloud bridge (WAN edge), if attached.
    pub cloud: Option<CloudIsland>,
    /// Handles of the gateway re-registration heartbeats, when the
    /// builder armed them (kept so the timers stay cancellable).
    pub heartbeats: Vec<simnet::RepeatHandle>,
    /// Handle of the VSR anti-entropy timer, armed automatically when
    /// the repository runs with more than one replica.
    pub vsr_sync_timer: Option<simnet::RepeatHandle>,
    /// The home's flight recorder: a bounded ring of sampled traces
    /// (see [`crate::obs`]). One per home, not per gateway, because a
    /// single trace crosses gateways.
    flight: Mutex<FlightRecorder>,
    /// Island builds a lazy home still owes (see
    /// [`SmartHomeBuilder::lazy`]); drained by [`SmartHome::materialize`].
    deferred: Option<SmartHomeBuilder>,
}

/// Builder for [`SmartHome`]. Cloneable so a fleet can stamp out many
/// identically configured homes, varying only the island id.
#[derive(Clone)]
pub struct SmartHomeBuilder {
    seed: u64,
    protocol: Arc<dyn VsgProtocol>,
    jini: bool,
    havi: bool,
    x10: bool,
    mail: bool,
    upnp: bool,
    lossless_powerline: bool,
    auto_import: bool,
    resilience: Option<ResiliencePolicy>,
    batching: Option<BatchPolicy>,
    vsr_lease: Option<SimDuration>,
    heartbeat: Option<SimDuration>,
    vsr_replicas: usize,
    vsr_shards: u32,
    vsr_sync: SimDuration,
    vsr_sync_phase: SimDuration,
    island: u32,
    threads: Option<usize>,
    cloud: Option<CloudConfig>,
    fleet_hint: usize,
    lazy: bool,
}

/// Shorthand used throughout: house code from a letter.
pub fn house(c: char) -> HouseCode {
    HouseCode::new(c).expect("valid house code")
}

/// Shorthand: unit code from a number.
pub fn unit(n: u8) -> UnitCode {
    UnitCode::new(n).expect("valid unit code")
}

impl SmartHome {
    /// Starts building a home.
    pub fn builder() -> SmartHomeBuilder {
        SmartHomeBuilder {
            seed: 0x1CDC_2002,
            protocol: Arc::new(Soap11::new()),
            jini: true,
            havi: true,
            x10: true,
            mail: true,
            upnp: false,
            lossless_powerline: true,
            auto_import: true,
            resilience: None,
            batching: None,
            vsr_lease: None,
            heartbeat: None,
            vsr_replicas: 1,
            vsr_shards: 1,
            vsr_sync: SimDuration::from_secs(2),
            vsr_sync_phase: SimDuration::ZERO,
            island: 0,
            threads: None,
            cloud: None,
            fleet_hint: 1,
            lazy: false,
        }
    }

    /// The gateway of a given middleware island.
    pub fn gateway(&self, mw: Middleware) -> Option<&Vsg> {
        match mw {
            Middleware::Jini => self.jini.as_ref().map(|i| &i.vsg),
            Middleware::Havi => self.havi.as_ref().map(|i| &i.vsg),
            Middleware::X10 => self.x10.as_ref().map(|i| &i.vsg),
            Middleware::Mail | Middleware::Web => self.mail.as_ref().map(|i| &i.vsg),
            Middleware::Upnp => self.upnp.as_ref().map(|i| &i.vsg),
            // The cloud bridge fronts no VSG: it is a WAN edge, not an
            // island gateway. Composites live on whichever gateway
            // registered them, not an island of their own.
            Middleware::Cloud | Middleware::Composite => None,
        }
    }

    /// Any gateway (useful when the caller doesn't care which island it
    /// stands on).
    pub fn any_gateway(&self) -> &Vsg {
        self.jini
            .as_ref()
            .map(|i| &i.vsg)
            .or(self.havi.as_ref().map(|i| &i.vsg))
            .or(self.x10.as_ref().map(|i| &i.vsg))
            .or(self.mail.as_ref().map(|i| &i.vsg))
            .or(self.upnp.as_ref().map(|i| &i.vsg))
            .expect("at least one island")
    }

    /// Invokes a service *from* the given island — i.e. through that
    /// island's gateway, crossing the backbone if the service lives
    /// elsewhere.
    pub fn invoke_from(
        &self,
        from: Middleware,
        service: &str,
        operation: &str,
        args: &[(String, Value)],
    ) -> Result<Value, MetaError> {
        let vsg = self
            .gateway(from)
            .ok_or_else(|| MetaError::GatewayUnreachable(from.label().to_owned()))?;
        vsg.invoke(&self.sim, service, operation, args)
    }

    /// Total services in the VSR.
    pub fn service_count(&self) -> usize {
        self.vsr.service_count()
    }

    /// Every gateway the home actually built.
    pub fn gateways(&self) -> Vec<&Vsg> {
        [
            self.jini.as_ref().map(|i| &i.vsg),
            self.havi.as_ref().map(|i| &i.vsg),
            self.x10.as_ref().map(|i| &i.vsg),
            self.mail.as_ref().map(|i| &i.vsg),
            self.upnp.as_ref().map(|i| &i.vsg),
        ]
        .into_iter()
        .flatten()
        .collect()
    }

    /// Turns distributed tracing on or off on every gateway at once.
    ///
    /// Tracing starts disabled; enabling it home-wide lets one
    /// cross-middleware invocation produce a single causally-connected
    /// trace tree spanning both ends (see [`crate::trace`]).
    pub fn set_tracing(&self, on: bool) {
        self.vsr.set_tracing(on);
        for vsg in self.gateways() {
            vsg.set_tracing(on);
        }
        if let Some(cloud) = &self.cloud {
            cloud.set_tracing(on);
        }
    }

    /// Drains the completed spans from every gateway's tracer, merged
    /// into one list ready for [`crate::trace::render_all`].
    pub fn take_spans(&self) -> Vec<crate::trace::Span> {
        let mut spans = Vec::new();
        for vsg in self.gateways() {
            spans.extend(vsg.tracer().take_spans());
        }
        spans.extend(self.vsr.take_spans());
        if let Some(cloud) = &self.cloud {
            spans.extend(cloud.take_spans());
        }
        spans
    }

    /// Renders every trace recorded so far (draining the tracers) as a
    /// text tree attributing elapsed virtual time and bytes per hop.
    pub fn render_traces(&self) -> String {
        crate::trace::render_all(&self.take_spans())
    }

    /// Metrics snapshots from every gateway, in island order.
    pub fn metrics_snapshots(&self) -> Vec<crate::metrics::MetricsSnapshot> {
        let mut snaps: Vec<crate::metrics::MetricsSnapshot> = self
            .gateways()
            .into_iter()
            .map(|vsg| vsg.metrics_snapshot())
            .collect();
        if let Some(cloud) = &self.cloud {
            snaps.push(cloud.metrics_snapshot());
        }
        snaps
    }

    /// One snapshot for the whole home: every gateway's registry merged
    /// bucket-wise into a single `home` snapshot. O(buckets) memory no
    /// matter how many invocations the gateways served.
    pub fn merged_snapshot(&self) -> crate::metrics::MetricsSnapshot {
        let island = self.sim.island();
        let mut merged = crate::metrics::MetricsSnapshot::empty("home", island);
        for snap in self.metrics_snapshots() {
            merged.merge_from(&snap);
        }
        merged
    }

    /// Replaces the flight recorder's sampling policy (head rate, tail
    /// rescue width, ring capacity). Traces already kept stay kept.
    pub fn set_sampling(&self, policy: SamplePolicy) {
        self.flight.lock().set_policy(policy);
    }

    /// Drains completed spans from every tracer and runs them through
    /// the flight recorder's keep/drop rules. Returns the recorder's
    /// running stats after the harvest.
    pub fn harvest_traces(&self) -> crate::obs::RecorderStats {
        let spans = self.take_spans();
        let mut flight = self.flight.lock();
        flight.harvest(spans);
        flight.stats()
    }

    /// Drains the kept traces out of the flight recorder, oldest first.
    pub fn drain_flight(&self) -> Vec<KeptTrace> {
        self.flight.lock().drain()
    }

    /// The flight recorder's running keep/drop counters.
    pub fn flight_stats(&self) -> crate::obs::RecorderStats {
        self.flight.lock().stats()
    }

    /// Exports every gateway's metrics in OpenMetrics text format.
    pub fn export_openmetrics(&self) -> String {
        crate::obs::openmetrics(&self.metrics_snapshots())
    }

    /// Exports snapshots plus the currently kept traces as JSON lines,
    /// without draining the flight recorder.
    pub fn export_events_jsonl(&self) -> String {
        let kept: Vec<KeptTrace> = self.flight.lock().kept().cloned().collect();
        crate::obs::events_jsonl(&self.metrics_snapshots(), &kept)
    }

    /// Installs `policy` on every gateway at once (benches flip the
    /// whole home between resilient and raw wire paths this way).
    pub fn set_resilience(&self, policy: ResiliencePolicy) {
        for vsg in self.gateways() {
            vsg.set_resilience(policy.clone());
        }
    }

    /// Installs a batching policy on every gateway at once, switching
    /// the whole home between the multiplexed and unbatched wire.
    pub fn set_batching(&self, policy: BatchPolicy) {
        for vsg in self.gateways() {
            vsg.set_batching(policy.clone());
        }
    }

    /// Whether the middleware islands exist yet (always true for an
    /// eager build; false for a lazy home until
    /// [`SmartHome::materialize`] runs).
    pub fn is_materialized(&self) -> bool {
        self.deferred.is_none()
    }

    /// Pays the island builds a lazy home deferred: Jini/HAVi/X10/
    /// mail/UPnP islands, build-time policies, and heartbeats, exactly
    /// as an eager [`SmartHomeBuilder::build`] would have produced
    /// them. Idempotent; a no-op on an eagerly built home.
    pub fn materialize(&mut self) -> Result<(), MetaError> {
        let Some(spec) = self.deferred.take() else {
            return Ok(());
        };
        if spec.jini {
            self.jini = Some(build_jini(
                &self.sim,
                &self.backbone,
                &self.vsr,
                &spec.protocol,
                spec.auto_import,
            )?);
        }
        if spec.havi {
            self.havi = Some(build_havi(
                &self.sim,
                &self.backbone,
                &self.vsr,
                &spec.protocol,
                spec.auto_import,
            )?);
        }
        if spec.x10 {
            self.x10 = Some(build_x10(
                &self.sim,
                &self.backbone,
                &self.vsr,
                &spec.protocol,
                spec.lossless_powerline,
                spec.auto_import,
            )?);
        }
        if spec.mail {
            self.mail = Some(build_mail(
                &self.sim,
                &self.backbone,
                &self.vsr,
                &spec.protocol,
            )?);
        }
        if spec.upnp {
            self.upnp = Some(build_upnp(
                &self.sim,
                &self.backbone,
                &self.vsr,
                &spec.protocol,
                spec.auto_import,
            )?);
        }
        if let Some(policy) = spec.resilience {
            self.set_resilience(policy);
        }
        if let Some(policy) = spec.batching {
            self.set_batching(policy);
        }
        if let Some(period) = spec.heartbeat {
            self.heartbeats = self
                .gateways()
                .into_iter()
                .cloned()
                .map(|vsg| {
                    self.sim.every(period, move |_sim| {
                        let _ = vsg.republish_all();
                    })
                })
                .collect();
        }
        Ok(())
    }
}

impl SmartHomeBuilder {
    /// Sets the world seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Chooses the VSG protocol (default: SOAP, as the prototype).
    pub fn protocol(mut self, protocol: Arc<dyn VsgProtocol>) -> Self {
        self.protocol = protocol;
        self
    }

    /// Includes/excludes the Jini island.
    pub fn jini(mut self, on: bool) -> Self {
        self.jini = on;
        self
    }

    /// Includes/excludes the HAVi island.
    pub fn havi(mut self, on: bool) -> Self {
        self.havi = on;
        self
    }

    /// Includes/excludes the X10 island.
    pub fn x10(mut self, on: bool) -> Self {
        self.x10 = on;
        self
    }

    /// Includes/excludes the mail island.
    pub fn mail(mut self, on: bool) -> Self {
        self.mail = on;
        self
    }

    /// Includes/excludes the UPnP island.
    pub fn upnp(mut self, on: bool) -> Self {
        self.upnp = on;
        self
    }

    /// Makes the powerline noisy (for failure-injection scenarios).
    /// Default is lossless for determinism.
    pub fn noisy_powerline(mut self) -> Self {
        self.lossless_powerline = false;
        self
    }

    /// Skips the automatic Client-Proxy import pass.
    pub fn manual_import(mut self) -> Self {
        self.auto_import = false;
        self
    }

    /// Installs a resilience policy on every gateway at build time
    /// (each gateway otherwise starts with the defaults).
    pub fn resilience(mut self, policy: ResiliencePolicy) -> Self {
        self.resilience = Some(policy);
        self
    }

    /// Installs a batching policy on every gateway at build time —
    /// [`BatchPolicy::disabled`] pins the home to the unbatched wire,
    /// a tuned policy adjusts the coalescing knobs. Gateways otherwise
    /// start with [`BatchPolicy::default`].
    pub fn batching(mut self, policy: BatchPolicy) -> Self {
        self.batching = Some(policy);
        self
    }

    /// Turns on VSR record leases of the given duration: services not
    /// renewed or re-published in time are reaped, so a crashed
    /// gateway's exports stop resolving.
    pub fn vsr_lease(mut self, duration: SimDuration) -> Self {
        self.vsr_lease = Some(duration);
        self
    }

    /// Arms a per-gateway heartbeat that re-registers the gateway and
    /// re-publishes its exports every `period` — the recovery half of
    /// VSR leases. The timers fire when the simulation event loop is
    /// pumped (`run_for`/`run_until`), not on bare `advance`.
    pub fn heartbeat(mut self, period: SimDuration) -> Self {
        self.heartbeat = Some(period);
        self
    }

    /// Runs the VSR as a federation of `n` replicas (default 1 — the
    /// original single-node repository). With more than one replica
    /// the builder also arms a periodic anti-entropy pass (see
    /// [`SmartHomeBuilder::vsr_sync_interval`]); writes replicate
    /// eagerly, and clients fail over (promoting a backup) when a
    /// shard's primary is unreachable.
    pub fn vsr_replicas(mut self, n: usize) -> Self {
        self.vsr_replicas = n.max(1);
        self
    }

    /// Partitions the VSR namespace over `n` shards by consistent
    /// hashing (default 1). Each shard gets its own primary/backup
    /// preference list over the replicas.
    pub fn vsr_shards(mut self, n: u32) -> Self {
        self.vsr_shards = n.max(1);
        self
    }

    /// Period of the VSR anti-entropy exchange (default 2s). Only
    /// meaningful with [`SmartHomeBuilder::vsr_replicas`] above 1; the
    /// timer fires when the event loop is pumped (`run_for`), not on
    /// bare `advance`.
    pub fn vsr_sync_interval(mut self, period: SimDuration) -> Self {
        self.vsr_sync = period;
        self
    }

    /// Extra delay before the first anti-entropy pass (default zero).
    /// Fleets set a per-island phase so homes don't all sync at the
    /// same virtual instant.
    pub fn vsr_sync_phase(mut self, phase: SimDuration) -> Self {
        self.vsr_sync_phase = phase;
        self
    }

    /// Island id for this home's `Sim` (default 0). Determines the RNG
    /// stream and the trace/span id well, so every island of a fleet
    /// is deterministic yet decorrelated. Island 0 with seed `s` is
    /// bit-for-bit identical to a plain `Sim::new(s)` home.
    pub fn island(mut self, island: u32) -> Self {
        self.island = island;
        self
    }

    /// Worker threads a fleet built from this builder should use
    /// (default: the `SIM_THREADS` environment variable, else 1).
    /// Thread count never changes simulation results — only wall-clock
    /// time — so this is a pure performance knob.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// The configured thread count, if any (consumed by `HomeFleet`).
    pub fn configured_threads(&self) -> Option<usize> {
        self.threads
    }

    /// Attaches a cloud bridge (a [`CloudIsland`]) to the home: a
    /// store-and-forward outbox, epoch-fenced sessions, and a simulated
    /// cloud-edge cell across a per-home WAN. With auto-import on, the
    /// standard device names of every enabled island are registered
    /// upward at build time.
    pub fn cloud(mut self, cfg: CloudConfig) -> Self {
        self.cloud = Some(cfg);
        self
    }

    /// Tells the cloud bridge how many homes share the backbone, so
    /// the global admission budget can be divided into deterministic
    /// fair shares (see `core::pcm::cloud`). `HomeFleet` sets this
    /// automatically.
    pub fn fleet_hint(mut self, homes: usize) -> Self {
        self.fleet_hint = homes.max(1);
        self
    }

    /// Defers the middleware-island builds (Jini/HAVi/X10/mail/UPnP)
    /// until [`SmartHome::materialize`] is called. The world — `Sim`,
    /// backbone, VSR, and the cloud bridge if configured — is still
    /// built eagerly, so a lazy home can buffer cloud traffic and run
    /// timers; it just hasn't paid for its islands yet. Fleets use
    /// this to stand up 10k homes without 10k eager full builds.
    pub fn lazy(mut self, on: bool) -> Self {
        self.lazy = on;
        self
    }

    /// Assembles the home.
    pub fn build(self) -> Result<SmartHome, MetaError> {
        let sim = Sim::with_island(self.seed, self.island);
        let backbone = Network::ethernet(&sim);
        let vsr = Vsr::start_federated(
            &backbone,
            &crate::federation::FederationConfig {
                shards: self.vsr_shards,
                replicas: self.vsr_replicas,
                sync_interval: self.vsr_sync,
                sync_phase: self.vsr_sync_phase,
                ..crate::federation::FederationConfig::default()
            },
        );
        if let Some(lease) = self.vsr_lease {
            vsr.set_lease_duration(Some(lease));
        }

        // A lazy build keeps the whole island spec around and builds
        // nothing below the world layer; `materialize` pays the rest.
        let deferred = if self.lazy { Some(self.clone()) } else { None };

        let jini = if self.jini && !self.lazy {
            Some(build_jini(
                &sim,
                &backbone,
                &vsr,
                &self.protocol,
                self.auto_import,
            )?)
        } else {
            None
        };
        let havi = if self.havi && !self.lazy {
            Some(build_havi(
                &sim,
                &backbone,
                &vsr,
                &self.protocol,
                self.auto_import,
            )?)
        } else {
            None
        };
        let x10 = if self.x10 && !self.lazy {
            Some(build_x10(
                &sim,
                &backbone,
                &vsr,
                &self.protocol,
                self.lossless_powerline,
                self.auto_import,
            )?)
        } else {
            None
        };
        let mail = if self.mail && !self.lazy {
            Some(build_mail(&sim, &backbone, &vsr, &self.protocol)?)
        } else {
            None
        };
        let upnp = if self.upnp && !self.lazy {
            Some(build_upnp(
                &sim,
                &backbone,
                &vsr,
                &self.protocol,
                self.auto_import,
            )?)
        } else {
            None
        };

        let cloud = if let Some(cfg) = &self.cloud {
            let island = CloudIsland::build(
                &sim,
                &format!("home-{}", self.island),
                cfg.clone(),
                self.fleet_hint,
            );
            if self.auto_import {
                // The Client-Proxy pass of the cloud PCM: the standard
                // device names of every enabled island are registered
                // upward. Lazy homes register too — the outbox is the
                // point of store-and-forward.
                let rosters: [(bool, &[&str]); 5] = [
                    (self.jini, &names::JINI),
                    (self.havi, &names::HAVI),
                    (self.x10, &names::X10),
                    (self.mail, &names::MAIL),
                    (self.upnp, &names::UPNP),
                ];
                for (on, roster) in rosters {
                    if on {
                        for name in roster {
                            island.bridge.register_device(name)?;
                        }
                    }
                }
            }
            Some(island)
        } else {
            None
        };

        let home = SmartHome {
            sim,
            backbone,
            vsr,
            jini,
            havi,
            x10,
            mail,
            upnp,
            cloud,
            heartbeats: Vec::new(),
            vsr_sync_timer: None,
            flight: Mutex::new(FlightRecorder::new(SamplePolicy::default())),
            deferred,
        };
        if let Some(policy) = self.resilience {
            home.set_resilience(policy);
        }
        if let Some(policy) = self.batching {
            home.set_batching(policy);
        }
        let mut home = home;
        if self.vsr_replicas > 1 {
            let vsr = home.vsr.clone();
            home.vsr_sync_timer = Some(home.sim.every_with_phase(
                self.vsr_sync_phase,
                self.vsr_sync,
                move |_sim| {
                    vsr.sync_now();
                },
            ));
        }
        if let Some(period) = self.heartbeat {
            home.heartbeats = home
                .gateways()
                .into_iter()
                .cloned()
                .map(|vsg| {
                    home.sim.every(period, move |_sim| {
                        let _ = vsg.republish_all();
                    })
                })
                .collect();
        }
        Ok(home)
    }
}

fn build_jini(
    sim: &Sim,
    backbone: &Network,
    vsr: &Vsr,
    protocol: &Arc<dyn VsgProtocol>,
    auto_import: bool,
) -> Result<JiniIsland, MetaError> {
    let net = Network::ethernet(sim);
    let reggie = LookupService::start(&net, "reggie", &["public"], SimDuration::from_secs(30));

    // --- native devices -----------------------------------------------------
    let exporter = RmiExporter::attach(&net, "jini-devices");
    let join_node = net.attach("jini-join");
    let registrars = discover(&net, join_node, "public");
    let joiner = RegistrarClient::new(&net, join_node, registrars[0]);

    let laserdisc = Arc::new(Mutex::new(LaserdiscState {
        playing: false,
        chapter: 0,
    }));
    let ld = laserdisc.clone();
    let ld_stub = exporter.export("LaserdiscPlayer", move |_, method, args| match method {
        "play" => {
            let mut st = ld.lock();
            st.playing = true;
            st.chapter = args.first().and_then(JValue::as_int).unwrap_or(1);
            Ok(JValue::Null)
        }
        "stop" => {
            ld.lock().playing = false;
            Ok(JValue::Null)
        }
        "status" => {
            let st = ld.lock();
            Ok(JValue::Str(if st.playing {
                format!("playing chapter {}", st.chapter)
            } else {
                "stopped".to_owned()
            }))
        }
        other => Err(format!("no method {other}")),
    });
    joiner
        .register(
            &ServiceItem::new(
                ld_stub,
                vec!["LaserdiscPlayer".into()],
                vec![Entry::name("laserdisc"), Entry::location("living-room")],
            ),
            SimDuration::from_secs(300),
        )
        .map_err(|e| MetaError::native("jini", e))?;

    let fridge_temp = Arc::new(Mutex::new(4.0f64));
    let ft = fridge_temp.clone();
    let fridge_stub = exporter.export("Fridge", move |_, method, args| match method {
        "temperature" => Ok(JValue::Double(*ft.lock())),
        "set_target" => {
            if let Some(JValue::Double(c)) = args.first() {
                *ft.lock() = *c;
            }
            Ok(JValue::Null)
        }
        other => Err(format!("no method {other}")),
    });
    joiner
        .register(
            &ServiceItem::new(
                fridge_stub,
                vec!["Fridge".into()],
                vec![Entry::name("fridge"), Entry::location("kitchen")],
            ),
            SimDuration::from_secs(300),
        )
        .map_err(|e| MetaError::native("jini", e))?;

    let aircon_on = Arc::new(Mutex::new(false));
    let ac = aircon_on.clone();
    let aircon_stub = exporter.export("AirConditioner", move |_, method, args| match method {
        "switch" => {
            *ac.lock() = args.first().and_then(JValue::as_bool).unwrap_or(false);
            Ok(JValue::Null)
        }
        "set_target" => Ok(JValue::Null),
        "status" => Ok(JValue::Str(if *ac.lock() { "on" } else { "off" }.into())),
        other => Err(format!("no method {other}")),
    });
    joiner
        .register(
            &ServiceItem::new(
                aircon_stub,
                vec!["AirConditioner".into()],
                vec![Entry::name("aircon"), Entry::location("living-room")],
            ),
            SimDuration::from_secs(300),
        )
        .map_err(|e| MetaError::native("jini", e))?;

    // --- gateway + PCM --------------------------------------------------------
    let vsg = Vsg::start(backbone, "jini-gw", protocol.clone(), vsr.node())?;
    let pcm = JiniPcm::start(&vsg, &net, "public", InterfaceCatalog::standard())?;
    if auto_import {
        pcm.import_services()?;
    }
    Ok(JiniIsland {
        net,
        reggie,
        vsg,
        pcm,
        laserdisc,
        fridge_temp,
        aircon_on,
    })
}

fn build_havi(
    sim: &Sim,
    backbone: &Network,
    vsr: &Vsr,
    protocol: &Arc<dyn VsgProtocol>,
    auto_import: bool,
) -> Result<HaviIsland, MetaError> {
    let bus = Network::ieee1394(sim);
    let fav = MessagingSystem::attach(&bus, "fav-controller");
    let registry = Registry::start(&fav);
    let events = EventManager::start(&fav);
    let streams = StreamManager::new(&bus);

    let mut tv = Dcm::install(
        &bus,
        "digital-tv",
        0x7001,
        &[
            (FcmKind::Tuner, "tv-tuner"),
            (FcmKind::Display, "tv-display"),
        ],
        Some(events.seid()),
    );
    tv.announce(registry.seid())
        .map_err(|e| MetaError::native("havi", e))?;
    let mut camcorder = Dcm::install(
        &bus,
        "camcorder",
        0x7002,
        &[(FcmKind::DvCamera, "dv-camera")],
        Some(events.seid()),
    );
    camcorder
        .announce(registry.seid())
        .map_err(|e| MetaError::native("havi", e))?;
    let mut vcr = Dcm::install(
        &bus,
        "living-room-vcr",
        0x7003,
        &[(FcmKind::Vcr, "living-room-vcr")],
        Some(events.seid()),
    );
    vcr.announce(registry.seid())
        .map_err(|e| MetaError::native("havi", e))?;

    let vsg = Vsg::start(backbone, "havi-gw", protocol.clone(), vsr.node())?;
    let pcm = HaviPcm::start(&vsg, &bus, registry.seid());
    if auto_import {
        pcm.import_services()?;
    }
    Ok(HaviIsland {
        bus,
        fav,
        registry,
        events,
        streams,
        vsg,
        pcm,
        tv,
        camcorder,
        vcr,
    })
}

fn build_x10(
    sim: &Sim,
    backbone: &Network,
    vsr: &Vsr,
    protocol: &Arc<dyn VsgProtocol>,
    lossless: bool,
    auto_import: bool,
) -> Result<X10Island, MetaError> {
    let mut link = simnet::netkind::powerline();
    if lossless {
        link.loss_prob = 0.0;
    }
    let powerline = Network::new(sim, "powerline", link);
    let serial = Network::serial(sim);
    let cm11a = Cm11a::install(&serial, &powerline);

    let hall_lamp = Module::plug_in(
        &powerline,
        "hall-lamp",
        ModuleKind::Lamp,
        house('A'),
        unit(1),
    );
    let desk_lamp = Module::plug_in(
        &powerline,
        "desk-lamp",
        ModuleKind::Lamp,
        house('A'),
        unit(2),
    );
    let fan = Module::plug_in(
        &powerline,
        "fan",
        ModuleKind::Appliance,
        house('A'),
        unit(3),
    );
    let mut motion = MotionSensor::install(&powerline, "hall-motion", house('C'), unit(9));
    motion.set_auto_clear(None);

    let vsg = Vsg::start(backbone, "x10-gw", protocol.clone(), vsr.node())?;
    let driver = Cm11aDriver::new(&serial, cm11a.serial_node());
    let pcm = X10Pcm::start(&vsg, sim, driver);
    if auto_import {
        pcm.import_module_with("hall-lamp", house('A'), unit(1), &[("room", "hall")])?;
        pcm.import_module_with("desk-lamp", house('A'), unit(2), &[("room", "study")])?;
        pcm.import_module_with("fan", house('A'), unit(3), &[("room", "study")])?;
        pcm.import_sensor_with("hall-motion", house('C'), unit(9), &[("room", "hall")])?;
    }
    Ok(X10Island {
        powerline,
        serial,
        cm11a,
        vsg,
        pcm,
        hall_lamp,
        desk_lamp,
        fan,
        motion,
    })
}

fn build_mail(
    sim: &Sim,
    backbone: &Network,
    vsr: &Vsr,
    protocol: &Arc<dyn VsgProtocol>,
) -> Result<MailIsland, MetaError> {
    let inet = Network::internet(sim);
    let server = MailServer::start(&inet, "smtp.example.org");
    let client = MailClient::attach(&inet, "home-mail-gw", server.node());
    let vsg = Vsg::start(backbone, "inet-gw", protocol.clone(), vsr.node())?;
    let pcm = MailPcm::start(&vsg, client.clone(), "home@example.org")?;
    Ok(MailIsland {
        inet,
        server,
        client,
        vsg,
        pcm,
    })
}

fn build_upnp(
    sim: &Sim,
    backbone: &Network,
    vsr: &Vsr,
    protocol: &Arc<dyn VsgProtocol>,
    auto_import: bool,
) -> Result<UpnpIsland, MetaError> {
    let net = Network::ethernet(sim);
    const SWITCH_SVC: &str = "urn:schemas-upnp-org:service:SwitchPower:1";
    let desc = DeviceDescription::new(
        "urn:schemas-upnp-org:device:BinaryLight:1",
        "Porch Light",
        "uuid:porch-light",
    )
    .service(SWITCH_SVC, "urn:upnp-org:serviceId:SwitchPower");
    let device = UpnpDevice::install(&net, desc);
    let porch_on = Arc::new(Mutex::new(false));
    let on = porch_on.clone();
    device.implement(SWITCH_SVC, move |_, action, args| match action {
        "SetTarget" => {
            *on.lock() = args
                .iter()
                .find(|(k, _)| k == "NewTargetValue")
                .and_then(|(_, v)| v.as_bool())
                .ok_or("missing NewTargetValue")?;
            Ok(Value::Null)
        }
        "GetStatus" => Ok(Value::Bool(*on.lock())),
        other => Err(format!("no action {other}")),
    });

    let vsg = Vsg::start(backbone, "upnp-gw", protocol.clone(), vsr.node())?;
    let pcm = UpnpPcm::start(&vsg, &net);
    if auto_import {
        pcm.import_services()?;
    }
    Ok(UpnpIsland {
        net,
        vsg,
        pcm,
        porch_on,
    })
}

/// The standard service names the default home publishes, by island.
pub mod names {
    /// Jini island services.
    pub const JINI: [&str; 3] = ["laserdisc", "fridge", "aircon"];
    /// HAVi island services.
    pub const HAVI: [&str; 4] = ["tv-tuner", "tv-display", "dv-camera", "living-room-vcr"];
    /// X10 island services.
    pub const X10: [&str; 4] = ["hall-lamp", "desk-lamp", "fan", "hall-motion"];
    /// Mail island services.
    pub const MAIL: [&str; 1] = ["mailer"];
    /// UPnP island services.
    pub const UPNP: [&str; 1] = ["porch-light"];
}

// A convenience re-export so examples can say `home::catalog::vcr()`.
pub use crate::iface::catalog as interfaces;

#[allow(unused_imports)]
use catalog as _catalog_used_in_docs;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_home_publishes_every_standard_service() {
        let home = SmartHome::builder().build().unwrap();
        let expected = names::JINI.len() + names::HAVI.len() + names::X10.len() + names::MAIL.len();
        assert_eq!(home.service_count(), expected);
        let records = home.any_gateway().vsr().find("%", None).unwrap();
        let mut found: Vec<String> = records.iter().map(|r| r.name.to_string()).collect();
        found.sort();
        let mut want: Vec<String> = names::JINI
            .iter()
            .chain(&names::HAVI)
            .chain(&names::X10)
            .chain(&names::MAIL)
            .map(|s| (*s).to_owned())
            .collect();
        want.sort();
        assert_eq!(found, want);
    }

    #[test]
    fn cross_island_transparent_control() {
        // The paper's §1 scenario: control everything from one place.
        let home = SmartHome::builder().build().unwrap();

        // From the Jini island's PC, switch the X10 hall lamp...
        home.invoke_from(
            Middleware::Jini,
            "hall-lamp",
            "switch",
            &[("on".into(), Value::Bool(true))],
        )
        .unwrap();
        assert!(home.x10.as_ref().unwrap().hall_lamp.is_on());

        // ...record on the HAVi VCR...
        home.invoke_from(Middleware::Jini, "living-room-vcr", "record", &[])
            .unwrap();
        let vcr = &home.havi.as_ref().unwrap().vcr;
        assert_eq!(
            vcr.fcm(FcmKind::Vcr).unwrap().state().transport,
            havi::TransportState::Recording
        );

        // ...and from the HAVi island (the TV GUI), read the Jini fridge.
        let t = home
            .invoke_from(Middleware::Havi, "fridge", "temperature", &[])
            .unwrap();
        assert_eq!(t, Value::Float(4.0));
    }

    #[test]
    fn partial_homes_work() {
        let home = SmartHome::builder()
            .jini(false)
            .mail(false)
            .havi(true)
            .x10(true)
            .build()
            .unwrap();
        assert!(home.jini.is_none());
        assert!(home.gateway(Middleware::Jini).is_none());
        assert_eq!(home.service_count(), names::HAVI.len() + names::X10.len());
        // X10 -> HAVi still works.
        home.invoke_from(Middleware::X10, "dv-camera", "record", &[])
            .unwrap();
    }

    #[test]
    fn upnp_island_joins_with_one_pcm() {
        let home = SmartHome::builder().upnp(true).build().unwrap();
        home.invoke_from(
            Middleware::Jini,
            "porch-light",
            "switch",
            &[("on".into(), Value::Bool(true))],
        )
        .unwrap();
        assert!(*home.upnp.as_ref().unwrap().porch_on.lock());
    }

    #[test]
    fn manual_import_builds_empty_vsr() {
        let home = SmartHome::builder()
            .manual_import()
            .mail(false)
            .build()
            .unwrap();
        assert_eq!(home.service_count(), 0);
        // Importing later works.
        home.jini.as_ref().unwrap().pcm.import_services().unwrap();
        assert_eq!(home.service_count(), names::JINI.len());
    }

    #[test]
    fn lazy_home_defers_island_builds_until_materialize() {
        let mut home = SmartHome::builder().lazy(true).build().unwrap();
        assert!(!home.is_materialized());
        assert!(home.jini.is_none() && home.havi.is_none());
        assert_eq!(home.service_count(), 0, "no islands, no services");
        home.materialize().unwrap();
        assert!(home.is_materialized());
        let expected = names::JINI.len() + names::HAVI.len() + names::X10.len() + names::MAIL.len();
        assert_eq!(home.service_count(), expected);
        // The materialized home behaves like an eager one.
        home.invoke_from(
            Middleware::Jini,
            "hall-lamp",
            "switch",
            &[("on".into(), Value::Bool(true))],
        )
        .unwrap();
        assert!(home.x10.as_ref().unwrap().hall_lamp.is_on());
        // Idempotent.
        home.materialize().unwrap();
        assert_eq!(home.service_count(), expected);
    }

    #[test]
    fn lazy_matches_eager_service_roster() {
        let eager = SmartHome::builder().upnp(true).build().unwrap();
        let mut lazy = SmartHome::builder().upnp(true).lazy(true).build().unwrap();
        lazy.materialize().unwrap();
        let roster = |h: &SmartHome| {
            let mut names: Vec<String> = h
                .any_gateway()
                .vsr()
                .find("%", None)
                .unwrap()
                .iter()
                .map(|r| r.name.to_string())
                .collect();
            names.sort();
            names
        };
        assert_eq!(roster(&eager), roster(&lazy));
    }

    #[test]
    fn cloud_home_registers_standard_devices_upward() {
        use crate::pcm::cloud::CloudConfig;
        let home = SmartHome::builder()
            .cloud(CloudConfig::default())
            .build()
            .unwrap();
        let cloud = home.cloud.as_ref().unwrap();
        let expected = names::JINI.len() + names::HAVI.len() + names::X10.len() + names::MAIL.len();
        assert_eq!(cloud.bridge.outbox_len(), expected);
        home.sim.run_for(SimDuration::from_secs(2));
        assert!(cloud.bridge.is_connected());
        assert_eq!(cloud.cell.registered_devices().len(), expected);
        // A lazy cloud home registers the same roster before its
        // islands exist — the outbox is the store-and-forward point.
        let lazy = SmartHome::builder()
            .cloud(CloudConfig::default())
            .lazy(true)
            .build()
            .unwrap();
        assert_eq!(lazy.cloud.as_ref().unwrap().bridge.outbox_len(), expected);
    }

    #[test]
    fn mail_flows_from_any_island() {
        let home = SmartHome::builder().build().unwrap();
        home.invoke_from(
            Middleware::Havi,
            "mailer",
            "send",
            &[
                ("to".into(), Value::Str("owner@example.org".into())),
                ("subject".into(), Value::Str("VCR".into())),
                ("body".into(), Value::Str("tape full".into())),
            ],
        )
        .unwrap();
        assert_eq!(
            home.mail
                .as_ref()
                .unwrap()
                .server
                .mailbox_len("owner@example.org"),
            1
        );
    }
}
